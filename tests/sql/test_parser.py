"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql import ast as A
from repro.sql.parser import parse


class TestSelectBasics:
    def test_simple_select(self):
        query = parse("select a, b from t")
        select = query.single
        assert len(select.items) == 2
        assert isinstance(select.from_items[0], A.AstTableRef)

    def test_star(self):
        select = parse("select * from t").single
        assert isinstance(select.items[0].expression, A.AstStar)

    def test_qualified_star(self):
        select = parse("select t.* from t").single
        assert select.items[0].expression == A.AstStar("t")

    def test_aliases(self):
        select = parse("select a as x, b y from t").single
        assert select.items[0].alias == "x"
        assert select.items[1].alias == "y"

    def test_distinct(self):
        assert parse("select distinct a from t").single.distinct

    def test_table_alias(self):
        select = parse("select a from t as u").single
        assert select.from_items[0] == A.AstTableRef("t", "u")
        select = parse("select a from t u").single
        assert select.from_items[0] == A.AstTableRef("t", "u")

    def test_comma_join(self):
        select = parse("select a from t, s").single
        assert len(select.from_items) == 2

    def test_explicit_join(self):
        select = parse("select a from t join s on t.x = s.y").single
        assert isinstance(select.from_items[0], A.AstJoin)

    def test_derived_table(self):
        select = parse("select a from (select b from t) as d(a)").single
        derived = select.from_items[0]
        assert isinstance(derived, A.AstDerivedTable)
        assert derived.alias == "d"
        assert derived.column_names == ("a",)


class TestClauses:
    def test_where(self):
        select = parse("select a from t where a > 1 and b = 'x'").single
        assert isinstance(select.where, A.AstBinary)
        assert select.where.op == "and"

    def test_group_by_and_having(self):
        select = parse(
            "select a, count(*) from t group by a having count(*) > 2"
        ).single
        assert select.group_by == ("a",)
        assert select.having is not None

    def test_group_variable_extension(self):
        select = parse(
            "select gapply(select x from g) from t group by a, b : g"
        ).single
        assert select.group_by == ("a", "b")
        assert select.group_variable == "g"

    def test_order_by(self):
        query = parse("select a from t order by a desc, b asc, c")
        assert query.order_by == (("a", False), ("b", True), ("c", True))

    def test_limit(self):
        assert parse("select a from t limit 5").limit == 5

    def test_union_all_chain(self):
        query = parse("select a from t union all select a from s union all select a from u")
        assert len(query.selects) == 3
        assert query.union_all

    def test_union_distinct(self):
        query = parse("select a from t union select a from s")
        assert not query.union_all


class TestGApplySyntax:
    def test_paper_q1_shape(self):
        query = parse(
            """
            select gapply(
                select p_name, p_retailprice, null from tmpSupp
                union all
                select null, null, avg(p_retailprice) from tmpSupp
            ) as (name, price, avgprice)
            from partsupp, part
            where ps_partkey = p_partkey
            group by ps_suppkey : tmpSupp
            """
        )
        select = query.single
        assert select.gapply is not None
        assert select.gapply.column_names == ("name", "price", "avgprice")
        assert len(select.gapply.query.selects) == 2
        assert select.group_variable == "tmpSupp"

    def test_gapply_without_as(self):
        select = parse(
            "select gapply(select count(*) from g) from t group by k : g"
        ).single
        assert select.gapply is not None
        assert select.gapply.column_names == ()


class TestExpressions:
    def expr(self, text):
        return parse(f"select {text} from t").single.items[0].expression

    def test_precedence_arithmetic_over_comparison(self):
        node = self.expr("a + b * 2 > 5")
        assert isinstance(node, A.AstBinary) and node.op == ">"
        left = node.left
        assert left.op == "+"
        assert left.right.op == "*"

    def test_precedence_and_over_or(self):
        node = self.expr("a or b and c")
        assert node.op == "or"
        assert node.right.op == "and"

    def test_not(self):
        node = self.expr("not a = 1")
        assert isinstance(node, A.AstUnary) and node.op == "not"

    def test_parentheses(self):
        node = self.expr("(a + b) * c")
        assert node.op == "*"
        assert node.left.op == "+"

    def test_unary_minus(self):
        node = self.expr("-a")
        assert isinstance(node, A.AstUnary) and node.op == "-"

    def test_literals(self):
        assert self.expr("null") == A.AstLiteral(None)
        assert self.expr("true") == A.AstLiteral(True)
        assert self.expr("3.5") == A.AstLiteral(3.5)
        assert self.expr("'s'") == A.AstLiteral("s")

    def test_is_null(self):
        assert self.expr("a is null") == A.AstIsNull(A.AstColumn("a"))
        assert self.expr("a is not null") == A.AstIsNull(A.AstColumn("a"), True)

    def test_between(self):
        node = self.expr("a between 1 and 2")
        assert isinstance(node, A.AstBetween)
        node = self.expr("a not between 1 and 2")
        assert node.negated

    def test_in_list(self):
        node = self.expr("a in (1, 2, 3)")
        assert isinstance(node, A.AstInList)
        assert len(node.items) == 3
        assert self.expr("a not in (1)").negated

    def test_case_when(self):
        node = self.expr("case when a > 1 then 'big' else 'small' end")
        assert isinstance(node, A.AstCase)
        assert node.default == A.AstLiteral("small")

    def test_count_star(self):
        node = self.expr("count(*)")
        assert node == A.AstFunction("count", (), star=True)

    def test_count_distinct(self):
        node = self.expr("count(distinct a)")
        assert node.distinct

    def test_scalar_function(self):
        node = self.expr("concat(a, 'x')")
        assert isinstance(node, A.AstFunction)
        assert len(node.args) == 2

    def test_ne_spellings(self):
        assert self.expr("a <> 1").op == "<>"
        assert self.expr("a != 1").op == "<>"


class TestSubqueries:
    def test_exists(self):
        select = parse("select a from t where exists (select 1 from s)").single
        assert isinstance(select.where, A.AstExists)

    def test_not_exists(self):
        select = parse("select a from t where not exists (select 1 from s)").single
        assert isinstance(select.where, A.AstUnary)

    def test_in_subquery(self):
        select = parse("select a from t where a in (select b from s)").single
        assert isinstance(select.where, A.AstInSubquery)

    def test_scalar_subquery(self):
        select = parse("select a from t where a > (select avg(b) from s)").single
        assert isinstance(select.where.right, A.AstScalarSubquery)

    def test_scalar_subquery_in_select_list(self):
        select = parse("select (select max(b) from s) from t").single
        assert isinstance(select.items[0].expression, A.AstScalarSubquery)


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "select",
            "select a",  # missing FROM
            "select a from",
            "select a from t where",
            "select a from t group by",
            "select a from t order by",
            "select gapply(select 1 from g as (x) from t group by k : g",
            "select a from t limit x",
            "select case when a then 1 from t",
            "select a from t where a = 1 2",
        ],
    )
    def test_syntax_errors(self, text):
        with pytest.raises(SqlSyntaxError):
            parse(text)

    def test_case_requires_when(self):
        with pytest.raises(SqlSyntaxError):
            parse("select case else 1 end from t")

    def test_distinct_scalar_function_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("select upper(distinct a) from t")
