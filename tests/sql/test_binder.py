"""Unit tests for semantic analysis (binder): names, aggregation,
subquery decorrelation, and the gapply extension."""

import pytest

from repro.algebra.operators import (
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Limit,
    OrderBy,
    Project,
    Select,
    TableScan,
    UnionAll,
)
from repro.errors import BindError
from repro.sql.binder import bind_sql


class TestBasicBinding:
    def test_simple_projection(self, parts_db):
        plan = bind_sql("select p_name from part", parts_db.catalog)
        assert isinstance(plan, Project)
        assert plan.schema.names() == ["p_name"]

    def test_star_passthrough(self, parts_db):
        plan = bind_sql("select * from part", parts_db.catalog)
        assert isinstance(plan, TableScan)

    def test_qualified_references(self, parts_db):
        plan = bind_sql(
            "select part.p_name from part, partsupp "
            "where part.p_partkey = partsupp.ps_partkey",
            parts_db.catalog,
        )
        assert plan.schema.names() == ["p_name"]

    def test_unknown_column_rejected(self, parts_db):
        with pytest.raises(BindError):
            bind_sql("select mystery from part", parts_db.catalog)

    def test_unknown_table_rejected(self, parts_db):
        with pytest.raises(Exception):
            bind_sql("select a from missing", parts_db.catalog)

    def test_alias_scopes_names(self, parts_db):
        plan = bind_sql(
            "select p1.p_name from part p1, part p2 "
            "where p1.p_partkey = p2.p_partkey",
            parts_db.catalog,
        )
        assert plan.schema.names() == ["p_name"]

    def test_ambiguous_bare_name_rejected(self, parts_db):
        with pytest.raises(Exception):
            bind_sql(
                "select p_name from part p1, part p2",
                parts_db.catalog,
            )

    def test_order_by_and_limit(self, parts_db):
        plan = bind_sql(
            "select p_name, p_retailprice from part order by p_retailprice limit 3",
            parts_db.catalog,
        )
        assert isinstance(plan, Limit)
        assert isinstance(plan.child, OrderBy)

    def test_order_by_source_column_allowed(self, parts_db):
        plan = bind_sql("select p_name from part order by p_size", parts_db.catalog)
        assert plan.schema.names() == ["p_name"]

    def test_order_by_unknown_column(self, parts_db):
        with pytest.raises(Exception):
            bind_sql("select p_name from part order by mystery", parts_db.catalog)

    def test_distinct(self, parts_db):
        plan = bind_sql("select distinct p_brand from part", parts_db.catalog)
        assert isinstance(plan, Distinct)

    def test_derived_table(self, parts_db):
        plan = bind_sql(
            "select x from (select p_name from part) as d(x)",
            parts_db.catalog,
        )
        assert plan.schema.names() == ["x"]

    def test_derived_table_width_mismatch(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select x from (select p_name, p_brand from part) as d(x)",
                parts_db.catalog,
            )

    def test_output_name_deduplication(self, parts_db):
        plan = bind_sql("select p_name, p_name from part", parts_db.catalog)
        assert plan.schema.names() == ["p_name", "p_name_2"]


class TestAggregation:
    def test_group_by(self, parts_db):
        plan = bind_sql(
            "select p_brand, count(*), avg(p_retailprice) from part group by p_brand",
            parts_db.catalog,
        )
        grouped = [n for n in plan.walk() if isinstance(n, GroupBy)]
        assert grouped and grouped[0].keys == ("p_brand",)
        assert len(grouped[0].aggregates) == 2

    def test_scalar_aggregate(self, parts_db):
        plan = bind_sql("select count(*) from part", parts_db.catalog)
        grouped = [n for n in plan.walk() if isinstance(n, GroupBy)]
        assert grouped[0].is_scalar_aggregate

    def test_having(self, parts_db):
        plan = bind_sql(
            "select p_brand from part group by p_brand having count(*) > 3",
            parts_db.catalog,
        )
        assert any(isinstance(n, Select) for n in plan.walk())

    def test_duplicate_aggregates_computed_once(self, parts_db):
        plan = bind_sql(
            "select avg(p_retailprice), avg(p_retailprice) from part",
            parts_db.catalog,
        )
        grouped = [n for n in plan.walk() if isinstance(n, GroupBy)]
        assert len(grouped[0].aggregates) == 1

    def test_aggregate_in_where_rejected(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select p_brand from part where count(*) > 1",
                parts_db.catalog,
            )

    def test_arithmetic_over_aggregates(self, parts_db):
        plan = bind_sql(
            "select avg(p_retailprice) * 2 from part", parts_db.catalog
        )
        assert len(plan.schema) == 1


class TestSubqueries:
    def test_exists_becomes_apply(self, parts_db):
        plan = bind_sql(
            "select p_name from part where exists "
            "(select 1 from partsupp where ps_partkey = p_partkey)",
            parts_db.catalog,
        )
        applies = [n for n in plan.walk() if isinstance(n, Apply)]
        assert applies
        assert isinstance(applies[0].inner, Exists)
        assert applies[0].bindings  # correlated

    def test_not_exists(self, parts_db):
        plan = bind_sql(
            "select p_name from part where not exists "
            "(select 1 from partsupp where ps_partkey = p_partkey)",
            parts_db.catalog,
        )
        exists = [n for n in plan.walk() if isinstance(n, Exists)]
        assert exists[0].negated

    def test_in_subquery(self, parts_db):
        plan = bind_sql(
            "select p_name from part where p_partkey in "
            "(select ps_partkey from partsupp)",
            parts_db.catalog,
        )
        assert any(isinstance(n, Exists) for n in plan.walk())

    def test_scalar_subquery_in_where(self, parts_db):
        plan = bind_sql(
            "select p_name from part where p_retailprice > "
            "(select avg(p_retailprice) from part)",
            parts_db.catalog,
        )
        assert any(isinstance(n, Apply) for n in plan.walk())
        # internal subquery column pruned away
        assert plan.schema.names() == ["p_name"]

    def test_scalar_subquery_in_select(self, parts_db):
        plan = bind_sql(
            "select p_name, (select max(p_retailprice) from part) from part",
            parts_db.catalog,
        )
        assert len(plan.schema) == 2

    def test_in_subquery_width_checked(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select p_name from part where p_partkey in "
                "(select ps_partkey, ps_suppkey from partsupp)",
                parts_db.catalog,
            )

    def test_correlated_scalar_subquery(self, parts_db):
        plan = bind_sql(
            "select p_name from part p1 where p_retailprice >= "
            "(select max(p_retailprice) from part p2 "
            " where p2.p_brand = p1.p_brand)",
            parts_db.catalog,
        )
        applies = [n for n in plan.walk() if isinstance(n, Apply)]
        assert applies and applies[0].bindings


class TestUnions:
    def test_union_all(self, parts_db):
        plan = bind_sql(
            "select p_name from part union all select s_name from supplier",
            parts_db.catalog,
        )
        assert isinstance(plan, UnionAll)

    def test_union_distinct(self, parts_db):
        plan = bind_sql(
            "select p_brand from part union select p_brand from part",
            parts_db.catalog,
        )
        from repro.algebra.operators import Union

        assert isinstance(plan, Union)

    def test_width_mismatch(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select p_name, p_brand from part union all select s_name from supplier",
                parts_db.catalog,
            )


class TestGApplyBinding:
    def test_basic_gapply(self, parts_db):
        plan = bind_sql(
            "select gapply(select count(*) from g) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g",
            parts_db.catalog,
        )
        assert isinstance(plan, GApply)
        assert plan.grouping_columns == ("ps_suppkey",)
        scans = [n for n in plan.per_group.walk() if isinstance(n, GroupScan)]
        assert scans and scans[0].variable == "g"

    def test_as_clause_names_outputs(self, parts_db):
        plan = bind_sql(
            "select gapply(select count(*), avg(p_retailprice) from g) as (n, m) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g",
            parts_db.catalog,
        )
        assert plan.schema.names()[-2:] == ["n", "m"]

    def test_group_variable_required(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select gapply(select count(*) from g) from part group by p_brand",
                parts_db.catalog,
            )

    def test_grouping_column_required(self, parts_db):
        with pytest.raises(Exception):
            bind_sql(
                "select gapply(select count(*) from g) from part group by nothing : g",
                parts_db.catalog,
            )

    def test_gapply_inside_subquery_rejected(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select p_name from part where exists "
                "(select gapply(select count(*) from g) from partsupp group by ps_suppkey : g)",
                parts_db.catalog,
            )

    def test_as_clause_width_mismatch(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select gapply(select count(*) from g) as (a, b) "
                "from part group by p_brand : g",
                parts_db.catalog,
            )

    def test_group_variable_not_aliasable(self, parts_db):
        with pytest.raises(BindError):
            bind_sql(
                "select gapply(select count(*) from g as h) "
                "from part group by p_brand : g",
                parts_db.catalog,
            )

    def test_whole_group_select_star(self, parts_db):
        plan = bind_sql(
            "select gapply(select * from g where exists "
            "(select p_partkey from g where p_retailprice > 100)) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g",
            parts_db.catalog,
        )
        # the canonical group-selection shape: Apply directly under GApply
        assert isinstance(plan.per_group, Apply)

    def test_subquery_conjuncts_bind_above_plain_ones(self, parts_db):
        plan = bind_sql(
            "select gapply("
            "select p_name from g where p_brand = 'A' and p_retailprice > "
            "(select avg(p_retailprice) from g)"
            ") from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g",
            parts_db.catalog,
        )
        applies = [n for n in plan.per_group.walk() if isinstance(n, Apply)]
        assert applies
        # the plain conjunct sits on the Apply's outer side
        assert isinstance(applies[0].outer, Select)
