"""End-to-end SQL execution: text in, verified rows out.

These run through parse -> bind -> optimize -> lower -> execute and check
concrete results against hand-computed expectations on the parts_db
fixture (12 parts; supplier 100+i supplies parts with partkey % 3 == i;
part i has price 10*i, brand A iff i even, size i % 4).
"""

from repro.storage import DataType


def rows_sorted(rows) -> list:
    return sorted(rows, key=repr)


class TestScansAndFilters:
    def test_full_scan(self, parts_db):
        result = parts_db.sql("select p_partkey from part")
        assert len(result) == 12

    def test_filter(self, parts_db):
        result = parts_db.sql(
            "select p_partkey from part where p_retailprice > 100"
        )
        assert rows_sorted(result.rows) == [(11,), (12,)]

    def test_between_and_in(self, parts_db):
        result = parts_db.sql(
            "select p_partkey from part "
            "where p_partkey between 2 and 4 and p_brand in ('A', 'B')"
        )
        assert rows_sorted(result.rows) == [(2,), (3,), (4,)]

    def test_expression_projection(self, parts_db):
        result = parts_db.sql(
            "select p_partkey * 2 + 1 as x from part where p_partkey = 3"
        )
        assert result.rows == [(7,)]

    def test_case_when(self, parts_db):
        result = parts_db.sql(
            "select p_partkey, case when p_retailprice >= 60 then 'high' "
            "else 'low' end as band from part where p_partkey in (1, 12)"
        )
        assert rows_sorted(result.rows) == [(1, "low"), (12, "high")]

    def test_order_by_limit(self, parts_db):
        result = parts_db.sql(
            "select p_partkey from part order by p_retailprice desc limit 2"
        )
        assert result.rows == [(12,), (11,)]


class TestJoinsAndAggregates:
    def test_join_counts(self, parts_db):
        result = parts_db.sql(
            "select count(*) from partsupp, part where ps_partkey = p_partkey"
        )
        assert result.rows == [(12,)]

    def test_group_by_avg(self, parts_db):
        result = parts_db.sql(
            "select ps_suppkey, avg(p_retailprice) from partsupp, part "
            "where ps_partkey = p_partkey group by ps_suppkey order by ps_suppkey"
        )
        # supplier 100: parts 3,6,9,12 -> avg 75; 101: 1,4,7,10 -> 55; 102: 2,5,8,11 -> 65
        assert result.rows == [(100, 75.0), (101, 55.0), (102, 65.0)]

    def test_having(self, parts_db):
        result = parts_db.sql(
            "select p_brand, count(*) from part group by p_brand "
            "having count(*) >= 6 order by p_brand"
        )
        assert result.rows == [("A", 6), ("B", 6)]

    def test_three_way_join(self, parts_db):
        result = parts_db.sql(
            "select s_name, count(*) from supplier, partsupp, part "
            "where s_suppkey = ps_suppkey and ps_partkey = p_partkey "
            "group by s_name order by s_name"
        )
        assert result.rows == [("supp0", 4), ("supp1", 4), ("supp2", 4)]

    def test_explicit_join_syntax(self, parts_db):
        result = parts_db.sql(
            "select count(*) from partsupp join part on ps_partkey = p_partkey"
        )
        assert result.rows == [(12,)]

    def test_count_distinct(self, parts_db):
        result = parts_db.sql("select count(distinct p_brand) from part")
        assert result.rows == [(2,)]


class TestSubqueryExecution:
    def test_scalar_subquery(self, parts_db):
        result = parts_db.sql(
            "select p_partkey from part where p_retailprice > "
            "(select avg(p_retailprice) from part)"
        )
        # avg = 65; parts 7..12 are above
        assert sorted(result.rows) == [(7,), (8,), (9,), (10,), (11,), (12,)]

    def test_correlated_exists(self, parts_db):
        result = parts_db.sql(
            "select s_suppkey from supplier where exists "
            "(select 1 from partsupp, part "
            " where ps_suppkey = s_suppkey and ps_partkey = p_partkey "
            "   and p_retailprice > 110)"
        )
        # only part 12 (price 120) qualifies; supplied by supplier 100
        assert result.rows == [(100,)]

    def test_not_exists(self, parts_db):
        result = parts_db.sql(
            "select s_suppkey from supplier where not exists "
            "(select 1 from partsupp where ps_suppkey = s_suppkey "
            " and ps_partkey > 100)"
        )
        assert len(result) == 3  # nobody supplies partkeys above 100

    def test_in_subquery(self, parts_db):
        result = parts_db.sql(
            "select p_partkey from part where p_partkey in "
            "(select ps_partkey from partsupp where ps_suppkey = 100)"
        )
        assert sorted(result.rows) == [(3,), (6,), (9,), (12,)]


class TestNullSemantics:
    def test_null_filter_drops_unknown(self, parts_db):
        parts_db.create_table(
            "nullable",
            [("a", DataType.INTEGER)],
            [(1,), (None,), (3,)],
        )
        result = parts_db.sql("select a from nullable where a > 1")
        assert result.rows == [(3,)]

    def test_is_null(self, parts_db):
        parts_db.create_table(
            "nullable2",
            [("a", DataType.INTEGER)],
            [(1,), (None,)],
        )
        assert parts_db.sql("select a from nullable2 where a is null").rows == [(None,)]
        assert parts_db.sql("select a from nullable2 where a is not null").rows == [(1,)]


class TestGApplyEndToEnd:
    def test_counts_per_group(self, parts_db):
        result = parts_db.sql(
            "select gapply(select count(*) from g) as (n) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g"
        )
        assert rows_sorted(result.rows) == [(100, 4), (101, 4), (102, 4)]

    def test_union_per_group(self, parts_db):
        result = parts_db.sql(
            """
            select gapply(
                select p_name, null from g where p_retailprice > 100
                union all
                select null, avg(p_retailprice) from g
            ) as (name, avgp)
            from partsupp, part where ps_partkey = p_partkey
            group by ps_suppkey : g
            """
        )
        # supplier 100 has parts 11? no: 100 supplies 3,6,9,12 -> only 12 > 100
        names = [row for row in result.rows if row[1] is not None]
        avgs = {row[0]: row[2] for row in result.rows if row[2] is not None}
        assert len(names) == 2  # part11 (supp102) and part12 (supp100)
        assert avgs == {100: 75.0, 101: 55.0, 102: 65.0}

    def test_unoptimized_matches_optimized(self, parts_db):
        sql = (
            "select gapply(select count(*), avg(p_retailprice) from g "
            "where p_brand = 'A') "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g"
        )
        a = rows_sorted(parts_db.sql(sql, optimize=False).rows)
        b = rows_sorted(parts_db.sql(sql, optimize=True).rows)
        assert a == b

    def test_explain_mentions_gapply(self, parts_db):
        text = parts_db.explain(
            "select gapply(select p_name from g where p_retailprice > "
            "(select avg(p_retailprice) from g)) "
            "from part group by p_brand : g"
        )
        assert "GApply" in text

    def test_result_helpers(self, parts_db):
        result = parts_db.sql("select p_partkey from part limit 1")
        assert len(result.to_dicts()) == 1
        assert "p_partkey" in result.pretty()
        assert result.to_table("x").name == "x"
