"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_lowercased(self):
        tokens = kinds("SELECT From WHERE")
        assert tokens == [
            (TokenType.KEYWORD, "select"),
            (TokenType.KEYWORD, "from"),
            (TokenType.KEYWORD, "where"),
        ]

    def test_identifiers_keep_case(self):
        assert kinds("tmpSupp")[0] == (TokenType.IDENT, "tmpSupp")

    def test_gapply_is_keyword(self):
        assert kinds("gapply")[0] == (TokenType.KEYWORD, "gapply")

    def test_eof_always_last(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("select")[-1].type is TokenType.EOF


class TestNumbers:
    def test_integer(self):
        assert kinds("42")[0] == (TokenType.NUMBER, "42")

    def test_float(self):
        assert kinds("3.14")[0] == (TokenType.NUMBER, "3.14")

    def test_scientific(self):
        assert kinds("1e3")[0] == (TokenType.NUMBER, "1e3")
        assert kinds("2.5E-2")[0] == (TokenType.NUMBER, "2.5E-2")

    def test_leading_dot(self):
        assert kinds(".5")[0] == (TokenType.NUMBER, ".5")

    def test_number_dot_identifier_not_confused(self):
        # "t1.c" style qualifier after a digit-containing alias
        tokens = kinds("ps1.ps_suppkey")
        assert tokens == [
            (TokenType.IDENT, "ps1"),
            (TokenType.SYMBOL, "."),
            (TokenType.IDENT, "ps_suppkey"),
        ]


class TestStrings:
    def test_simple(self):
        assert kinds("'hello'")[0] == (TokenType.STRING, "hello")

    def test_escaped_quote(self):
        assert kinds("'it''s'")[0] == (TokenType.STRING, "it's")

    def test_unterminated(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")


class TestSymbols:
    def test_multichar_first(self):
        assert kinds("<=")[0] == (TokenType.SYMBOL, "<=")
        assert kinds("<>")[0] == (TokenType.SYMBOL, "<>")
        assert kinds("!=")[0] == (TokenType.SYMBOL, "!=")

    def test_group_variable_colon(self):
        tokens = kinds("group by k : x")
        assert (TokenType.SYMBOL, ":") in tokens

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("select @")
        assert excinfo.value.line == 1


class TestCommentsAndLocations:
    def test_line_comments_skipped(self):
        tokens = kinds("select -- comment here\n 1")
        assert tokens == [(TokenType.KEYWORD, "select"), (TokenType.NUMBER, "1")]

    def test_comment_at_end(self):
        assert kinds("select 1 -- done") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.NUMBER, "1"),
        ]

    def test_line_and_column_tracked(self):
        tokens = tokenize("select\n  x")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_token_helpers(self):
        token = tokenize("select")[0]
        assert token.is_keyword("select")
        assert not token.is_keyword("from")
        assert not token.is_symbol("(")
