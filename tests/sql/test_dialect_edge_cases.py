"""SQL dialect edge cases executed end to end."""

import pytest

from repro.storage import DataType


@pytest.fixture
def db(parts_db):
    return parts_db


class TestUnionSemantics:
    def test_union_all_keeps_duplicates(self, db):
        result = db.sql(
            "select p_brand from part where p_partkey <= 2 "
            "union all select p_brand from part where p_partkey <= 2"
        )
        assert len(result) == 4

    def test_union_distinct_deduplicates(self, db):
        result = db.sql(
            "select p_brand from part union select p_brand from part"
        )
        assert sorted(result.rows) == [("A",), ("B",)]

    def test_union_aligns_by_position(self, db):
        result = db.sql(
            "select p_partkey, p_name from part where p_partkey = 1 "
            "union all select s_suppkey, s_name from supplier where s_suppkey = 100"
        )
        assert sorted(result.rows) == [(1, "part1"), (100, "supp0")]

    def test_three_branch_union_with_order(self, db):
        result = db.sql(
            "select p_partkey from part where p_partkey = 3 "
            "union all select p_partkey from part where p_partkey = 1 "
            "union all select p_partkey from part where p_partkey = 2 "
            "order by p_partkey"
        )
        assert result.rows == [(1,), (2,), (3,)]


class TestStringsAndLiterals:
    def test_string_escape(self, db):
        db.create_table("notes", [("txt", DataType.STRING)], [("it's",)])
        result = db.sql("select txt from notes where txt = 'it''s'")
        assert result.rows == [("it's",)]

    def test_comments_ignored(self, db):
        result = db.sql(
            "select count(*) -- trailing comment\nfrom part -- another"
        )
        assert result.rows == [(12,)]

    def test_negative_literals(self, db):
        result = db.sql("select p_partkey from part where p_partkey > -1 and p_partkey < 2")
        assert result.rows == [(1,)]

    def test_float_arithmetic(self, db):
        result = db.sql("select 1.5 * 2 from part where p_partkey = 1")
        assert result.rows == [(3.0,)]

    def test_boolean_literals(self, db):
        result = db.sql("select true, false from part where p_partkey = 1")
        assert result.rows == [(True, False)]


class TestScalarFunctions:
    def test_concat_upper(self, db):
        result = db.sql(
            "select upper(concat(p_name, '!')) from part where p_partkey = 1"
        )
        assert result.rows == [("PART1!",)]

    def test_substring(self, db):
        result = db.sql(
            "select substring(p_name, 1, 4) from part where p_partkey = 10"
        )
        assert result.rows == [("part",)]

    def test_coalesce_with_null(self, db):
        db.create_table("sparse", [("v", DataType.INTEGER)], [(None,), (3,)])
        result = db.sql("select coalesce(v, -1) from sparse order by v")
        assert result.rows == [(-1,), (3,)]


class TestDerivedTables:
    def test_nested_derived_tables(self, db):
        result = db.sql(
            "select n from (select m as n from "
            "(select count(*) as m from part) as inner1) as outer1"
        )
        assert result.rows == [(12,)]

    def test_derived_with_aggregate_then_filter(self, db):
        result = db.sql(
            "select b, n from (select p_brand, count(*) from part "
            "group by p_brand) as t(b, n) where n > 5 order by b"
        )
        assert result.rows == [("A", 6), ("B", 6)]

    def test_join_derived_with_base(self, db):
        result = db.sql(
            "select count(*) from part, "
            "(select avg(p_retailprice) from part) as a(m) "
            "where p_retailprice > a.m"
        )
        assert result.rows == [(6,)]


class TestGApplyVariants:
    def test_multi_column_grouping(self, db):
        result = db.sql(
            "select gapply(select count(*) from g) as (n) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey, p_brand : g"
        )
        # 3 suppliers x 2 brands
        assert len(result) == 6
        assert sum(row[2] for row in result.rows) == 12

    def test_gapply_over_single_table(self, db):
        result = db.sql(
            "select gapply(select max(p_retailprice) from g) as (top) "
            "from part group by p_brand : g"
        )
        out = dict(result.rows)
        assert out["A"] == 120.0  # even parts; part12
        assert out["B"] == 110.0

    def test_gapply_with_exists_in_pgq(self, db):
        result = db.sql(
            "select gapply(select * from g where exists "
            "(select p_partkey from g where p_retailprice > 110)) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g"
        )
        # only supplier 100 (part 12 @ 120) qualifies; whole group returned
        assert {row[0] for row in result.rows} == {100}
        assert len(result) == 4

    def test_gapply_group_over_filtered_outer(self, db):
        result = db.sql(
            "select gapply(select count(*) from g) as (n) "
            "from partsupp, part "
            "where ps_partkey = p_partkey and p_brand = 'A' "
            "group by ps_suppkey : g"
        )
        assert sum(row[1] for row in result.rows) == 6

    def test_gapply_ordering_of_output(self, db):
        result = db.sql(
            "select gapply(select count(*) from g) as (n) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g "
            "order by ps_suppkey"
        )
        keys = [row[0] for row in result.rows]
        assert keys == sorted(keys)


class TestCrossJoins:
    def test_explicit_cross_join(self, db):
        result = db.sql("select count(*) from supplier cross join supplier s2")
        assert result.rows == [(9,)]

    def test_comma_cross_join(self, db):
        result = db.sql(
            "select count(*) from supplier, supplier s2 "
            "where supplier.s_suppkey < s2.s_suppkey"
        )
        assert result.rows == [(3,)]
