"""Golden-document conformance: byte-for-byte XML for every paper query.

Each of the five supported XQueries is published under both SQL
formulations (sorted outer union and GApply) and both execution engines,
through the *streaming* path (:meth:`Database.publish`), and compared
byte-for-byte against

* a checked-in golden snapshot under ``tests/snapshots/xml`` — so any
  change to translation, execution order, escaping, or tagging shows up
  as a reviewable XML diff (regenerate with
  ``pytest --update-snapshots``); and
* the materialized reference (``db.sql`` + ``tag_to_string``) — so
  streaming is provably a pure re-framing of the same document.

One snapshot per (query, formulation): the two engines must agree on the
exact bytes, which is itself part of the conformance claim.
"""

from pathlib import Path

import pytest

from repro.optimizer.planner import ENGINES
from repro.xmlpub import (
    FORMULATIONS,
    ConstantSpaceTagger,
    tpch_supplier_view,
    translate_xquery,
)

from tests.xmlpub.queries import PAPER_QUERIES

SNAPSHOT_DIR = Path(__file__).resolve().parents[1] / "snapshots" / "xml"

CASES = [
    (name, query, formulation)
    for name, query, _tag in PAPER_QUERIES
    for formulation in FORMULATIONS
]


def _snapshot_path(name: str, formulation: str) -> Path:
    return SNAPSHOT_DIR / f"{name}-{formulation}.xml"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "name, query, formulation",
    CASES,
    ids=[f"{name}-{formulation}" for name, _q, formulation in CASES],
)
def test_streamed_document_matches_golden(
    xml_db, update_snapshots, engine, name, query, formulation
):
    view = tpch_supplier_view()
    with xml_db.publish(view, query, formulation, engine=engine) as stream:
        streamed = stream.read_all()
    assert stream.exhausted and stream.error is None

    # Streaming must be a pure re-framing of the materialized document.
    translated = translate_xquery(query, view, xml_db.catalog)
    rows = xml_db.sql(translated.sql_for(formulation), engine=engine).rows
    materialized = ConstantSpaceTagger(translated.spec).tag_to_string(rows)
    assert streamed == materialized.encode("utf-8")

    path = _snapshot_path(name, formulation)
    if update_snapshots:
        SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(streamed.decode("utf-8"))
        return
    assert path.exists(), (
        f"missing golden document {path.name}; run "
        "pytest --update-snapshots to (re)generate it"
    )
    assert streamed.decode("utf-8") == path.read_text(), (
        f"published XML diverged from {path.name} "
        f"(engine={engine}); if the change is intentional, regenerate "
        "with pytest --update-snapshots"
    )


@pytest.mark.parametrize(
    "name, query, formulation",
    CASES,
    ids=[f"{name}-{formulation}" for name, _q, formulation in CASES],
)
def test_chunk_size_never_changes_the_document(
    xml_db, name, query, formulation
):
    view = tpch_supplier_view()
    baseline = xml_db.publish(view, query, formulation).read_all()
    # A pathological 7-byte chunk size must re-frame, never re-write.
    rechunked = xml_db.publish(view, query, formulation, chunk_bytes=7)
    chunks = list(rechunked)
    assert all(chunk for chunk in chunks)
    assert b"".join(chunks) == baseline
    assert rechunked.stats.bytes_emitted == len(baseline)


def test_snapshots_have_no_strays(update_snapshots):
    if update_snapshots:
        pytest.skip("snapshot set is being rewritten")
    known = {
        f"{name}-{formulation}.xml" for name, _q, formulation in CASES
    }
    present = {path.name for path in SNAPSHOT_DIR.glob("*.xml")}
    assert present == known
