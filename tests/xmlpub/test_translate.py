"""Integration tests for the XQuery -> SQL translator.

The central claim: for every supported query, the sorted-outer-union
formulation and the gapply formulation produce equivalent XML documents
(identical group fragments; group order is unspecified under the paper's
unordered model).
"""

import re

import pytest

from repro.api import Database
from repro.errors import XmlPublishError
from repro.xmlpub import (
    ConstantSpaceTagger,
    Translator,
    tpch_supplier_view,
    translate_xquery,
)

from tests.xmlpub.queries import AGS, GS, Q1, Q2, Q3


def group_fragments(xml: str, tag: str) -> list[str]:
    return sorted(re.findall(rf"<{tag}>.*?</{tag}>", xml))


def roundtrip(db: Database, query: str, tag: str):
    translated = translate_xquery(query, tpch_supplier_view(), db.catalog)
    union_rows = db.sql(translated.outer_union_sql).rows
    gapply_rows = db.sql(translated.gapply_sql).rows
    tagger = ConstantSpaceTagger(translated.spec)
    return (
        tagger.tag_to_string(union_rows),
        tagger.tag_to_string(gapply_rows),
        translated,
    )


class TestEquivalence:
    @pytest.mark.parametrize(
        "query, tag",
        [(Q1, "ret"), (Q2, "ret"), (Q3, "ret"), (GS, "supplier"), (AGS, "supplier")],
        ids=["q1", "q2", "q3", "group-selection", "aggregate-selection"],
    )
    def test_both_formulations_publish_same_document(self, xml_db, query, tag):
        union_xml, gapply_xml, _ = roundtrip(xml_db, query, tag)
        assert group_fragments(union_xml, tag) == group_fragments(gapply_xml, tag)
        assert group_fragments(union_xml, tag)  # non-empty result


class TestQ1Details:
    def test_document_content(self, xml_db):
        union_xml, _, _ = roundtrip(xml_db, Q1, "ret")
        # supplier 101 supplies parts 1,4,7,10 -> avg 55
        assert "<avg_p_retailprice>55</avg_p_retailprice>" in union_xml
        assert "<part><p_name>part1</p_name>" in union_xml

    def test_gapply_sql_uses_extension_syntax(self, xml_db):
        translated = translate_xquery(Q1, tpch_supplier_view(), xml_db.catalog)
        assert "gapply(" in translated.gapply_sql
        assert ": g" in translated.gapply_sql

    def test_union_sql_is_ordered(self, xml_db):
        translated = translate_xquery(Q1, tpch_supplier_view(), xml_db.catalog)
        assert "order by gkey, branch" in translated.outer_union_sql

    def test_payload_is_disjoint_outer_union(self, xml_db):
        translated = translate_xquery(Q1, tpch_supplier_view(), xml_db.catalog)
        # nested-for needs 2 columns, aggregate 1 -> combined width 3
        assert translated.payload_width == 3


class TestGroupSelectionDetails:
    def test_only_qualifying_suppliers_published(self, xml_db):
        union_xml, gapply_xml, _ = roundtrip(xml_db, GS, "supplier")
        # parts with price > 90: 10, 11, 12 -> suppliers 101, 102, 100
        assert union_xml.count("<supplier>") == 3
        union_xml, gapply_xml, _ = roundtrip(
            xml_db,
            GS.replace("> 90", "> 110"),
            "supplier",
        )
        # only part 12 (price 120) -> supplier 100
        assert union_xml.count("<supplier>") == 1
        assert "<s_suppkey>100</s_suppkey>" in union_xml

    def test_aggregate_selection_threshold(self, xml_db):
        union_xml, _, _ = roundtrip(xml_db, AGS, "supplier")
        # averages: 100 -> 75, 101 -> 55, 102 -> 65 ; > 60 keeps 100 and 102
        assert union_xml.count("<supplier>") == 2


class TestErrors:
    def test_wrong_view_path(self, xml_db):
        with pytest.raises(XmlPublishError):
            translate_xquery(
                "for $s in /doc(x)/wrong/path return $s",
                tpch_supplier_view(),
                xml_db.catalog,
            )

    def test_where_with_constructor_unsupported(self, xml_db):
        with pytest.raises(XmlPublishError):
            translate_xquery(
                "for $s in /doc(t)/suppliers/supplier "
                "where avg($s/part/p_retailprice) > 1 "
                "return <r> $s/s_suppkey </r>",
                tpch_supplier_view(),
                xml_db.catalog,
            )

    def test_whole_subtree_without_where_rejected(self, xml_db):
        with pytest.raises(XmlPublishError):
            translate_xquery(
                "for $s in /doc(t)/suppliers/supplier return $s",
                tpch_supplier_view(),
                xml_db.catalog,
            )

    def test_unknown_field_in_nested_return(self, xml_db):
        with pytest.raises(XmlPublishError):
            translate_xquery(
                "for $s in /doc(t)/suppliers/supplier return <r> "
                "<ps> for $p in $s/part return <q> $p/p_nonexistent </q> </ps> </r>",
                tpch_supplier_view(),
                xml_db.catalog,
            )

    def test_node_columns_helper(self, xml_db):
        translator = Translator(tpch_supplier_view(), xml_db.catalog)
        columns = translator.node_columns(tpch_supplier_view().node)
        assert columns == ["s_suppkey", "s_name"]


PARENT_FIELDS = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "$s/s_name, <parts> for $p in $s/part return <part> $p/p_name </part> "
    "</parts>, avg($s/part/p_retailprice) </ret>"
)


class TestParentFields:
    def test_parent_field_requires_parent_join(self, xml_db):
        translated = translate_xquery(
            PARENT_FIELDS, tpch_supplier_view(), xml_db.catalog
        )
        # the gapply outer query now joins the supplier node's query
        assert "psrc" in translated.gapply_sql
        assert "from supplier" in translated.gapply_sql

    def test_parent_field_roundtrip(self, xml_db):
        union_xml, gapply_xml, _ = roundtrip(xml_db, PARENT_FIELDS, "ret")
        assert group_fragments(union_xml, "ret") == group_fragments(
            gapply_xml, "ret"
        )

    def test_parent_field_rendered_once_per_group(self, xml_db):
        _, gapply_xml, _ = roundtrip(xml_db, PARENT_FIELDS, "ret")
        assert gapply_xml.count("<s_name>supp1</s_name>") == 1
