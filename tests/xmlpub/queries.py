"""The paper's five XQuery formulations, shared across xmlpub suites.

These are the queries Figures 5-7 of the paper build their SQL
formulations around: the basic nested document (Q1), per-group
aggregate comparisons (Q2), a correlated group filter (Q3), existential
group selection (GS) and aggregate group selection (AGS). Both the
translator tests and the golden-document conformance battery iterate
``PAPER_QUERIES`` so "all supported queries" means the same thing
everywhere.
"""

Q1 = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "<parts> for $p in $s/part return <part> $p/p_name, $p/p_retailprice "
    "</part> </parts>, avg($s/part/p_retailprice) </ret>"
)
Q2 = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "<count_above> count($s/part[p_retailprice >= avg($s/part/p_retailprice)]) "
    "</count_above>, <count_below> count($s/part[p_retailprice < "
    "avg($s/part/p_retailprice)]) </count_below> </ret>"
)
Q3 = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "<highend> for $p in $s/part[p_retailprice >= 0.8 * "
    "max($s/part/p_retailprice)] return <part> $p/p_name </part> </highend> "
    "</ret>"
)
GS = (
    "for $s in /doc(tpch.xml)/suppliers/supplier where some $p in $s/part "
    "satisfies $p/p_retailprice > 90 return $s"
)
AGS = (
    "for $s in /doc(tpch.xml)/suppliers/supplier "
    "where avg($s/part/p_retailprice) > 60 return $s"
)

#: (id, query text, group tag) for every supported paper query.
PAPER_QUERIES = [
    ("q1", Q1, "ret"),
    ("q2", Q2, "ret"),
    ("q3", Q3, "ret"),
    ("group-selection", GS, "supplier"),
    ("aggregate-selection", AGS, "supplier"),
]
