"""Shared fixtures for the XML publishing suites.

``xml_db`` is the small TPC-H-shaped instance the translator tests were
originally written against; the golden-document conformance battery
reuses it so the snapshots under ``tests/snapshots/xml`` stay in lock
step with the translator expectations.
"""

import pytest

from repro.api import Database
from repro.storage import DataType


@pytest.fixture
def xml_db() -> Database:
    db = Database()
    db.create_table(
        "part",
        [
            ("p_partkey", DataType.INTEGER),
            ("p_name", DataType.STRING),
            ("p_retailprice", DataType.FLOAT),
        ],
        [(i, f"part{i}", float(i * 10)) for i in range(1, 13)],
        primary_key=["p_partkey"],
    )
    db.create_table(
        "partsupp",
        [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
        [(100 + (i % 3), i) for i in range(1, 13)],
    )
    db.create_table(
        "supplier",
        [("s_suppkey", DataType.INTEGER), ("s_name", DataType.STRING)],
        [(100 + i, f"supp{i}") for i in range(3)],
        primary_key=["s_suppkey"],
    )
    return db
