"""Unit tests for the streaming publisher and the escape layer.

Covers :func:`repro.xmlpub.stream.stream_document` (chunk framing,
governor charging, cleanup), :class:`repro.xmlpub.stream.XmlChunkStream`
(lifecycle, close hooks, error capture), and the
:func:`repro.xmlpub.tagger.escape_text` /
:func:`~repro.xmlpub.tagger.sanitize_parsed_text` pair via a
parse-round-trip property over adversarial values.
"""

import random
import xml.etree.ElementTree as ET

import pytest

from repro.errors import (
    MemoryBudgetExceeded,
    QueryCancelled,
    ReproError,
    XmlPublishError,
)
from repro.execution.governor import Budget, Governor
from repro.fuzz.xmlpub import NASTY_VALUES
from repro.xmlpub import (
    PublishStats,
    XmlChunkStream,
    stream_document,
    sanitize_parsed_text,
)
from repro.xmlpub.stream import STREAM_CELL_BYTES
from repro.xmlpub.tagger import (
    ConstantSpaceTagger,
    KeyItem,
    RowsBranch,
    ScalarBranch,
    TaggerSpec,
    escape_text,
)

SPEC = TaggerSpec(
    root_tag="doc",
    group_tag="grp",
    key_count=1,
    key_items=(KeyItem("k", 0),),
    branches=(
        ScalarBranch(0, "val", 0),
        RowsBranch(1, "items", "item", (("f", 1),)),
    ),
)


def rows_for(n_groups: int, rows_per_group: int = 2) -> list[tuple]:
    rows = []
    for g in range(n_groups):
        rows.append((g, 0, f"value-{g}", None))
        for i in range(rows_per_group):
            rows.append((g, 1, None, f"row-{g}-{i}"))
    return rows


def materialized(rows) -> bytes:
    return ConstantSpaceTagger(SPEC).tag_to_string(rows).encode("utf-8")


class TestStreamDocument:
    @pytest.mark.parametrize("chunk_bytes", [1, 7, 64, 1 << 20])
    def test_chunking_never_changes_bytes(self, chunk_bytes):
        rows = rows_for(5)
        chunks = list(stream_document(rows, SPEC, chunk_bytes=chunk_bytes))
        assert b"".join(chunks) == materialized(rows)
        assert all(chunks)

    def test_chunk_bytes_bounds_every_chunk(self):
        rows = rows_for(20)
        chunks = list(stream_document(rows, SPEC, chunk_bytes=64))
        # A chunk may overshoot by at most one tagger fragment, which for
        # this spec is far below the chunk size itself.
        assert max(len(c) for c in chunks) < 2 * 64
        assert len(chunks) > 1

    def test_rejects_nonpositive_chunk_size(self):
        with pytest.raises(XmlPublishError):
            next(stream_document([], SPEC, chunk_bytes=0))

    def test_stats_accounting(self):
        rows = rows_for(4)
        stats = PublishStats()
        chunks = list(
            stream_document(rows, SPEC, chunk_bytes=32, stats=stats)
        )
        assert stats.rows_in == len(rows)
        assert stats.chunks == len(chunks)
        assert stats.bytes_emitted == sum(len(c) for c in chunks)
        assert 32 <= stats.peak_buffer_bytes < 32 + 64
        assert set(stats.snapshot()) == {
            "rows_in", "chunks", "bytes_emitted", "peak_buffer_bytes",
        }

    def test_closes_row_source_on_abandon(self):
        closed = []

        def source():
            try:
                for row in rows_for(50):
                    yield row
            finally:
                closed.append(True)

        gen = stream_document(source(), SPEC, chunk_bytes=8)
        next(gen)
        gen.close()
        assert closed == [True]


class TestGovernorIntegration:
    def test_emitted_bytes_charged(self):
        rows = rows_for(6)
        governor = Governor(Budget())
        total = sum(
            len(c)
            for c in stream_document(
                rows, SPEC, chunk_bytes=16, governor=governor
            )
        )
        assert governor.emitted_bytes == total == len(materialized(rows))

    def test_buffer_held_against_memory_budget(self):
        rows = rows_for(50)
        doc_len = len(materialized(rows))
        cells_needed = doc_len // STREAM_CELL_BYTES
        assert cells_needed > 4  # the document genuinely exceeds the cap
        governor = Governor(Budget(memory_cells=4))
        with pytest.raises(MemoryBudgetExceeded):
            # chunk_bytes larger than the document: the whole document
            # would have to sit in the pending buffer.
            list(
                stream_document(
                    rows, SPEC, chunk_bytes=1 << 20, governor=governor
                )
            )
        assert governor.cells_in_use == 0  # released on the error path

    def test_small_chunks_fit_tight_budget(self):
        rows = rows_for(50)
        governor = Governor(Budget(memory_cells=4))
        chunks = list(
            stream_document(rows, SPEC, chunk_bytes=64, governor=governor)
        )
        assert b"".join(chunks) == materialized(rows)
        assert governor.cells_in_use == 0
        assert 0 < governor.peak_cells <= 4

    def test_cancel_stops_within_one_chunk(self):
        governor = Governor(Budget())
        gen = stream_document(
            rows_for(100), SPEC, chunk_bytes=32, governor=governor
        )
        next(gen)
        governor.cancel()
        with pytest.raises(QueryCancelled):
            for _ in gen:
                pass


class TestXmlChunkStream:
    def make(self, rows, **kwargs) -> XmlChunkStream:
        return XmlChunkStream(rows, SPEC, **kwargs)

    def test_read_all_matches_materialized(self):
        rows = rows_for(3)
        stream = self.make(rows, chunk_bytes=16)
        assert stream.read_all() == materialized(rows)
        assert stream.exhausted and stream.closed and stream.error is None

    def test_close_hooks_fire_exactly_once(self):
        fired = []
        stream = self.make(rows_for(3))
        stream.on_close(lambda s, err: fired.append(err))
        stream.read_all()
        stream.close()
        stream.close()
        assert fired == [None]

    def test_hook_after_finish_fires_immediately(self):
        stream = self.make(rows_for(1))
        stream.read_all()
        fired = []
        stream.on_close(lambda s, err: fired.append(err))
        assert fired == [None]

    def test_next_after_close_raises_stopiteration(self):
        stream = self.make(rows_for(10), chunk_bytes=8)
        next(stream)
        stream.close()
        with pytest.raises(StopIteration):
            next(stream)
        assert not stream.exhausted  # abandoned, not drained

    def test_error_captured_and_passed_to_hooks(self):
        def broken():
            yield from rows_for(2)
            raise ReproError("row source failed")

        stream = self.make(broken(), chunk_bytes=8)
        fired = []
        stream.on_close(lambda s, err: fired.append(err))
        with pytest.raises(ReproError):
            stream.read_all()
        assert isinstance(stream.error, ReproError)
        assert fired == [stream.error]

    def test_context_manager_closes(self):
        with self.make(rows_for(10), chunk_bytes=8) as stream:
            next(stream)
        assert stream.closed


NASTY_ALPHABET = "a&<>\"']\r\n\t\x00\x01\x1f\x7fé中\U0001f600 ]>"


class TestEscapeText:
    @pytest.mark.parametrize("value", NASTY_VALUES, ids=repr)
    def test_nasty_values_parse_and_round_trip(self, value):
        document = f"<t>{escape_text(value)}</t>"
        parsed = ET.fromstring(document)
        assert (parsed.text or "") == sanitize_parsed_text(value)

    def test_random_strings_parse_and_round_trip(self):
        rng = random.Random(20260808)
        for _ in range(300):
            value = "".join(
                rng.choice(NASTY_ALPHABET)
                for _ in range(rng.randrange(0, 24))
            )
            document = f"<t>{escape_text(value)}</t>"
            parsed = ET.fromstring(document)
            assert (parsed.text or "") == sanitize_parsed_text(value)

    def test_cdata_close_cannot_appear_literally(self):
        assert "]]>" not in escape_text("a]]>b")

    def test_carriage_return_survives_parsing(self):
        # A literal \r would be normalized to \n by any conforming parser.
        escaped = escape_text("a\rb")
        assert escaped == "a&#13;b"
        assert ET.fromstring(f"<t>{escaped}</t>").text == "a\rb"

    def test_illegal_controls_become_replacement_char(self):
        assert escape_text("a\x00b\x01c") == "a�b�c"
        # Legal whitespace controls pass through.
        assert escape_text("a\tb\nc") == "a\tb\nc"

    def test_non_string_scalars(self):
        assert escape_text(None) == "NULL"
        assert escape_text(True) == "TRUE"
        assert escape_text(False) == "FALSE"
        assert escape_text(12) == "12"
        assert escape_text(2.5) == "2.5"
        assert escape_text(55.0) == "55"  # integral floats print as ints
