"""Unit tests for the constant-space tagger."""

import pytest

from repro.errors import XmlPublishError
from repro.xmlpub.tagger import (
    ConstantSpaceTagger,
    KeyItem,
    RowsBranch,
    ScalarBranch,
    TaggerSpec,
    escape_text,
)


def q1_spec() -> TaggerSpec:
    """Key + one rows branch (with container) + one scalar branch."""
    return TaggerSpec(
        root_tag="result",
        group_tag="ret",
        key_count=1,
        key_items=(KeyItem("s_suppkey", 0),),
        branches=(
            RowsBranch(0, "parts", "part", (("p_name", 0), ("p_price", 1))),
            ScalarBranch(1, "avgprice", 2),
        ),
    )


# rows: [key, branch, payload0, payload1, payload2]
Q1_ROWS = [
    (100, 0, "bolt", 10.0, None),
    (100, 0, "nut", 20.0, None),
    (100, 1, None, None, 15.0),
    (200, 0, "washer", 30.0, None),
    (200, 1, None, None, 30.0),
]


class TestTagging:
    def test_document_structure(self):
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(Q1_ROWS)
        assert xml.startswith("<result>")
        assert xml.endswith("</result>")
        assert xml.count("<ret>") == 2
        assert xml.count("</ret>") == 2
        assert xml.count("<part>") == 3

    def test_key_items_rendered_once_per_group(self):
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(Q1_ROWS)
        assert xml.count("<s_suppkey>100</s_suppkey>") == 1
        assert xml.count("<s_suppkey>200</s_suppkey>") == 1

    def test_container_wraps_rows(self):
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(Q1_ROWS)
        first = xml[xml.index("<ret>") : xml.index("</ret>")]
        assert "<parts><part>" in first
        assert first.count("</parts>") == 1

    def test_scalar_branch(self):
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(Q1_ROWS)
        assert "<avgprice>15</avgprice>" in xml
        assert "<avgprice>30</avgprice>" in xml

    def test_scalar_closes_open_container(self):
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(Q1_ROWS)
        # </parts> must appear before <avgprice>
        assert xml.index("</parts>") < xml.index("<avgprice>")

    def test_empty_stream(self):
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string([])
        assert xml == "<result></result>"

    def test_branchless_group_boundary(self):
        rows = [(1, 1, None, None, 5.0), (2, 1, None, None, 6.0)]
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(rows)
        assert xml.count("<ret>") == 2

    def test_unknown_branch_rejected(self):
        with pytest.raises(XmlPublishError):
            ConstantSpaceTagger(q1_spec()).tag_to_string([(1, 99, None, None, None)])

    def test_null_key_is_a_group(self):
        rows = [(None, 1, None, None, 1.0)]
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(rows)
        assert "<s_suppkey>NULL</s_suppkey>" in xml

    def test_streaming_chunks(self):
        chunks = list(ConstantSpaceTagger(q1_spec()).tag(Q1_ROWS))
        assert chunks[0] == "<result>"
        assert chunks[-1] == "</result>"

    def test_balanced_tags(self):
        import re

        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(Q1_ROWS)
        stack = []
        for match in re.finditer(r"<(/?)([a-zA-Z_][\w.-]*)>", xml):
            closing, tag = match.groups()
            if closing:
                assert stack and stack[-1] == tag, f"unbalanced </{tag}>"
                stack.pop()
            else:
                stack.append(tag)
        assert stack == []


class TestEscaping:
    def test_special_characters(self):
        assert escape_text("a<b&c>d") == "a&lt;b&amp;c&gt;d"

    def test_null(self):
        assert escape_text(None) == "NULL"

    def test_escaped_in_document(self):
        rows = [(1, 0, "<&>", 1.0, None)]
        xml = ConstantSpaceTagger(q1_spec()).tag_to_string(rows)
        assert "<p_name>&lt;&amp;&gt;</p_name>" in xml


class TestSpecValidation:
    def test_duplicate_branch_ids_rejected(self):
        with pytest.raises(XmlPublishError):
            TaggerSpec(
                root_tag="r",
                group_tag="g",
                key_count=1,
                key_items=(),
                branches=(
                    ScalarBranch(0, "a", 0),
                    ScalarBranch(0, "b", 1),
                ),
            )

    def test_branch_column_position(self):
        assert q1_spec().branch_column == 1

    def test_indented_output_parses(self):
        tagger = ConstantSpaceTagger(q1_spec(), indent=True)
        text = tagger.tag_to_string(Q1_ROWS)
        assert "<result>" in text and "\n" in text
