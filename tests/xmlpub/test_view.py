"""Unit tests for XML view definitions (the Figure 1 representation)."""

import pytest

from repro.errors import XmlPublishError
from repro.xmlpub.view import (
    XmlChildEdge,
    XmlField,
    XmlViewNode,
    tpch_supplier_view,
)


class TestXmlField:
    def test_tag_defaults_to_column(self):
        assert XmlField("p_name").tag == "p_name"

    def test_explicit_xml_name(self):
        assert XmlField("p_name", "name").tag == "name"


class TestXmlViewNode:
    def test_requires_key(self):
        with pytest.raises(XmlPublishError):
            XmlViewNode("t", "select 1 from x", key=())

    def test_duplicate_tags_rejected(self):
        with pytest.raises(XmlPublishError):
            XmlViewNode(
                "t",
                "select a from x",
                key=("a",),
                fields=(XmlField("a"), XmlField("b", "a")),
            )

    def test_field_lookup(self):
        node = XmlViewNode(
            "t", "select a from x", key=("a",), fields=(XmlField("a", "alpha"),)
        )
        assert node.field("alpha").column == "a"
        assert node.field("a").column == "a"
        assert node.has_field("alpha")
        with pytest.raises(XmlPublishError):
            node.field("missing")

    def test_child_lookup(self):
        view = tpch_supplier_view()
        edge = view.node.child("part")
        assert edge.node.tag == "part"
        assert view.node.has_child("part")
        with pytest.raises(XmlPublishError):
            view.node.child("widget")


class TestXmlChildEdge:
    def test_correlation_arity_checked(self):
        child = XmlViewNode("c", "select a from x", key=("a",))
        with pytest.raises(XmlPublishError):
            XmlChildEdge(child, ("a", "b"), ("a",))


class TestFigure1View:
    def test_structure(self):
        view = tpch_supplier_view()
        assert view.root_tag == "suppliers"
        assert view.node.tag == "supplier"
        assert view.node.key == ("s_suppkey",)
        edge = view.node.children[0]
        assert edge.parent_columns == ("s_suppkey",)
        assert edge.child_columns == ("ps_suppkey",)

    def test_resolve_path(self):
        view = tpch_supplier_view()
        assert view.resolve_path(()).tag == "supplier"
        assert view.resolve_path(("part",)).tag == "part"

    def test_part_query_joins_partsupp_and_part(self):
        view = tpch_supplier_view()
        query = view.node.children[0].node.query
        assert "partsupp" in query and "part" in query
