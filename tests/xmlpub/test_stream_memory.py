"""Peak-memory regression battery for streaming publishing.

A ~100k-row Figure-8-style view (parent groups, correlated child rows,
a per-group aggregate) is published under a tight cell budget with the
external-merge-sort partition strategy. The claims under test:

* **Flatness** — growing the document 10x leaves the traced allocation
  peak essentially unchanged: memory is bounded by the *budget*, never
  by the data. (Planner statistics are warmed outside the measurement —
  the catalog's one-time per-table scan is O(rows) by design and cached
  for the life of the database.)
* **Bounded buffering** — the governor's ``peak_cells`` never exceeds
  the configured budget, and a cap that genuinely cannot hold the
  pending chunk buffer fails with the typed
  :class:`~repro.errors.MemoryBudgetExceeded`, not an OOM.
* **Hygiene** — mid-stream cancellation or abandonment releases every
  governor cell and closes every spill file
  (:func:`repro.storage.spill.live_spill_files`), on both engines.

The sorted-outer-union formulation is covered too: its materializing
ORDER BY now external-merge-sorts under the budget (DESIGN.md §14.5),
so *both* publishing formulations stream constant-memory end to end.
"""

import tracemalloc

import pytest

from repro.api import Database
from repro.errors import MemoryBudgetExceeded, QueryCancelled
from repro.optimizer.planner import ENGINES, PlannerOptions
from repro.storage import DataType
from repro.storage.spill import live_spill_files
from repro.xmlpub.view import XmlChildEdge, XmlField, XmlView, XmlViewNode

N_GROUPS = 250
BUDGET_CELLS = 20_000
SORT_SPILL = PlannerOptions(gapply_partitioning="sort")

FIG8_QUERY = (
    "for $g in /doc(d)/groups/grp return <ret> $g/g_key, "
    "<items> for $i in $g/item return <item> $i/i_name, $i/i_price "
    "</item> </items>, avg($g/item/i_price) </ret>"
)


def fig8_view() -> XmlView:
    return XmlView(
        root_tag="groups",
        node=XmlViewNode(
            tag="grp",
            query="select g_key, g_name from grp",
            key=("g_key",),
            fields=(XmlField("g_key"), XmlField("g_name")),
            children=(
                XmlChildEdge(
                    node=XmlViewNode(
                        tag="item",
                        query=(
                            "select i_gkey, i_id, i_name, i_price from item"
                        ),
                        key=("i_id",),
                        fields=(XmlField("i_name"), XmlField("i_price")),
                    ),
                    parent_columns=("g_key",),
                    child_columns=("i_gkey",),
                ),
            ),
        ),
    )


def fig8_db(n_rows: int) -> Database:
    db = Database()
    db.create_table(
        "grp",
        [("g_key", DataType.INTEGER), ("g_name", DataType.STRING)],
        [(g, f"group{g}") for g in range(N_GROUPS)],
        primary_key=["g_key"],
    )
    db.create_table(
        "item",
        [
            ("i_id", DataType.INTEGER),
            ("i_gkey", DataType.INTEGER),
            ("i_name", DataType.STRING),
            ("i_price", DataType.FLOAT),
        ],
        [
            (i, i % N_GROUPS, f"item-{i}", (i % 400) * 0.25)
            for i in range(n_rows)
        ],
        primary_key=["i_id"],
    )
    # Warm the catalog's per-table statistics now: computing them is a
    # deliberate O(rows) one-time scan, cached afterwards, and must not
    # pollute the streaming measurement.
    db.catalog.statistics("grp")
    db.catalog.statistics("item")
    return db


def publish_stream(db: Database, **kwargs):
    kwargs.setdefault("memory_budget", BUDGET_CELLS)
    kwargs.setdefault("timeout", 300)
    kwargs.setdefault("planner_options", SORT_SPILL)
    return db.publish(fig8_view(), FIG8_QUERY, "gapply", **kwargs)


def traced_publish_peak(db: Database) -> tuple[int, int, int]:
    """(traced alloc peak, document bytes, governor peak cells)."""
    tracemalloc.start()
    try:
        stream = publish_stream(db)
        doc_bytes = sum(len(chunk) for chunk in stream)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak, doc_bytes, stream.governor.peak_cells


def test_peak_memory_flat_as_document_grows_10x():
    # Absorb one-time allocations (module/bytecode caches, spill setup)
    # before either measured run.
    traced_publish_peak(fig8_db(1_000))

    small_peak, small_doc, small_cells = traced_publish_peak(fig8_db(10_000))
    big_peak, big_doc, big_cells = traced_publish_peak(fig8_db(100_000))

    assert big_doc > 8 * small_doc  # the document really grew ~10x
    assert small_cells <= BUDGET_CELLS and big_cells <= BUDGET_CELLS
    # Flat: a materializing regression would show up as ~document-sized
    # growth (the 100k document is several MB); budget-bounded streaming
    # stays within noise of the small run.
    assert big_peak < 1.5 * small_peak + 512 * 1024, (
        f"peak grew {small_peak}B -> {big_peak}B for a 10x document; "
        "streaming is no longer constant-memory"
    )
    # And in absolute terms the pipeline never holds a document's worth.
    assert big_peak < big_doc / 4


def test_bounded_buffering_and_clean_finish():
    db = fig8_db(20_000)
    stream = publish_stream(db, chunk_bytes=4096)
    doc = stream.read_all()
    assert doc.startswith(b"<groups_result>")
    assert doc.endswith(b"</groups_result>")
    governor = stream.governor
    assert 0 < governor.peak_cells <= BUDGET_CELLS
    assert governor.cells_in_use == 0
    assert governor.emitted_bytes == len(doc)
    # The pending buffer never held much more than one chunk.
    assert stream.stats.peak_buffer_bytes < 4096 + 512
    assert live_spill_files() == frozenset()


def test_genuinely_too_small_budget_raises_typed_error():
    db = fig8_db(20_000)
    # A chunk buffer bigger than the whole budget can never fit: the
    # publisher must fail with the typed budget error before buffering
    # a document's worth of text.
    stream = publish_stream(db, memory_budget=500, chunk_bytes=1 << 20)
    with pytest.raises(MemoryBudgetExceeded):
        stream.read_all()
    assert isinstance(stream.error, MemoryBudgetExceeded)
    assert stream.governor.cells_in_use == 0
    assert live_spill_files() == frozenset()


def test_union_formulation_streams_under_budget():
    # The sorted outer union needs a materializing ORDER BY over the
    # whole outer-union relation; that sort now spills to disk under the
    # budget (DESIGN §14.5), so the union formulation publishes the full
    # document constant-memory instead of raising MemoryBudgetExceeded.
    db = fig8_db(20_000)
    stream = db.publish(
        fig8_view(),
        FIG8_QUERY,
        "union",
        memory_budget=BUDGET_CELLS,
        timeout=300,
        planner_options=SORT_SPILL,
    )
    doc = stream.read_all()
    assert doc.startswith(b"<groups_result>")
    assert doc.endswith(b"</groups_result>")
    assert 0 < stream.governor.peak_cells <= BUDGET_CELLS
    assert stream.governor.cells_in_use == 0
    assert live_spill_files() == frozenset()


@pytest.mark.parametrize("partitioning", ["sort", "hash"])
def test_shared_budget_spills_instead_of_failing(partitioning):
    # The partition phase's spill threshold is the *full* budget, but the
    # budget is shared: the publisher's chunk buffer holds a cell at the
    # same time. With a row width that divides the budget exactly, the
    # partition buffer used to fill to precisely the cap and that one
    # concurrent cell tipped the next charge over — a typed failure on a
    # budget that was not genuinely too small. The partition paths must
    # spill what they hold and retry instead of giving up.
    db = Database()
    db.create_table(
        "grp",
        [("g_key", DataType.INTEGER), ("g_name", DataType.STRING)],
        [(g, f"g{g}") for g in range(50)],
        primary_key=["g_key"],
    )
    db.create_table(
        "item",
        [
            ("i_id", DataType.INTEGER),
            ("i_gkey", DataType.INTEGER),
            ("i_name", DataType.STRING),
        ],
        [(i, i % 50, f"item-{i}") for i in range(12_000)],
        primary_key=["i_id"],
    )
    db.catalog.statistics("grp")
    db.catalog.statistics("item")
    view = XmlView(
        root_tag="groups",
        node=XmlViewNode(
            tag="grp",
            query="select g_key, g_name from grp",
            key=("g_key",),
            fields=(XmlField("g_key"),),
            children=(
                XmlChildEdge(
                    node=XmlViewNode(
                        tag="item",
                        query="select i_gkey, i_id, i_name from item",
                        key=("i_id",),
                        fields=(XmlField("i_name"),),
                    ),
                    parent_columns=("g_key",),
                    child_columns=("i_gkey",),
                ),
            ),
        ),
    )
    query = (
        "for $g in /doc(d)/groups/grp return <ret> $g/g_key, "
        "<items> for $i in $g/item return <item> $i/i_name </item> "
        "</items> </ret>"
    )
    # Joined outer width is 5 (2 grp + 3 item columns), which divides the
    # budget exactly — the failing alignment.
    stream = db.publish(
        view,
        query,
        "gapply",
        memory_budget=BUDGET_CELLS,
        timeout=300,
        planner_options=PlannerOptions(gapply_partitioning=partitioning),
    )
    doc = stream.read_all()
    assert doc.startswith(b"<groups_result>")
    assert stream.governor.peak_cells <= BUDGET_CELLS
    assert stream.governor.cells_in_use == 0
    assert live_spill_files() == frozenset()


@pytest.mark.parametrize("engine", ENGINES)
def test_midstream_cancel_releases_spill_files_and_cells(engine):
    db = fig8_db(20_000)
    stream = publish_stream(db, engine=engine)
    iterator = iter(stream)
    next(iterator)
    next(iterator)
    # The budget forces the partition phase onto disk; the point of the
    # test is that cancellation reclaims those files.
    assert live_spill_files() != frozenset()
    stream.governor.cancel()
    with pytest.raises(QueryCancelled):
        for _chunk in iterator:
            pass
    assert isinstance(stream.error, QueryCancelled)
    assert stream.closed
    assert live_spill_files() == frozenset()
    assert stream.governor.cells_in_use == 0


@pytest.mark.parametrize("engine", ENGINES)
def test_abandoning_stream_releases_spill_files_and_cells(engine):
    db = fig8_db(20_000)
    with publish_stream(db, engine=engine) as stream:
        next(iter(stream))
        assert live_spill_files() != frozenset()
    assert stream.closed and stream.error is None
    assert live_spill_files() == frozenset()
    assert stream.governor.cells_in_use == 0
