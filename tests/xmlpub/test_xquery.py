"""Unit tests for the XQuery FLWR parser."""

import pytest

from repro.errors import XmlPublishError
from repro.xmlpub.xquery import (
    XqAggregate,
    XqArith,
    XqComparison,
    XqElement,
    XqFlwr,
    XqLiteral,
    XqPath,
    XqSome,
    parse_xquery,
)

Q1 = """
for $s in /doc(tpch.xml)/suppliers/supplier
return <ret>
    $s/s_suppkey,
    <parts> for $p in $s/part return <part> $p/p_name, $p/p_retailprice </part> </parts>,
    avg($s/part/p_retailprice)
</ret>
"""


class TestFlwrStructure:
    def test_q1_shape(self):
        flwr = parse_xquery(Q1)
        assert flwr.variable == "s"
        assert flwr.document_steps == ("suppliers", "supplier")
        assert flwr.where is None
        body = flwr.body
        assert isinstance(body, XqElement) and body.tag == "ret"
        assert len(body.items) == 3

    def test_key_item_is_path(self):
        body = parse_xquery(Q1).body
        assert body.items[0] == XqPath("s", ("s_suppkey",))

    def test_nested_flwr(self):
        body = parse_xquery(Q1).body
        wrapper = body.items[1]
        assert isinstance(wrapper, XqElement) and wrapper.tag == "parts"
        nested = wrapper.items[0]
        assert isinstance(nested, XqFlwr)
        assert nested.variable == "p"
        assert nested.path == XqPath("s", ("part",))

    def test_aggregate_item(self):
        body = parse_xquery(Q1).body
        aggregate = body.items[2]
        assert isinstance(aggregate, XqAggregate)
        assert aggregate.function == "avg"
        assert aggregate.path.steps == ("part", "p_retailprice")


class TestPredicates:
    def test_aggregate_with_path_predicate(self):
        flwr = parse_xquery(
            "for $s in /doc(t)/a/b return <r> "
            "count($s/part[p_retailprice >= avg($s/part/p_retailprice)]) </r>"
        )
        aggregate = flwr.body.items[0]
        assert isinstance(aggregate, XqAggregate)
        predicate = aggregate.predicate
        assert isinstance(predicate, XqComparison) and predicate.op == ">="
        assert isinstance(predicate.right, XqAggregate)

    def test_path_predicate_in_nested_for(self):
        flwr = parse_xquery(
            "for $s in /doc(t)/a/b return <r> <hi> "
            "for $p in $s/part[p_retailprice >= 0.9 * max($s/part/p_retailprice)] "
            "return <part> $p/p_name </part> </hi> </r>"
        )
        nested = flwr.body.items[0].items[0]
        predicate = nested.path.predicate
        assert predicate is not None
        assert isinstance(predicate.right, XqArith)
        assert predicate.right.op == "*"

    def test_at_most_one_predicate(self):
        with pytest.raises(XmlPublishError):
            parse_xquery(
                "for $s in /doc(t)/a/b return <r> "
                "count($s/part[x > 1]/sub[y > 2]) </r>"
            )


class TestWhereClauses:
    def test_some_satisfies(self):
        flwr = parse_xquery(
            "for $s in /doc(t)/a/b "
            "where some $p in $s/part satisfies $p/p_retailprice > 1000 "
            "return $s"
        )
        assert isinstance(flwr.where, XqSome)
        assert flwr.where.variable == "p"
        assert flwr.where.satisfies.op == ">"
        assert isinstance(flwr.body, XqPath) and flwr.body.steps == ()

    def test_aggregate_condition(self):
        flwr = parse_xquery(
            "for $s in /doc(t)/a/b where avg($s/part/p) > 10 return $s"
        )
        assert isinstance(flwr.where, XqComparison)
        assert isinstance(flwr.where.left, XqAggregate)
        assert flwr.where.right == XqLiteral(10)


class TestLexicalDetails:
    def test_string_literals(self):
        flwr = parse_xquery(
            'for $s in /doc(t)/a/b where some $p in $s/c satisfies $p/x = "hi" return $s'
        )
        assert flwr.where.satisfies.right == XqLiteral("hi")

    def test_float_literals(self):
        flwr = parse_xquery(
            "for $s in /doc(t)/a/b where avg($s/c/x) > 10.5 return $s"
        )
        assert flwr.where.right == XqLiteral(10.5)

    def test_mismatched_close_tag(self):
        with pytest.raises(XmlPublishError):
            parse_xquery("for $s in /doc(t)/a/b return <r> $s/x </oops>")

    def test_unclosed_element(self):
        with pytest.raises(XmlPublishError):
            parse_xquery("for $s in /doc(t)/a/b return <r> $s/x")

    def test_trailing_garbage(self):
        with pytest.raises(XmlPublishError):
            parse_xquery("for $s in /doc(t)/a/b return $s extra")

    def test_missing_variable(self):
        with pytest.raises(XmlPublishError):
            parse_xquery("for x in /doc(t)/a/b return $x")

    def test_unknown_aggregate(self):
        with pytest.raises(XmlPublishError):
            XqAggregate("median", XqPath("s", ("x",)))

    def test_unknown_comparison(self):
        with pytest.raises(XmlPublishError):
            XqComparison("~~", XqLiteral(1), XqLiteral(2))
