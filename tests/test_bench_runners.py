"""Smoke tests for the benchmark runner modules at tiny scale.

These execute the same code paths as ``python -m repro.bench.fig8`` /
``table1`` / ``client_sim`` but on minimal data with single repetitions,
verifying the harnesses end to end (not their absolute numbers).
"""

import pytest

from repro.bench.fig8 import format_rows, run_figure8
from repro.bench.table1 import format_summaries, run_sweep
from repro.storage import Catalog
from repro.workloads.rule_queries import TABLE1_SWEEPS, sweep_by_rule
from repro.workloads.tpch import TpchConfig, load_tpch


@pytest.fixture(scope="module")
def tiny_catalog() -> Catalog:
    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=0.01))
    return catalog


class TestFigure8Runner:
    def test_produces_all_queries(self):
        rows = run_figure8(scale=0.01, repetitions=1)
        assert [row.query for row in rows] == ["Q1", "Q2", "Q3", "Q4"]
        for row in rows:
            assert row.baseline.rows == row.gapply_hash.rows == row.gapply_sort.rows

    def test_formatting(self):
        rows = run_figure8(scale=0.01, repetitions=1)
        text = format_rows(rows)
        assert "Figure 8" in text
        for name in ("Q1", "Q2", "Q3", "Q4"):
            assert name in text


class TestTable1Runner:
    def test_selection_sweep(self, tiny_catalog):
        summary = run_sweep(
            tiny_catalog, sweep_by_rule("selection_before_gapply"), repetitions=1
        )
        assert summary.effects
        assert all(effect.fired for effect in summary.effects)
        assert summary.maximum_benefit >= summary.average_benefit * 0.99

    def test_invariant_sweep_fires(self, tiny_catalog):
        summary = run_sweep(
            tiny_catalog, sweep_by_rule("invariant_grouping"), repetitions=1
        )
        assert any(effect.fired for effect in summary.effects)

    def test_formatting_includes_paper_columns(self, tiny_catalog):
        summary = run_sweep(
            tiny_catalog, sweep_by_rule("gapply_to_groupby"), repetitions=1
        )
        text = format_summaries([summary])
        assert "1.30 / 1.19 / 1.19" in text

    def test_every_sweep_runs(self, tiny_catalog):
        for sweep in TABLE1_SWEEPS:
            rule = sweep.rule_name
            parameter, sql = sweep.instances()[0]
            # one instance per sweep keeps this a smoke test
            from repro.bench.harness import measure_rule_effect
            from repro.optimizer.rules import rule_by_name

            effect = measure_rule_effect(
                tiny_catalog, sql, rule_by_name(rule), parameter, repetitions=1
            )
            assert effect.without_rule.rows == effect.with_rule.rows
