"""Property-based tests for the constant-space tagger.

Invariants: well-formed (balanced) documents for arbitrary clustered row
streams; group count equals distinct key count; text is always escaped.
"""

import re

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.types import grouping_key
from repro.xmlpub.tagger import (
    ConstantSpaceTagger,
    KeyItem,
    RowsBranch,
    ScalarBranch,
    TaggerSpec,
)

SPEC = TaggerSpec(
    root_tag="doc",
    group_tag="grp",
    key_count=1,
    key_items=(KeyItem("id", 0),),
    branches=(
        RowsBranch(0, "items", "item", (("a", 0), ("b", 1))),
        ScalarBranch(1, "total", 0),
        RowsBranch(2, None, "bare", (("c", 1),)),
    ),
)

payload = st.one_of(
    st.none(),
    st.integers(min_value=-9, max_value=9),
    st.text(alphabet="x<&>'\"", max_size=4),
)


@st.composite
def clustered_rows(draw):
    """Rows clustered by key with branch ids ascending within each group."""
    rows = []
    key_count = draw(st.integers(min_value=0, max_value=6))
    for key in range(key_count):
        branches = sorted(
            draw(st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=5))
        )
        for branch in branches:
            rows.append((key, branch, draw(payload), draw(payload)))
    return rows


def tags_balanced(xml: str) -> bool:
    stack = []
    for match in re.finditer(r"<(/?)([a-zA-Z_][\w.-]*)>", xml):
        closing, tag = match.groups()
        if closing:
            if not stack or stack[-1] != tag:
                return False
            stack.pop()
        else:
            stack.append(tag)
    return not stack


class TestTaggerInvariants:
    @given(rows=clustered_rows())
    @settings(max_examples=80, deadline=None)
    def test_document_is_balanced(self, rows):
        xml = ConstantSpaceTagger(SPEC).tag_to_string(rows)
        assert tags_balanced(xml)

    @given(rows=clustered_rows())
    @settings(max_examples=80, deadline=None)
    def test_group_count_matches_distinct_keys(self, rows):
        xml = ConstantSpaceTagger(SPEC).tag_to_string(rows)
        distinct = len({grouping_key((row[0],)) for row in rows})
        assert xml.count("<grp>") == distinct
        assert xml.count("</grp>") == distinct

    @given(rows=clustered_rows())
    @settings(max_examples=80, deadline=None)
    def test_no_raw_angle_brackets_in_text(self, rows):
        xml = ConstantSpaceTagger(SPEC).tag_to_string(rows)
        # strip all tags; remaining text must not contain raw < or >
        text = re.sub(r"<[^>]*>", "\x00", xml)
        assert "<" not in text and ">" not in text

    @given(rows=clustered_rows())
    @settings(max_examples=40, deadline=None)
    def test_row_elements_preserved(self, rows):
        xml = ConstantSpaceTagger(SPEC).tag_to_string(rows)
        expected_items = sum(1 for row in rows if row[1] == 0)
        assert xml.count("<item>") == expected_items

    @given(rows=clustered_rows())
    @settings(max_examples=40, deadline=None)
    def test_streaming_equals_batch(self, rows):
        tagger = ConstantSpaceTagger(SPEC)
        assert "".join(tagger.tag(rows)) == tagger.tag_to_string(rows)
