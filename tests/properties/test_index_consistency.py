"""Property-based tests: index access paths agree with naive scans.

Indexes are an optimization, never a semantics change: for random tables,
every lookup/range result must equal the corresponding full-scan filter,
and plans lowered with and without index support must produce identical
results.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import col, eq, lit
from repro.algebra.operators import Join, Select, TableScan
from repro.execution.base import run_plan
from repro.optimizer.planner import PlannerOptions, plan_physical
from repro.storage import Catalog, DataType, table_from_rows
from repro.storage.types import grouping_key

values = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))
rows = st.lists(st.tuples(values, values), max_size=40)


def build_table(data):
    table = table_from_rows(
        "t", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], data
    )
    table.create_index(["k"])
    table.create_index(["v"])
    return table


class TestIndexAgainstScan:
    @given(data=rows, probe=st.integers(min_value=-6, max_value=6))
    @settings(max_examples=60, deadline=None)
    def test_lookup_equals_filter(self, data, probe):
        table = build_table(data)
        index = table.index_on(["k"])
        looked_up = sorted(index.lookup((probe,)), key=repr)
        scanned = sorted(
            (row for row in data if row[0] == probe), key=repr
        )
        assert looked_up == scanned

    @given(
        data=rows,
        low=st.integers(min_value=-6, max_value=6),
        high=st.integers(min_value=-6, max_value=6),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_equals_filter(self, data, low, high):
        table = build_table(data)
        index = table.index_on(["v"])
        ranged = sorted(index.range_scan(low, high), key=repr)
        scanned = sorted(
            (
                row
                for row in data
                if row[1] is not None and low <= row[1] <= high
            ),
            key=repr,
        )
        assert ranged == scanned

    @given(data=rows, probe=st.integers(min_value=-6, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_planned_seek_equals_planned_filter(self, data, probe):
        catalog = Catalog()
        catalog.register(build_table(data))
        node = Select(
            TableScan.of(catalog.table("t")), eq(col("k"), lit(probe))
        )
        with_index = run_plan(
            plan_physical(node, catalog, PlannerOptions(use_indexes=True))
        )
        without = run_plan(
            plan_physical(node, catalog, PlannerOptions(use_indexes=False))
        )
        assert sorted(with_index, key=repr) == sorted(without, key=repr)

    @given(data=rows, other=rows)
    @settings(max_examples=30, deadline=None)
    def test_index_join_equals_hash_join(self, data, other):
        catalog = Catalog()
        catalog.register(build_table(data))
        probe_table = table_from_rows(
            "probe", [("pk", DataType.INTEGER)], [(row[0],) for row in other[:5]]
        )
        catalog.register(probe_table)
        node = Join(
            TableScan.of(probe_table),
            TableScan.of(catalog.table("t")),
            eq(col("pk"), col("k")),
        )
        with_index = run_plan(
            plan_physical(node, catalog, PlannerOptions(use_indexes=True))
        )
        without = run_plan(
            plan_physical(node, catalog, PlannerOptions(use_indexes=False))
        )
        assert sorted(with_index, key=repr) == sorted(without, key=repr)

    @given(data=rows)
    @settings(max_examples=30, deadline=None)
    def test_index_survives_mutation(self, data):
        table = build_table(data)
        index = table.index_on(["k"])
        index.lookup((0,))  # force a build
        table.insert((0, 99))
        expected = [row for row in table.rows if grouping_key((row[0],)) == grouping_key((0,))]
        assert sorted(index.lookup((0,)), key=repr) == sorted(expected, key=repr)
