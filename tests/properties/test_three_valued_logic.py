"""Property-based tests: Kleene-logic laws of the expression evaluator."""

from hypothesis import given
from hypothesis import strategies as st

from repro.algebra.expressions import (
    And,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.storage.schema import Schema
from repro.storage.types import TruthValue, compare_values

tv = st.sampled_from([True, False, None])
EMPTY = Schema(())


def boolean(value):
    return Literal(value)


def evaluate(expression):
    return expression.compile(EMPTY)((), None)


class TestKleeneLaws:
    @given(a=tv, b=tv)
    def test_and_commutative(self, a, b):
        assert evaluate(And(boolean(a), boolean(b))) == evaluate(
            And(boolean(b), boolean(a))
        )

    @given(a=tv, b=tv)
    def test_or_commutative(self, a, b):
        assert evaluate(Or(boolean(a), boolean(b))) == evaluate(
            Or(boolean(b), boolean(a))
        )

    @given(a=tv, b=tv, c=tv)
    def test_and_associative(self, a, b, c):
        left = And(And(boolean(a), boolean(b)), boolean(c))
        right = And(boolean(a), And(boolean(b), boolean(c)))
        assert evaluate(left) == evaluate(right)

    @given(a=tv, b=tv, c=tv)
    def test_de_morgan(self, a, b, c):
        lhs = Not(And(boolean(a), boolean(b)))
        rhs = Or(Not(boolean(a)), Not(boolean(b)))
        assert evaluate(lhs) == evaluate(rhs)

    @given(a=tv)
    def test_double_negation(self, a):
        assert evaluate(Not(Not(boolean(a)))) == a

    @given(a=tv)
    def test_excluded_middle_fails_only_for_null(self, a):
        value = evaluate(Or(boolean(a), Not(boolean(a))))
        if a is None:
            assert value is None
        else:
            assert value is True

    @given(a=tv, b=tv)
    def test_matches_truthvalue_tables(self, a, b):
        expected = TruthValue.of(a).and_(TruthValue.of(b)).to_sql()
        assert evaluate(And(boolean(a), boolean(b))) == expected
        expected = TruthValue.of(a).or_(TruthValue.of(b)).to_sql()
        assert evaluate(Or(boolean(a), boolean(b))) == expected


numbers = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))


class TestComparisonLaws:
    @given(a=numbers, b=numbers)
    def test_null_never_compares(self, a, b):
        result = evaluate(
            Comparison(ComparisonOp.EQ, Literal(a), Literal(b))
        )
        if a is None or b is None:
            assert result is None
        else:
            assert result == (a == b)

    @given(a=numbers, b=numbers)
    def test_eq_ne_complementary_when_known(self, a, b):
        eq_result = evaluate(Comparison(ComparisonOp.EQ, Literal(a), Literal(b)))
        ne_result = evaluate(Comparison(ComparisonOp.NE, Literal(a), Literal(b)))
        if eq_result is None:
            assert ne_result is None
        else:
            assert eq_result != ne_result

    @given(a=numbers, b=numbers)
    def test_trichotomy_when_known(self, a, b):
        lt = evaluate(Comparison(ComparisonOp.LT, Literal(a), Literal(b)))
        eq = evaluate(Comparison(ComparisonOp.EQ, Literal(a), Literal(b)))
        gt = evaluate(Comparison(ComparisonOp.GT, Literal(a), Literal(b)))
        if None in (lt, eq, gt):
            assert lt is None and eq is None and gt is None
        else:
            assert [lt, eq, gt].count(True) == 1

    @given(a=numbers, b=numbers, c=numbers)
    def test_compare_values_transitive(self, a, b, c):
        ab = compare_values(a, b)
        bc = compare_values(b, c)
        ac = compare_values(a, c)
        if ab == -1 and bc == -1:
            assert ac == -1

    @given(a=numbers)
    def test_is_null_total(self, a):
        assert evaluate(IsNull(Literal(a))) == (a is None)
        assert evaluate(IsNull(Literal(a), negated=True)) == (a is not None)

    @given(a=numbers, items=st.lists(numbers, max_size=4))
    def test_in_list_matches_disjunction(self, a, items):
        in_result = evaluate(InList(Literal(a), tuple(Literal(i) for i in items)))
        if not items:
            disjunction = False if a is not None else None
        else:
            disjunction = evaluate(
                Or(*[Comparison(ComparisonOp.EQ, Literal(a), Literal(i)) for i in items])
            )
        if a is None:
            assert in_result is None
        else:
            assert in_result == disjunction
