"""Property-based tests: Kleene-logic laws of the expression evaluator,
plus end-to-end regressions for NULL semantics at the SQL boundary."""

from hypothesis import given
from hypothesis import strategies as st

from repro.api import Database
from repro.storage import DataType

from repro.algebra.expressions import (
    And,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.storage.schema import Schema
from repro.storage.types import TruthValue, compare_values

tv = st.sampled_from([True, False, None])
EMPTY = Schema(())


def boolean(value):
    return Literal(value)


def evaluate(expression):
    return expression.compile(EMPTY)((), None)


class TestKleeneLaws:
    @given(a=tv, b=tv)
    def test_and_commutative(self, a, b):
        assert evaluate(And(boolean(a), boolean(b))) == evaluate(
            And(boolean(b), boolean(a))
        )

    @given(a=tv, b=tv)
    def test_or_commutative(self, a, b):
        assert evaluate(Or(boolean(a), boolean(b))) == evaluate(
            Or(boolean(b), boolean(a))
        )

    @given(a=tv, b=tv, c=tv)
    def test_and_associative(self, a, b, c):
        left = And(And(boolean(a), boolean(b)), boolean(c))
        right = And(boolean(a), And(boolean(b), boolean(c)))
        assert evaluate(left) == evaluate(right)

    @given(a=tv, b=tv, c=tv)
    def test_de_morgan(self, a, b, c):
        lhs = Not(And(boolean(a), boolean(b)))
        rhs = Or(Not(boolean(a)), Not(boolean(b)))
        assert evaluate(lhs) == evaluate(rhs)

    @given(a=tv)
    def test_double_negation(self, a):
        assert evaluate(Not(Not(boolean(a)))) == a

    @given(a=tv)
    def test_excluded_middle_fails_only_for_null(self, a):
        value = evaluate(Or(boolean(a), Not(boolean(a))))
        if a is None:
            assert value is None
        else:
            assert value is True

    @given(a=tv, b=tv)
    def test_matches_truthvalue_tables(self, a, b):
        expected = TruthValue.of(a).and_(TruthValue.of(b)).to_sql()
        assert evaluate(And(boolean(a), boolean(b))) == expected
        expected = TruthValue.of(a).or_(TruthValue.of(b)).to_sql()
        assert evaluate(Or(boolean(a), boolean(b))) == expected


numbers = st.one_of(st.none(), st.integers(min_value=-5, max_value=5))


class TestComparisonLaws:
    @given(a=numbers, b=numbers)
    def test_null_never_compares(self, a, b):
        result = evaluate(
            Comparison(ComparisonOp.EQ, Literal(a), Literal(b))
        )
        if a is None or b is None:
            assert result is None
        else:
            assert result == (a == b)

    @given(a=numbers, b=numbers)
    def test_eq_ne_complementary_when_known(self, a, b):
        eq_result = evaluate(Comparison(ComparisonOp.EQ, Literal(a), Literal(b)))
        ne_result = evaluate(Comparison(ComparisonOp.NE, Literal(a), Literal(b)))
        if eq_result is None:
            assert ne_result is None
        else:
            assert eq_result != ne_result

    @given(a=numbers, b=numbers)
    def test_trichotomy_when_known(self, a, b):
        lt = evaluate(Comparison(ComparisonOp.LT, Literal(a), Literal(b)))
        eq = evaluate(Comparison(ComparisonOp.EQ, Literal(a), Literal(b)))
        gt = evaluate(Comparison(ComparisonOp.GT, Literal(a), Literal(b)))
        if None in (lt, eq, gt):
            assert lt is None and eq is None and gt is None
        else:
            assert [lt, eq, gt].count(True) == 1

    @given(a=numbers, b=numbers, c=numbers)
    def test_compare_values_transitive(self, a, b, c):
        ab = compare_values(a, b)
        bc = compare_values(b, c)
        ac = compare_values(a, c)
        if ab == -1 and bc == -1:
            assert ac == -1

    @given(a=numbers)
    def test_is_null_total(self, a):
        assert evaluate(IsNull(Literal(a))) == (a is None)
        assert evaluate(IsNull(Literal(a), negated=True)) == (a is not None)

    @given(a=numbers, items=st.lists(numbers, max_size=4))
    def test_in_list_matches_disjunction(self, a, items):
        in_result = evaluate(InList(Literal(a), tuple(Literal(i) for i in items)))
        if not items:
            disjunction = False if a is not None else None
        else:
            disjunction = evaluate(
                Or(*[Comparison(ComparisonOp.EQ, Literal(a), Literal(i)) for i in items])
            )
        if a is None:
            assert in_result is None
        else:
            assert in_result == disjunction


def _membership_db(values, members):
    """One probe column ``x`` plus a one-column set table ``s``."""
    db = Database()
    db.create_table(
        "probe", [("x", DataType.INTEGER)], [(v,) for v in values]
    )
    db.create_table(
        "s", [("m", DataType.INTEGER)], [(m,) for m in members]
    )
    return db


class TestInSubqueryThreeValuedLogic:
    """Regressions for ``[NOT] IN (subquery)`` at the SQL boundary.

    The NOT IN cases pin the fuzzer-found bug where the binder's
    NOT-EXISTS rewrite used plain equality, so a NULL in the subquery
    (or a NULL probe) failed to make the membership test UNKNOWN and
    rows survived that SQL filters out (corpus case
    ``fuzz-oracle-1ac6ab8cb7b7``).
    """

    def rows(self, db, predicate):
        return sorted(
            db.sql(f"select x from probe where {predicate}").rows,
            key=repr,
        )

    def test_not_in_filters_when_set_has_null(self):
        db = _membership_db(values=[1], members=[2, None])
        # 1 NOT IN (2, NULL) is UNKNOWN, not TRUE: the row must go.
        assert self.rows(db, "x not in (select m from s)") == []

    def test_not_in_null_probe_filtered_by_nonempty_set(self):
        db = _membership_db(values=[None], members=[2])
        assert self.rows(db, "x not in (select m from s)") == []

    def test_not_in_keeps_rows_against_empty_set(self):
        # x NOT IN {} is TRUE for every x, including NULL.
        db = _membership_db(values=[1, None], members=[])
        assert self.rows(db, "x not in (select m from s)") == [(1,), (None,)]

    def test_not_in_definite_nonmember_survives(self):
        db = _membership_db(values=[1], members=[2, 3])
        assert self.rows(db, "x not in (select m from s)") == [(1,)]

    def test_not_in_member_filtered_even_with_null_in_set(self):
        db = _membership_db(values=[2], members=[2, None])
        assert self.rows(db, "x not in (select m from s)") == []

    def test_in_unknown_is_not_true(self):
        # 1 IN (2, NULL) is UNKNOWN: filtered, same as FALSE here.
        db = _membership_db(values=[1, None], members=[2, None])
        assert self.rows(db, "x in (select m from s)") == []

    def test_in_match_survives_nulls_in_set(self):
        db = _membership_db(values=[2], members=[2, None])
        assert self.rows(db, "x in (select m from s)") == [(2,)]

    def test_not_in_complements_in_only_without_nulls(self):
        db = _membership_db(values=[1, 2], members=[2, 3])
        in_rows = self.rows(db, "x in (select m from s)")
        not_in_rows = self.rows(db, "x not in (select m from s)")
        assert in_rows == [(2,)]
        assert not_in_rows == [(1,)]
