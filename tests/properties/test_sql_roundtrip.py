"""Property-based tests over the SQL pipeline on random data.

Invariants checked end-to-end (parse -> bind -> optimize -> execute):

* optimization never changes results, for generated filter/aggregate/gapply
  queries over random tables;
* gapply aggregation always agrees with plain GROUP BY;
* both GApply partitioning strategies agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import Database
from repro.optimizer.planner import PlannerOptions
from repro.storage import DataType


@st.composite
def random_db(draw):
    db = Database()
    size = draw(st.integers(min_value=0, max_value=25))
    rows = [
        (
            i,
            draw(st.integers(min_value=0, max_value=4)),
            draw(
                st.one_of(
                    st.none(),
                    st.floats(min_value=-50, max_value=50, allow_nan=False),
                )
            ),
        )
        for i in range(size)
    ]
    db.create_table(
        "t",
        [
            ("id", DataType.INTEGER),
            ("grp", DataType.INTEGER),
            ("val", DataType.FLOAT),
        ],
        rows,
        primary_key=["id"],
    )
    return db


thresholds = st.floats(min_value=-60, max_value=60, allow_nan=False)


def sorted_rows(result):
    return sorted(result.rows, key=repr)


class TestOptimizationInvariance:
    @given(db=random_db(), threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_filter_query(self, db, threshold):
        sql = f"select id, val from t where val > {threshold}"
        assert sorted_rows(db.sql(sql, optimize=False)) == sorted_rows(
            db.sql(sql, optimize=True)
        )

    @given(db=random_db())
    @settings(max_examples=40, deadline=None)
    def test_aggregate_query(self, db):
        sql = "select grp, count(*), avg(val), min(val) from t group by grp"
        assert sorted_rows(db.sql(sql, optimize=False)) == sorted_rows(
            db.sql(sql, optimize=True)
        )

    @given(db=random_db(), threshold=thresholds)
    @settings(max_examples=40, deadline=None)
    def test_gapply_query(self, db, threshold):
        sql = (
            "select gapply(select count(*), null from g "
            f"where val >= {threshold} "
            "union all select null, count(*) from g "
            f"where val < {threshold}) as (above, below) "
            "from t group by grp : g"
        )
        assert sorted_rows(db.sql(sql, optimize=False)) == sorted_rows(
            db.sql(sql, optimize=True)
        )


class TestGApplyAgainstGroupBy:
    @given(db=random_db())
    @settings(max_examples=40, deadline=None)
    def test_simple_aggregates_agree(self, db):
        gapply = db.sql(
            "select gapply(select count(*), avg(val) from g) as (n, m) "
            "from t group by grp : g"
        )
        grouped = db.sql("select grp, count(*), avg(val) from t group by grp")
        assert sorted_rows(gapply) == sorted_rows(grouped)

    @given(db=random_db())
    @settings(max_examples=30, deadline=None)
    def test_partitioning_strategies_agree(self, db):
        sql = (
            "select gapply(select count(*) from g where val is not null) "
            "from t group by grp : g"
        )
        hash_result = db.sql(sql, planner_options=PlannerOptions(gapply_partitioning="hash"))
        sort_result = db.sql(sql, planner_options=PlannerOptions(gapply_partitioning="sort"))
        assert sorted_rows(hash_result) == sorted_rows(sort_result)

    @given(db=random_db(), threshold=thresholds)
    @settings(max_examples=30, deadline=None)
    def test_scalar_subquery_matches_manual_computation(self, db, threshold):
        result = db.sql(
            "select gapply(select count(*) from g where val > "
            "(select avg(val) from g)) as (n) from t group by grp : g"
        )
        rows = db.table("t").rows
        for grp, n in result.rows:
            group_values = [r[2] for r in rows if r[1] == grp and r[2] is not None]
            if not group_values:
                assert n == 0
                continue
            mean = sum(group_values) / len(group_values)
            expected = sum(1 for v in group_values if v > mean)
            assert n == expected
