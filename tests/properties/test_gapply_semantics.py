"""Property-based test: PGApply implements the paper's formal definition.

    R1 GA_C R2  =  U_{c in distinct(pi_C(R1))} ({c} x R2(sigma_{C=c} R1))

for random input relations, random grouping columns, and a family of
per-group queries (count, avg, filter+project, whole group), under both
partitioning strategies.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import avg, col, count_star, gt, lit
from repro.execution.aggregates import PHashAggregate
from repro.execution.base import PMaterialized, run_plan
from repro.execution.basic import PFilter, PProject
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION, PGApply
from repro.execution.scans import PGroupScan
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType, grouping_key

SCHEMA = Schema(
    (
        Column("a", DataType.INTEGER, "t"),
        Column("b", DataType.INTEGER, "t"),
        Column("v", DataType.FLOAT, "t"),
    )
)

values = st.one_of(st.none(), st.integers(min_value=-3, max_value=3))
floats = st.one_of(
    st.none(), st.floats(min_value=-10, max_value=10, allow_nan=False)
)
rows = st.lists(st.tuples(values, values, floats), max_size=30)
keys = st.sampled_from([["a"], ["b"], ["a", "b"]])


def naive_gapply(data, key_columns, pgq_fn):
    positions = [SCHEMA.index_of(c) for c in key_columns]
    seen: list[tuple] = []
    for row in data:
        key = tuple(row[i] for i in positions)
        if grouping_key(key) not in [grouping_key(k) for k in seen]:
            seen.append(key)
    out = []
    for key in seen:
        group = [
            row
            for row in data
            if grouping_key(tuple(row[i] for i in positions)) == grouping_key(key)
        ]
        for result in pgq_fn(group):
            out.append(key + result)
    return sorted(out, key=repr)


def run_gapply(data, key_columns, pgq_plan, partitioning):
    plan = PGApply(
        PMaterialized(SCHEMA, data), key_columns, pgq_plan, "g", partitioning
    )
    return sorted(run_plan(plan), key=repr)


class TestFormalDefinition:
    @given(data=rows, key_columns=keys)
    @settings(max_examples=60, deadline=None)
    def test_count_star(self, data, key_columns):
        pgq = PHashAggregate(PGroupScan("g", SCHEMA), (), (count_star("n"),))
        expected = naive_gapply(data, key_columns, lambda grp: [(len(grp),)])
        assert run_gapply(data, key_columns, pgq, HASH_PARTITION) == expected
        assert run_gapply(data, key_columns, pgq, SORT_PARTITION) == expected

    @given(data=rows, key_columns=keys)
    @settings(max_examples=60, deadline=None)
    def test_avg(self, data, key_columns):
        pgq = PHashAggregate(PGroupScan("g", SCHEMA), (), (avg(col("v"), "m"),))

        def naive_pgq(group):
            non_null = [row[2] for row in group if row[2] is not None]
            if not non_null:
                return [(None,)]
            return [(sum(non_null) / len(non_null),)]

        expected = naive_gapply(data, key_columns, naive_pgq)
        actual = run_gapply(data, key_columns, pgq, HASH_PARTITION)
        assert len(actual) == len(expected)
        for got, want in zip(actual, expected):
            assert got[:-1] == want[:-1]
            if want[-1] is None:
                assert got[-1] is None
            else:
                assert abs(got[-1] - want[-1]) < 1e-9

    @given(data=rows, key_columns=keys)
    @settings(max_examples=60, deadline=None)
    def test_filter_project(self, data, key_columns):
        pgq = PProject(
            PFilter(PGroupScan("g", SCHEMA), gt(col("v"), lit(0.0))),
            ((col("v"), "v"),),
        )

        def naive_pgq(group):
            return [(row[2],) for row in group if row[2] is not None and row[2] > 0.0]

        expected = naive_gapply(data, key_columns, naive_pgq)
        assert run_gapply(data, key_columns, pgq, HASH_PARTITION) == expected

    @given(data=rows, key_columns=keys)
    @settings(max_examples=60, deadline=None)
    def test_whole_group_passthrough(self, data, key_columns):
        pgq = PGroupScan("g", SCHEMA)
        expected = naive_gapply(data, key_columns, lambda grp: list(grp))
        assert run_gapply(data, key_columns, pgq, HASH_PARTITION) == expected

    @given(data=rows, key_columns=keys)
    @settings(max_examples=40, deadline=None)
    def test_hash_and_sort_partitioning_agree(self, data, key_columns):
        pgq = PHashAggregate(
            PGroupScan("g", SCHEMA), ("b",), (count_star("n"),)
        )
        assert run_gapply(data, key_columns, pgq, HASH_PARTITION) == run_gapply(
            data, key_columns, pgq, SORT_PARTITION
        )
