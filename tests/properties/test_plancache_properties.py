"""Properties of the plan-cache normalizer.

Three families, each a soundness condition the cache's correctness rests
on:

* **Printer round-trip** — the cache key is a digest of the printed
  parameterized AST, and a cold miss re-parses nothing; the printed text
  must parse back to the identical AST or two different shapes could
  collide (or one shape split).
* **Extraction soundness** — parameterize + re-bind is the identity on
  query *semantics*: binding the extracted literals back must reproduce
  the original rows exactly, over the fuzz generator's query space.
* **Collision freedom** — the 10 paper formulations are distinct shapes
  and must produce 10 distinct keys; engines must not partition the key
  space (a vector-engine run reuses the volcano-built entry).
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.fuzz.generator import generate_case
from repro.optimizer.plancache import text_digest
from repro.sql.normalize import (
    bind_ast_parameters,
    count_parameters,
    parameterize,
    seed_parameters,
    type_signature,
)
from repro.sql.parser import parse
from repro.sql.printer import print_statement
from repro.workloads.queries import PAPER_QUERIES

#: Fuzz seeds driving the corpus-based properties. Deliberately disjoint
#: from the CI fuzz sweeps (0-1500, 20000-21000, 40000-40600) so tier-1
#: adds coverage instead of re-checking the same cases.
CORPUS_SEEDS = list(range(60000, 60060))


def corpus():
    return [generate_case(seed) for seed in CORPUS_SEEDS]


def sorted_rows(result):
    return sorted(result.rows, key=repr)


class TestPrinterRoundTrip:
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_parameterized_ast_survives_print_parse(self, seed):
        # Parse the printed text first: the cache only ever parameterizes
        # parser-produced statements (queries arrive as text), and the
        # generator's hand-built ASTs allow shapes the parser normalizes
        # (e.g. AstExists(negated=True) vs not-unary over exists).
        case = generate_case(seed)
        param_query, values = parameterize(parse(case.sql))
        text = print_statement(param_query)
        reparsed = parse(text)
        # AstParameter.seed is excluded from equality, so this compares
        # the parameterized *shape* — exactly what the cache key hashes.
        assert reparsed == param_query
        # And the round-trip is idempotent: printing again changes nothing.
        assert print_statement(reparsed) == text

    @pytest.mark.parametrize("seed", CORPUS_SEEDS[:20])
    def test_marker_count_matches_extraction(self, seed):
        case = generate_case(seed)
        param_query, values = parameterize(parse(case.sql))
        assert count_parameters(param_query) == len(values)
        assert len(type_signature(values)) == len(values)


class TestExtractionSoundness:
    @pytest.mark.parametrize("seed", CORPUS_SEEDS[:30])
    def test_rebinding_reproduces_original_rows(self, seed):
        case = generate_case(seed)
        db = case.db.build()
        db.plan_cache = None  # isolate the normalizer from the cache
        param_query, values = parameterize(parse(case.sql))
        rebound = bind_ast_parameters(param_query, values)
        original = db.sql(case.sql)
        roundtripped = db.sql(print_statement(rebound))
        assert sorted_rows(roundtripped) == sorted_rows(original)

    @pytest.mark.parametrize("seed", CORPUS_SEEDS[:10])
    def test_seeding_preserves_shape(self, seed):
        case = generate_case(seed)
        param_query, values = parameterize(parse(case.sql))
        reseeded = seed_parameters(param_query, values)
        # Seeds don't participate in equality: reseeding is shape-neutral,
        # which is what lets re-planning reuse the cached statement.
        assert reseeded == param_query
        assert print_statement(reseeded) == print_statement(param_query)


def formulations():
    out = []
    for query in PAPER_QUERIES:
        out.append((f"{query.name}-gapply", query.gapply_sql))
        out.append((f"{query.name}-baseline", query.baseline_sql))
        if query.naive_sql is not None:
            out.append((f"{query.name}-naive", query.naive_sql))
    return out


class TestCollisionFreedom:
    def test_paper_formulations_have_distinct_keys(self):
        digests = {}
        for label, sql in formulations():
            param_query, values = parameterize(parse(sql))
            digest = text_digest(print_statement(param_query))
            assert digest not in digests, (
                f"cache-key collision: {label} vs {digests[digest]}"
            )
            digests[digest] = label
        assert len(digests) == 10

    def test_engines_share_entries(self, tpch_catalog):
        """Both engines over all 10 formulations: one entry per shape —
        the engine knob is physical and must not partition the keys —
        and identical rows out of the shared template."""
        db = Database(tpch_catalog)
        for label, sql in formulations():
            volcano = db.sql(sql, engine="volcano")
            vector = db.sql(sql, engine="vector")
            assert volcano.plan_cache["source"] == "miss", label
            assert vector.plan_cache["source"] == "hit", label
            assert vector.plan_cache["key"] == volcano.plan_cache["key"]
            assert sorted_rows(vector) == sorted_rows(volcano), label
        assert len(db.plan_cache) == 10
        stats = db.plan_cache.stats()
        assert stats["misses"] == 10
        assert stats["hits"] == 10

    def test_fuzz_corpus_distinct_queries_distinct_keys(self):
        """Different shapes never share a digest across the corpus (same
        shapes may: that is the cache working as intended)."""
        by_digest: dict[str, object] = {}
        for case in corpus():
            param_query, _ = parameterize(parse(case.sql))
            digest = text_digest(print_statement(param_query))
            previous = by_digest.get(digest)
            if previous is not None:
                assert previous == param_query, (
                    f"distinct shapes collide on digest {digest[:12]}"
                )
            by_digest[digest] = param_query
