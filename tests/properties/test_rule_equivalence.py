"""Property-based tests: optimizer rewrites preserve query results.

Random databases (random sizes, prices, group fan-out, NULLs) are generated
with hypothesis; for a family of GApply queries we check that the full
optimizer — and each rule individually — never changes the result multiset.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.expressions import avg, col, count_star, eq, gt, lit, min_
from repro.algebra.operators import (
    Apply,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    Project,
    Select,
    TableScan,
)
from repro.execution.base import run_plan
from repro.optimizer.engine import Optimizer, rewrite_everywhere
from repro.optimizer.planner import plan_physical
from repro.optimizer.rules import DEFAULT_RULES, RuleContext
from repro.storage import Catalog, DataType, table_from_rows


@st.composite
def databases(draw):
    catalog = Catalog()
    part_count = draw(st.integers(min_value=0, max_value=20))
    supplier_count = draw(st.integers(min_value=1, max_value=5))
    prices = st.one_of(
        st.none(), st.floats(min_value=0, max_value=100, allow_nan=False)
    )
    parts = [
        (
            i,
            draw(st.sampled_from(["A", "B", "C"])),
            draw(prices),
        )
        for i in range(1, part_count + 1)
    ]
    catalog.register(
        table_from_rows(
            "part",
            [
                ("p_partkey", DataType.INTEGER),
                ("p_brand", DataType.STRING),
                ("p_retailprice", DataType.FLOAT),
            ],
            parts,
            primary_key=["p_partkey"],
        )
    )
    partsupp = [
        (100 + draw(st.integers(min_value=0, max_value=supplier_count - 1)), i)
        for i in range(1, part_count + 1)
        for _ in range(draw(st.integers(min_value=0, max_value=2)))
    ]
    catalog.register(
        table_from_rows(
            "partsupp",
            [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
            partsupp,
        )
    )
    catalog.add_foreign_key("partsupp", ["ps_partkey"], "part", ["p_partkey"])
    return catalog


def outer_join(catalog):
    return Join(
        TableScan.of(catalog.table("partsupp")),
        TableScan.of(catalog.table("part")),
        eq(col("ps_partkey"), col("p_partkey")),
    )


def query_family(catalog):
    """A representative set of GApply plans over the random database."""
    outer = outer_join(catalog)
    g = outer.schema
    plans = []
    # aggregate-only
    plans.append(
        GApply(
            outer,
            ("ps_suppkey",),
            GroupBy(GroupScan("g", g), (), (count_star("n"), avg(col("p_retailprice"), "m"))),
            "g",
        )
    )
    # selection + aggregate subquery
    inner_avg = GroupBy(GroupScan("g", g), (), (avg(col("p_retailprice"), "m"),))
    plans.append(
        GApply(
            outer,
            ("ps_suppkey",),
            Project(
                Select(
                    Apply(
                        Select(GroupScan("g", g), eq(col("p_brand"), lit("A"))),
                        inner_avg,
                    ),
                    gt(col("p_retailprice"), col("m")),
                ),
                ((col("p_name_placeholder"), "x"),) if False else ((col("p_retailprice"), "x"),),
            ),
            "g",
        )
    )
    # group selection (exists)
    plans.append(
        GApply(
            outer,
            ("ps_suppkey",),
            Apply(
                GroupScan("g", g),
                Exists(Select(GroupScan("g", g), gt(col("p_retailprice"), lit(50.0)))),
            ),
            "g",
        )
    )
    # min-based selection (figure 7 inner shape without the supplier join)
    inner_min = GroupBy(GroupScan("g", g), (), (min_(col("p_retailprice"), "lo"),))
    plans.append(
        GApply(
            outer,
            ("ps_suppkey",),
            Project(
                Select(
                    Apply(GroupScan("g", g), inner_min),
                    eq(col("p_retailprice"), col("lo")),
                ),
                ((col("p_retailprice"), "price"),),
            ),
            "g",
        )
    )
    return plans


def results(plan, catalog):
    return sorted(run_plan(plan_physical(plan, catalog)), key=repr)


class TestOptimizerEquivalence:
    @given(catalog=databases())
    @settings(max_examples=25, deadline=None)
    def test_full_optimizer_preserves_results(self, catalog):
        for plan in query_family(catalog):
            report = Optimizer(catalog, max_alternatives=48).optimize(plan)
            assert results(plan, catalog) == results(report.best, catalog)

    @given(catalog=databases())
    @settings(max_examples=15, deadline=None)
    def test_every_single_rewrite_preserves_results(self, catalog):
        context = RuleContext(catalog)
        for plan in query_family(catalog):
            baseline = results(plan, catalog)
            for rule in DEFAULT_RULES:
                for rewritten in rewrite_everywhere(plan, rule, context):
                    assert results(rewritten, catalog) == baseline, rule.name
