"""Tests for the benchmark harness (measurement and Table-1 machinery)."""

import pytest

from repro.bench.harness import (
    Measurement,
    RuleEffect,
    RuleSummary,
    bind,
    lower,
    measure_physical,
    measure_rule_effect,
    measure_sql,
    rules_without,
    traditional_rules,
)
from repro.optimizer.rules import DEFAULT_RULES, rule_by_name


class TestMeasurement:
    def test_ratios(self):
        slow = Measurement(2.0, 200, 10)
        fast = Measurement(1.0, 100, 10)
        assert slow.ratio_to(fast) == pytest.approx(2.0)
        assert slow.work_ratio_to(fast) == pytest.approx(2.0)

    def test_zero_denominators(self):
        m = Measurement(1.0, 100, 10)
        zero = Measurement(0.0, 0, 0)
        assert m.ratio_to(zero) == float("inf")
        assert m.work_ratio_to(zero) == float("inf")

    def test_measure_physical_deterministic_work(self, parts_db):
        plan = lower(
            parts_db.catalog, bind(parts_db.catalog, "select count(*) from part")
        )
        a = measure_physical(plan, repetitions=2)
        b = measure_physical(plan, repetitions=2)
        assert a.work == b.work
        assert a.rows == b.rows == 1


class TestRuleSets:
    def test_rules_without_excludes(self):
        remaining = rules_without("selection_before_gapply")
        assert len(remaining) == len(DEFAULT_RULES) - 1
        assert all(r.name != "selection_before_gapply" for r in remaining)

    def test_traditional_rules_subset(self):
        names = {r.name for r in traditional_rules()}
        assert names == {"select_pushdown", "narrow_prune", "collapse_project"}


class TestMeasureSql:
    def test_measures_rows(self, parts_db):
        m = measure_sql(parts_db.catalog, "select p_partkey from part", repetitions=1)
        assert m.rows == 12
        assert m.elapsed > 0


class TestRuleEffect:
    def test_benefit_computation(self):
        effect = RuleEffect(
            parameter=1,
            without_rule=Measurement(4.0, 400, 5, 100, 10, 1000),
            with_rule=Measurement(2.0, 100, 5, 50, 5, 100),
            fired=True,
        )
        assert effect.benefit == pytest.approx(2.0)
        assert effect.work_benefit == pytest.approx(4.0)
        assert effect.cells_benefit == pytest.approx(10.0)
        assert effect.memory_benefit == pytest.approx(2.0)

    def test_infinite_memory_benefit(self):
        effect = RuleEffect(
            parameter=1,
            without_rule=Measurement(1.0, 10, 5, 0, 10, 10),
            with_rule=Measurement(1.0, 10, 5, 0, 0, 0),
            fired=True,
        )
        assert effect.memory_benefit == float("inf")
        assert effect.cells_benefit == float("inf")

    def test_measure_rule_effect_on_real_query(self, parts_db):
        sql = (
            "select gapply(select p_name from g where p_brand = 'A') "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g"
        )
        effect = measure_rule_effect(
            parts_db.catalog,
            sql,
            rule_by_name("selection_before_gapply"),
            parameter="A",
            repetitions=1,
        )
        assert effect.fired
        assert effect.without_rule.rows == effect.with_rule.rows

    def test_non_firing_rule_reports_unity(self, parts_db):
        effect = measure_rule_effect(
            parts_db.catalog,
            "select p_name from part",
            rule_by_name("gapply_to_groupby"),
            parameter=None,
            repetitions=1,
        )
        assert not effect.fired
        assert effect.benefit == 1.0


class TestRuleSummary:
    def make_effect(self, benefit, fired=True):
        return RuleEffect(
            parameter=benefit,
            without_rule=Measurement(benefit, int(benefit * 100), 1),
            with_rule=Measurement(1.0, 100, 1),
            fired=fired,
        )

    def test_statistics(self):
        summary = RuleSummary(
            "r",
            "Rule",
            (
                self.make_effect(4.0),
                self.make_effect(2.0),
                self.make_effect(0.5),
            ),
        )
        assert summary.maximum_benefit == pytest.approx(4.0)
        assert summary.average_benefit == pytest.approx((4.0 + 2.0 + 0.5) / 3)
        assert summary.average_over_wins == pytest.approx(3.0)
        assert not summary.always_wins

    def test_unfired_effects_excluded(self):
        summary = RuleSummary(
            "r", "Rule", (self.make_effect(3.0), self.make_effect(9.0, fired=False))
        )
        assert summary.maximum_benefit == pytest.approx(3.0)

    def test_empty_summary(self):
        summary = RuleSummary("r", "Rule", ())
        assert summary.maximum_benefit == 1.0
        assert summary.average_benefit == 1.0
        assert summary.average_over_wins == 1.0


class TestHarnessModules:
    def test_fig8_paper_constants_cover_all_queries(self):
        from repro.bench.fig8 import PAPER_FIGURE8_RATIOS
        from repro.workloads.queries import PAPER_QUERIES

        assert set(PAPER_FIGURE8_RATIOS) == {q.name for q in PAPER_QUERIES}

    def test_table1_paper_constants_cover_all_sweeps(self):
        from repro.bench.table1 import PAPER_TABLE1
        from repro.workloads.rule_queries import TABLE1_SWEEPS

        assert set(PAPER_TABLE1) == {s.rule_name for s in TABLE1_SWEEPS}

    def test_fig8_row_formatting(self, tpch_catalog):
        from repro.bench.fig8 import Fig8Row, format_rows

        row = Fig8Row(
            "Q1",
            Measurement(2.0, 200, 10),
            Measurement(1.0, 100, 10),
            Measurement(1.5, 150, 10),
        )
        text = format_rows([row])
        assert "Q1" in text and "2.00x" in text

    def test_table1_formatting(self):
        from repro.bench.table1 import format_summaries

        summary = RuleSummary(
            "selection_before_gapply",
            "Placing Selection Before GApply",
            (
                RuleEffect(
                    905.0,
                    Measurement(2.0, 200, 5),
                    Measurement(1.0, 100, 5),
                    True,
                ),
            ),
        )
        text = format_summaries([summary])
        assert "Placing Selection Before GApply" in text
        assert "732.94" in text  # the paper column
