"""Unit tests for the TPC-H generator."""

import pytest

from repro.storage import Catalog
from repro.workloads.tpch import (
    TpchConfig,
    generate_nation,
    generate_part,
    generate_partsupp,
    generate_region,
    generate_supplier,
    load_tpch,
    _part_retailprice,
)


class TestConfig:
    def test_default_sizes(self):
        config = TpchConfig()
        assert config.part_count == 20
        assert config.supplier_count == 4

    def test_scaling(self):
        config = TpchConfig(scale=0.5)
        assert config.part_count == 1000
        assert config.supplier_count == 50

    def test_minimum_sizes(self):
        config = TpchConfig(scale=0.0001)
        assert config.part_count >= 8
        assert config.supplier_count >= 4


class TestGenerators:
    def test_region_and_nation_fixed(self):
        assert len(generate_region()) == 5
        assert len(generate_nation()) == 25

    def test_part_price_formula(self):
        # spec: (90000 + ((partkey/10) mod 20001) + 100(partkey mod 1000))/100
        assert _part_retailprice(1) == pytest.approx(901.0)
        assert _part_retailprice(10) == pytest.approx(910.01)

    def test_part_columns(self):
        table = generate_part(TpchConfig(scale=0.01))
        row = table.rows[0]
        schema = table.schema
        assert row[schema.index_of("p_brand")].startswith("Brand#")
        assert 1 <= row[schema.index_of("p_size")] <= 50

    def test_partsupp_four_suppliers_per_part(self):
        config = TpchConfig(scale=0.1)
        table = generate_partsupp(config)
        assert len(table) == config.part_count * 4
        # distinct suppliers per part
        by_part: dict[int, set] = {}
        for row in table.rows:
            by_part.setdefault(row[0], set()).add(row[1])
        assert all(len(suppliers) == 4 for suppliers in by_part.values())

    def test_determinism(self):
        config = TpchConfig(scale=0.02)
        assert generate_part(config).rows == generate_part(config).rows
        assert generate_supplier(config).rows == generate_supplier(config).rows

    def test_seed_changes_data(self):
        a = generate_part(TpchConfig(scale=0.02, seed=1))
        b = generate_part(TpchConfig(scale=0.02, seed=2))
        assert a.rows != b.rows


class TestLoader:
    def test_constraints_validate(self):
        catalog = Catalog()
        load_tpch(catalog, TpchConfig(scale=0.02), validate=True)

    def test_tables_registered(self, tpch_catalog):
        for name in ("region", "nation", "part", "supplier", "partsupp"):
            assert tpch_catalog.has_table(name)

    def test_foreign_keys_declared(self, tpch_catalog):
        assert tpch_catalog.find_foreign_key(
            "partsupp", ["ps_partkey"], "part", ["p_partkey"]
        )
        assert tpch_catalog.find_foreign_key(
            "partsupp", ["ps_suppkey"], "supplier", ["s_suppkey"]
        )

    def test_indexes_created(self, tpch_catalog):
        assert tpch_catalog.table("part").index_on(["p_partkey"]) is not None
        assert tpch_catalog.table("part").index_on(["p_retailprice"]) is not None
        assert tpch_catalog.table("partsupp").index_on(["ps_suppkey"]) is not None

    def test_group_structure(self, tpch_catalog):
        """Every supplier supplies roughly parts*4/suppliers parts."""
        partsupp = tpch_catalog.table("partsupp")
        position = partsupp.schema.index_of("ps_suppkey")
        counts: dict[int, int] = {}
        for row in partsupp.rows:
            counts[row[position]] = counts.get(row[position], 0) + 1
        expected = len(partsupp) / len(tpch_catalog.table("supplier"))
        assert all(
            0.25 * expected <= count <= 4 * expected for count in counts.values()
        )
