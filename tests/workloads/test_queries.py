"""The paper's Q1-Q4: all formulations agree on results."""

import pytest

from repro.workloads.queries import PAPER_QUERIES, query_by_name
from repro.workloads.rule_queries import TABLE1_SWEEPS, sweep_by_rule


def normalized(rows):
    """Order- and column-name-insensitive comparison form."""
    return sorted(rows, key=repr)


class TestPaperQueries:
    @pytest.mark.parametrize("query", PAPER_QUERIES, ids=lambda q: q.name)
    def test_gapply_matches_baseline(self, tpch_db, query):
        gapply = tpch_db.sql(query.gapply_sql)
        baseline = tpch_db.sql(query.baseline_sql)
        assert len(gapply) == len(baseline)
        if query.name == "Q4":
            # gapply output: (suppkey, size, name, price);
            # baseline output: (suppkey, name, size, price)
            gapply_rows = [(row[0], row[2], row[3]) for row in gapply.rows]
            baseline_rows = [(row[0], row[1], row[3]) for row in baseline.rows]
            assert normalized(gapply_rows) == normalized(baseline_rows)
        else:
            assert normalized(gapply.rows) == normalized(baseline.rows)

    @pytest.mark.parametrize(
        "query",
        [q for q in PAPER_QUERIES if q.naive_sql is not None],
        ids=lambda q: q.name,
    )
    def test_naive_formulation_agrees(self, tpch_db, query):
        naive = tpch_db.sql(query.naive_sql)
        baseline = tpch_db.sql(query.baseline_sql)
        assert normalized(naive.rows) == normalized(baseline.rows)

    def test_query_lookup(self):
        assert query_by_name("q2").name == "Q2"
        with pytest.raises(KeyError):
            query_by_name("Q99")

    def test_q1_row_shape(self, tpch_db):
        result = tpch_db.sql(query_by_name("Q1").gapply_sql)
        # one avg row per supplier plus one row per (supplier, part)
        partsupp = len(tpch_db.table("partsupp"))
        suppliers = {row[0] for row in result.rows}
        assert len(result) == partsupp + len(suppliers)

    def test_q2_counts_add_up(self, tpch_db):
        result = tpch_db.sql(query_by_name("Q2").gapply_sql)
        above = sum(row[1] or 0 for row in result.rows)
        below = sum(row[2] or 0 for row in result.rows)
        assert above + below == len(tpch_db.table("partsupp"))


class TestRuleSweeps:
    @pytest.mark.parametrize("sweep", TABLE1_SWEEPS, ids=lambda s: s.rule_name)
    def test_sweep_queries_execute(self, tpch_db, sweep):
        parameter, sql = sweep.instances()[0]
        result = tpch_db.sql(sql)
        assert result.rows is not None  # executes without error

    @pytest.mark.parametrize("sweep", TABLE1_SWEEPS, ids=lambda s: s.rule_name)
    def test_rule_fires_on_its_sweep(self, tpch_db, sweep):
        """Each Table-1 sweep must actually exercise its rule."""
        from repro.bench.harness import bind, optimize_with, traditional_rules
        from repro.optimizer.engine import apply_rule_once
        from repro.optimizer.rules import rule_by_name

        parameter, sql = sweep.instances()[0]
        normalized_plan = optimize_with(
            tpch_db.catalog, bind(tpch_db.catalog, sql), traditional_rules()
        )
        rule = rule_by_name(sweep.rule_name)
        assert apply_rule_once(normalized_plan, rule, tpch_db.catalog) is not None

    def test_sweep_lookup(self):
        assert sweep_by_rule("invariant_grouping").title == "Invariant Grouping"
        with pytest.raises(KeyError):
            sweep_by_rule("nonexistent")

    @pytest.mark.parametrize("sweep", TABLE1_SWEEPS, ids=lambda s: s.rule_name)
    def test_rule_rewrite_preserves_results(self, tpch_db, sweep):
        from repro.bench.harness import bind, lower, optimize_with, traditional_rules
        from repro.execution.base import run_plan
        from repro.optimizer.engine import apply_rule_once
        from repro.optimizer.rules import rule_by_name

        parameter, sql = sweep.instances()[-1]
        normalized_plan = optimize_with(
            tpch_db.catalog, bind(tpch_db.catalog, sql), traditional_rules()
        )
        rule = rule_by_name(sweep.rule_name)
        forced = apply_rule_once(normalized_plan, rule, tpch_db.catalog)
        if forced is None:
            pytest.skip("rule does not fire at this parameter")
        a = normalized(run_plan(lower(tpch_db.catalog, normalized_plan)))
        b = normalized(run_plan(lower(tpch_db.catalog, forced)))
        assert a == b
