"""Cache parity on the paper workload: all 10 formulations, both engines.

The acceptance bar for the plan cache is that the cached execution path
is *invisible* — byte-identical rows, work counters, and per-operator
metrics versus a cache-free database — on exactly the queries the paper
measures. ``BindParameter`` seeding makes template optimization
bit-for-bit the literal query's optimization, so any divergence here is
a substitution or lowering bug, not tuning noise.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.workloads.queries import PAPER_QUERIES

ENGINES = ("volcano", "vector")


def formulations():
    out = []
    for query in PAPER_QUERIES:
        out.append((f"{query.name}-gapply", query.gapply_sql))
        out.append((f"{query.name}-baseline", query.baseline_sql))
        if query.naive_sql is not None:
            out.append((f"{query.name}-naive", query.naive_sql))
    return out


FORMULATIONS = formulations()


def sorted_rows(result):
    return sorted(result.rows, key=repr)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize(
    "label,sql", FORMULATIONS, ids=[label for label, _ in FORMULATIONS]
)
def test_cached_execution_is_invisible(tpch_catalog, label, sql, engine):
    cached_db = Database(tpch_catalog)
    plain_db = Database(tpch_catalog, plan_cache=None)

    reference = plain_db.sql(sql, collect_metrics=True, engine=engine)
    cold = cached_db.sql(sql, collect_metrics=True, engine=engine)
    hot = cached_db.sql(sql, collect_metrics=True, engine=engine)

    assert cold.plan_cache["source"] == "miss"
    assert hot.plan_cache["source"] == "hit"

    for kind, run in (("cold", cold), ("hot", hot)):
        assert sorted_rows(run) == sorted_rows(reference), (
            f"{label}/{engine}: {kind} rows diverge from uncached"
        )
        assert run.counters.snapshot() == reference.counters.snapshot(), (
            f"{label}/{engine}: {kind} work counters diverge"
        )
        assert run.metrics.snapshot() == reference.metrics.snapshot(), (
            f"{label}/{engine}: {kind} per-operator metrics diverge"
        )
