"""Unit coverage for the observe layer: registry, tracer, EXPLAIN plumbing.

Includes the zero-allocation guard: with metrics collection off (the
default), query execution must never touch the metrics machinery — not
one ``OperatorMetrics`` allocation, not one ``drive`` wrapper. That keeps
the observability layer free for every caller who doesn't ask for it.
"""

from __future__ import annotations

import json

import pytest

from repro.observe import MetricsRegistry, OperatorMetrics, Tracer, join_path
from repro.observe.metrics import ENCLOSING_GAPPLY
from repro.sql.ast import AstExplain, AstQuery
from repro.sql.parser import parse_statement
from repro.sql.printer import print_statement


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------


def test_join_path():
    assert join_path("", "0") == "0"
    assert join_path("1", "0") == "1.0"


def test_registry_register_plan_and_totals(parts_db):
    plan = parts_db.sql("select p_name from part where p_size > 1").physical_plan
    registry = MetricsRegistry()
    registry.register_plan(plan)
    assert registry.path_of(plan) == ""
    child = plan.children()[0]
    assert registry.path_of(child) == "0"
    registry.record_for(plan).rows_out += 3
    registry.record_for(child).rows_out += 5
    assert registry.total("rows_out") == 8


def test_registry_injectable_clock_times_each_next():
    ticks = iter(range(0, 1000, 10))
    registry = MetricsRegistry(clock=lambda: next(ticks))

    class FakeOp:
        est_rows = None

        def label(self):
            return "Fake"

        def children(self):
            return []

        def _execute(self, ctx):
            yield from [(1,), (2,)]

    op = FakeOp()
    registry.register_plan(op)

    class Ctx:
        tracer = None

    rows = list(registry.drive(op, Ctx()))
    assert rows == [(1,), (2,)]
    record = registry.record_for(op)
    assert record.rows_out == 2
    assert record.executions == 1
    # Three next() calls (two rows + StopIteration), 10ns each.
    assert record.elapsed_ns == 30


def test_merge_snapshot_prefixes_and_routes_gapply_counts():
    registry = MetricsRegistry()
    worker_snapshot = {
        "": {"op": "Project", "rows_out": 4},
        "0": {"op": "GroupScan", "rows_out": 9},
        ENCLOSING_GAPPLY: {"empty_groups_skipped": 2},
    }
    registry.merge_snapshot(
        worker_snapshot, prefix="0.1", enclosing_gapply_path="0"
    )
    merged = registry.snapshot()
    assert merged["0.1"]["rows_out"] == 4
    assert merged["0.1.0"]["rows_out"] == 9
    assert ENCLOSING_GAPPLY not in merged
    assert merged["0"]["empty_groups_skipped"] == 2


def test_merge_snapshot_rejects_unrouted_gapply_entry():
    registry = MetricsRegistry()
    with pytest.raises(KeyError):
        registry.merge_snapshot({ENCLOSING_GAPPLY: {"empty_groups_skipped": 1}})


def test_snapshot_excludes_time_by_default():
    registry = MetricsRegistry()
    registry.merge_snapshot({"": {"op": "X", "rows_out": 1}})
    record = registry.records()[0]
    record.elapsed_ns = 123
    assert "elapsed_ns" not in registry.snapshot()[""]
    assert registry.snapshot(include_time=True)[""]["elapsed_ns"] == 123
    assert registry.to_json()["operators"][0]["op"] == "X"


def test_operator_metrics_rejects_unknown_counter():
    record = OperatorMetrics("", "X")
    with pytest.raises(KeyError):
        record.add({"no_such_counter": 1})


# ----------------------------------------------------------------------
# Tracer
# ----------------------------------------------------------------------


def test_tracer_nests_spans_and_caps():
    ticks = iter(range(0, 10_000, 5))
    tracer = Tracer(clock=lambda: next(ticks), max_spans=3)
    outer = tracer.begin("plan", "query")
    inner = tracer.begin("operator", "scan", table="part")
    tracer.end(inner)
    tracer.end(outer)
    tracer.begin("group", "g1")
    tracer.begin("group", "g2")  # over the cap: dropped
    spans = tracer.to_json()["spans"]
    assert [s["kind"] for s in spans] == ["plan", "operator", "group"]
    assert spans[1]["parent_id"] == spans[0]["span_id"]
    assert spans[1]["attrs"] == {"table": "part"}
    assert spans[1]["duration_ns"] == 5
    assert tracer.to_json()["dropped"] == 1


# ----------------------------------------------------------------------
# EXPLAIN statement parsing and printing
# ----------------------------------------------------------------------


def test_parse_statement_explain_variants():
    plain = parse_statement("select p_name from part")
    assert isinstance(plain, AstQuery)
    explain = parse_statement("explain select p_name from part")
    assert isinstance(explain, AstExplain) and not explain.analyze
    analyze = parse_statement("explain analyze select p_name from part")
    assert isinstance(analyze, AstExplain) and analyze.analyze


def test_print_statement_round_trips_explain():
    text = "explain analyze select p_name from part"
    statement = parse_statement(text)
    printed = print_statement(statement)
    assert printed.lower().startswith("explain analyze ")
    assert isinstance(parse_statement(printed), AstExplain)


# ----------------------------------------------------------------------
# Database.sql explain plumbing
# ----------------------------------------------------------------------


def test_sql_explain_plan_does_not_execute(parts_db):
    explanation = parts_db.sql("select p_name from part", explain=True)
    assert explanation.rows is None
    assert explanation.registry is None
    assert "est=" in explanation.render()


def test_sql_explain_analyze_executes_and_annotates(parts_db):
    explanation = parts_db.sql("select p_name from part", explain="analyze")
    assert len(explanation.rows) == 12
    assert explanation.counters is not None
    rendered = explanation.render()
    assert "actual=12" in rendered
    document = explanation.to_json()
    assert document["plan"]["metrics"]["rows_out"] == 12
    assert document["trace"]["spans"][0]["kind"] == "plan"


def test_sql_explain_statement_text_routes(parts_db):
    explanation = parts_db.sql("explain select p_name from part")
    assert explanation.rows is None
    analyzed = parts_db.sql("explain analyze select p_name from part")
    assert len(analyzed.rows) == 12


def test_sql_explain_rejects_unknown_mode(parts_db):
    from repro.errors import PlanError

    with pytest.raises(PlanError):
        parts_db.sql("select p_name from part", explain="verbose")


# ----------------------------------------------------------------------
# Zero-allocation guard (tier-1: metrics off must mean metrics absent)
# ----------------------------------------------------------------------


def test_metrics_off_never_touches_metrics_machinery(parts_db, monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("metrics machinery used with collection off")

    monkeypatch.setattr(MetricsRegistry, "drive", boom)
    monkeypatch.setattr(OperatorMetrics, "__init__", boom)
    result = parts_db.sql(
        "select gapply(select count(*) from g) as (n) "
        "from partsupp group by ps_suppkey : g"
    )
    assert len(result.rows) == 3
    assert result.metrics is None
    assert result.trace is None


def test_metrics_on_populates_registry(parts_db):
    result = parts_db.sql("select p_name from part", collect_metrics=True)
    assert result.metrics.total("rows_out") >= 12


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def test_cli_writes_json_traces(tmp_path, capsys):
    from repro.observe.__main__ import main

    code = main(
        [
            "--query", "Q1", "--analyze", "--scale", "0.01",
            "--json-dir", str(tmp_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "=== Q1-gapply ===" in out and "=== Q1-baseline ===" in out
    for label in ("Q1-gapply", "Q1-baseline"):
        document = json.loads((tmp_path / f"{label}.json").read_text())
        assert document["analyze"] is True
        assert document["plan"]["metrics"]["executions"] == 1
