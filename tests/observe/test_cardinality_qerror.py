"""Cardinality-estimation accuracy ratchet.

Runs EXPLAIN ANALYZE over the fuzz generator's seeded schemas (seed 0,
n=200 — deterministic) and compares the planner's ``est_rows`` stamps to
the actual per-execution row counts via the q-error
``max((est+1)/(actual+1), (actual+1)/(est+1))`` (the +1 smoothing keeps
empty results finite).

The bounds below are a *ratchet*: they sit just above today's measured
distribution (root median 1.67, p90 4.0, max 27.2; per-node max 41.0).
An estimator regression pushes a quantile past its bound and fails CI; an
estimator improvement is the cue to tighten the bound in the same diff.
"""

from __future__ import annotations

import statistics

from repro.fuzz.generator import generate_case

SEED = 0
CASES = 200

ROOT_MEDIAN_BOUND = 2.0
ROOT_P90_BOUND = 4.5
ROOT_MAX_BOUND = 30.0
NODE_MAX_BOUND = 45.0


def q_error(est: float, actual: float) -> float:
    return max((est + 1.0) / (actual + 1.0), (actual + 1.0) / (est + 1.0))


def collect_q_errors() -> tuple[list[float], list[float]]:
    """(root q-errors, all-node q-errors) across the seeded cases.

    ``actual`` is normalized per execution: operators inside a per-group
    plan run once per group, while ``est_rows`` estimates a single run.
    """
    roots: list[float] = []
    nodes: list[float] = []
    for index in range(CASES):
        case = generate_case(SEED + index)
        explanation = case.db.build().sql(case.sql, explain="analyze")
        snapshot = explanation.registry.snapshot()

        def walk(node, path: str) -> None:
            record = snapshot.get(path)
            if node.est_rows is not None and record is not None:
                executions = max(record["executions"], 1)
                actual = record["rows_out"] / executions
                q = q_error(node.est_rows, actual)
                nodes.append(q)
                if path == "":
                    roots.append(q)
            for child_index, child in enumerate(node.children()):
                child_path = (
                    f"{path}.{child_index}" if path else str(child_index)
                )
                walk(child, child_path)

        walk(explanation.physical_plan, "")
    return roots, nodes


def test_q_error_stays_within_ratchet():
    roots, nodes = collect_q_errors()
    # Every case must produce an estimated, executed root.
    assert len(roots) == CASES
    roots.sort()
    summary = (
        f"root median={statistics.median(roots):.2f} "
        f"p90={roots[int(0.9 * len(roots))]:.2f} max={roots[-1]:.2f}; "
        f"node max={max(nodes):.2f} over {len(nodes)} operators"
    )
    assert statistics.median(roots) <= ROOT_MEDIAN_BOUND, summary
    assert roots[int(0.9 * len(roots))] <= ROOT_P90_BOUND, summary
    assert roots[-1] <= ROOT_MAX_BOUND, summary
    assert max(nodes) <= NODE_MAX_BOUND, summary
