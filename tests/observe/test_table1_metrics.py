"""Counter-based Table-1 tests: each rule provably reduces work.

The paper's Table 1 quantifies each rewrite rule by wall-clock benefit;
on a 1-CPU CI container wall-clock is noise, so these tests assert the
*mechanism* instead, through per-operator metrics: with the rule enabled
the chosen plan strictly reduces the rows entering GApply's partition
phase (or the cells buffered by it, for the width-oriented rules) versus
the same query planned with the rule disabled — and returns identical
rows.

Also here: the cross-backend metrics contract. Thread and process pools
count per-operator work in the workers and ship snapshots home; the
merged registry must equal the serial run's exactly (this was silently
dropped before worker-side metrics merging existed).
"""

from __future__ import annotations

import pytest

from repro.optimizer.planner import PlannerOptions
from repro.workloads.rule_queries import sweep_by_rule

from tests.conftest import rows_sorted


def run_with_metrics(db, sql, disabled=()):
    return db.sql(
        sql,
        planner_options=PlannerOptions(disabled_rules=tuple(disabled)),
        collect_metrics=True,
    )


def partition_rows(result) -> int:
    """Rows that entered any GApply partition phase in this execution."""
    return result.metrics.total("partition_rows")


def buffered_cells(result) -> int:
    return result.counters.buffered_cells


#: rule name -> (sweep parameter, metric that must strictly shrink).
#: partition_rows for the rules that keep rows out of (or eliminate) the
#: partition phase; buffered_cells for the width/placement rules whose
#: benefit is narrower or later buffering, not fewer partitioned rows.
RULE_CASES = {
    "selection_before_gapply": (902.0, partition_rows),
    "projection_before_gapply": (1, buffered_cells),
    "gapply_to_groupby": (1, partition_rows),
    "exists_group_selection": (2050.0, partition_rows),
    "aggregate_group_selection": (1700.0, partition_rows),
    "invariant_grouping": (0.0, buffered_cells),
}


@pytest.mark.parametrize("rule_name", sorted(RULE_CASES))
def test_rule_strictly_reduces_work_counters(tpch_db, rule_name):
    parameter, metric = RULE_CASES[rule_name]
    sql = sweep_by_rule(rule_name).make_sql(parameter)
    with_rule = run_with_metrics(tpch_db, sql)
    without_rule = run_with_metrics(tpch_db, sql, disabled=[rule_name])
    # Same answer either way — the rule is an optimization, not a rewrite
    # of semantics.
    assert rows_sorted(with_rule.rows) == rows_sorted(without_rule.rows)
    assert metric(with_rule) < metric(without_rule), (
        f"{rule_name} did not reduce {metric.__name__}: "
        f"{metric(with_rule)} vs {metric(without_rule)} without the rule"
    )


def test_gapply_to_groupby_eliminates_the_operator(tpch_db):
    sql = sweep_by_rule("gapply_to_groupby").make_sql(1)
    with_rule = run_with_metrics(tpch_db, sql)
    without_rule = run_with_metrics(tpch_db, sql, disabled=["gapply_to_groupby"])
    assert with_rule.metrics.by_label("GApply") == []
    assert without_rule.metrics.by_label("GApply") != []
    assert without_rule.metrics.total("groups_formed") > 0


def test_selection_rule_reduces_groups_payload_not_group_count(tpch_db):
    """Covering-range pushdown shrinks groups, not the set of groups."""
    sql = sweep_by_rule("selection_before_gapply").make_sql(902.0)
    with_rule = run_with_metrics(tpch_db, sql)
    without_rule = run_with_metrics(
        tpch_db, sql, disabled=["selection_before_gapply"]
    )
    assert (
        with_rule.metrics.total("groups_formed")
        == without_rule.metrics.total("groups_formed")
    )
    assert partition_rows(with_rule) < partition_rows(without_rule)


# ----------------------------------------------------------------------
# Cross-backend metric equivalence (the PR's parallel-metrics fix)
# ----------------------------------------------------------------------

GAPPLY_SQL = """
    select gapply(
        select p_name, p_retailprice from g
        where p_retailprice > (select avg(p_retailprice) from g)
    ) as (name, price)
    from partsupp, part
    where ps_partkey = p_partkey
    group by ps_suppkey : g
"""

#: Per-group query that leaves some groups empty, exercising the
#: worker-side empty-group counts routed to the parent GApply record.
EMPTY_GROUPS_SQL = """
    select gapply(select p_name from g where p_retailprice > 115) as (name)
    from partsupp, part
    where ps_partkey = p_partkey
    group by ps_suppkey : g
"""


def counters_only(registry) -> dict:
    """Snapshot without operator labels: the GApply label embeds the
    backend knobs, which are exactly what varies across these runs."""
    return {
        path: {k: v for k, v in record.items() if k != "op"}
        for path, record in registry.snapshot().items()
    }


def run_backend(db, sql, backend, disabled=("gapply_to_groupby",)):
    return db.sql(
        sql,
        collect_metrics=True,
        planner_options=PlannerOptions(
            gapply_backend=backend,
            gapply_parallelism=2,
            gapply_batch_size=1,
            # Keep the GApply in the plan: these tests are about the
            # execution phase, not about optimizing the operator away.
            disabled_rules=tuple(disabled),
        ),
    )


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_backend_metrics_identical_to_serial(tpch_db, backend):
    serial = run_backend(tpch_db, GAPPLY_SQL, "serial")
    parallel = run_backend(tpch_db, GAPPLY_SQL, backend)
    assert parallel.rows == serial.rows
    assert counters_only(parallel.metrics) == counters_only(serial.metrics)


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_parallel_empty_group_metrics_identical_to_serial(parts_db, backend):
    # Keep the filter *inside* the per-group plan (disable pushdown), so
    # groups actually form and then come up empty in the workers.
    disabled = ("gapply_to_groupby", "selection_before_gapply")
    serial = run_backend(parts_db, EMPTY_GROUPS_SQL, "serial", disabled)
    parallel = run_backend(parts_db, EMPTY_GROUPS_SQL, backend, disabled)
    assert parallel.rows == serial.rows
    assert serial.metrics.total("empty_groups_skipped") > 0
    assert counters_only(parallel.metrics) == counters_only(serial.metrics)


def test_worker_side_operator_metrics_are_not_dropped(tpch_db):
    """The per-group subtree executes only inside workers on a parallel
    run; its operators must still report the same work as a serial run
    (before the cross-worker merge they reported zero)."""
    serial = run_backend(tpch_db, GAPPLY_SQL, "serial")
    threaded = run_backend(tpch_db, GAPPLY_SQL, "thread")
    gapply_path = serial.metrics.by_label("GApply")[0].path
    per_group_prefix = gapply_path + ".1" if gapply_path else "1"
    serial_subtree = {
        path: rec
        for path, rec in counters_only(serial.metrics).items()
        if path.startswith(per_group_prefix)
    }
    assert serial_subtree, "expected per-group operators under the GApply"
    assert any(rec["rows_out"] for rec in serial_subtree.values())
    threaded_subtree = {
        path: rec
        for path, rec in counters_only(threaded.metrics).items()
        if path.startswith(per_group_prefix)
    }
    assert threaded_subtree == serial_subtree
