"""Observability-layer tests: metrics, tracing, EXPLAIN, plan snapshots."""
