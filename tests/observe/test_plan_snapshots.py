"""Golden plan snapshots: EXPLAIN text for all 10 paper formulations.

The default planner's chosen plan for every paper-query formulation is
checked in verbatim under ``tests/snapshots/``. Any rule or cost-model
change that alters a chosen plan fails here and must update the snapshot
in the same diff — making plan regressions reviewable as text diffs.

Regenerate with::

    PYTHONPATH=src python -m pytest tests/observe/test_plan_snapshots.py \
        --update-snapshots
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.api import Database
from repro.workloads.queries import PAPER_QUERIES

SNAPSHOT_DIR = Path(__file__).resolve().parent.parent / "snapshots"


def formulations() -> list[tuple[str, str]]:
    out = []
    for query in PAPER_QUERIES:
        out.append((f"{query.name}-gapply", query.gapply_sql))
        out.append((f"{query.name}-baseline", query.baseline_sql))
        if query.naive_sql is not None:
            out.append((f"{query.name}-naive", query.naive_sql))
    return out


FORMULATIONS = formulations()


def test_all_ten_formulations_are_covered():
    assert len(FORMULATIONS) == 10


@pytest.mark.parametrize(
    "label,sql", FORMULATIONS, ids=[label for label, _ in FORMULATIONS]
)
def test_explain_snapshot(tpch_catalog, label, sql, update_snapshots):
    # Fresh Database (own empty plan cache) over the shared catalog: the
    # rendered "plan cache: miss" annotation stays deterministic no
    # matter which other tests warmed the session-scoped tpch_db.
    db = Database(tpch_catalog)
    rendered = db.sql(sql, explain=True).render() + "\n"
    path = SNAPSHOT_DIR / f"{label}.txt"
    if update_snapshots:
        SNAPSHOT_DIR.mkdir(parents=True, exist_ok=True)
        path.write_text(rendered)
        return
    assert path.exists(), (
        f"missing snapshot {path.name}; run pytest with --update-snapshots"
    )
    expected = path.read_text()
    assert rendered == expected, (
        f"plan for {label} changed; if intentional, rerun with "
        f"--update-snapshots and commit the new snapshot\n--- expected ---\n"
        f"{expected}\n--- got ---\n{rendered}"
    )


def test_snapshots_have_no_strays():
    """Every checked-in snapshot corresponds to a live formulation."""
    known = {f"{label}.txt" for label, _ in FORMULATIONS}
    present = {path.name for path in SNAPSHOT_DIR.glob("*.txt")}
    assert present <= known, f"stray snapshots: {sorted(present - known)}"
