"""EXPLAIN output for cache-served plans.

The regression this file pins down: ``explain="analyze"`` on a cache
*hit* must report actuals from **this** execution — the hit replays the
cached logical template, but lowering, metrics registries, and counters
are built fresh per call, so the actual cardinalities and timings can
never be stale copies of the entry-building run.
"""

from __future__ import annotations

import re

from repro.api import Database


QUERY = (
    "select gapply(select p_name, p_retailprice from g "
    "where p_retailprice > 1000.0) as (name, price) "
    "from partsupp, part where ps_partkey = p_partkey "
    "group by ps_suppkey : g"
)


def actual_annotations(rendered: str) -> list[str]:
    return re.findall(r"actual=[\w.]+", rendered)


class TestAnalyzeOnCachedPlan:
    def test_hit_reports_fresh_actuals(self, tpch_catalog):
        db = Database(tpch_catalog)
        cold = db.sql(QUERY, explain="analyze")
        hot = db.sql(QUERY, explain="analyze")

        assert cold.plan_cache["source"] == "miss"
        assert hot.plan_cache["source"] == "hit"

        # The hit ran for real: rows/counters/registry are this
        # execution's objects, not the cold run's.
        assert hot.rows is not None and hot.rows == cold.rows
        assert hot.registry is not None
        assert hot.registry is not cold.registry
        assert hot.counters is not cold.counters
        assert hot.counters.snapshot() == cold.counters.snapshot()

        # Rendered actuals are present on the hit and identical to the
        # cold run's (same data, same plan — different execution).
        cold_actuals = actual_annotations(cold.render())
        hot_actuals = actual_annotations(hot.render())
        assert hot_actuals, "ANALYZE on a hit lost its actual= annotations"
        assert hot_actuals == cold_actuals

    def test_header_and_json_carry_cache_source(self, tpch_catalog):
        db = Database(tpch_catalog)
        db.sql(QUERY)
        hot = db.sql(QUERY, explain=True)
        assert "-- plan cache: hit" in hot.render()
        document = hot.to_json()
        assert document["plan_cache"]["source"] == "hit"
        assert document["plan_cache"]["params"] == 1

    def test_analyze_after_data_change_reports_new_actuals(self):
        """Data mutations bump the catalog version, so the re-planned
        (missed) entry's ANALYZE must show the new cardinalities."""
        from repro.storage import DataType

        db = Database()
        db.create_table(
            "t",
            [("id", DataType.INTEGER), ("v", DataType.FLOAT)],
            [(i, float(i)) for i in range(10)],
            primary_key=["id"],
        )
        sql = "select id from t where v >= 0.0"
        first = db.sql(sql, explain="analyze")
        assert len(first.rows) == 10
        db.catalog.insert_rows("t", [(100 + i, float(i)) for i in range(5)])
        second = db.sql(sql, explain="analyze")
        assert second.plan_cache["source"] == "miss"  # version bumped
        assert len(second.rows) == 15
        third = db.sql(sql, explain="analyze")
        assert third.plan_cache["source"] == "hit"
        assert len(third.rows) == 15
        assert actual_annotations(third.render()) == actual_annotations(
            second.render()
        )
