"""Observability under concurrency: metrics registries, tracers and the
shared LockedCounters must stay consistent when queries run in parallel
threads (satellite of the concurrent-service work)."""

from __future__ import annotations

import threading

from repro.api import Database
from repro.observe import LockedCounters, MetricsRegistry, Tracer
from repro.storage.types import DataType


def build_db() -> Database:
    db = Database()
    db.create_table(
        "t",
        [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
        [(i, i % 4) for i in range(64)],
    )
    return db


class TestSharedDatabaseMetrics:
    def test_two_threads_collecting_metrics_do_not_corrupt_counters(self):
        # The regression the satellite asks for: each query gets its own
        # registry, so concurrent runs must report exactly the counters a
        # solo run reports.
        db = build_db()
        solo = db.sql("select count(*) from t", collect_metrics=True)
        expected = solo.metrics.snapshot()
        results: list[dict] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(2, timeout=10.0)

        def query():
            try:
                barrier.wait()
                for _ in range(10):
                    result = db.sql(
                        "select count(*) from t", collect_metrics=True
                    )
                    results.append(result.metrics.snapshot())
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=query) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
            assert not thread.is_alive()
        assert errors == []
        assert len(results) == 20
        for snapshot in results:
            assert snapshot == expected

    def test_concurrent_traced_gapply_queries_stay_consistent(self):
        db = build_db()
        sql = (
            "select gapply(select sum(a) from g) as (total) "
            "from t group by b : g"
        )
        expected = sorted(db.sql(sql, optimize=False).rows)
        errors: list[str] = []

        def query(tid: int):
            result = db.sql(
                sql,
                optimize=False,
                collect_metrics=True,
                backend="thread",
                parallelism=2,
            )
            if sorted(result.rows) != expected:
                errors.append(f"thread {tid}: wrong rows")
            if result.metrics.total("groups_formed") != 4:
                errors.append(
                    f"thread {tid}: groups_formed "
                    f"{result.metrics.total('groups_formed')}"
                )

        threads = [
            threading.Thread(target=query, args=(tid,)) for tid in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
            assert not thread.is_alive()
        assert errors == []


class TestRegistryThreadSafety:
    def test_concurrent_ad_hoc_registration_never_loses_records(self):
        # record_for self-registration takes the registry lock; hammer it
        # from several threads and check every prefix landed exactly once.
        from repro.execution.base import PMaterialized
        from repro.storage.schema import Schema

        registry = MetricsRegistry()
        schema = Schema.of(("a", DataType.INTEGER))
        plans = [PMaterialized(schema, [(1,)]) for _ in range(32)]
        barrier = threading.Barrier(4, timeout=10.0)

        def register(chunk):
            barrier.wait()
            for plan in chunk:
                registry.record_for(plan)

        threads = [
            threading.Thread(target=register, args=(plans[i::4],))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
            assert not thread.is_alive()
        prefixes = {
            record.path.split(".")[0]
            for record in registry.records()
            if record.path.startswith("?")
        }
        assert prefixes == {f"?{i}" for i in range(32)}


class TestTracerThreadSafety:
    def test_spans_from_many_threads_all_recorded(self):
        tracer = Tracer()
        barrier = threading.Barrier(4, timeout=10.0)

        def emit():
            barrier.wait()
            for i in range(200):
                span = tracer.begin("operator", f"op{i}")
                tracer.end(span, rows_out=i)

        threads = [threading.Thread(target=emit) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
            assert not thread.is_alive()
        assert len(tracer.spans) == 800
        assert tracer.dropped == 0
        span_ids = [span.span_id for span in tracer.spans]
        assert len(set(span_ids)) == 800
        assert all(span.end_ns is not None for span in tracer.spans)


class TestLockedCounters:
    def test_concurrent_increments_sum_exactly(self):
        counters = LockedCounters()
        barrier = threading.Barrier(8, timeout=10.0)

        def bump():
            barrier.wait()
            for _ in range(1000):
                counters.inc("hits")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
        assert counters.get("hits") == 8000

    def test_add_many_is_atomic_to_snapshots(self):
        # Paired updates through add_many must never appear torn in a
        # snapshot: the two keys always move together.
        counters = LockedCounters(credits=0, debits=0)
        stop = threading.Event()
        torn: list[dict] = []

        def writer():
            for _ in range(2000):
                counters.add_many(credits=1, debits=-1)
            stop.set()

        def reader():
            while not stop.is_set():
                snapshot = counters.snapshot()
                if snapshot["credits"] + snapshot["debits"] != 0:
                    torn.append(snapshot)
                    return

        threads = [
            threading.Thread(target=writer),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
            assert not thread.is_alive()
        assert torn == []
        assert counters.snapshot() == {"credits": 2000, "debits": -2000}

    def test_max_of_tracks_peaks(self):
        counters = LockedCounters()
        assert counters.max_of("peak", 5) == 5
        assert counters.max_of("peak", 3) == 5
        assert counters.max_of("peak", 9) == 9
