"""Streaming XML publishing through the concurrent query service.

``Service.submit_publish`` shares the admission pipeline with
``Service.sql`` but holds its concurrency slot for the *lifetime of the
stream*. These tests pin down that lifecycle: slots held while
streaming, shedding under load, slot release on every exit path
(exhaustion, abandon, cancel, translation failure), shutdown
force-closing stalled streams, and per-stream accounting in
``Service.stats()``.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.errors import (
    QueryCancelled,
    ServiceOverloaded,
    ServiceStopped,
    XmlPublishError,
)
from repro.serve import Service, ServiceConfig
from repro.storage.spill import live_spill_files
from repro.storage.types import DataType
from repro.xmlpub import tpch_supplier_view

from tests.xmlpub.queries import Q1

BAD_QUERY = "for $s in /doc(x)/wrong/path return $s"


def xml_db() -> Database:
    db = Database()
    db.create_table(
        "part",
        [
            ("p_partkey", DataType.INTEGER),
            ("p_name", DataType.STRING),
            ("p_retailprice", DataType.FLOAT),
        ],
        [(i, f"part{i}", float(i * 10)) for i in range(1, 13)],
        primary_key=["p_partkey"],
    )
    db.create_table(
        "partsupp",
        [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
        [(100 + (i % 3), i) for i in range(1, 13)],
    )
    db.create_table(
        "supplier",
        [("s_suppkey", DataType.INTEGER), ("s_name", DataType.STRING)],
        [(100 + i, f"supp{i}") for i in range(3)],
        primary_key=["s_suppkey"],
    )
    return db


def reference_document(db: Database) -> bytes:
    return db.publish(tpch_supplier_view(), Q1).read_all()


class TestPublishRoundTrip:
    def test_document_and_stats(self):
        db = xml_db()
        expected = reference_document(db)
        with Service(db) as service:
            stream = service.submit_publish(tpch_supplier_view(), Q1)
            assert stream.read_all() == expected
            stats = service.stats()
            assert stats["publish_submitted"] == 1
            assert stats["published_docs"] == 1
            assert stats["published_bytes"] == len(expected)
            assert stats["publish_chunks"] == stream.stats.chunks
            assert stats["publish_peak_buffer_bytes"] > 0
            assert stats["active_streams"] == 0
            assert stats["slots_free"] == stats["slots"]

    def test_interleaved_concurrent_streams(self):
        db = xml_db()
        expected = reference_document(db)
        config = ServiceConfig(max_concurrency=2)
        with Service(db, config=config) as service:
            first = service.submit_publish(
                tpch_supplier_view(), Q1, chunk_bytes=64
            )
            second = service.submit_publish(
                tpch_supplier_view(), Q1, chunk_bytes=64
            )
            assert service.stats()["active_streams"] == 2
            assert service.stats()["slots_free"] == 0
            collected: dict[int, list[bytes]] = {0: [], 1: []}
            iterators = [iter(first), iter(second)]
            live = {0, 1}
            while live:
                for index in sorted(live):
                    try:
                        collected[index].append(next(iterators[index]))
                    except StopIteration:
                        live.discard(index)
            assert b"".join(collected[0]) == expected
            assert b"".join(collected[1]) == expected
            stats = service.stats()
            assert stats["published_docs"] == 2
            assert stats["slots_free"] == 2

    def test_session_publish_accounting(self):
        db = xml_db()
        expected = reference_document(db)
        with Service(db) as service:
            with service.session(client="alice") as session:
                assert session.publish(
                    tpch_supplier_view(), Q1
                ).read_all() == expected
                with pytest.raises(XmlPublishError):
                    session.publish(tpch_supplier_view(), BAD_QUERY)
            counters = session.queries.snapshot()
            assert counters["publishes"] == 1
            assert counters["errors"] == 1


class TestSlotLifecycle:
    def test_slot_held_while_stream_open(self):
        config = ServiceConfig(max_concurrency=2)
        with Service(xml_db(), config=config) as service:
            stream = service.submit_publish(
                tpch_supplier_view(), Q1, chunk_bytes=64
            )
            next(iter(stream))
            stats = service.stats()
            assert stats["active_streams"] == 1
            assert stats["slots_free"] == 1
            stream.read_all()
            stats = service.stats()
            assert stats["active_streams"] == 0
            assert stats["slots_free"] == 2

    def test_streams_occupying_all_slots_shed_new_work(self):
        config = ServiceConfig(max_concurrency=1, max_queue_depth=0)
        with Service(xml_db(), config=config) as service:
            stream = service.submit_publish(
                tpch_supplier_view(), Q1, chunk_bytes=64
            )
            next(iter(stream))
            with pytest.raises(ServiceOverloaded):
                service.sql("select count(*) from part")
            with pytest.raises(ServiceOverloaded):
                service.submit_publish(tpch_supplier_view(), Q1)
            assert service.stats()["shed"] == 2
            stream.close()
            # The slot came back: work flows again.
            assert service.sql("select count(*) from part").rows == [(12,)]

    def test_translation_failure_releases_slot_immediately(self):
        config = ServiceConfig(max_concurrency=1, max_queue_depth=0)
        with Service(xml_db(), config=config) as service:
            with pytest.raises(XmlPublishError):
                service.submit_publish(tpch_supplier_view(), BAD_QUERY)
            stats = service.stats()
            assert stats["publish_failed"] == 1
            assert stats["slots_free"] == 1
            assert stats["active_streams"] == 0
            assert service.sql("select count(*) from part").rows == [(12,)]

    def test_abandoned_stream_counts_and_releases(self):
        with Service(xml_db()) as service:
            stream = service.submit_publish(
                tpch_supplier_view(), Q1, chunk_bytes=64
            )
            next(iter(stream))
            stream.close()
            stats = service.stats()
            assert stats["publish_abandoned"] == 1
            assert stats["active_streams"] == 0
            assert stats["slots_free"] == stats["slots"]
            assert live_spill_files() == frozenset()

    def test_midstream_cancel_counts_and_releases(self):
        with Service(xml_db()) as service:
            stream = service.submit_publish(
                tpch_supplier_view(), Q1, chunk_bytes=64
            )
            iterator = iter(stream)
            next(iterator)
            stream.governor.cancel()
            with pytest.raises(QueryCancelled):
                for _chunk in iterator:
                    pass
            stats = service.stats()
            assert stats["publish_cancelled"] == 1
            assert stats["slots_free"] == stats["slots"]
            assert live_spill_files() == frozenset()


class TestShutdown:
    def test_force_closes_stalled_stream(self):
        service = Service(xml_db())
        stream = service.submit_publish(
            tpch_supplier_view(), Q1, chunk_bytes=64
        )
        next(iter(stream))
        # The client never iterates again, so cancellation alone cannot
        # drain this stream — shutdown must force-close it.
        report = service.shutdown(drain_timeout=0.1, cancel_grace=0.2)
        assert report.clean and report.leaked == 0
        assert report.in_flight == 1 and report.cancelled == 1
        assert stream.closed
        stats = service.stats()
        assert stats["publish_abandoned"] == 1
        assert stats["active_streams"] == 0
        assert live_spill_files() == frozenset()

    def test_rejects_publish_after_shutdown(self):
        service = Service(xml_db())
        service.shutdown()
        with pytest.raises(ServiceStopped):
            service.submit_publish(tpch_supplier_view(), Q1)
        assert service.stats()["rejected_stopped"] == 1
