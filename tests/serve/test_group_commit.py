"""Group commit under real concurrency: N writer threads through one
durable :class:`~repro.serve.Service` with ``fsync="group"``. Every
acknowledged commit must survive a crash immediately after the batched
fsync, the fsync count must stay well below the commit count, and the
acknowledged commit order must match the recovered version order."""

from __future__ import annotations

import threading

from repro.serve import Service, ServiceConfig
from repro.storage import DataType
from repro.storage.wal import recover

COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


def group_service(path, *, delay: float = 0.002) -> Service:
    return Service(
        config=ServiceConfig(
            durable=True,
            data_dir=str(path),
            fsync="group",
            group_commit_delay=delay,
        )
    )


class TestBatching:
    N_THREADS = 8
    N_ROUNDS = 10

    def test_aligned_writers_share_fsyncs(self, tmp_path):
        service = group_service(tmp_path)
        service.create_table("t", COLUMNS, [])
        barrier = threading.Barrier(self.N_THREADS)
        failures: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                for round_no in range(self.N_ROUNDS):
                    barrier.wait()  # all workers commit at once
                    service.insert("t", [(worker * 1000 + round_no, "x")])
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures

        stats = service.stats()
        commits = self.N_THREADS * self.N_ROUNDS + 1  # + create_table
        assert stats["group_commits"] == commits
        # The whole point: one fsync acknowledges many commits. With the
        # workers barrier-aligned the average batch must be >= 2.
        assert stats["group_batches"] * 2 <= commits, stats
        assert stats["fsyncs"] < commits, stats
        # Nothing was lost to the batching.
        rows = service.sql("select count(*) from t").rows
        assert list(rows) == [(commits - 1,)]
        service.shutdown()


class TestDurabilityUnderConcurrency:
    N_THREADS = 6
    N_TXNS = 8

    def test_acked_commits_survive_crash_in_version_order(self, tmp_path):
        service = group_service(tmp_path, delay=0.001)
        service.create_table("t", COLUMNS, [])
        catalog = service.database.catalog
        acked: list[tuple[int, list[tuple]]] = []
        acked_lock = threading.Lock()
        failures: list[BaseException] = []

        def writer(worker: int) -> None:
            try:
                for i in range(self.N_TXNS):
                    tag = f"w{worker}.{i}"
                    rows = [(worker * 1000 + i * 10 + j, tag) for j in range(2)]
                    txn = service.begin()
                    service.insert("t", rows)
                    if i % 4 == 3:
                        txn.rollback()  # never acked, must never appear
                        continue
                    # The gate is ours until commit returns, so the
                    # version is stable: the commit record will be the
                    # next one.
                    commit_version = catalog.version + 1
                    txn.commit()
                    with acked_lock:
                        acked.append((commit_version, rows))
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                failures.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures, failures
        assert len(acked) == self.N_THREADS * (self.N_TXNS - self.N_TXNS // 4)

        # Crash: abandon the handles without close/checkpoint. Everything
        # acknowledged was fsynced (group commit waits for the batch), so
        # recovery must reproduce it all.
        service.database.wal.abandon()
        recovered, _ = recover(str(tmp_path))
        expected_rows = [
            row
            for _, rows in sorted(acked, key=lambda item: item[0])
            for row in rows
        ]
        assert recovered.table("t").rows == expected_rows
        assert not any(
            "never" in str(row) for row in recovered.table("t").rows
        )

    def test_single_writer_group_policy_is_still_durable(self, tmp_path):
        service = group_service(tmp_path, delay=0.0)
        service.create_table("t", COLUMNS, [(1, "a")])
        with service.begin():
            service.insert("t", [(2, "b")])
        service.database.wal.abandon()
        recovered, _ = recover(str(tmp_path))
        assert recovered.table("t").rows == [(1, "a"), (2, "b")]

    def test_session_begin_routes_through_service(self, tmp_path):
        service = group_service(tmp_path, delay=0.0)
        service.create_table("t", COLUMNS, [])
        with service.session(client="alice") as session:
            with session.begin():
                session.insert("t", [(1, "a")])
            assert session.queries.snapshot()["transactions"] == 1
        stats = service.stats()
        assert stats["transactions"] == 1
        service.shutdown()
        recovered, _ = recover(str(tmp_path))
        assert recovered.table("t").rows == [(1, "a")]
