"""The concurrent query service: admission control, priority and load
shedding, snapshot-isolated reads, queued-time deadlines, and graceful
shutdown that drains then cancels."""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import Database
from repro.errors import (
    CatalogError,
    QueryCancelled,
    ServiceError,
    ServiceOverloaded,
    ServiceStopped,
    TimeoutExceeded,
)
from repro.execution.faults import FaultPlan, fault_injection
from repro.execution.governor import Budget, Governor
from repro.serve import (
    AdmissionController,
    QueryClass,
    Service,
    ServiceConfig,
)
from repro.storage.types import DataType


def small_db() -> Database:
    db = Database()
    db.create_table(
        "t",
        [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
        [(i, i % 3) for i in range(30)],
    )
    return db


def occupy_slot(controller: AdmissionController):
    """Acquire one slot on a helper thread; returns a release callback."""
    acquired = threading.Event()
    release = threading.Event()

    def hold():
        controller.acquire(0, Governor())
        acquired.set()
        release.wait(30.0)
        controller.release()

    thread = threading.Thread(target=hold)
    thread.start()
    assert acquired.wait(5.0)

    def done():
        release.set()
        thread.join(5.0)
        assert not thread.is_alive()

    return done


class TestAdmissionController:
    def test_fast_path_takes_a_free_slot(self):
        controller = AdmissionController(slots=2, max_queue_depth=4)
        controller.acquire(0, Governor())
        assert controller.slots_free() == 1
        controller.release()
        assert controller.slots_free() == 2

    def test_full_queue_sheds_with_depth_and_backoff(self):
        controller = AdmissionController(
            slots=1, max_queue_depth=0, backoff_base=0.1
        )
        done = occupy_slot(controller)
        try:
            with pytest.raises(ServiceOverloaded) as info:
                controller.acquire(0, Governor(), sql="select 1")
            assert info.value.retryable
            assert info.value.queue_depth == 0
            assert info.value.suggested_backoff == pytest.approx(0.1)
            assert info.value.sql == "select 1"
            assert controller.sheds == 1
        finally:
            done()

    def test_released_slot_goes_to_best_priority_waiter(self):
        controller = AdmissionController(slots=1, max_queue_depth=8)
        done = occupy_slot(controller)
        order: list[str] = []
        started = threading.Barrier(3, timeout=10.0)

        def wait_for_slot(name: str, priority: int):
            governor = Governor()
            started.wait()
            # The low-priority waiter queues first, so FIFO alone would
            # admit it first; priority must win instead.
            if priority == 0:
                time.sleep(0.1)
            controller.acquire(priority, governor)
            order.append(name)
            controller.release()

        batch = threading.Thread(target=wait_for_slot, args=("batch", 10))
        interactive = threading.Thread(
            target=wait_for_slot, args=("interactive", 0)
        )
        batch.start()
        interactive.start()
        started.wait()
        time.sleep(0.3)  # both are now queued behind the held slot
        done()
        batch.join(10.0)
        interactive.join(10.0)
        assert order == ["interactive", "batch"]
        assert controller.slots_free() == 1
        assert controller.peak_queue_depth == 2

    def test_queued_waiter_times_out_with_queued_context(self):
        controller = AdmissionController(slots=1, max_queue_depth=8)
        done = occupy_slot(controller)
        try:
            governor = Governor(Budget(timeout=0.1))
            start = time.monotonic()
            with pytest.raises(TimeoutExceeded) as info:
                controller.acquire(0, governor)
            assert time.monotonic() - start < 5.0
            assert "admission queue" in str(info.value)
            assert info.value.queued_seconds == pytest.approx(0.1, abs=0.2)
            assert info.value.executing_seconds == 0.0
        finally:
            done()

    def test_stop_rejects_new_and_queued_acquires(self):
        controller = AdmissionController(slots=1, max_queue_depth=8)
        done = occupy_slot(controller)
        errors: list[Exception] = []

        def queued():
            try:
                controller.acquire(0, Governor())
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        waiter = threading.Thread(target=queued)
        waiter.start()
        time.sleep(0.1)
        controller.stop()
        waiter.join(5.0)
        assert not waiter.is_alive()
        assert len(errors) == 1 and isinstance(errors[0], ServiceStopped)
        with pytest.raises(ServiceStopped):
            controller.acquire(0, Governor())
        done()

    def test_cancelled_governor_escapes_the_queue(self):
        controller = AdmissionController(slots=1, max_queue_depth=8)
        done = occupy_slot(controller)
        try:
            governor = Governor()
            governor.cancel("client gave up")
            with pytest.raises(QueryCancelled, match="client gave up"):
                controller.acquire(0, governor)
        finally:
            done()


class TestServiceQueries:
    def test_sql_round_trip_and_stats(self):
        service = Service(small_db())
        assert service.sql("select count(*) from t").rows == [(30,)]
        assert service.sql("select sum(a) from t").rows == [(435,)]
        stats = service.stats()
        assert stats["submitted"] == 2
        assert stats["completed"] == 2
        assert stats["active"] == 0
        assert stats["slots_free"] == stats["slots"]

    def test_unknown_query_class_is_typed(self):
        service = Service(small_db())
        with pytest.raises(ServiceError, match="unknown query class"):
            service.sql("select count(*) from t", query_class="nope")
        with pytest.raises(ServiceError, match="unknown query class"):
            service.session(query_class="nope")

    def test_class_budget_applies_when_no_explicit_knob(self):
        config = ServiceConfig(
            classes={
                "tiny": QueryClass("tiny", priority=0, budget=Budget(max_rows=2)),
            },
            default_class="tiny",
        )
        service = Service(small_db(), config=config)
        from repro.errors import RowBudgetExceeded

        with pytest.raises(RowBudgetExceeded):
            service.sql("select a from t")
        # An explicit knob overrides the class default.
        assert len(service.sql("select a from t", max_rows=100).rows) == 30
        assert service.stats()["failed"] == 1

    def test_query_errors_keep_slots_healthy(self):
        service = Service(small_db())
        with pytest.raises(CatalogError):
            service.sql("select * from missing_table")
        stats = service.stats()
        assert stats["failed"] == 1
        assert stats["slots_free"] == stats["slots"]
        assert service.sql("select count(*) from t").rows == [(30,)]

    def test_shed_when_slot_held_and_queue_full(self):
        service = Service(
            small_db(),
            config=ServiceConfig(max_concurrency=1, max_queue_depth=0),
        )
        done = occupy_slot(service.admission)
        try:
            with pytest.raises(ServiceOverloaded) as info:
                service.sql("select count(*) from t")
            assert info.value.suggested_backoff > 0
            assert service.stats()["shed"] == 1
        finally:
            done()
        assert service.sql("select count(*) from t").rows == [(30,)]

    def test_queued_deadline_counts_against_timeout(self):
        # Satellite (c): a query admitted late must time out with context
        # distinguishing queue wait from execution time.
        service = Service(
            small_db(),
            config=ServiceConfig(max_concurrency=1, max_queue_depth=4),
        )
        done = occupy_slot(service.admission)
        try:
            with pytest.raises(TimeoutExceeded) as info:
                service.sql("select count(*) from t", timeout=0.1)
            assert info.value.queued_seconds > 0
            assert info.value.executing_seconds == 0.0
            assert "before executing at all" in str(info.value)
            assert service.stats()["expired_queued"] == 1
        finally:
            done()

    def test_executing_timeout_reports_queued_vs_executing_split(self):
        fake_now = [100.0]
        governor = Governor(Budget(timeout=1.0), clock=lambda: fake_now[0])
        fake_now[0] = 100.3
        governor.mark_admitted()
        fake_now[0] = 101.2  # 0.3s queued + 0.9s executing > 1.0s budget
        error = governor.timeout_error()
        assert error.queued_seconds == pytest.approx(0.3)
        assert error.executing_seconds == pytest.approx(0.9)
        assert "queued 0.300s, executing 0.900s" in str(error)


class TestSnapshotIsolation:
    def test_reads_pin_a_version_while_writes_land(self):
        service = Service(small_db())
        snap = service.database.snapshot()
        service.insert("t", [(100, 0), (101, 1)])
        # New reads see the write; the pinned snapshot never does.
        assert service.sql("select count(*) from t").rows == [(32,)]
        assert snap.sql("select count(*) from t").rows == [(30,)]

    def test_ddl_is_atomic_to_readers(self):
        service = Service(small_db())
        snap = service.database.snapshot()
        service.create_table("extra", [("x", DataType.INTEGER)], [(1,)])
        assert service.sql("select count(*) from extra").rows == [(1,)]
        with pytest.raises(CatalogError):
            snap.sql("select count(*) from extra")
        service.drop_table("extra")
        with pytest.raises(CatalogError):
            service.sql("select count(*) from extra")

    def test_concurrent_readers_never_see_torn_batches(self):
        # A deterministic mini version of the chaos ledger invariant:
        # every write is a zero-sum pair, so any torn snapshot would
        # break sum == 0.
        db = Database()
        db.create_table(
            "ledger", [("amount", DataType.INTEGER)], [(5,), (-5,)]
        )
        service = Service(db)
        stop = threading.Event()
        bad: list[tuple] = []

        def reader():
            while not stop.is_set():
                rows = service.sql("select sum(amount) from ledger").rows
                if rows[0][0] != 0:
                    bad.append(rows[0])
                    return

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        for value in range(1, 40):
            service.insert("ledger", [(value,), (-value,)])
        stop.set()
        for thread in threads:
            thread.join(10.0)
            assert not thread.is_alive()
        assert bad == []
        assert service.sql("select count(*) from ledger").rows == [(80,)]


class TestShutdown:
    def test_idle_shutdown_is_clean_and_idempotent(self):
        service = Service(small_db())
        report = service.shutdown(drain_timeout=1.0)
        assert report.clean
        assert report.in_flight == 0
        assert service.shutdown() is report
        assert service.health()["status"] == "stopped"

    def test_rejects_everything_after_shutdown(self):
        service = Service(small_db())
        service.shutdown()
        with pytest.raises(ServiceStopped):
            service.sql("select count(*) from t")
        with pytest.raises(ServiceStopped):
            service.insert("t", [(1, 1)])
        with pytest.raises(ServiceStopped):
            service.create_table("u", [("x", DataType.INTEGER)])
        with pytest.raises(ServiceStopped):
            service.drop_table("t")
        assert service.stats()["rejected_stopped"] == 1

    def test_drains_in_flight_queries(self):
        service = Service(small_db())
        results: list[list] = []

        def client():
            results.append(service.sql("select count(*) from t").rows)

        thread = threading.Thread(target=client)
        thread.start()
        thread.join(10.0)
        report = service.shutdown(drain_timeout=5.0)
        assert report.clean
        assert results == [[(30,)]]

    def test_cancels_stragglers_through_the_governor(self):
        # A delayed thread-backend GApply keeps one query in flight well
        # past the drain window; shutdown must cancel it (typed error on
        # the client thread) and still report a clean exit.
        service = Service(small_db())
        running = threading.Event()
        outcome: list[object] = []
        sql = (
            "select gapply(select sum(a) from g) as (total) "
            "from t group by b : g"
        )

        def client():
            try:
                with fault_injection(
                    FaultPlan(seed=0, delay_batch=0, delay_seconds=1.5)
                ):
                    running.set()
                    service.sql(
                        sql, optimize=False, backend="thread", parallelism=2
                    )
                outcome.append("completed")
            except QueryCancelled as error:
                outcome.append(error)

        thread = threading.Thread(target=client)
        thread.start()
        assert running.wait(5.0)
        time.sleep(0.2)  # let the query get into the delayed batch
        report = service.shutdown(drain_timeout=0.1, cancel_grace=30.0)
        thread.join(30.0)
        assert not thread.is_alive()
        assert report.leaked == 0
        # Either the query slipped under the drain window or it was
        # cancelled; both are clean exits, and the accounting must match.
        if report.cancelled:
            assert isinstance(outcome[0], QueryCancelled)
        else:
            assert outcome == ["completed"]
        assert service.stats()["active"] == 0

    def test_context_manager_shuts_down(self):
        with Service(small_db()) as service:
            assert service.sql("select count(*) from t").rows == [(30,)]
        with pytest.raises(ServiceStopped):
            service.sql("select count(*) from t")


class TestSession:
    def test_session_defaults_and_accounting(self):
        service = Service(small_db())
        with service.session(client="alice", query_class="batch") as session:
            assert session.sql("select count(*) from t").rows == [(30,)]
            session.insert("t", [(200, 2)])
            session.create_table("s", [("x", DataType.INTEGER)], [(9,)])
            session.drop_table("s")
        counters = session.queries.snapshot()
        assert counters == {"queries": 1, "writes": 1, "ddl": 2}
        with pytest.raises(ServiceError, match="closed"):
            session.sql("select 1 from t")

    def test_session_error_accounting(self):
        service = Service(small_db())
        session = service.session(client="bob")
        with pytest.raises(CatalogError):
            session.sql("select * from nope")
        assert session.queries.get("errors") == 1


class TestConfigValidation:
    def test_bad_knobs_are_typed(self):
        with pytest.raises(ServiceError):
            ServiceConfig(max_concurrency=0)
        with pytest.raises(ServiceError):
            ServiceConfig(max_queue_depth=-1)
        with pytest.raises(ServiceError):
            ServiceConfig(default_class="missing")
