"""Plan cache under concurrency: readers hammering cached shapes while a
writer mutates the catalog.

Invariants:

* **No stale plan vs. a newer catalog** — cache keys carry the catalog
  version and every service query runs on a version-pinned snapshot, so
  every result must be explainable by some committed table state, and a
  single client's successive reads must never go backwards in time.
* **No torn publication** — N threads racing the same cold shape all get
  correct rows, converge on one entry, and the entry's feedback
  accounting covers every execution.
* **Exact hit/miss accounting** — ``LockedCounters`` under the single
  cache lock mean hits + misses equals exactly the number of
  cache-eligible executions, even under races.
"""

from __future__ import annotations

import threading
import traceback

import pytest

from repro.api import Database
from repro.serve import Service, ServiceConfig
from repro.storage import DataType

INITIAL_ROWS = 20
BATCHES = 8
BATCH_ROWS = 10
READERS = 4
OPS_PER_READER = 24


def build_database() -> Database:
    rows = [(i, i % 4, float(i)) for i in range(INITIAL_ROWS)]
    db = Database()
    db.create_table(
        "events",
        [("id", DataType.INTEGER), ("grp", DataType.INTEGER),
         ("v", DataType.FLOAT)],
        rows,
        primary_key=["id"],
    )
    return db


class TestStormWithWriter:
    """Readers over a small set of parameterized shapes; one writer
    issuing inserts and DDL, each bumping the catalog version."""

    @pytest.fixture
    def service(self):
        config = ServiceConfig(max_concurrency=8, max_queue_depth=256)
        with Service(build_database(), config=config) as svc:
            yield svc

    def test_no_stale_plans_and_exact_accounting(self, service):
        # Rows are id 0..total-1, so count(id >= k) == total - k: every
        # result reveals the snapshot's total row count exactly.
        valid_totals = {
            INITIAL_ROWS + BATCH_ROWS * j for j in range(BATCHES + 1)
        }
        errors: list[str] = []
        observed_totals: list[list[int]] = [[] for _ in range(READERS)]
        barrier = threading.Barrier(READERS + 1)

        def reader(slot: int) -> None:
            mine = observed_totals[slot]
            try:
                barrier.wait()
                for i in range(OPS_PER_READER):
                    if i % 2:
                        k = i % 4
                        result = service.sql(
                            f"select count(*) from events where id >= {k}"
                        )
                        mine.append(result.rows[0][0] + k)
                    else:
                        result = service.sql(
                            "select grp, count(*) from events group by grp"
                        )
                        mine.append(sum(count for _, count in result.rows))
            except Exception:
                errors.append(traceback.format_exc())

        def writer() -> None:
            try:
                barrier.wait()
                next_id = INITIAL_ROWS
                for j in range(BATCHES):
                    service.insert(
                        "events",
                        [
                            (next_id + i, (next_id + i) % 4,
                             float(next_id + i))
                            for i in range(BATCH_ROWS)
                        ],
                    )
                    next_id += BATCH_ROWS
                    # Unrelated DDL: extra version bumps that must only
                    # ever cause misses, never wrong rows.
                    service.create_table(
                        f"scratch_{j}", [("x", DataType.INTEGER)], [(j,)]
                    )
                    service.drop_table(f"scratch_{j}")
            except Exception:
                errors.append(traceback.format_exc())

        threads = [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(READERS)
        ]
        threads.append(threading.Thread(target=writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, "\n".join(errors)

        for totals in observed_totals:
            assert len(totals) == OPS_PER_READER
            # Every revealed total is a committed state (no torn reads,
            # no phantom rows from a stale plan)...
            assert set(totals) <= valid_totals, (
                f"unexplainable table sizes: {sorted(set(totals) - valid_totals)}"
            )
            # ...and one client's snapshots never move backwards.
            assert totals == sorted(totals), (
                "a later query observed an older catalog state"
            )

        stats = service.stats()
        cache_stats = stats["plan_cache"]
        submitted = READERS * OPS_PER_READER
        assert stats["completed"] == submitted
        # Every query consulted the cache exactly once; accounting under
        # LockedCounters is exact, not approximate.
        assert cache_stats["hits"] + cache_stats["misses"] == submitted
        assert cache_stats["bypass"] == 0
        assert cache_stats["hits"] > 0

        # After the dust settles, nothing planned against an old catalog
        # version remains reachable.
        cache = service.database.plan_cache
        current = service.database.catalog.version
        cache.invalidate_stale(current)
        for entry in cache.entries():
            assert entry.key.catalog_version == current


class TestColdRace:
    """N threads race the very first arrival of one shape."""

    def test_single_entry_no_torn_publication(self):
        db = build_database()
        threads_n = 8
        barrier = threading.Barrier(threads_n)
        errors: list[str] = []
        row_sets: list[list] = []
        lock = threading.Lock()

        def racer() -> None:
            try:
                barrier.wait()
                result = db.sql("select id from events where v < 10.0")
                with lock:
                    row_sets.append(sorted(result.rows))
            except Exception:
                errors.append(traceback.format_exc())

        threads = [
            threading.Thread(target=racer) for _ in range(threads_n)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, "\n".join(errors)
        expected = sorted((i,) for i in range(10))
        assert all(rows == expected for rows in row_sets)

        # One winner, everyone adopted it: a single fully-built entry
        # whose feedback saw every execution.
        assert len(db.plan_cache) == 1
        entry = db.plan_cache.entries()[0]
        assert entry.template is not None
        assert entry.report is not None
        assert entry.executions == threads_n
        stats = db.plan_cache.stats()
        assert stats["hits"] + stats["misses"] == threads_n
        assert stats["misses"] >= 1


class TestSerialAccounting:
    """Deterministic baseline: exact counts with no concurrency."""

    def test_hits_misses_size(self):
        db = build_database()
        shapes = [
            "select count(*) from events",
            "select id from events where v < 5.0",
            "select grp, count(*) from events group by grp",
        ]
        repetitions = 4
        for _ in range(repetitions):
            for sql in shapes:
                db.sql(sql)
        stats = db.plan_cache.stats()
        assert stats["misses"] == len(shapes)
        assert stats["hits"] == len(shapes) * (repetitions - 1)
        assert stats["size"] == len(shapes)
