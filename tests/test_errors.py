"""Tests for the exception taxonomy: every engine failure is a ReproError."""

import pytest

from repro import errors
from repro.api import Database
from repro.storage import DataType


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.AmbiguousColumnError,
            errors.UnknownColumnError,
            errors.TypeCheckError,
            errors.CatalogError,
            errors.ConstraintError,
            errors.SqlSyntaxError,
            errors.BindError,
            errors.PlanError,
            errors.OptimizerError,
            errors.ExecutionError,
            errors.XmlPublishError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_ambiguous_error_carries_candidates(self):
        error = errors.AmbiguousColumnError("x", ["a.x", "b.x"])
        assert error.candidates == ["a.x", "b.x"]
        assert "a.x" in str(error)

    def test_unknown_column_lists_available(self):
        error = errors.UnknownColumnError("q", ["a", "b"])
        assert "a, b" in str(error)

    def test_sql_syntax_error_location(self):
        error = errors.SqlSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7


class TestFailuresSurfaceAsReproErrors:
    """User-facing failure paths never leak bare Python exceptions."""

    @pytest.fixture
    def db(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)], [(1,)])
        return db

    def test_lexer_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select @ from t")

    def test_parser_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select from where")

    def test_binder_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select ghost from t")

    def test_catalog_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select a from phantom")

    def test_division_by_zero(self, db):
        with pytest.raises(errors.ExecutionError):
            db.sql("select a / 0 from t")

    def test_cross_type_comparison(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select a from t where a > 'text'")
