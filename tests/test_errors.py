"""Tests for the exception taxonomy: every engine failure is a ReproError."""

import pytest

from repro import errors
from repro.api import Database
from repro.storage import DataType


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.SchemaError,
            errors.AmbiguousColumnError,
            errors.UnknownColumnError,
            errors.TypeCheckError,
            errors.CatalogError,
            errors.ConstraintError,
            errors.SqlSyntaxError,
            errors.BindError,
            errors.PlanError,
            errors.OptimizerError,
            errors.ExecutionError,
            errors.XmlPublishError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_ambiguous_error_carries_candidates(self):
        error = errors.AmbiguousColumnError("x", ["a.x", "b.x"])
        assert error.candidates == ["a.x", "b.x"]
        assert "a.x" in str(error)

    def test_unknown_column_lists_available(self):
        error = errors.UnknownColumnError("q", ["a", "b"])
        assert "a, b" in str(error)

    def test_sql_syntax_error_location(self):
        error = errors.SqlSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7


class TestFailuresSurfaceAsReproErrors:
    """User-facing failure paths never leak bare Python exceptions."""

    @pytest.fixture
    def db(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)], [(1,)])
        return db

    def test_lexer_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select @ from t")

    def test_parser_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select from where")

    def test_binder_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select ghost from t")

    def test_catalog_failure(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select a from phantom")

    def test_division_by_zero(self, db):
        with pytest.raises(errors.ExecutionError):
            db.sql("select a / 0 from t")

    def test_cross_type_comparison(self, db):
        with pytest.raises(errors.ReproError):
            db.sql("select a from t where a > 'text'")


class TestGovernanceErrors:
    """The robustness additions: budget/cancel/spill/crash error types."""

    @pytest.mark.parametrize(
        "exc",
        [
            errors.QueryCancelled,
            errors.BudgetExceeded,
            errors.TimeoutExceeded,
            errors.MemoryBudgetExceeded,
            errors.RowBudgetExceeded,
            errors.SpillError,
            errors.WorkerCrashed,
        ],
    )
    def test_derive_from_execution_error(self, exc):
        assert issubclass(exc, errors.ExecutionError)
        assert issubclass(exc, errors.ReproError)

    @pytest.mark.parametrize(
        "exc",
        [
            errors.TimeoutExceeded,
            errors.MemoryBudgetExceeded,
            errors.RowBudgetExceeded,
        ],
    )
    def test_budget_violations_share_a_catchall(self, exc):
        assert issubclass(exc, errors.BudgetExceeded)

    def test_worker_crashed_carries_progress(self):
        assert errors.WorkerCrashed("x", consumed_batches=3).consumed_batches == 3


class TestErrorContext:
    def test_first_writer_wins(self):
        error = errors.ExecutionError("boom")
        error.add_context(sql="inner", plan_path="0.1")
        error.add_context(sql="outer", plan_path="")
        assert error.sql == "inner"
        assert error.plan_path == "0.1"

    def test_add_context_returns_self_for_raise_chaining(self):
        error = errors.ExecutionError("boom")
        assert error.add_context(sql="q") is error

    def test_api_attaches_sql_text(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)], [(1,)])
        text = "select ghost from t"
        with pytest.raises(errors.ReproError) as info:
            db.sql(text)
        assert info.value.sql == text

    def test_api_attaches_sql_on_execution_errors(self):
        db = Database()
        db.create_table("t", [("a", DataType.INTEGER)], [(1,)])
        text = "select a / 0 from t"
        with pytest.raises(errors.ExecutionError) as info:
            db.sql(text)
        assert info.value.sql == text
