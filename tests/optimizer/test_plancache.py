"""Unit tests for the plan cache: LRU mechanics, keying, invalidation,
prepared statements, and q-error-driven re-optimization.

The adaptive re-plan test is the headline: a prepared GApply query planned
at a selective threshold drifts when executed at an unselective one, the
q-error feedback trips, and the re-optimized entry carries a estimate
that matches the new parameter regime far better than the stale one.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.errors import BindError, PlanError, ReproError
from repro.optimizer.plancache import (
    CachedPlan,
    PlanCache,
    PlanKey,
    collect_parameters,
    q_error,
    substitute_parameters,
)
from repro.optimizer.planner import PlannerOptions
from repro.storage import DataType


def make_key(digest: str, version: int = 0) -> PlanKey:
    return PlanKey(
        digest=digest, type_tags=("int",), catalog_version=version,
        options_tag="",
    )


def make_entry(digest: str, version: int = 0) -> CachedPlan:
    # LRU/accounting tests never execute the entry, so placeholder
    # statement/template/report objects are fine.
    return CachedPlan(
        key=make_key(digest, version),
        statement=None,
        template=None,
        report=None,
        param_count=1,
        est_rows=10.0,
        qerror_threshold=4.0,
    )


def small_db() -> Database:
    db = Database()
    db.create_table(
        "t",
        [("id", DataType.INTEGER), ("grp", DataType.INTEGER),
         ("v", DataType.FLOAT)],
        [(i, i % 3, float(i)) for i in range(30)],
        primary_key=["id"],
    )
    return db


class TestQError:
    def test_perfect_estimate(self):
        assert q_error(100, 100) == 1.0

    def test_symmetric(self):
        assert q_error(10, 100) == q_error(100, 10)

    def test_zero_actual_is_smoothed(self):
        assert q_error(80, 0) == 81.0

    def test_overestimate_factor(self):
        assert q_error(399, 99) == 4.0


class TestLruMechanics:
    def test_capacity_validation(self):
        with pytest.raises(PlanError):
            PlanCache(capacity=0)
        with pytest.raises(PlanError):
            PlanCache(qerror_threshold=0.5)

    def test_store_and_lookup(self):
        cache = PlanCache(capacity=4)
        entry = make_entry("a")
        assert cache.store(entry) is entry
        assert cache.lookup(entry.key) is entry
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 0

    def test_miss_is_counted(self):
        cache = PlanCache()
        assert cache.lookup(make_key("nope")) is None
        assert cache.stats()["misses"] == 1

    def test_eviction_drops_least_recently_used(self):
        cache = PlanCache(capacity=2)
        a, b, c = make_entry("a"), make_entry("b"), make_entry("c")
        cache.store(a)
        cache.store(b)
        cache.lookup(a.key)  # refresh a: b is now the LRU victim
        cache.store(c)
        assert cache.lookup(a.key) is a
        assert cache.lookup(b.key) is None
        assert cache.lookup(c.key) is c
        assert cache.stats()["evictions"] == 1
        assert len(cache) == 2

    def test_store_race_first_publisher_wins(self):
        cache = PlanCache()
        first, second = make_entry("a"), make_entry("a")
        assert cache.store(first) is first
        # A racing thread that also built the entry adopts the winner's
        # object, so feedback accounting stays on one CachedPlan.
        assert cache.store(second) is first
        assert len(cache) == 1

    def test_stale_versions_swept_on_store(self):
        cache = PlanCache()
        cache.store(make_entry("old", version=1))
        cache.store(make_entry("new", version=2))
        assert len(cache) == 1
        assert cache.stats()["invalidations"] == 1

    def test_invalidate_stale_and_clear(self):
        cache = PlanCache()
        cache.store(make_entry("a", version=1))
        assert cache.invalidate_stale(current_version=1) == 0
        assert cache.invalidate_stale(current_version=2) == 1
        cache.store(make_entry("b", version=2))
        assert cache.clear() == 1
        assert cache.stats()["invalidations"] == 2


class TestReplaceAccounting:
    def test_replace_inherits_history_and_doubles_threshold(self):
        cache = PlanCache()
        old = make_entry("a")
        cache.store(old)
        cache.lookup(old.key)
        cache.record_execution(old, actual_rows=10)
        new = make_entry("a")
        swapped = cache.replace(old, new)
        assert swapped is new
        assert new.executions == old.executions == 1
        assert new.hits == old.hits == 1
        assert new.replans == 1
        assert new.qerror_threshold == 8.0
        assert cache.lookup(old.key) is new
        assert cache.stats()["replans"] == 1

    def test_record_execution_flags_drift(self):
        cache = PlanCache(qerror_threshold=4.0)
        entry = make_entry("a")
        assert not cache.record_execution(entry, actual_rows=10)
        assert cache.record_execution(entry, actual_rows=1000)
        assert entry.max_q_error > 4.0
        assert entry.last_actual_rows == 1000
        assert entry.executions == 2


class TestKeyingThroughDatabase:
    def test_same_shape_different_literals_share_entry(self):
        db = small_db()
        db.sql("select id from t where v < 5.0")
        db.sql("select id from t where v < 25.0")
        stats = db.plan_cache.stats()
        assert stats == {**stats, "misses": 1, "hits": 1, "size": 1}

    def test_different_types_get_different_entries(self):
        db = small_db()
        db.sql("select id from t where v < 5.0")
        db.sql("select id from t where v < 5")  # int, not float
        assert db.plan_cache.stats()["misses"] == 2
        assert len(db.plan_cache) == 2

    def test_logical_options_partition_the_key(self):
        db = small_db()
        db.sql("select id from t where v < 5.0")
        db.sql(
            "select id from t where v < 5.0",
            planner_options=PlannerOptions(
                disabled_rules=("select_pushdown",)
            ),
        )
        assert db.plan_cache.stats()["misses"] == 2

    def test_physical_knobs_share_the_key(self):
        db = small_db()
        db.sql("select id, v from t where v < 5.0")
        hit = db.sql("select id, v from t where v < 5.0", engine="vector")
        assert hit.plan_cache["source"] == "hit"
        assert len(db.plan_cache) == 1

    def test_unoptimized_runs_bypass(self):
        db = small_db()
        db.sql("select id from t", optimize=False)
        db.sql("select id from t", use_plan_cache=False)
        stats = db.plan_cache.stats()
        assert stats["bypass"] == 2
        assert stats["misses"] == 0

    def test_use_plan_cache_demands_a_cache(self):
        db = Database(plan_cache=None)
        db.create_table("t", [("id", DataType.INTEGER)], [(1,)])
        with pytest.raises(PlanError):
            db.sql("select id from t", use_plan_cache=True)

    def test_catalog_mutation_invalidates(self):
        db = small_db()
        db.sql("select id from t where v < 5.0")
        db.catalog.insert_rows("t", [(100, 1, 100.0)])
        result = db.sql("select id from t where v < 5.0")
        assert result.plan_cache["source"] == "miss"
        # The old-version entry was swept when the new one was stored.
        assert len(db.plan_cache) == 1
        assert db.plan_cache.stats()["invalidations"] == 1

    def test_snapshot_shares_the_cache(self):
        db = small_db()
        db.sql("select id from t where v < 5.0")
        snap = db.snapshot()
        assert snap.plan_cache is db.plan_cache
        hit = snap.sql("select id from t where v < 9.0")
        assert hit.plan_cache["source"] == "hit"


class TestExplicitMarkers:
    def test_markers_require_params(self):
        db = small_db()
        with pytest.raises(BindError):
            db.sql("select id from t where v < $1")

    def test_wrong_arity_rejected(self):
        db = small_db()
        with pytest.raises(BindError):
            db.sql("select id from t where v < $1", params=[1.0, 2.0])

    def test_stray_params_rejected(self):
        db = small_db()
        with pytest.raises(BindError):
            db.sql("select id from t", params=[1.0])

    def test_sparse_markers_rejected(self):
        db = small_db()
        with pytest.raises(ReproError):
            db.sql("select id from t where v < $2", params=[1.0, 2.0])

    def test_markers_and_literal_text_share_an_entry(self):
        db = small_db()
        cold = db.sql("select id from t where v < 5.0")
        hit = db.sql("select id from t where v < $1", params=[5.0])
        assert hit.plan_cache["source"] == "hit"
        assert hit.plan_cache["key"] == cold.plan_cache["key"]
        assert sorted(hit.rows) == sorted(cold.rows)


class TestPrepared:
    def test_extraction_mode_defaults_to_original_literals(self):
        db = small_db()
        prepared = db.prepare("select id from t where v < 5.0")
        assert prepared.parameter_count == 1
        default = prepared.execute()
        rebound = prepared.execute([5.0])
        assert sorted(default.rows) == sorted(rebound.rows)
        assert rebound.plan_cache["source"] == "hit"

    def test_explicit_mode_requires_params(self):
        db = small_db()
        prepared = db.prepare("select id from t where v < $1")
        with pytest.raises(BindError):
            prepared.execute()
        with pytest.raises(BindError):
            prepared.execute([1.0, 2.0])
        assert len(prepared.execute([5.0]).rows) == 5

    def test_no_literal_query_prepares_fine(self):
        db = small_db()
        prepared = db.prepare("select count(*) from t")
        assert prepared.parameter_count == 0
        assert prepared.execute().rows == [(30,)]


class TestSubstitution:
    def test_substitute_and_collect(self):
        db = small_db()
        db.sql("select id from t where v < 5.0 and grp = 1")
        entry = db.plan_cache.entries()[0]
        markers = collect_parameters(entry.template)
        assert sorted(m.index for m in markers) == [0, 1]
        concrete = substitute_parameters(entry.template, (9.0, 2))
        assert not collect_parameters(concrete)

    def test_missing_values_raise(self):
        db = small_db()
        db.sql("select id from t where v < 5.0 and grp = 1")
        entry = db.plan_cache.entries()[0]
        with pytest.raises(PlanError):
            substitute_parameters(entry.template, (9.0,))


class TestQErrorReplan:
    """A drifting parameter regime triggers re-optimization (the paper's
    group-selection queries are exactly the shape whose estimates are
    threshold-sensitive; see ``repro.workloads.rule_queries``)."""

    SQL = """
        select gapply(
            select * from g
            where exists (select ps_suppkey from g where p_retailprice > $1)
        )
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
    """

    def test_replan_produces_better_estimated_plan(self, tpch_catalog):
        db = Database(tpch_catalog)
        prepared = db.prepare(self.SQL)

        # Cold at a threshold whose estimate matches the actuals: the
        # entry settles in without tripping feedback.
        cold = prepared.execute([900.0])
        entry = db.plan_cache.entries()[0]
        stale_est = entry.est_rows
        assert q_error(stale_est, len(cold.rows)) <= entry.qerror_threshold
        assert db.plan_cache.stats()["replans"] == 0

        # Same shape, unselective regime: far fewer groups qualify than
        # the cached (seed-900) estimate promises -> drift past the
        # threshold -> re-optimize with 1200.0 as the seed.
        drifted = prepared.execute([1200.0])
        actual = len(drifted.rows)
        assert drifted.plan_cache["source"] == "hit"
        assert drifted.plan_cache.get("replanned") is True
        assert db.plan_cache.stats()["replans"] == 1

        replanned = db.plan_cache.entries()[0]
        assert replanned is not entry
        assert replanned.replans == 1
        # The optimizer re-ran against the drifted seeds and produced a
        # differently-estimated plan (the template *shape* may coincide —
        # markers print identically — but the plan the cache now serves
        # carries the new regime's cardinality profile end to end).
        assert replanned.est_rows != stale_est
        assert replanned.report.best_estimate != entry.report.best_estimate
        # The whole point: the re-planned entry's estimate fits the new
        # regime much better than the stale one did.
        assert q_error(replanned.est_rows, actual) < q_error(
            stale_est, actual
        )
        # Backoff: the swapped entry re-plans less eagerly.
        assert replanned.qerror_threshold == 2 * db.plan_cache.qerror_threshold

        # The replanned entry keeps serving this shape.
        again = prepared.execute([1200.0])
        assert again.plan_cache["source"] == "hit"
        assert sorted(again.rows) == sorted(drifted.rows)

    def test_backoff_threshold_survives_catalog_mutation(self, tpch_catalog):
        # DESIGN §13.4 regression: a catalog-version bump rebuilds the
        # entry under a new key, and the rebuilt entry used to reset to
        # the default q-error threshold — forgetting the backoff and
        # re-entering the replan churn the backoff had just damped. The
        # cache now remembers the backed-off threshold per plan *shape*
        # (digest + type tags + options, version-independent) and seeds
        # rebuilds from it.
        db = Database(tpch_catalog)
        prepared = db.prepare(self.SQL)
        prepared.execute([900.0])
        prepared.execute([1200.0])  # drift -> replan -> doubled threshold
        doubled = 2 * db.plan_cache.qerror_threshold
        assert db.plan_cache.entries()[0].qerror_threshold == doubled

        # Mutate the workload's catalog (create + drop leaves the shared
        # session fixture's contents untouched; the version still bumps).
        db.create_table("plancache_scratch", [("k", DataType.INTEGER)], [])
        db.catalog.drop("plancache_scratch")
        rebuilt = prepared.execute([1200.0])
        assert rebuilt.plan_cache["source"] == "miss"  # version changed
        entry = next(
            e
            for e in db.plan_cache.entries()
            if e.key.catalog_version == db.catalog.version
        )
        # The rebuilt entry starts from the remembered backoff, never from
        # the default. (It may legitimately double again if this regime
        # drifts once more — what it must never do is restart at 4.0 and
        # re-enter the churn.)
        assert entry.qerror_threshold >= doubled
        assert db.plan_cache.seed_threshold(entry.key) >= doubled
        # And the memory does not leak across clear(): a fresh build of
        # the same shape reverts to the default threshold.
        db.plan_cache.clear()
        fresh = db.prepare(self.SQL)
        fresh.execute([900.0])
        newest = max(
            db.plan_cache.entries(), key=lambda e: e.key.catalog_version
        )
        assert newest.qerror_threshold == db.plan_cache.qerror_threshold

    def test_replan_rows_identical_to_uncached(self, tpch_catalog):
        cached_db = Database(tpch_catalog)
        plain_db = Database(tpch_catalog, plan_cache=None)
        prepared = cached_db.prepare(self.SQL)
        prepared.execute([900.0])
        for value in (1200.0, 900.0):
            hit = prepared.execute([value])
            reference = plain_db.sql(self.SQL, params=[value])
            assert sorted(hit.rows, key=repr) == sorted(
                reference.rows, key=repr
            )
