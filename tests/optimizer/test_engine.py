"""Unit tests for the transformation engine."""

import pytest

from repro.algebra.expressions import avg, col, eq, lit
from repro.algebra.operators import (
    GApply,
    GroupBy,
    GroupScan,
    Join,
    Select,
    TableScan,
)
from repro.execution.base import run_plan
from repro.optimizer.engine import Optimizer, apply_rule_once, optimize
from repro.optimizer.planner import plan_physical
from repro.optimizer.rules import DEFAULT_RULES, rule_by_name
from repro.storage import Catalog, DataType, table_from_rows


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        table_from_rows(
            "part",
            [
                ("p_partkey", DataType.INTEGER),
                ("p_brand", DataType.STRING),
                ("p_retailprice", DataType.FLOAT),
            ],
            [(i, "A" if i % 2 == 0 else "B", float(i)) for i in range(1, 41)],
            primary_key=["p_partkey"],
        )
    )
    catalog.register(
        table_from_rows(
            "partsupp",
            [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
            [(100 + (i % 4), i) for i in range(1, 41)],
        )
    )
    catalog.add_foreign_key("partsupp", ["ps_partkey"], "part", ["p_partkey"])
    return catalog


def sample_plan(catalog):
    outer = Select(
        Join(
            TableScan.of(catalog.table("partsupp")),
            TableScan.of(catalog.table("part")),
            None,
        ),
        eq(col("ps_partkey"), col("p_partkey")),
    )
    g = outer.schema
    pgq = GroupBy(
        Select(GroupScan("g", g), eq(col("p_brand"), lit("A"))),
        (),
        (avg(col("p_retailprice"), "m"),),
    )
    return GApply(outer, ("ps_suppkey",), pgq, "g")


class TestExploration:
    def test_explore_includes_original(self, catalog):
        optimizer = Optimizer(catalog)
        plan = sample_plan(catalog)
        alternatives = optimizer.explore(plan)
        assert alternatives[0] == plan
        assert len(alternatives) > 1

    def test_exploration_terminates_and_dedupes(self, catalog):
        optimizer = Optimizer(catalog, max_alternatives=500)
        alternatives = optimizer.explore(sample_plan(catalog))
        assert len(alternatives) < 500
        assert len(set(alternatives)) == len(alternatives)

    def test_cap_respected(self, catalog):
        optimizer = Optimizer(catalog, max_alternatives=3)
        assert len(optimizer.explore(sample_plan(catalog))) <= 3


class TestOptimize:
    def test_improves_cost(self, catalog):
        report = optimize(sample_plan(catalog), catalog)
        assert report.best_estimate.cost <= report.original_estimate.cost
        assert report.improved

    def test_preserves_semantics(self, catalog):
        plan = sample_plan(catalog)
        report = optimize(plan, catalog)
        a = sorted(run_plan(plan_physical(plan, catalog)), key=repr)
        b = sorted(run_plan(plan_physical(report.best, catalog)), key=repr)
        assert a == b

    def test_preserves_schema(self, catalog):
        plan = sample_plan(catalog)
        report = optimize(plan, catalog)
        assert report.best.schema == plan.schema

    def test_fired_trace_nonempty_when_changed(self, catalog):
        report = optimize(sample_plan(catalog), catalog)
        if report.best != sample_plan(catalog):
            assert report.fired

    def test_empty_rule_set_returns_original(self, catalog):
        plan = sample_plan(catalog)
        report = optimize(plan, catalog, rules=[])
        assert report.best == plan
        assert report.explored == 1

    def test_subset_of_rules(self, catalog):
        plan = sample_plan(catalog)
        only_pushdown = [rule_by_name("select_pushdown")]
        report = optimize(plan, catalog, rules=only_pushdown)
        assert isinstance(report.best, GApply)
        assert isinstance(report.best.outer, Join)


class TestApplyRuleOnce:
    def test_returns_none_when_no_match(self, catalog):
        scan = TableScan.of(catalog.table("part"))
        assert apply_rule_once(scan, rule_by_name("gapply_to_groupby"), catalog) is None

    def test_applies_at_first_matching_position(self, catalog):
        plan = sample_plan(catalog)
        rewritten = apply_rule_once(plan, rule_by_name("select_pushdown"), catalog)
        assert rewritten is not None
        assert rewritten != plan

    def test_all_default_rules_have_unique_names(self):
        names = [rule.name for rule in DEFAULT_RULES]
        assert len(set(names)) == len(names)

    def test_rule_by_name_unknown(self):
        with pytest.raises(KeyError):
            rule_by_name("no_such_rule")
