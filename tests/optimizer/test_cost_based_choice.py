"""The optimizer's cost-based *choice* among rule alternatives.

Table 1 shows some rules win or lose depending on parameters; the paper's
point of costing (Section 4.4) is that a Volcano optimizer should fire
them only when beneficial. These tests check the end-to-end choice: with
the full rule set and the cost model, the chosen plan's measured work is
never substantially worse than either alternative's.
"""

import pytest

from repro.bench.harness import (
    bind,
    lower,
    measure_physical,
    optimize_with,
    traditional_rules,
)
from repro.optimizer.engine import Optimizer, apply_rule_once
from repro.optimizer.rules import rule_by_name
from repro.storage import Catalog
from repro.workloads.rule_queries import (
    EXISTS_SWEEP,
    SELECTION_SWEEP,
)
from repro.workloads.tpch import TpchConfig, load_tpch


@pytest.fixture(scope="module")
def catalog() -> Catalog:
    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=0.05))
    return catalog


def chosen_work(catalog, sql) -> int:
    best = optimize_with(catalog, bind(catalog, sql))
    return measure_physical(lower(catalog, best), repetitions=1).work


def forced_work(catalog, sql, rule_name, fire: bool) -> int:
    normalized = optimize_with(catalog, bind(catalog, sql), traditional_rules())
    if fire:
        rewritten = apply_rule_once(
            normalized, rule_by_name(rule_name), catalog
        )
        assert rewritten is not None
        normalized = rewritten
    return measure_physical(lower(catalog, normalized), repetitions=1).work


class TestCostBasedSelection:
    def test_selective_covering_range_is_exploited(self, catalog):
        """At a selective threshold the full optimizer must do roughly as
        well as hand-firing the selection rule."""
        parameter, sql = SELECTION_SWEEP.instances()[1]
        chosen = chosen_work(catalog, sql)
        hand_fired = forced_work(catalog, sql, "selection_before_gapply", True)
        not_fired = forced_work(catalog, sql, "selection_before_gapply", False)
        assert chosen <= hand_fired * 1.6
        assert chosen < not_fired

    def test_unselective_group_selection_not_chosen_blindly(self, catalog):
        """At threshold 0 every group qualifies; the rewrite only adds a
        reconstruction join. The cost-based choice must not be worse than
        the unrewritten plan."""
        parameter, sql = EXISTS_SWEEP.instances()[-1]  # threshold 0.0
        chosen = chosen_work(catalog, sql)
        not_fired = forced_work(catalog, sql, "exists_group_selection", False)
        assert chosen <= not_fired * 1.25

    def test_report_costs_are_monotone(self, catalog):
        parameter, sql = SELECTION_SWEEP.instances()[0]
        report = Optimizer(catalog).optimize(bind(catalog, sql))
        assert report.best_estimate.cost <= report.original_estimate.cost
        assert report.explored >= 1
