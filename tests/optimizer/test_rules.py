"""Unit tests for each transformation rule: pattern matching, guards, and
semantics preservation (every rewrite must produce the same multiset).

The Figure tests (F3-F7) build the paper's illustrative plans explicitly.
"""

import pytest

from repro.algebra.expressions import (
    avg,
    col,
    count_star,
    eq,
    gt,
    lit,
    min_,
)
from repro.algebra.operators import (
    Alias,
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    Project,
    Prune,
    Remap,
    Select,
    TableScan,
    UnionAll,
)
from repro.execution.base import run_plan
from repro.optimizer.engine import apply_rule_once, rewrite_everywhere
from repro.optimizer.planner import plan_physical
from repro.optimizer.rules import rule_by_name
from repro.optimizer.rules.base import RuleContext
from repro.storage import Catalog, DataType, table_from_rows


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        table_from_rows(
            "part",
            [
                ("p_partkey", DataType.INTEGER),
                ("p_brand", DataType.STRING),
                ("p_name", DataType.STRING),
                ("p_retailprice", DataType.FLOAT),
            ],
            [
                (i, "A" if i % 3 == 0 else ("B" if i % 3 == 1 else "C"),
                 f"part{i}", float(i * 7 % 50 + 1))
                for i in range(1, 31)
            ],
            primary_key=["p_partkey"],
        )
    )
    catalog.register(
        table_from_rows(
            "partsupp",
            [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
            [(100 + (i % 5), i) for i in range(1, 31)],
        )
    )
    catalog.register(
        table_from_rows(
            "supplier",
            [("s_suppkey", DataType.INTEGER), ("s_name", DataType.STRING)],
            [(100 + i, f"supp{i}") for i in range(5)],
            primary_key=["s_suppkey"],
        )
    )
    catalog.add_foreign_key("partsupp", ["ps_partkey"], "part", ["p_partkey"])
    catalog.add_foreign_key("partsupp", ["ps_suppkey"], "supplier", ["s_suppkey"])
    return catalog


def outer_join(catalog):
    return Join(
        TableScan.of(catalog.table("partsupp")),
        TableScan.of(catalog.table("part")),
        eq(col("ps_partkey"), col("p_partkey")),
    )


def assert_equivalent(catalog, original, rewritten):
    a = sorted(run_plan(plan_physical(original, catalog)), key=repr)
    b = sorted(run_plan(plan_physical(rewritten, catalog)), key=repr)
    assert a == b
    assert original.schema == rewritten.schema


class TestSelectionBeforeGApply:
    def figure3_plan(self, catalog):
        """Figure 3: parts of brand A priced above the average of brand B."""
        outer = outer_join(catalog)
        g = outer.schema
        inner_avg = GroupBy(
            Select(GroupScan("g", g), eq(col("p_brand"), lit("B"))),
            (),
            (avg(col("p_retailprice"), "avg_b"),),
        )
        pgq = Project(
            Select(
                Apply(
                    Select(GroupScan("g", g), eq(col("p_brand"), lit("A"))),
                    inner_avg,
                ),
                gt(col("p_retailprice"), col("avg_b")),
            ),
            ((col("p_name"), "name"),),
        )
        return GApply(outer, ("ps_suppkey",), pgq, "g")

    def test_figure3_fires_with_disjunctive_range(self, catalog):
        plan = self.figure3_plan(catalog)
        rule = rule_by_name("selection_before_gapply")
        rewritten = apply_rule_once(plan, rule, catalog)
        assert rewritten is not None
        # the covering range (brand A or brand B) now guards the outer query
        assert isinstance(rewritten.outer, Select)
        assert "A" in str(rewritten.outer.predicate)
        assert "B" in str(rewritten.outer.predicate)

    def test_figure3_semantics_preserved(self, catalog):
        plan = self.figure3_plan(catalog)
        rewritten = apply_rule_once(
            plan, rule_by_name("selection_before_gapply"), catalog
        )
        assert_equivalent(catalog, plan, rewritten)

    def test_blocked_by_aggregate_output(self, catalog):
        """PGQ returning an aggregate row is not emptyOnEmpty -> no firing."""
        outer = outer_join(catalog)
        g = outer.schema
        pgq = UnionAll(
            (
                Project(
                    Select(GroupScan("g", g), eq(col("p_brand"), lit("A"))),
                    ((col("p_retailprice"), "v"),),
                ),
                Project(
                    GroupBy(
                        Select(GroupScan("g", g), eq(col("p_brand"), lit("B"))),
                        (),
                        (avg(col("p_retailprice"), "m"),),
                    ),
                    ((col("m"), "v"),),
                ),
            )
        )
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        rule = rule_by_name("selection_before_gapply")
        assert apply_rule_once(plan, rule, catalog) is None

    def test_no_refire_on_own_output(self, catalog):
        plan = self.figure3_plan(catalog)
        rule = rule_by_name("selection_before_gapply")
        once = apply_rule_once(plan, rule, catalog)
        context = RuleContext(catalog)
        assert rule.apply(once, context) == []

    def test_eliminates_equivalent_select(self, catalog):
        """PGQ = sigma_A(group): pushing A outer removes the inner select."""
        outer = outer_join(catalog)
        g = outer.schema
        condition = eq(col("p_brand"), lit("A"))
        pgq = Project(
            Select(GroupScan("g", g), condition), ((col("p_name"), "n"),)
        )
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        rewritten = apply_rule_once(
            plan, rule_by_name("selection_before_gapply"), catalog
        )
        assert rewritten is not None
        assert not any(
            isinstance(node, Select) for node in rewritten.per_group.walk()
        )
        assert_equivalent(catalog, plan, rewritten)


class TestProjectionBeforeGApply:
    def test_prunes_unreferenced_columns(self, catalog):
        outer = outer_join(catalog)
        g = outer.schema
        pgq = GroupBy(GroupScan("g", g), (), (avg(col("p_retailprice"), "m"),))
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        rewritten = apply_rule_once(
            plan, rule_by_name("projection_before_gapply"), catalog
        )
        assert rewritten is not None
        assert isinstance(rewritten.outer, Prune)
        assert set(rewritten.outer.references) == {
            "partsupp.ps_suppkey",
            "part.p_retailprice",
        }
        assert_equivalent(catalog, plan, rewritten)

    def test_skips_whole_group_passthrough(self, catalog):
        outer = outer_join(catalog)
        pgq = GroupScan("g", outer.schema)
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        assert (
            apply_rule_once(plan, rule_by_name("projection_before_gapply"), catalog)
            is None
        )

    def test_skips_when_everything_referenced(self, catalog):
        outer = outer_join(catalog)
        g = outer.schema
        items = tuple((col(c.qualified_name), f"c{i}") for i, c in enumerate(g))
        pgq = Project(GroupScan("g", g), items)
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        assert (
            apply_rule_once(plan, rule_by_name("projection_before_gapply"), catalog)
            is None
        )


class TestGApplyToGroupBy:
    def test_figure4_pure_aggregation(self, catalog):
        outer = outer_join(catalog)
        pgq = GroupBy(
            GroupScan("g", outer.schema),
            (),
            (count_star("n"), avg(col("p_retailprice"), "m")),
        )
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        rewritten = apply_rule_once(plan, rule_by_name("gapply_to_groupby"), catalog)
        assert isinstance(rewritten, GroupBy)
        assert rewritten.keys == ("ps_suppkey",)
        assert_equivalent(catalog, plan, rewritten)

    def test_extended_variant_with_inner_grouping(self, catalog):
        outer = outer_join(catalog)
        pgq = GroupBy(
            GroupScan("g", outer.schema),
            ("p_brand",),
            (count_star("n"),),
        )
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        rewritten = apply_rule_once(plan, rule_by_name("gapply_to_groupby"), catalog)
        assert isinstance(rewritten, GroupBy)
        assert rewritten.keys == ("ps_suppkey", "p_brand")
        assert_equivalent(catalog, plan, rewritten)

    def test_rename_wrapper_handled(self, catalog):
        outer = outer_join(catalog)
        grouped = GroupBy(
            GroupScan("g", outer.schema), (), (count_star("n"),)
        )
        pgq = Project(grouped, ((col("n"), "total"),))
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        rewritten = apply_rule_once(plan, rule_by_name("gapply_to_groupby"), catalog)
        assert isinstance(rewritten, Remap)
        assert_equivalent(catalog, plan, rewritten)

    def test_non_aggregate_pgq_not_matched(self, catalog):
        outer = outer_join(catalog)
        pgq = Select(GroupScan("g", outer.schema), gt(col("p_retailprice"), lit(5.0)))
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        assert apply_rule_once(plan, rule_by_name("gapply_to_groupby"), catalog) is None


class TestGroupSelection:
    def exists_plan(self, catalog, threshold=40.0):
        outer = outer_join(catalog)
        g = outer.schema
        pgq = Apply(
            GroupScan("g", g),
            Exists(Select(GroupScan("g", g), gt(col("p_retailprice"), lit(threshold)))),
        )
        return GApply(outer, ("ps_suppkey",), pgq, "g")

    def test_figure5_6_rewrite_shape(self, catalog):
        plan = self.exists_plan(catalog)
        rewritten = apply_rule_once(
            plan, rule_by_name("exists_group_selection"), catalog
        )
        assert isinstance(rewritten, Join)
        assert isinstance(rewritten.left, Alias)
        assert isinstance(rewritten.left.child, Distinct)

    def test_figure5_6_semantics(self, catalog):
        plan = self.exists_plan(catalog)
        rewritten = apply_rule_once(
            plan, rule_by_name("exists_group_selection"), catalog
        )
        assert_equivalent(catalog, plan, rewritten)

    def test_empty_result_when_nothing_qualifies(self, catalog):
        plan = self.exists_plan(catalog, threshold=1e9)
        rewritten = apply_rule_once(
            plan, rule_by_name("exists_group_selection"), catalog
        )
        assert run_plan(plan_physical(rewritten, catalog)) == []

    def aggregate_plan(self, catalog, threshold=20.0):
        outer = outer_join(catalog)
        g = outer.schema
        test = Select(
            GroupBy(GroupScan("g", g), (), (avg(col("p_retailprice"), "m"),)),
            gt(col("m"), lit(threshold)),
        )
        pgq = Apply(GroupScan("g", g), Exists(test))
        return GApply(outer, ("ps_suppkey",), pgq, "g")

    def test_aggregate_selection_shape(self, catalog):
        plan = self.aggregate_plan(catalog)
        rewritten = apply_rule_once(
            plan, rule_by_name("aggregate_group_selection"), catalog
        )
        assert isinstance(rewritten, Join)
        grouped = [n for n in rewritten.left.walk() if isinstance(n, GroupBy)]
        assert grouped and grouped[0].keys == ("ps_suppkey",)

    def test_aggregate_selection_semantics(self, catalog):
        plan = self.aggregate_plan(catalog)
        rewritten = apply_rule_once(
            plan, rule_by_name("aggregate_group_selection"), catalog
        )
        assert_equivalent(catalog, plan, rewritten)

    def test_exists_rule_rejects_aggregate_pattern(self, catalog):
        plan = self.aggregate_plan(catalog)
        assert (
            apply_rule_once(plan, rule_by_name("exists_group_selection"), catalog)
            is None
        )

    def test_aggregate_rule_rejects_exists_pattern(self, catalog):
        plan = self.exists_plan(catalog)
        assert (
            apply_rule_once(plan, rule_by_name("aggregate_group_selection"), catalog)
            is None
        )

    def test_negated_exists_not_matched(self, catalog):
        outer = outer_join(catalog)
        g = outer.schema
        pgq = Apply(
            GroupScan("g", g),
            Exists(
                Select(GroupScan("g", g), gt(col("p_retailprice"), lit(1.0))),
                negated=True,
            ),
        )
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        assert (
            apply_rule_once(plan, rule_by_name("exists_group_selection"), catalog)
            is None
        )


class TestInvariantGrouping:
    def figure7_plan(self, catalog):
        """Figure 7: supplier name and least expensive part per supplier."""
        base = outer_join(catalog)
        full = Join(
            base,
            TableScan.of(catalog.table("supplier")),
            eq(col("ps_suppkey"), col("s_suppkey")),
        )
        g = full.schema
        inner_min = GroupBy(
            GroupScan("g", g), (), (min_(col("p_retailprice"), "m"),)
        )
        pgq = Project(
            Select(
                Apply(GroupScan("g", g), inner_min),
                eq(col("p_retailprice"), col("m")),
            ),
            ((col("s_name"), "sname"), (col("p_name"), "pname")),
        )
        return GApply(full, ("ps_suppkey",), pgq, "g")

    def test_figure7_fires_below_supplier_join(self, catalog):
        plan = self.figure7_plan(catalog)
        rewritten = apply_rule_once(plan, rule_by_name("invariant_grouping"), catalog)
        assert rewritten is not None
        # the GApply now sits below the supplier join
        gapplies = [n for n in rewritten.walk() if isinstance(n, GApply)]
        assert len(gapplies) == 1
        assert not gapplies[0].outer.contains(TableScan) or all(
            scan.table_name != "supplier"
            for scan in gapplies[0].outer.walk()
            if isinstance(scan, TableScan)
        )

    def test_figure7_semantics(self, catalog):
        plan = self.figure7_plan(catalog)
        rewritten = apply_rule_once(plan, rule_by_name("invariant_grouping"), catalog)
        assert_equivalent(catalog, plan, rewritten)

    def test_requires_fk_join_above(self, catalog):
        """A non-foreign-key join above the candidate blocks the rule."""
        base = outer_join(catalog)
        full = Join(
            base,
            TableScan.of(catalog.table("supplier")),
            gt(col("ps_suppkey"), col("s_suppkey")),  # theta join, not FK
        )
        g = full.schema
        pgq = Project(
            Select(GroupScan("g", g), gt(col("p_retailprice"), lit(10.0))),
            ((col("s_name"), "sname"),),
        )
        plan = GApply(full, ("ps_suppkey",), pgq, "g")
        assert (
            apply_rule_once(plan, rule_by_name("invariant_grouping"), catalog) is None
        )


class TestGenericAndCleanupRules:
    def test_push_select_into_per_group(self, catalog):
        outer = outer_join(catalog)
        pgq = GroupBy(
            GroupScan("g", outer.schema), ("p_brand",), (count_star("n"),)
        )
        plan = Select(
            GApply(outer, ("ps_suppkey",), pgq, "g"), gt(col("n"), lit(1))
        )
        rewritten = apply_rule_once(
            plan, rule_by_name("push_select_into_per_group"), catalog
        )
        assert isinstance(rewritten, GApply)
        assert isinstance(rewritten.per_group, Select)
        assert_equivalent(catalog, plan, rewritten)

    def test_push_select_blocked_for_key_columns(self, catalog):
        outer = outer_join(catalog)
        pgq = GroupBy(GroupScan("g", outer.schema), (), (count_star("n"),))
        plan = Select(
            GApply(outer, ("ps_suppkey",), pgq, "g"),
            gt(col("ps_suppkey"), lit(100)),
        )
        assert (
            apply_rule_once(plan, rule_by_name("push_select_into_per_group"), catalog)
            is None
        )

    def test_push_project_into_per_group(self, catalog):
        outer = outer_join(catalog)
        pgq = GroupBy(
            GroupScan("g", outer.schema),
            (),
            (count_star("n"), avg(col("p_retailprice"), "m")),
        )
        inner_plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        plan = Prune(inner_plan, ("partsupp.ps_suppkey", "n"))
        rewritten = apply_rule_once(
            plan, rule_by_name("push_project_into_per_group"), catalog
        )
        assert rewritten is not None
        assert_equivalent(catalog, plan, rewritten)

    def test_select_pushdown_through_join(self, catalog):
        plan = Select(
            Join(
                TableScan.of(catalog.table("partsupp")),
                TableScan.of(catalog.table("part")),
                None,
            ),
            eq(col("ps_partkey"), col("p_partkey")),
        )
        rewritten = apply_rule_once(plan, rule_by_name("select_pushdown"), catalog)
        assert isinstance(rewritten, Join)
        assert rewritten.predicate is not None
        assert_equivalent(catalog, plan, rewritten)

    def test_select_pushdown_splits_sides(self, catalog):
        plan = Select(
            outer_join(catalog),
            eq(col("p_brand"), lit("A")),
        )
        rewritten = apply_rule_once(plan, rule_by_name("select_pushdown"), catalog)
        assert isinstance(rewritten, Join)
        assert isinstance(rewritten.right, Select)
        assert_equivalent(catalog, plan, rewritten)

    def test_collapse_project(self, catalog):
        scan = TableScan.of(catalog.table("part"))
        inner = Project(scan, ((col("p_name"), "n"), (col("p_retailprice"), "p")))
        plan = Project(inner, ((col("p"), "price"),))
        rewritten = apply_rule_once(plan, rule_by_name("collapse_project"), catalog)
        assert isinstance(rewritten, Project)
        assert isinstance(rewritten.child, TableScan)
        assert_equivalent(catalog, plan, rewritten)

    def test_narrow_prune_under_groupby(self, catalog):
        scan = TableScan.of(catalog.table("part"))
        pruned = Prune(scan, tuple(scan.schema.qualified_names()))
        plan = GroupBy(pruned, ("p_brand",), (count_star("n"),))
        rewritten = apply_rule_once(plan, rule_by_name("narrow_prune"), catalog)
        assert rewritten is not None
        assert rewritten.child.references == ("part.p_brand",)
        assert_equivalent(catalog, plan, rewritten)

    def test_rewrite_everywhere_applies_in_subtrees(self, catalog):
        inner = Select(
            Join(
                TableScan.of(catalog.table("partsupp")),
                TableScan.of(catalog.table("part")),
                None,
            ),
            eq(col("ps_partkey"), col("p_partkey")),
        )
        plan = Distinct(inner)
        rewrites = rewrite_everywhere(
            plan, rule_by_name("select_pushdown"), RuleContext(catalog)
        )
        assert len(rewrites) == 1
        assert isinstance(rewrites[0], Distinct)
        assert isinstance(rewrites[0].child, Join)


class TestProjectedGroupSelection:
    """The projected variant of group selection: the per-group query
    projects (constants + columns of) the whole group — the shape the XML
    whole-subtree translation emits."""

    def projected_plan(self, catalog, threshold=40.0):
        from repro.algebra.expressions import lit as _lit

        outer = outer_join(catalog)
        g = outer.schema
        passthrough = Apply(
            GroupScan("g", g),
            Exists(
                Select(GroupScan("g", g), gt(col("p_retailprice"), lit(threshold)))
            ),
        )
        pgq = Project(
            passthrough,
            (
                (_lit(0), "branch"),
                (col("p_name"), "p_name"),
                (col("p_retailprice"), "p_retailprice"),
            ),
        )
        return GApply(outer, ("ps_suppkey",), pgq, "g")

    def test_fires_and_preserves_semantics(self, catalog):
        plan = self.projected_plan(catalog)
        rewritten = apply_rule_once(
            plan, rule_by_name("exists_group_selection"), catalog
        )
        assert rewritten is not None
        assert not rewritten.contains(GApply)
        assert_equivalent(catalog, plan, rewritten)

    def test_empty_when_nothing_qualifies(self, catalog):
        plan = self.projected_plan(catalog, threshold=1e9)
        rewritten = apply_rule_once(
            plan, rule_by_name("exists_group_selection"), catalog
        )
        from repro.execution.base import run_plan as _run

        assert _run(plan_physical(rewritten, catalog)) == []

    def test_projection_with_non_trivial_expression_rejected(self, catalog):
        from repro.algebra.expressions import Arithmetic, ArithmeticOp, lit as _lit

        outer = outer_join(catalog)
        g = outer.schema
        passthrough = Apply(
            GroupScan("g", g),
            Exists(Select(GroupScan("g", g), gt(col("p_retailprice"), _lit(1.0)))),
        )
        pgq = Project(
            passthrough,
            ((Arithmetic(ArithmeticOp.MUL, col("p_retailprice"), _lit(2.0)), "x"),),
        )
        plan = GApply(outer, ("ps_suppkey",), pgq, "g")
        assert (
            apply_rule_once(plan, rule_by_name("exists_group_selection"), catalog)
            is None
        )

    def test_fires_on_translated_xml_pipeline_plan(self, catalog):
        """End to end: the whole-subtree XQuery translation's gapply SQL is
        rewritten by the rule after traditional normalization."""
        from repro.bench.harness import bind, optimize_with, traditional_rules

        catalog.register(
            __import__("repro.storage", fromlist=["table_from_rows"]).table_from_rows(
                "supplier2", [("x", __import__("repro.storage", fromlist=["DataType"]).DataType.INTEGER)], []
            ),
            replace=True,
        )
        sql = (
            "select gapply(select 0 as branch, p_name, p_retailprice from g "
            "where exists (select ps_suppkey from g where p_retailprice > 40)) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g"
        )
        normalized = optimize_with(catalog, bind(catalog, sql), traditional_rules())
        rewritten = apply_rule_once(
            normalized, rule_by_name("exists_group_selection"), catalog
        )
        assert rewritten is not None
        assert_equivalent(catalog, normalized, rewritten)
