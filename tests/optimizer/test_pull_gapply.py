"""Unit tests for the pull-GApply-above-join rule ([12], Section 4.3)."""

import pytest

from repro.algebra.expressions import col, count_star, eq, gt
from repro.algebra.operators import (
    Apply,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    Select,
    TableScan,
)
from repro.execution.base import run_plan
from repro.optimizer.engine import apply_rule_once
from repro.optimizer.planner import plan_physical
from repro.optimizer.rules import rule_by_name
from repro.storage import Catalog, DataType, table_from_rows

RULE = "pull_gapply_above_join"


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        table_from_rows(
            "orders",
            [("o_custkey", DataType.INTEGER), ("o_total", DataType.FLOAT)],
            [(i % 4, float(i)) for i in range(1, 21)],
        )
    )
    catalog.register(
        table_from_rows(
            "customer",
            [("c_custkey", DataType.INTEGER), ("c_name", DataType.STRING)],
            [(i, f"cust{i}") for i in range(4)],
            primary_key=["c_custkey"],
        )
    )
    catalog.add_foreign_key("orders", ["o_custkey"], "customer", ["c_custkey"])
    return catalog


def gapply_plan(catalog):
    outer = TableScan.of(catalog.table("orders"))
    pgq = GroupBy(GroupScan("g", outer.schema), (), (count_star("n"),))
    return GApply(outer, ("o_custkey",), pgq, "g")


def join_above(catalog, gapply):
    return Join(
        gapply,
        TableScan.of(catalog.table("customer")),
        eq(col("o_custkey"), col("c_custkey")),
    )


class TestPullRule:
    def test_fires_on_key_join_above_gapply(self, catalog):
        plan = join_above(catalog, gapply_plan(catalog))
        rewritten = apply_rule_once(plan, rule_by_name(RULE), catalog)
        assert isinstance(rewritten, GApply)
        # the join moved under the GApply
        assert isinstance(rewritten.outer, Join)

    def test_semantics_preserved(self, catalog):
        plan = join_above(catalog, gapply_plan(catalog))
        rewritten = apply_rule_once(plan, rule_by_name(RULE), catalog)
        a = sorted(run_plan(plan_physical(plan, catalog)), key=repr)
        b = sorted(run_plan(plan_physical(rewritten, catalog)), key=repr)
        assert a == b and a

    def test_schema_preserved(self, catalog):
        plan = join_above(catalog, gapply_plan(catalog))
        rewritten = apply_rule_once(plan, rule_by_name(RULE), catalog)
        assert rewritten.schema == plan.schema

    def test_requires_unique_right_key(self, catalog):
        # join against a non-key column: multiplicities would change
        plan = Join(
            gapply_plan(catalog),
            TableScan.of(catalog.table("orders"), "o2"),
            eq(col("o_custkey"), col("o2.o_custkey")),
        )
        assert apply_rule_once(plan, rule_by_name(RULE), catalog) is None

    def test_rejects_join_on_per_group_output(self, catalog):
        # joining on the aggregate output column cannot be lifted
        plan = Join(
            gapply_plan(catalog),
            TableScan.of(catalog.table("customer")),
            eq(col("n"), col("c_custkey")),
        )
        assert apply_rule_once(plan, rule_by_name(RULE), catalog) is None

    def test_rejects_residual_predicates(self, catalog):
        from repro.algebra.expressions import And, lit

        plan = Join(
            gapply_plan(catalog),
            TableScan.of(catalog.table("customer")),
            And(
                eq(col("o_custkey"), col("c_custkey")),
                gt(col("n"), lit(1)),
            ),
        )
        assert apply_rule_once(plan, rule_by_name(RULE), catalog) is None

    def test_inverts_invariant_grouping(self, catalog):
        """push then pull returns an equivalent (costed both ways) plan."""
        plan = join_above(catalog, gapply_plan(catalog))
        pulled = apply_rule_once(plan, rule_by_name(RULE), catalog)
        # per-group query gained the constants cross product
        applies = [n for n in pulled.per_group.walk() if isinstance(n, Apply)]
        assert applies
        a = sorted(run_plan(plan_physical(plan, catalog)), key=repr)
        b = sorted(run_plan(plan_physical(pulled, catalog)), key=repr)
        assert a == b

    def test_filtered_parent_side(self, catalog):
        filtered = Select(
            TableScan.of(catalog.table("customer")),
            gt(col("c_custkey"), lit_int(0)),
        )
        plan = Join(
            gapply_plan(catalog),
            filtered,
            eq(col("o_custkey"), col("c_custkey")),
        )
        rewritten = apply_rule_once(plan, rule_by_name(RULE), catalog)
        assert rewritten is not None
        a = sorted(run_plan(plan_physical(plan, catalog)), key=repr)
        b = sorted(run_plan(plan_physical(rewritten, catalog)), key=repr)
        assert a == b


def lit_int(value):
    from repro.algebra.expressions import Literal

    return Literal(value)
