"""Unit tests for logical-to-physical lowering."""

import pytest

from repro.algebra.expressions import And, avg, col, count_star, eq, gt, lit
from repro.algebra.operators import (
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    JoinKind,
    Limit,
    OrderBy,
    Select,
    TableScan,
    Union,
    UnionAll,
)
from repro.errors import PlanError
from repro.execution.aggregates import PHashAggregate
from repro.execution.apply import PExists
from repro.execution.basic import PDistinct, PFilter, PLimit, PSort, PUnionAll
from repro.execution.gapply import PGApply
from repro.execution.indexscan import PIndexNestedLoopJoin, PIndexSeek
from repro.execution.joins import PHashJoin, PNestedLoopJoin
from repro.execution.scans import PTableScan
from repro.optimizer.planner import Planner, PlannerOptions, plan_physical
from repro.storage import Catalog, DataType, table_from_rows


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        table_from_rows(
            "big",
            [("k", DataType.INTEGER), ("v", DataType.FLOAT)],
            [(i % 20, float(i)) for i in range(200)],
        )
    )
    catalog.register(
        table_from_rows(
            "small",
            [("sk", DataType.INTEGER), ("sv", DataType.STRING)],
            [(i, f"s{i}") for i in range(5)],
            primary_key=["sk"],
        )
    )
    return catalog


def big(catalog):
    return TableScan.of(catalog.table("big"))


def small(catalog):
    return TableScan.of(catalog.table("small"))


class TestBasicLowering:
    def test_scan(self, catalog):
        assert isinstance(plan_physical(big(catalog), catalog), PTableScan)

    def test_select_filter(self, catalog):
        node = Select(big(catalog), gt(col("v"), lit(1.0)))
        assert isinstance(plan_physical(node, catalog), PFilter)

    def test_groupby(self, catalog):
        node = GroupBy(big(catalog), ("k",), (avg(col("v"), "m"),))
        assert isinstance(plan_physical(node, catalog), PHashAggregate)

    def test_distinct_orderby_limit(self, catalog):
        assert isinstance(plan_physical(Distinct(big(catalog)), catalog), PDistinct)
        assert isinstance(
            plan_physical(OrderBy(big(catalog), (("v", True),)), catalog), PSort
        )
        assert isinstance(plan_physical(Limit(big(catalog), 3), catalog), PLimit)

    def test_union_all_and_union(self, catalog):
        u = UnionAll((big(catalog), big(catalog)))
        assert isinstance(plan_physical(u, catalog), PUnionAll)
        d = Union((big(catalog), big(catalog)))
        lowered = plan_physical(d, catalog)
        assert isinstance(lowered, PDistinct)

    def test_exists(self, catalog):
        assert isinstance(plan_physical(Exists(big(catalog)), catalog), PExists)

    def test_unknown_operator_rejected(self, catalog):
        class Strange:
            pass

        with pytest.raises(PlanError):
            Planner(catalog).plan(Strange())  # type: ignore[arg-type]


class TestJoinLowering:
    def test_equijoin_becomes_hash_join(self, catalog):
        node = Join(big(catalog), small(catalog), eq(col("k"), col("sk")))
        lowered = plan_physical(
            node, catalog, PlannerOptions(use_indexes=False)
        )
        assert isinstance(lowered, PHashJoin)

    def test_build_side_is_smaller_input(self, catalog):
        node = Join(big(catalog), small(catalog), eq(col("k"), col("sk")))
        lowered = plan_physical(node, catalog, PlannerOptions(use_indexes=False))
        assert lowered.build_left is False  # right (small) is the build side
        flipped = Join(small(catalog), big(catalog), eq(col("sk"), col("k")))
        lowered = plan_physical(flipped, catalog, PlannerOptions(use_indexes=False))
        assert lowered.build_left is True

    def test_cross_join_nested_loop(self, catalog):
        node = Join(big(catalog), small(catalog), None, JoinKind.CROSS)
        assert isinstance(plan_physical(node, catalog), PNestedLoopJoin)

    def test_theta_join_nested_loop(self, catalog):
        node = Join(big(catalog), small(catalog), gt(col("k"), col("sk")))
        assert isinstance(plan_physical(node, catalog), PNestedLoopJoin)

    def test_residual_conjunct_kept(self, catalog):
        predicate = And(eq(col("k"), col("sk")), gt(col("v"), lit(5.0)))
        node = Join(big(catalog), small(catalog), predicate)
        lowered = plan_physical(node, catalog, PlannerOptions(use_indexes=False))
        assert isinstance(lowered, PHashJoin)
        assert lowered.residual is not None

    def test_prefer_hash_join_disabled(self, catalog):
        node = Join(big(catalog), small(catalog), eq(col("k"), col("sk")))
        lowered = plan_physical(
            node, catalog, PlannerOptions(prefer_hash_join=False)
        )
        assert isinstance(lowered, PNestedLoopJoin)


class TestIndexLowering:
    def test_selection_uses_index(self, catalog):
        catalog.table("big").create_index(["k"])
        node = Select(big(catalog), eq(col("k"), lit(3)))
        lowered = plan_physical(node, catalog)
        assert isinstance(lowered, PIndexSeek)

    def test_range_selection_uses_ordered_index(self, catalog):
        catalog.table("big").create_index(["v"])
        node = Select(big(catalog), gt(col("v"), lit(100.0)))
        lowered = plan_physical(node, catalog)
        assert isinstance(lowered, PIndexSeek)

    def test_index_disabled_by_option(self, catalog):
        catalog.table("big").create_index(["k"])
        node = Select(big(catalog), eq(col("k"), lit(3)))
        lowered = plan_physical(node, catalog, PlannerOptions(use_indexes=False))
        assert isinstance(lowered, PFilter)

    def test_small_outer_drives_index_join(self, catalog):
        catalog.table("big").create_index(["k"])
        node = Join(small(catalog), big(catalog), eq(col("sk"), col("k")))
        lowered = plan_physical(node, catalog)
        assert isinstance(lowered, PIndexNestedLoopJoin)

    def test_index_join_results_match_hash_join(self, catalog):
        from repro.execution.base import run_plan

        catalog.table("big").create_index(["k"])
        node = Join(small(catalog), big(catalog), eq(col("sk"), col("k")))
        with_index = plan_physical(node, catalog)
        without = plan_physical(node, catalog, PlannerOptions(use_indexes=False))
        assert sorted(run_plan(with_index), key=repr) == sorted(
            run_plan(without), key=repr
        )


class TestGApplyLowering:
    def make(self, catalog):
        outer = big(catalog)
        pgq = GroupBy(GroupScan("g", outer.schema), (), (count_star("n"),))
        return GApply(outer, ("k",), pgq, "g")

    def test_partitioning_option(self, catalog):
        node = self.make(catalog)
        hash_plan = plan_physical(node, catalog)
        assert isinstance(hash_plan, PGApply)
        assert hash_plan.partitioning == "hash"
        sort_plan = plan_physical(
            node, catalog, PlannerOptions(gapply_partitioning="sort")
        )
        assert sort_plan.partitioning == "sort"

    def test_same_results_either_partitioning(self, catalog):
        from repro.execution.base import run_plan

        node = self.make(catalog)
        a = run_plan(plan_physical(node, catalog))
        b = run_plan(
            plan_physical(node, catalog, PlannerOptions(gapply_partitioning="sort"))
        )
        assert sorted(a, key=repr) == sorted(b, key=repr)
