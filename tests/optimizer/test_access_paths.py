"""Unit tests for index access-path selection."""

import pytest

from repro.algebra.expressions import And, col, eq, ge, gt, le, lit
from repro.algebra.operators import Join, Prune, Select, TableScan
from repro.optimizer.access_paths import choose_join_side, choose_seek
from repro.storage import Catalog, DataType, table_from_rows


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    table = table_from_rows(
        "items",
        [
            ("id", DataType.INTEGER),
            ("grp", DataType.INTEGER),
            ("price", DataType.FLOAT),
            ("label", DataType.STRING),
        ],
        [(i, i % 5, float(i), f"x{i}") for i in range(50)],
        primary_key=["id"],
    )
    table.create_index(["id"])
    table.create_index(["grp"])
    table.create_index(["price"])
    catalog.register(table)
    return catalog


def scan(catalog, alias=None):
    return TableScan.of(catalog.table("items"), alias)


class TestChooseSeek:
    def test_equality_probe(self, catalog):
        node = Select(scan(catalog), eq(col("grp"), lit(3)))
        seek = choose_seek(node, catalog)
        assert seek is not None
        assert seek.equal_values == (3,)
        assert seek.residual is None

    def test_reversed_literal_side(self, catalog):
        node = Select(scan(catalog), eq(lit(3), col("grp")))
        seek = choose_seek(node, catalog)
        assert seek is not None and seek.equal_values == (3,)

    def test_range_probe_with_bounds(self, catalog):
        node = Select(
            scan(catalog),
            And(ge(col("price"), lit(10.0)), le(col("price"), lit(20.0))),
        )
        seek = choose_seek(node, catalog)
        assert seek is not None
        assert seek.equal_values is None
        assert seek.low == 10.0 and seek.high == 20.0

    def test_strict_bounds(self, catalog):
        node = Select(scan(catalog), gt(col("price"), lit(10.0)))
        seek = choose_seek(node, catalog)
        assert seek is not None
        assert not seek.low_inclusive

    def test_residual_conjuncts_kept(self, catalog):
        node = Select(
            scan(catalog),
            And(eq(col("grp"), lit(1)), eq(col("label"), lit("x6"))),
        )
        seek = choose_seek(node, catalog)
        assert seek is not None
        assert seek.residual is not None
        assert "label" in str(seek.residual)

    def test_unindexed_column(self, catalog):
        node = Select(scan(catalog), eq(col("label"), lit("x1")))
        assert choose_seek(node, catalog) is None

    def test_null_literal_not_probed(self, catalog):
        node = Select(scan(catalog), eq(col("grp"), lit(None)))
        assert choose_seek(node, catalog) is None

    def test_aliased_scan(self, catalog):
        node = Select(scan(catalog, "i"), eq(col("i.grp"), lit(2)))
        seek = choose_seek(node, catalog)
        assert seek is not None and seek.alias == "i"

    def test_non_scan_child(self, catalog):
        inner = Select(scan(catalog), eq(col("grp"), lit(1)))
        node = Select(inner, eq(col("id"), lit(5)))
        assert choose_seek(node, catalog) is None

    def test_equality_preferred_over_range(self, catalog):
        node = Select(
            scan(catalog),
            And(eq(col("id"), lit(7)), le(col("price"), lit(100.0))),
        )
        seek = choose_seek(node, catalog)
        assert seek is not None and seek.equal_values == (7,)


class TestChooseJoinSide:
    def test_bare_scan_with_index(self, catalog):
        side = choose_join_side(scan(catalog), ["grp"], catalog)
        assert side is not None
        assert side.filter_predicate is None

    def test_filtered_scan(self, catalog):
        node = Select(scan(catalog), gt(col("price"), lit(5.0)))
        side = choose_join_side(node, ["grp"], catalog)
        assert side is not None
        assert side.filter_predicate is not None

    def test_missing_index(self, catalog):
        assert choose_join_side(scan(catalog), ["label"], catalog) is None

    def test_non_scan_side(self, catalog):
        node = Join(scan(catalog, "a"), scan(catalog, "b"),
                    eq(col("a.id"), col("b.id")))
        assert choose_join_side(node, ["a.id"], catalog) is None

    def test_prune_wrapped_scan_not_indexable(self, catalog):
        # An index lookup fetches full-width rows; a pruned side's output
        # schema is narrower, so it cannot be served by index lookups.
        node = Prune(scan(catalog), ("items.grp", "items.price"))
        assert choose_join_side(node, ["grp"], catalog) is None
