"""Unit tests for the Section-4.4 cost model."""

import pytest

from repro.algebra.expressions import (
    And,
    IsNull,
    Not,
    Or,
    avg,
    col,
    count_star,
    eq,
    le,
    lit,
)
from repro.algebra.operators import (
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    OrderBy,
    Prune,
    Select,
    TableScan,
    UnionAll,
)
from repro.optimizer.cost import CostModel
from repro.storage import Catalog, DataType, table_from_rows


@pytest.fixture
def catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        table_from_rows(
            "items",
            [
                ("id", DataType.INTEGER),
                ("grp", DataType.INTEGER),
                ("price", DataType.FLOAT),
            ],
            [(i, i % 10, float(i)) for i in range(1, 101)],
            primary_key=["id"],
        )
    )
    return catalog


@pytest.fixture
def model(catalog) -> CostModel:
    return CostModel(catalog)


def scan(catalog) -> TableScan:
    return TableScan.of(catalog.table("items"))


class TestSelectivity:
    def test_equality_uses_distinct_count(self, model):
        sel = model.selectivity(eq(col("grp"), lit(3)))
        assert sel == pytest.approx(0.1, abs=0.02)

    def test_range_uses_histogram(self, model):
        sel = model.selectivity(le(col("price"), lit(25.0)))
        assert 0.15 <= sel <= 0.35

    def test_and_multiplies(self, model):
        a = eq(col("grp"), lit(3))
        sel = model.selectivity(And(a, le(col("price"), lit(50.0))))
        assert sel < model.selectivity(a)

    def test_or_adds(self, model):
        a = eq(col("grp"), lit(3))
        assert model.selectivity(Or(a, a)) > model.selectivity(a)

    def test_not_complements(self, model):
        a = eq(col("grp"), lit(3))
        assert model.selectivity(Not(a)) == pytest.approx(
            1.0 - model.selectivity(a)
        )

    def test_column_column_equality(self, model):
        sel = model.selectivity(eq(col("grp"), col("id")))
        assert 0.0 < sel <= 0.1

    def test_is_null(self, model):
        assert model.selectivity(IsNull(col("grp"))) < 0.5
        assert model.selectivity(IsNull(col("grp"), negated=True)) > 0.5

    def test_none_is_one(self, model):
        assert model.selectivity(None) == 1.0


class TestCardinalities:
    def test_table_scan_rows(self, model, catalog):
        assert model.estimate(scan(catalog)).rows == 100

    def test_select_scales_rows(self, model, catalog):
        node = Select(scan(catalog), eq(col("grp"), lit(3)))
        assert model.estimate(node).rows == pytest.approx(10.0, rel=0.3)

    def test_groupby_rows_is_distinct_count(self, model, catalog):
        node = GroupBy(scan(catalog), ("grp",), (count_star("n"),))
        assert model.estimate(node).rows == pytest.approx(10.0)

    def test_scalar_aggregate_one_row(self, model, catalog):
        node = GroupBy(scan(catalog), (), (count_star("n"),))
        assert model.estimate(node).rows == 1.0

    def test_fk_equijoin_rows(self, model, catalog):
        node = Join(scan(catalog), TableScan.of(catalog.table("items"), "i2"),
                    eq(col("items.id"), col("i2.id")))
        assert model.estimate(node).rows == pytest.approx(100.0, rel=0.2)

    def test_union_all_sums(self, model, catalog):
        node = UnionAll((scan(catalog), scan(catalog)))
        assert model.estimate(node).rows == 200.0

    def test_exists_single_row(self, model, catalog):
        assert model.estimate(Exists(scan(catalog))).rows == 1.0

    def test_distinct_bounded_by_input(self, model, catalog):
        node = Distinct(Prune(scan(catalog), ("items.grp",)))
        assert model.estimate(node).rows <= 100.0


class TestGApplyCost:
    def gapply(self, catalog, pgq_builder):
        outer = scan(catalog)
        return GApply(outer, ("grp",), pgq_builder(outer.schema), "g")

    def test_paper_formula_groups_times_pgq(self, model, catalog):
        """cost ~ partition + #groups x per-group cost (uniformity)."""
        node = self.gapply(
            catalog,
            lambda s: GroupBy(GroupScan("g", s), (), (count_star("n"),)),
        )
        estimate = model.estimate(node)
        assert estimate.rows == pytest.approx(10.0)  # one row per group
        # cost grows with the group count, not just input size
        assert estimate.cost > model.estimate(scan(catalog)).cost

    def test_narrower_outer_is_cheaper(self, model, catalog):
        wide = self.gapply(
            catalog,
            lambda s: GroupBy(GroupScan("g", s), (), (avg(col("price"), "m"),)),
        )
        pruned_outer = Prune(scan(catalog), ("items.grp", "items.price"))
        narrow = GApply(
            pruned_outer,
            ("grp",),
            GroupBy(GroupScan("g", pruned_outer.schema), (), (avg(col("price"), "m"),)),
            "g",
        )
        assert model.estimate(narrow).cost < model.estimate(wide).cost

    def test_selective_outer_is_cheaper(self, model, catalog):
        base = self.gapply(
            catalog,
            lambda s: GroupBy(GroupScan("g", s), (), (count_star("n"),)),
        )
        filtered_outer = Select(scan(catalog), le(col("price"), lit(10.0)))
        filtered = GApply(
            filtered_outer,
            ("grp",),
            GroupBy(GroupScan("g", scan(catalog).schema), (), (count_star("n"),)),
            "g",
        )
        # (GroupScan schema mismatch is irrelevant for costing)
        assert model.estimate(filtered).cost < model.estimate(base).cost

    def test_correlated_apply_multiplies_inner(self, model, catalog):
        inner = GroupBy(scan(catalog), (), (count_star("n"),))
        correlated = Apply(scan(catalog), inner, (("p", "id"),))
        uncorrelated = Apply(scan(catalog), inner, ())
        assert (
            model.estimate(correlated).cost
            > model.estimate(uncorrelated).cost * 5
        )


class TestIndexAwareness:
    def test_indexed_selection_cheaper(self, catalog):
        model = CostModel(catalog)
        node = Select(scan(catalog), eq(col("grp"), lit(3)))
        unindexed = model.estimate(node).cost
        catalog.table("items").create_index(["grp"])
        indexed = CostModel(catalog).estimate(node).cost
        assert indexed < unindexed

    def test_indexed_join_cheaper(self, catalog):
        small = table_from_rows(
            "probe", [("k", DataType.INTEGER)], [(1,), (2,)]
        )
        catalog.register(small)
        join = Join(
            TableScan.of(small),
            scan(catalog),
            eq(col("k"), col("grp")),
        )
        before = CostModel(catalog).estimate(join).cost
        catalog.table("items").create_index(["grp"])
        after = CostModel(catalog).estimate(join).cost
        assert after < before

    def test_orderby_cost_superlinear(self, catalog):
        model = CostModel(catalog)
        node = OrderBy(scan(catalog), (("price", True),))
        assert model.estimate(node).cost > model.estimate(scan(catalog)).cost + 100
