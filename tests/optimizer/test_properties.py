"""Unit tests for Section-4 property derivations."""

from repro.algebra.expressions import (
    Or,
    avg,
    col,
    count_star,
    eq,
    gt,
    lit,
    min_,
)
from repro.algebra.operators import (
    Apply,
    Distinct,
    Exists,
    GroupBy,
    GroupScan,
    Join,
    OrderBy,
    Project,
    Prune,
    Select,
    TableScan,
    UnionAll,
)
from repro.optimizer.properties import (
    covering_range,
    empty_on_empty,
    gp_eval_columns,
    is_foreign_key_join,
    join_columns,
    left_deep_nodes,
    referenced_columns,
)
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

GROUP = Schema(
    (
        Column("k", DataType.INTEGER, "t"),
        Column("brand", DataType.STRING, "t"),
        Column("price", DataType.FLOAT, "t"),
    )
)


def g():
    return GroupScan("g", GROUP)


class TestEmptyOnEmpty:
    def test_scan_true(self):
        assert empty_on_empty(g())

    def test_select_passes_through(self):
        assert empty_on_empty(Select(g(), gt(col("price"), lit(1.0))))

    def test_scalar_aggregate_false(self):
        assert not empty_on_empty(GroupBy(g(), (), (count_star("n"),)))

    def test_keyed_groupby_true(self):
        assert empty_on_empty(GroupBy(g(), ("brand",), (count_star("n"),)))

    def test_project_distinct_orderby_exists(self):
        assert empty_on_empty(Project(g(), ((col("price"), "p"),)))
        assert empty_on_empty(Distinct(g()))
        assert empty_on_empty(OrderBy(g(), (("price", True),)))
        assert empty_on_empty(Exists(g()))

    def test_apply_uses_outer_child(self):
        scalar = GroupBy(g(), (), (avg(col("price"), "m"),))
        node = Apply(g(), scalar)  # outer is a scan -> True
        assert empty_on_empty(node)
        node = Apply(scalar, g())  # outer is an aggregate -> False
        assert not empty_on_empty(node)

    def test_union_requires_all_children(self):
        scalar = GroupBy(g(), (), (count_star("n"),))
        ok = Project(g(), ((col("price"), "p"),))
        bad = Project(scalar, ((col("n"), "p"),))
        assert empty_on_empty(UnionAll((ok, ok)))
        assert not empty_on_empty(UnionAll((ok, bad)))


class TestCoveringRange:
    def test_scan_is_whole_group(self):
        assert covering_range(g()) is None

    def test_plain_select_contributes(self):
        condition = eq(col("brand"), lit("A"))
        assert covering_range(Select(g(), condition)) == condition

    def test_stacked_selects_conjoin(self):
        a = eq(col("brand"), lit("A"))
        b = gt(col("price"), lit(1.0))
        node = Select(Select(g(), a), b)
        range_ = covering_range(node)
        assert range_ is not None
        assert set(str(range_).split(" AND ")) == {str(a).join(["(", ")"]) or str(a), str(b)} or True
        # structural check: both conjuncts present
        from repro.algebra.expressions import conjuncts

        assert set(conjuncts(range_)) == {a, b}

    def test_select_above_aggregate_blocked(self):
        scalar = GroupBy(Select(g(), eq(col("brand"), lit("B"))), (), (avg(col("price"), "m"),))
        applied = Apply(Select(g(), eq(col("brand"), lit("A"))), scalar)
        node = Select(applied, gt(col("price"), col("m")))
        # the top select sits above an Apply -> contributes nothing; range is
        # the disjunction of the apply children (Figure 3's A-or-B)
        range_ = covering_range(node)
        assert isinstance(range_, Or)
        assert set(range_.operands) == {
            eq(col("brand"), lit("A")),
            eq(col("brand"), lit("B")),
        }

    def test_union_disjunction(self):
        a = Select(g(), eq(col("brand"), lit("A")))
        b = Select(g(), eq(col("brand"), lit("B")))
        range_ = covering_range(UnionAll((Project(a, ((col("price"), "p"),)), Project(b, ((col("price"), "p"),)))))
        assert isinstance(range_, Or)

    def test_union_with_unfiltered_branch_is_whole_group(self):
        a = Select(g(), eq(col("brand"), lit("A")))
        node = UnionAll(
            (
                Project(a, ((col("price"), "p"),)),
                Project(g(), ((col("price"), "p"),)),
            )
        )
        assert covering_range(node) is None

    def test_duplicate_disjuncts_collapse(self):
        condition = eq(col("brand"), lit("A"))
        scalar = GroupBy(Select(g(), condition), (), (avg(col("price"), "m"),))
        node = Apply(Select(g(), condition), scalar)
        assert covering_range(node) == condition

    def test_correlated_parameter_never_joins_the_range(self):
        """Fuzzer regression (corpus case fuzz-engine-error-40f717f528e1):
        a Select inside an Apply's inner subquery whose predicate holds a
        correlated Parameter must not contribute to the covering range —
        lifting it would move the parameter outside the Apply that binds
        it, producing an unbound-parameter crash at execution."""
        from repro.algebra.expressions import Parameter

        correlated = Select(g(), eq(col("k"), Parameter("corr_k_0")))
        inner = GroupBy(correlated, (), (count_star("n"),))
        node = Apply(Select(g(), eq(col("brand"), lit("A"))), inner)
        range_ = covering_range(node)
        # The inner branch is "whole group" (its parameterized select is
        # opaque), so the disjunction must be the whole group too.
        assert range_ is None

    def test_parameterized_select_alone_is_whole_group(self):
        from repro.algebra.expressions import Parameter

        node = Select(g(), eq(col("k"), Parameter("corr_k_0")))
        assert covering_range(node) is None


class TestColumnAnalyses:
    def test_gp_eval_excludes_projected(self):
        node = Project(
            Select(g(), gt(col("price"), lit(1.0))),
            ((col("brand"), "b"),),
        )
        assert gp_eval_columns(node) == frozenset({"price"})

    def test_gp_eval_includes_aggregated(self):
        node = GroupBy(g(), ("brand",), (min_(col("price"), "m"),))
        assert gp_eval_columns(node) == frozenset({"brand", "price"})

    def test_gp_eval_orderby(self):
        node = OrderBy(g(), (("price", True),))
        assert gp_eval_columns(node) == frozenset({"price"})

    def test_referenced_includes_projected(self):
        node = Project(
            Select(g(), gt(col("price"), lit(1.0))),
            ((col("brand"), "b"),),
        )
        assert referenced_columns(node) == frozenset({"price", "brand"})

    def test_referenced_includes_prune_refs(self):
        node = Prune(g(), ("t.k", "t.price"))
        assert referenced_columns(node) == frozenset({"t.k", "t.price"})


class TestJoinTreeAnalyses:
    def make_catalog(self):
        from repro.storage import Catalog, table_from_rows

        catalog = Catalog()
        catalog.register(
            table_from_rows(
                "child",
                [("c_id", DataType.INTEGER), ("c_pid", DataType.INTEGER)],
                [(1, 10)],
                primary_key=["c_id"],
            )
        )
        catalog.register(
            table_from_rows(
                "parent",
                [("p_id", DataType.INTEGER), ("p_name", DataType.STRING)],
                [(10, "x")],
                primary_key=["p_id"],
            )
        )
        catalog.add_foreign_key("child", ["c_pid"], "parent", ["p_id"])
        return catalog

    def scans(self, catalog):
        child = TableScan.of(catalog.table("child"))
        parent = TableScan.of(catalog.table("parent"))
        return child, parent

    def test_left_deep_enumeration(self):
        catalog = self.make_catalog()
        child, parent = self.scans(catalog)
        join = Join(child, parent, eq(col("c_pid"), col("p_id")))
        nodes = left_deep_nodes(join)
        assert len(nodes) == 2
        assert nodes[0].operator is join
        assert nodes[1].operator is child
        assert len(nodes[1].joins_above) == 1

    def test_join_columns(self):
        catalog = self.make_catalog()
        child, parent = self.scans(catalog)
        join = Join(child, parent, eq(col("c_pid"), col("p_id")))
        node = left_deep_nodes(join)[1]
        assert join_columns(node) == frozenset({"c_pid"})

    def test_fk_join_detected(self):
        catalog = self.make_catalog()
        child, parent = self.scans(catalog)
        join = Join(child, parent, eq(col("c_pid"), col("p_id")))
        assert is_foreign_key_join(join, catalog)

    def test_reversed_fk_join_not_detected(self):
        # FK must be on the LEFT (outer) child
        catalog = self.make_catalog()
        child, parent = self.scans(catalog)
        join = Join(parent, child, eq(col("c_pid"), col("p_id")))
        assert not is_foreign_key_join(join, catalog)

    def test_non_key_join_not_detected(self):
        catalog = self.make_catalog()
        child, parent = self.scans(catalog)
        join = Join(child, parent, eq(col("c_id"), col("p_name")))
        assert not is_foreign_key_join(join, catalog)

    def test_filtered_parent_still_fk(self):
        catalog = self.make_catalog()
        child, parent = self.scans(catalog)
        filtered = Select(parent, eq(col("p_name"), lit("x")))
        join = Join(child, filtered, eq(col("c_pid"), col("p_id")))
        assert is_foreign_key_join(join, catalog)
