"""Tests for the public Database facade."""

import pytest

from repro.api import QueryResult
from repro.errors import CatalogError
from repro.optimizer.planner import PlannerOptions
from repro.storage import DataType


class TestDatabaseDdl:
    def test_create_table_registers(self, parts_db):
        parts_db.create_table("extra", [("x", DataType.INTEGER)], [(1,)])
        assert parts_db.table("extra").rows == [(1,)]

    def test_create_duplicate_rejected(self, parts_db):
        with pytest.raises(CatalogError):
            parts_db.create_table("part", [("x", DataType.INTEGER)])

    def test_add_foreign_key_validates_columns(self, parts_db):
        with pytest.raises(Exception):
            parts_db.add_foreign_key("partsupp", ["nope"], "part", ["p_partkey"])


class TestQueryExecution:
    def test_sql_returns_query_result(self, parts_db):
        result = parts_db.sql("select count(*) from part")
        assert isinstance(result, QueryResult)
        assert result.rows == [(12,)]
        assert result.optimization is not None

    def test_optimize_false_skips_report(self, parts_db):
        result = parts_db.sql("select count(*) from part", optimize=False)
        assert result.optimization is None

    def test_plan_returns_logical(self, parts_db):
        from repro.algebra.operators import LogicalOperator

        plan = parts_db.plan("select p_name from part")
        assert isinstance(plan, LogicalOperator)

    def test_execute_accepts_prebuilt_plan(self, parts_db):
        plan = parts_db.plan("select p_name from part where p_partkey = 1")
        result = parts_db.execute(plan)
        assert result.rows == [("part1",)]

    def test_planner_options_forwarded(self, parts_db):
        sql = (
            "select gapply(select count(*) from g) from part "
            "group by p_brand : g"
        )
        hash_result = parts_db.sql(
            sql, planner_options=PlannerOptions(gapply_partitioning="hash")
        )
        sort_result = parts_db.sql(
            sql, planner_options=PlannerOptions(gapply_partitioning="sort")
        )
        assert sorted(hash_result.rows) == sorted(sort_result.rows)

    def test_counters_populated(self, parts_db):
        result = parts_db.sql("select count(*) from partsupp, part "
                              "where ps_partkey = p_partkey")
        assert result.counters.table_scan_rows > 0
        assert result.counters.total_work > 0

    def test_iteration_and_len(self, parts_db):
        result = parts_db.sql("select p_partkey from part")
        assert len(list(result)) == len(result) == 12


class TestExplain:
    def test_explain_includes_cost_header(self, parts_db):
        text = parts_db.explain("select count(*) from part")
        assert text.startswith("-- cost:")

    def test_explain_unoptimized(self, parts_db):
        text = parts_db.explain("select count(*) from part", optimize=False)
        assert not text.startswith("-- cost:")
        assert "TableScan" in text

    def test_explain_lists_fired_rules(self, parts_db):
        text = parts_db.explain(
            "select gapply(select count(*) from g) "
            "from partsupp, part where ps_partkey = p_partkey "
            "group by ps_suppkey : g"
        )
        assert "rules:" in text


class TestQueryResultHelpers:
    def test_to_table_roundtrip(self, parts_db):
        result = parts_db.sql("select p_partkey, p_name from part limit 2")
        table = result.to_table("snapshot")
        assert len(table) == 2
        assert table.schema == result.schema

    def test_to_dicts(self, parts_db):
        result = parts_db.sql("select p_partkey from part limit 1")
        assert result.to_dicts() == [{"p_partkey": 1}]

    def test_pretty_truncates(self, parts_db):
        result = parts_db.sql("select p_partkey from part")
        assert "more rows" in result.pretty(limit=2)
