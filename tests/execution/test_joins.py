"""Unit tests for join operators: hash, nested-loop, semi/anti, build side."""

import pytest

from repro.algebra.expressions import And, col, eq, gt, lit
from repro.algebra.operators import JoinKind
from repro.errors import PlanError
from repro.execution.base import PMaterialized, run_plan
from repro.execution.context import ExecutionContext
from repro.execution.joins import PHashJoin, PNestedLoopJoin
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

LEFT = Schema((Column("lk", DataType.INTEGER, "l"), Column("lv", DataType.STRING, "l")))
RIGHT = Schema((Column("rk", DataType.INTEGER, "r"), Column("rv", DataType.STRING, "r")))

LEFT_ROWS = [(1, "a"), (2, "b"), (2, "B"), (None, "n"), (4, "d")]
RIGHT_ROWS = [(1, "x"), (2, "y"), (3, "z"), (None, "nn")]


def left():
    return PMaterialized(LEFT, LEFT_ROWS)


def right():
    return PMaterialized(RIGHT, RIGHT_ROWS)


def hash_join(**kwargs):
    return PHashJoin(left(), right(), ["lk"], ["rk"], **kwargs)


class TestHashJoin:
    def test_inner_matches(self):
        rows = run_plan(hash_join())
        assert sorted(rows) == [(1, "a", 1, "x"), (2, "B", 2, "y"), (2, "b", 2, "y")]

    def test_null_keys_never_match(self):
        rows = run_plan(hash_join())
        assert all(row[0] is not None for row in rows)

    def test_residual_predicate(self):
        residual = eq(col("lv"), lit("b"))
        rows = run_plan(hash_join(residual=residual))
        assert rows == [(2, "b", 2, "y")]

    def test_build_left_same_results(self):
        normal = sorted(run_plan(hash_join()))
        swapped = sorted(run_plan(hash_join(build_left=True)))
        assert normal == swapped

    def test_build_left_counters(self):
        ctx = ExecutionContext()
        run_plan(hash_join(build_left=True), ctx)
        # build on left: 4 non-null left rows inserted
        assert ctx.counters.hash_inserts == 4

    def test_semi(self):
        rows = run_plan(hash_join(kind=JoinKind.SEMI))
        assert sorted(rows) == [(1, "a"), (2, "B"), (2, "b")]

    def test_anti(self):
        rows = run_plan(hash_join(kind=JoinKind.ANTI))
        assert sorted(rows, key=repr) == [(4, "d"), (None, "n")]

    def test_build_left_semi_rejected(self):
        with pytest.raises(PlanError):
            hash_join(kind=JoinKind.SEMI, build_left=True)

    def test_empty_key_list_rejected(self):
        with pytest.raises(PlanError):
            PHashJoin(left(), right(), [], [])

    def test_schema_concat(self):
        assert hash_join().schema.qualified_names() == [
            "l.lk",
            "l.lv",
            "r.rk",
            "r.rv",
        ]


class TestNestedLoopJoin:
    def test_cross_join(self):
        plan = PNestedLoopJoin(left(), right(), None)
        assert len(run_plan(plan)) == len(LEFT_ROWS) * len(RIGHT_ROWS)

    def test_theta_join(self):
        plan = PNestedLoopJoin(left(), right(), gt(col("lk"), col("rk")))
        rows = run_plan(plan)
        assert all(row[0] > row[2] for row in rows)

    def test_equi_matches_hash_join(self):
        nl = PNestedLoopJoin(left(), right(), eq(col("lk"), col("rk")))
        assert sorted(run_plan(nl)) == sorted(run_plan(hash_join()))

    def test_semi(self):
        plan = PNestedLoopJoin(
            left(), right(), eq(col("lk"), col("rk")), JoinKind.SEMI
        )
        assert sorted(run_plan(plan)) == [(1, "a"), (2, "B"), (2, "b")]

    def test_anti(self):
        plan = PNestedLoopJoin(
            left(), right(), eq(col("lk"), col("rk")), JoinKind.ANTI
        )
        assert sorted(run_plan(plan), key=repr) == [(4, "d"), (None, "n")]

    def test_compound_predicate(self):
        predicate = And(eq(col("lk"), col("rk")), eq(col("rv"), lit("y")))
        plan = PNestedLoopJoin(left(), right(), predicate)
        assert sorted(run_plan(plan)) == [(2, "B", 2, "y"), (2, "b", 2, "y")]

    def test_unsupported_kind(self):
        with pytest.raises(PlanError):
            PNestedLoopJoin(left(), right(), None, JoinKind.LEFT_OUTER)
