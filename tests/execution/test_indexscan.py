"""Unit tests for index-based operators."""

import pytest

from repro.algebra.expressions import col, gt, lit
from repro.errors import PlanError
from repro.execution.base import PMaterialized, run_plan
from repro.execution.context import ExecutionContext
from repro.execution.indexscan import PIndexNestedLoopJoin, PIndexSeek
from repro.storage.schema import Column, Schema
from repro.storage.table import table_from_rows
from repro.storage.types import DataType


def make_table():
    return table_from_rows(
        "items",
        [("id", DataType.INTEGER), ("grp", DataType.INTEGER), ("price", DataType.FLOAT)],
        [(i, i % 4, float(i * 10)) for i in range(1, 13)],
        primary_key=["id"],
    )


class TestIndexSeek:
    def test_equality_seek(self):
        table = make_table()
        index = table.create_index(["grp"])
        plan = PIndexSeek(table, index, equal_values=(2,))
        assert {row[0] for row in run_plan(plan)} == {2, 6, 10}

    def test_range_seek(self):
        table = make_table()
        index = table.create_index(["price"])
        plan = PIndexSeek(table, index, low=30.0, high=50.0)
        assert [row[2] for row in run_plan(plan)] == [30.0, 40.0, 50.0]

    def test_exclusive_range(self):
        table = make_table()
        index = table.create_index(["price"])
        plan = PIndexSeek(
            table, index, low=30.0, high=50.0, low_inclusive=False, high_inclusive=False
        )
        assert [row[2] for row in run_plan(plan)] == [40.0]

    def test_residual_filter(self):
        table = make_table()
        index = table.create_index(["grp"])
        plan = PIndexSeek(
            table, index, equal_values=(2,), residual=gt(col("price"), lit(50.0))
        )
        assert {row[0] for row in run_plan(plan)} == {6, 10}

    def test_alias_schema(self):
        table = make_table()
        index = table.create_index(["grp"])
        plan = PIndexSeek(table, index, alias="x", equal_values=(0,))
        assert plan.schema.qualified_names()[0] == "x.id"

    def test_needs_exactly_one_probe_mode(self):
        table = make_table()
        index = table.create_index(["grp"])
        with pytest.raises(PlanError):
            PIndexSeek(table, index)
        with pytest.raises(PlanError):
            PIndexSeek(table, index, equal_values=(1,), low=0.0)

    def test_counters_count_only_fetched(self):
        table = make_table()
        index = table.create_index(["grp"])
        ctx = ExecutionContext()
        run_plan(PIndexSeek(table, index, equal_values=(1,)), ctx)
        assert ctx.counters.table_scan_rows == 3  # not 12


class TestIndexNestedLoopJoin:
    def outer(self):
        schema = Schema(
            (Column("key", DataType.INTEGER, "o"), Column("tag", DataType.STRING, "o"))
        )
        return PMaterialized(schema, [(0, "a"), (2, "b"), (99, "c")])

    def test_lookup_join(self):
        table = make_table()
        index = table.create_index(["grp"])
        plan = PIndexNestedLoopJoin(self.outer(), table, index, ["key"])
        rows = run_plan(plan)
        assert all(row[0] == row[3] for row in rows)  # key == grp
        assert {row[1] for row in rows} == {"a", "b"}  # 99 finds nothing

    def test_outer_on_right_output_order(self):
        table = make_table()
        index = table.create_index(["grp"])
        plan = PIndexNestedLoopJoin(
            self.outer(), table, index, ["key"], outer_is_left=False
        )
        # output = inner ++ outer
        assert plan.schema.qualified_names()[:3] == [
            "items.id",
            "items.grp",
            "items.price",
        ]
        rows = run_plan(plan)
        assert all(row[1] == row[3] for row in rows)

    def test_residual(self):
        table = make_table()
        index = table.create_index(["grp"])
        plan = PIndexNestedLoopJoin(
            self.outer(),
            table,
            index,
            ["key"],
            residual=gt(col("price"), lit(50.0)),
        )
        assert all(row[4] > 50.0 for row in run_plan(plan))

    def test_probe_counter(self):
        table = make_table()
        index = table.create_index(["grp"])
        ctx = ExecutionContext()
        run_plan(PIndexNestedLoopJoin(self.outer(), table, index, ["key"]), ctx)
        assert ctx.counters.join_probes == 3

    def test_equivalent_to_hash_join(self):
        from repro.execution.joins import PHashJoin
        from repro.execution.scans import PTableScan

        table = make_table()
        index = table.create_index(["grp"])
        inlj = PIndexNestedLoopJoin(self.outer(), table, index, ["key"])
        hashed = PHashJoin(self.outer(), PTableScan(table), ["key"], ["grp"])
        assert sorted(run_plan(inlj), key=repr) == sorted(run_plan(hashed), key=repr)
