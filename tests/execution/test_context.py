"""Tests for execution contexts and counters."""

import pytest

from repro.errors import ExecutionError
from repro.execution.context import Counters, ExecutionContext


class TestCounters:
    def test_snapshot_covers_all_fields(self):
        counters = Counters()
        counters.rows = 5
        counters.buffered_cells = 8
        snap = counters.snapshot()
        assert snap["rows"] == 5
        assert snap["buffered_cells"] == 8

    def test_total_work_weights_cells(self):
        counters = Counters()
        counters.rows = 10
        counters.buffered_cells = 40
        assert counters.total_work == 10 + 10

    def test_merge_sums_and_maxes(self):
        a = Counters(rows=5, peak_partition_rows=100)
        b = Counters(rows=3, peak_partition_rows=50, join_probes=7)
        a.merge(b)
        assert a.rows == 8
        assert a.join_probes == 7
        assert a.peak_partition_rows == 100  # max, not sum


class TestExecutionContext:
    def test_scalar_binding(self):
        ctx = ExecutionContext().with_scalars({"p": 42})
        assert ctx.scalar("p") == 42

    def test_unbound_scalar_raises(self):
        with pytest.raises(ExecutionError):
            ExecutionContext().scalar("missing")

    def test_relation_binding(self):
        rows = [(1,), (2,)]
        ctx = ExecutionContext().with_relation("g", rows)
        assert ctx.relation("g") is rows

    def test_unbound_relation_raises(self):
        with pytest.raises(ExecutionError):
            ExecutionContext().relation("g")

    def test_child_contexts_share_counters(self):
        parent = ExecutionContext()
        child = parent.with_scalars({"x": 1})
        child.counters.rows += 3
        assert parent.counters.rows == 3

    def test_child_bindings_do_not_leak_up(self):
        parent = ExecutionContext()
        parent.with_scalars({"x": 1})
        with pytest.raises(ExecutionError):
            parent.scalar("x")

    def test_nested_shadowing(self):
        outer = ExecutionContext().with_scalars({"x": 1})
        inner = outer.with_scalars({"x": 2})
        assert inner.scalar("x") == 2
        assert outer.scalar("x") == 1

    def test_error_lists_bound_names(self):
        ctx = ExecutionContext().with_scalars({"alpha": 1, "beta": 2})
        with pytest.raises(ExecutionError) as excinfo:
            ctx.scalar("gamma")
        assert "alpha" in str(excinfo.value)
