"""External-merge spill for ORDER BY and DISTINCT (DESIGN.md §14.5).

The contract mirrors GApply's partition spill: under a governor cell
budget, ``PSort`` and ``PDistinct`` spill sorted runs to disk and
stream a stable merge — producing rows *byte-identical* to the
unbudgeted in-memory path (including DESC directions, NULLs, duplicate
keys, and DISTINCT's first-appearance order), releasing every charged
cell, and leaking no spill files. A budget smaller than a single row
still raises the typed error: spilling frees the buffer, not the row.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.errors import MemoryBudgetExceeded
from repro.optimizer.planner import ENGINES
from repro.storage import DataType
from repro.storage.spill import live_spill_files

BUDGET = 64  # far below the ~1200-cell working set of the fixture


@pytest.fixture
def db() -> Database:
    db = Database()
    rows = []
    for i in range(400):
        rows.append(
            (
                i,
                i % 7 if i % 11 else None,  # dup keys and NULLs
                float((i * 37) % 100),
                f"s{i % 5}",
            )
        )
    db.create_table(
        "t",
        [
            ("id", DataType.INTEGER),
            ("g", DataType.INTEGER),
            ("x", DataType.FLOAT),
            ("s", DataType.STRING),
        ],
        rows,
    )
    return db


SORT_QUERIES = [
    "select id, g, x from t order by x",
    "select id, g, x from t order by x desc",
    "select id, g, x, s from t order by g, x desc, s",
    "select g, s from t order by s desc, g",
]

DISTINCT_QUERIES = [
    "select distinct g from t",
    "select distinct g, s from t",
    "select distinct s, x from t order by s, x",
]


class TestDifferential:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("sql", SORT_QUERIES)
    def test_sort_spill_is_byte_identical(self, db, engine, sql):
        plain = db.sql(sql, engine=engine)
        spilled = db.sql(
            sql, engine=engine, memory_budget=BUDGET, collect_metrics=True
        )
        assert spilled.rows == plain.rows
        assert spilled.metrics.total("spilled_rows") > 0
        assert spilled.metrics.total("spill_runs") > 0
        assert live_spill_files() == frozenset()

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("sql", DISTINCT_QUERIES)
    def test_distinct_spill_is_byte_identical(self, db, engine, sql):
        plain = db.sql(sql, engine=engine)
        spilled = db.sql(
            sql, engine=engine, memory_budget=BUDGET, collect_metrics=True
        )
        assert spilled.rows == plain.rows
        assert spilled.metrics.total("spilled_rows") > 0
        assert live_spill_files() == frozenset()

    def test_sort_is_stable_under_spill(self, db):
        # Equal sort keys must keep input order; external merging via
        # run-index tiebreak preserves it. 's' has only 5 values, so
        # each key group spans many input positions.
        rows = db.sql(
            "select s, id from t order by s", memory_budget=BUDGET
        ).rows
        for (s1, id1), (s2, id2) in zip(rows, rows[1:]):
            if s1 == s2:
                assert id1 < id2

    def test_distinct_preserves_first_appearance_order(self, db):
        plain = db.sql("select distinct g, s from t").rows
        spilled = db.sql(
            "select distinct g, s from t", memory_budget=BUDGET
        ).rows
        assert spilled == plain  # not merely the same set


class TestAccounting:
    def test_cells_released_after_spilled_sort(self, db):
        from repro.execution.governor import Budget, Governor

        governor = Governor(Budget(memory_cells=BUDGET), sql="spilled sort")
        plan = db.plan("select id, x from t order by x desc")
        result = db.execute(plan, governor=governor)
        assert len(result.rows) == 400
        assert governor.cells_in_use == 0
        assert 0 < governor.peak_cells <= BUDGET

    def test_row_wider_than_budget_raises_both_engines(self, db):
        for engine in ENGINES:
            with pytest.raises(MemoryBudgetExceeded):
                db.sql(
                    "select id, g, x, s from t order by x",
                    engine=engine,
                    memory_budget=2,
                )
        assert live_spill_files() == frozenset()

    def test_generous_budget_stays_in_memory(self, db):
        result = db.sql(
            "select id from t order by id desc",
            memory_budget=1 << 20,
            collect_metrics=True,
        )
        assert result.metrics.total("spilled_rows") == 0
        assert result.rows == db.sql("select id from t order by id desc").rows
