"""Unit tests for aggregation operators."""

import pytest

from repro.algebra.expressions import avg, col, count, count_star, max_, min_, sum_
from repro.errors import PlanError
from repro.execution.aggregates import PHashAggregate, PStreamAggregate
from repro.execution.base import PMaterialized, run_plan
from repro.execution.basic import PSort
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

SCHEMA = Schema(
    (Column("g", DataType.INTEGER), Column("v", DataType.FLOAT))
)
ROWS = [(1, 10.0), (1, 20.0), (2, 5.0), (2, None), (None, 1.0)]


def source(rows=None):
    return PMaterialized(SCHEMA, ROWS if rows is None else rows)


class TestHashAggregate:
    def test_group_by_key(self):
        plan = PHashAggregate(source(), ("g",), (count_star("n"), avg(col("v"), "m")))
        rows = dict((row[0], row[1:]) for row in run_plan(plan))
        assert rows[1] == (2, 15.0)
        assert rows[2] == (2, 5.0)  # avg ignores the NULL

    def test_nulls_form_their_own_group(self):
        plan = PHashAggregate(source(), ("g",), (count_star("n"),))
        rows = {row[0]: row[1] for row in run_plan(plan)}
        assert rows[None] == 1

    def test_scalar_aggregate_on_empty_input(self):
        plan = PHashAggregate(source([]), (), (count_star("n"), sum_(col("v"), "s")))
        assert run_plan(plan) == [(0, None)]

    def test_keyed_aggregate_on_empty_input(self):
        plan = PHashAggregate(source([]), ("g",), (count_star("n"),))
        assert run_plan(plan) == []

    def test_min_max(self):
        plan = PHashAggregate(source(), (), (min_(col("v"), "lo"), max_(col("v"), "hi")))
        assert run_plan(plan) == [(1.0, 20.0)]

    def test_count_distinct(self):
        rows = [(1, 5.0), (1, 5.0), (1, 7.0)]
        plan = PHashAggregate(
            source(rows), ("g",), (count(col("v"), "n", distinct=True),)
        )
        assert run_plan(plan) == [(1, 2)]

    def test_output_schema(self):
        plan = PHashAggregate(source(), ("g",), (avg(col("v"), "m"),))
        assert plan.schema.names() == ["g", "m"]
        assert plan.schema[1].dtype is DataType.FLOAT


class TestStreamAggregate:
    def test_matches_hash_aggregate_on_sorted_input(self):
        sorted_source = PSort(source(), (("g", True),))
        stream = PStreamAggregate(sorted_source, ("g",), (count_star("n"), sum_(col("v"), "s")))
        hashed = PHashAggregate(source(), ("g",), (count_star("n"), sum_(col("v"), "s")))
        assert sorted(run_plan(stream), key=repr) == sorted(run_plan(hashed), key=repr)

    def test_requires_keys(self):
        with pytest.raises(PlanError):
            PStreamAggregate(source(), (), (count_star("n"),))

    def test_empty_input(self):
        plan = PStreamAggregate(source([]), ("g",), (count_star("n"),))
        assert run_plan(plan) == []

    def test_single_group(self):
        rows = [(7, 1.0), (7, 2.0)]
        plan = PStreamAggregate(source(rows), ("g",), (avg(col("v"), "m"),))
        assert run_plan(plan) == [(7, 1.5)]
