"""Unit tests for row-at-a-time physical operators."""

import pytest

from repro.algebra.expressions import col, eq, gt, lit
from repro.errors import PlanError
from repro.execution.base import PMaterialized, run_plan, run_plan_to_table
from repro.execution.basic import (
    PAlias,
    PDistinct,
    PFilter,
    PLimit,
    PProject,
    PPrune,
    PRemap,
    PSort,
    PUnionAll,
)
from repro.execution.context import ExecutionContext
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

SCHEMA = Schema(
    (
        Column("k", DataType.INTEGER, "t"),
        Column("v", DataType.STRING, "t"),
        Column("x", DataType.FLOAT, "t"),
    )
)
ROWS = [(1, "a", 1.0), (2, "b", 2.0), (2, "b", 2.0), (3, None, None)]


def source() -> PMaterialized:
    return PMaterialized(SCHEMA, ROWS)


class TestFilter:
    def test_keeps_true_rows(self):
        plan = PFilter(source(), gt(col("k"), lit(1)))
        assert len(run_plan(plan)) == 3

    def test_unknown_rows_dropped(self):
        plan = PFilter(source(), gt(col("x"), lit(0.0)))
        # the NULL x row evaluates UNKNOWN and is dropped
        assert len(run_plan(plan)) == 3

    def test_counters(self):
        ctx = ExecutionContext()
        run_plan(PFilter(source(), gt(col("k"), lit(2))), ctx)
        assert ctx.counters.comparisons == 4


class TestProjectPrune:
    def test_project_expressions(self):
        plan = PProject(source(), ((col("k"), "k2"), (lit("c"), "const")))
        assert run_plan(plan)[0] == (1, "c")
        assert plan.schema.names() == ["k2", "const"]

    def test_prune_positions_and_qualifiers(self):
        plan = PPrune(source(), ("t.x", "t.k"))
        assert run_plan(plan)[0] == (1.0, 1)
        assert plan.schema.qualified_names() == ["t.x", "t.k"]

    def test_prune_single_column(self):
        plan = PPrune(source(), ("v",))
        assert run_plan(plan)[0] == ("a",)

    def test_remap(self):
        plan = PRemap(source(), (("t.v", Column("label", qualifier="out")),))
        assert plan.schema.qualified_names() == ["out.label"]
        assert run_plan(plan)[1] == ("b",)

    def test_alias(self):
        plan = PAlias(source(), "z")
        assert plan.schema.qualified_names()[0] == "z.k"
        assert run_plan(plan) == ROWS


class TestDistinct:
    def test_removes_duplicates(self):
        assert len(run_plan(PDistinct(source()))) == 3

    def test_null_rows_kept_once(self):
        plan = PDistinct(PMaterialized(SCHEMA, [(None, None, None)] * 3))
        assert len(run_plan(plan)) == 1


class TestSort:
    def test_ascending_nulls_first(self):
        plan = PSort(source(), (("v", True),))
        values = [row[1] for row in run_plan(plan)]
        assert values == [None, "a", "b", "b"]

    def test_descending(self):
        plan = PSort(source(), (("k", False),))
        assert [row[0] for row in run_plan(plan)] == [3, 2, 2, 1]

    def test_multi_key_stable(self):
        rows = [(1, "b", 0.0), (1, "a", 1.0), (0, "z", 2.0)]
        plan = PSort(PMaterialized(SCHEMA, rows), (("k", True), ("v", True)))
        assert run_plan(plan) == [(0, "z", 2.0), (1, "a", 1.0), (1, "b", 0.0)]


class TestUnionLimit:
    def test_union_all_concatenates(self):
        plan = PUnionAll([source(), source()])
        assert len(run_plan(plan)) == 8

    def test_union_all_requires_input(self):
        with pytest.raises(PlanError):
            PUnionAll([])

    def test_limit(self):
        assert len(run_plan(PLimit(source(), 2))) == 2
        assert len(run_plan(PLimit(source(), 0))) == 0
        assert len(run_plan(PLimit(source(), 99))) == 4


class TestHelpers:
    def test_run_plan_to_table(self):
        table = run_plan_to_table(source(), "out")
        assert table.name == "out"
        assert len(table) == 4

    def test_plans_are_re_executable(self):
        plan = PFilter(source(), eq(col("k"), lit(2)))
        assert run_plan(plan) == run_plan(plan)

    def test_pretty(self):
        text = PFilter(source(), eq(col("k"), lit(2))).pretty()
        assert "Filter" in text and "Materialized" in text
