"""Spill-to-disk partitioning: forced-spill GApply must be byte-identical
to in-memory execution for every paper-query formulation, under both
partitioning strategies, with real spill metrics and no files left
behind."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import SpillError
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION
from repro.execution.faults import FaultPlan, fault_injection
from repro.optimizer.planner import PlannerOptions
from repro.storage.spill import SpillFile, SpillRun, merge_runs
from repro.workloads.queries import PAPER_QUERIES

#: Small enough that every paper query's partition buffer overflows.
SPILL_THRESHOLD = 64

FORMULATIONS = [
    (query.name, kind, sql)
    for query in PAPER_QUERIES
    for kind, sql in [
        ("gapply", query.gapply_sql),
        ("baseline", query.baseline_sql),
        ("naive", query.naive_sql),
    ]
    if sql is not None
]


class TestCodec:
    """The documented record framing round-trips exactly."""

    def test_append_read_at_roundtrip(self, tmp_path):
        rows = [(1, "x", None), (2.5, b"\x00bytes", True), ((),)]
        with SpillFile(str(tmp_path)) as spill:
            offsets = [spill.append(row) for row in rows]
            assert spill.records == len(rows)
            # frame = 4-byte length + 4-byte crc32 + pickled payload
            assert spill.bytes_written == sum(
                8 + len(pickle.dumps(r, protocol=4)) for r in rows
            )
            # read-back in arbitrary order, repeatedly
            for offset, row in reversed(list(zip(offsets, rows))):
                assert spill.read_at(offset) == row
                assert spill.read_at(offset) == row

    def test_close_unlinks_file(self, tmp_path):
        spill = SpillFile(str(tmp_path))
        spill.append((1,))
        assert list(tmp_path.iterdir())
        spill.close()
        spill.close()  # idempotent
        assert list(tmp_path.iterdir()) == []

    def test_merge_runs_is_stable_in_argument_order(self, tmp_path):
        # Ties on the key must come out in run-argument order — the
        # property that makes spilled sort partitioning byte-identical.
        run_a = SpillRun([(1, "a1"), (2, "a2")], str(tmp_path))
        run_b = SpillRun([(1, "b1"), (3, "b3")], str(tmp_path))
        tail = [(1, "tail"), (2, "tail2")]
        merged = list(merge_runs([run_a, run_b, tail], key=lambda r: r[0]))
        assert merged == [
            (1, "a1"), (1, "b1"), (1, "tail"),
            (2, "a2"), (2, "tail2"), (3, "b3"),
        ]
        run_a.close()
        run_b.close()
        assert list(tmp_path.iterdir()) == []

    def test_injected_write_failure_is_typed(self, tmp_path):
        with fault_injection(FaultPlan(seed=1, fail_spill_at=1)):
            with SpillFile(str(tmp_path)) as spill:
                spill.append((0,))
                with pytest.raises(SpillError, match="injected"):
                    spill.append((1,))


@pytest.mark.parametrize(
    "partitioning", [HASH_PARTITION, SORT_PARTITION]
)
@pytest.mark.parametrize(
    "name,kind,sql",
    FORMULATIONS,
    ids=[f"{name}-{kind}" for name, kind, _ in FORMULATIONS],
)
class TestSpillEquivalence:
    """All 10 paper formulations, both partitionings: spilled == in-memory."""

    def test_forced_spill_is_byte_identical(
        self, tpch_db, tmp_path, name, kind, sql, partitioning
    ):
        base = PlannerOptions(gapply_partitioning=partitioning)
        plain = tpch_db.sql(sql, optimize=False, planner_options=base)
        spilled = tpch_db.sql(
            sql,
            optimize=False,
            collect_metrics=True,
            planner_options=PlannerOptions(
                gapply_partitioning=partitioning,
                gapply_spill_threshold=SPILL_THRESHOLD,
                gapply_spill_dir=str(tmp_path),
            ),
        )
        assert spilled.rows == plain.rows
        if kind == "gapply":
            # GApply ran with an overflowing buffer: the spill metrics
            # must show real disk traffic, and EXPLAIN ANALYZE carries
            # the same registry.
            assert spilled.metrics.total("spilled_rows") > 0
            assert spilled.metrics.total("spill_runs") > 0
            assert spilled.metrics.total("spill_bytes") > 0
        # Run files are unlinked before the query returns.
        assert list(tmp_path.iterdir()) == []


class TestSpillObservability:
    def test_explain_analyze_reports_nonzero_spill(self, tpch_db, tmp_path):
        sql = PAPER_QUERIES[0].gapply_sql
        explanation = tpch_db.sql(
            sql,
            optimize=False,
            explain="analyze",
            planner_options=PlannerOptions(
                gapply_spill_threshold=SPILL_THRESHOLD,
                gapply_spill_dir=str(tmp_path),
            ),
        )
        assert explanation.registry.total("spilled_rows") > 0
        plain = tpch_db.sql(sql, optimize=False)
        assert explanation.rows == plain.rows

    def test_no_spill_metrics_without_threshold(self, tpch_db):
        result = tpch_db.sql(
            PAPER_QUERIES[0].gapply_sql, optimize=False, collect_metrics=True
        )
        assert result.metrics.total("spilled_rows") == 0
        assert result.metrics.total("spill_runs") == 0


class TestSpillHygiene:
    """Checksummed records and leak-free error/cancel paths."""

    def test_corrupted_payload_raises_typed_checksum_error(self, tmp_path):
        spill = SpillFile(str(tmp_path))
        try:
            offset = spill.append(("intact", 1))
            spill.append(("second", 2))
            # Flip one payload byte on disk behind the codec's back.
            with open(spill.path, "r+b") as handle:
                handle.seek(offset + 8)  # past the length+crc32 header
                byte = handle.read(1)
                handle.seek(offset + 8)
                handle.write(bytes([byte[0] ^ 0xFF]))
            with pytest.raises(SpillError, match="checksum mismatch"):
                spill.read_at(offset)
        finally:
            spill.close()

    def test_corrupted_run_iteration_is_typed(self, tmp_path):
        run = SpillRun([(i, i) for i in range(10)], str(tmp_path))
        try:
            with open(run.path, "r+b") as handle:
                handle.seek(12)  # inside the first record's payload
                handle.write(b"\xde\xad")
            with pytest.raises(SpillError, match="checksum mismatch"):
                list(run)
        finally:
            run.close()

    def test_live_file_registry_tracks_open_and_close(self, tmp_path):
        from repro.storage.spill import live_spill_files

        before = live_spill_files()
        spill = SpillFile(str(tmp_path))
        spill.append((1,))
        assert spill.path in live_spill_files() - before
        spill.close()
        assert spill.path not in live_spill_files()

    def test_injected_spill_failure_leaks_nothing(self, tpch_db, tmp_path):
        from repro.storage.spill import live_spill_files

        before = live_spill_files()
        options = PlannerOptions(
            gapply_spill_threshold=SPILL_THRESHOLD,
            gapply_spill_dir=str(tmp_path),
        )
        sql = PAPER_QUERIES[0].gapply_sql
        with fault_injection(FaultPlan(seed=3, fail_spill_at=0)):
            with pytest.raises(SpillError):
                tpch_db.sql(sql, optimize=False, planner_options=options)
        assert list(tmp_path.iterdir()) == []
        assert live_spill_files() == before

    def test_cancelled_spilling_query_leaks_nothing(self, tpch_db, tmp_path):
        from repro.errors import QueryCancelled
        from repro.execution.governor import Governor
        from repro.storage.spill import live_spill_files

        before = live_spill_files()
        governor = Governor()
        governor.cancel("client disconnected")
        options = PlannerOptions(
            gapply_spill_threshold=SPILL_THRESHOLD,
            gapply_spill_dir=str(tmp_path),
        )
        with pytest.raises(QueryCancelled):
            tpch_db.sql(
                PAPER_QUERIES[0].gapply_sql,
                optimize=False,
                governor=governor,
                planner_options=options,
            )
        assert list(tmp_path.iterdir()) == []
        assert live_spill_files() == before
