"""Spill-to-disk partitioning: forced-spill GApply must be byte-identical
to in-memory execution for every paper-query formulation, under both
partitioning strategies, with real spill metrics and no files left
behind."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import SpillError
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION
from repro.execution.faults import FaultPlan, fault_injection
from repro.optimizer.planner import PlannerOptions
from repro.storage.spill import SpillFile, SpillRun, merge_runs
from repro.workloads.queries import PAPER_QUERIES

#: Small enough that every paper query's partition buffer overflows.
SPILL_THRESHOLD = 64

FORMULATIONS = [
    (query.name, kind, sql)
    for query in PAPER_QUERIES
    for kind, sql in [
        ("gapply", query.gapply_sql),
        ("baseline", query.baseline_sql),
        ("naive", query.naive_sql),
    ]
    if sql is not None
]


class TestCodec:
    """The documented record framing round-trips exactly."""

    def test_append_read_at_roundtrip(self, tmp_path):
        rows = [(1, "x", None), (2.5, b"\x00bytes", True), ((),)]
        with SpillFile(str(tmp_path)) as spill:
            offsets = [spill.append(row) for row in rows]
            assert spill.records == len(rows)
            # frame = 4-byte length + pickled payload, nothing else
            assert spill.bytes_written == sum(
                4 + len(pickle.dumps(r, protocol=4)) for r in rows
            )
            # read-back in arbitrary order, repeatedly
            for offset, row in reversed(list(zip(offsets, rows))):
                assert spill.read_at(offset) == row
                assert spill.read_at(offset) == row

    def test_close_unlinks_file(self, tmp_path):
        spill = SpillFile(str(tmp_path))
        spill.append((1,))
        assert list(tmp_path.iterdir())
        spill.close()
        spill.close()  # idempotent
        assert list(tmp_path.iterdir()) == []

    def test_merge_runs_is_stable_in_argument_order(self, tmp_path):
        # Ties on the key must come out in run-argument order — the
        # property that makes spilled sort partitioning byte-identical.
        run_a = SpillRun([(1, "a1"), (2, "a2")], str(tmp_path))
        run_b = SpillRun([(1, "b1"), (3, "b3")], str(tmp_path))
        tail = [(1, "tail"), (2, "tail2")]
        merged = list(merge_runs([run_a, run_b, tail], key=lambda r: r[0]))
        assert merged == [
            (1, "a1"), (1, "b1"), (1, "tail"),
            (2, "a2"), (2, "tail2"), (3, "b3"),
        ]
        run_a.close()
        run_b.close()
        assert list(tmp_path.iterdir()) == []

    def test_injected_write_failure_is_typed(self, tmp_path):
        with fault_injection(FaultPlan(seed=1, fail_spill_at=1)):
            with SpillFile(str(tmp_path)) as spill:
                spill.append((0,))
                with pytest.raises(SpillError, match="injected"):
                    spill.append((1,))


@pytest.mark.parametrize(
    "partitioning", [HASH_PARTITION, SORT_PARTITION]
)
@pytest.mark.parametrize(
    "name,kind,sql",
    FORMULATIONS,
    ids=[f"{name}-{kind}" for name, kind, _ in FORMULATIONS],
)
class TestSpillEquivalence:
    """All 10 paper formulations, both partitionings: spilled == in-memory."""

    def test_forced_spill_is_byte_identical(
        self, tpch_db, tmp_path, name, kind, sql, partitioning
    ):
        base = PlannerOptions(gapply_partitioning=partitioning)
        plain = tpch_db.sql(sql, optimize=False, planner_options=base)
        spilled = tpch_db.sql(
            sql,
            optimize=False,
            collect_metrics=True,
            planner_options=PlannerOptions(
                gapply_partitioning=partitioning,
                gapply_spill_threshold=SPILL_THRESHOLD,
                gapply_spill_dir=str(tmp_path),
            ),
        )
        assert spilled.rows == plain.rows
        if kind == "gapply":
            # GApply ran with an overflowing buffer: the spill metrics
            # must show real disk traffic, and EXPLAIN ANALYZE carries
            # the same registry.
            assert spilled.metrics.total("spilled_rows") > 0
            assert spilled.metrics.total("spill_runs") > 0
            assert spilled.metrics.total("spill_bytes") > 0
        # Run files are unlinked before the query returns.
        assert list(tmp_path.iterdir()) == []


class TestSpillObservability:
    def test_explain_analyze_reports_nonzero_spill(self, tpch_db, tmp_path):
        sql = PAPER_QUERIES[0].gapply_sql
        explanation = tpch_db.sql(
            sql,
            optimize=False,
            explain="analyze",
            planner_options=PlannerOptions(
                gapply_spill_threshold=SPILL_THRESHOLD,
                gapply_spill_dir=str(tmp_path),
            ),
        )
        assert explanation.registry.total("spilled_rows") > 0
        plain = tpch_db.sql(sql, optimize=False)
        assert explanation.rows == plain.rows

    def test_no_spill_metrics_without_threshold(self, tpch_db):
        result = tpch_db.sql(
            PAPER_QUERIES[0].gapply_sql, optimize=False, collect_metrics=True
        )
        assert result.metrics.total("spilled_rows") == 0
        assert result.metrics.total("spill_runs") == 0
