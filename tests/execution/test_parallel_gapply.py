"""Equivalence suite for GApply's parallel execution phase.

The contract under test (repro.execution.parallel): for every partition
strategy and every backend, the parallel execution phase must be
indistinguishable from the serial reference — same rows, same row order,
same NULL-group handling, and identical merged work counters (parallelism
may change *when* work happens, never *how much*). Inputs are randomized
(seeded) so the suite covers skewed group sizes, NULL keys and duplicate
rows, not just the handcrafted cases of test_gapply.py.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.expressions import col, count_star, gt, lit
from repro.errors import ExecutionError, PlanError
from repro.execution.aggregates import PHashAggregate
from repro.execution.base import PMaterialized, run_plan
from repro.execution.basic import PFilter, PProject
from repro.execution.context import Counters, ExecutionContext
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION, PGApply
from repro.execution.parallel import (
    BACKENDS,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    THREAD_BACKEND,
    ParallelUnavailable,
    WorkerPool,
    execute_group_batch,
    make_batches,
    parallel_worker_active,
)
from repro.execution.scans import PGroupScan
from repro.optimizer.planner import PlannerOptions
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

PARTITIONINGS = (HASH_PARTITION, SORT_PARTITION)
PARALLEL_BACKENDS = (THREAD_BACKEND, PROCESS_BACKEND)

SCHEMA = Schema(
    (
        Column("g", DataType.INTEGER, "t"),
        Column("h", DataType.STRING, "t"),
        Column("v", DataType.FLOAT, "t"),
    )
)


def random_rows(seed: int, count: int = 120) -> list[tuple]:
    """Random rows with NULL keys, duplicates and skewed group sizes."""
    rng = random.Random(seed)
    rows = []
    for _ in range(count):
        key = rng.choice([None, 1, 1, 2, 3, 3, 3, 4, 5, 6, 7, 8])
        rows.append(
            (
                key,
                rng.choice(["x", "y", "z"]),
                round(rng.uniform(0.0, 100.0), 2),
            )
        )
    # Force some exact duplicate rows (multiset semantics).
    rows.extend(rows[:5])
    rng.shuffle(rows)
    return rows


def filter_project_pgq():
    return PProject(
        PFilter(PGroupScan("grp", SCHEMA), gt(col("v"), lit(50.0))),
        ((col("h"), "h"), (col("v"), "v")),
    )


def aggregate_pgq():
    return PHashAggregate(
        PFilter(PGroupScan("grp", SCHEMA), gt(col("v"), lit(25.0))),
        (),
        (count_star("n"),),
    )


def run_with_counters(plan) -> tuple[list[tuple], Counters]:
    ctx = ExecutionContext()
    return run_plan(plan, ctx), ctx.counters


def build(pgq, partitioning, backend=SERIAL_BACKEND, parallelism=1, **kwargs):
    return PGApply(
        PMaterialized(SCHEMA, random_rows(seed=7)),
        ["g"],
        pgq,
        "grp",
        partitioning,
        parallelism=parallelism,
        backend=backend,
        **kwargs,
    )


class TestEquivalence:
    """Parallel output == serial output, bit for bit, for every knob."""

    @pytest.mark.parametrize("partitioning", PARTITIONINGS)
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("pgq_factory", [filter_project_pgq, aggregate_pgq])
    def test_rows_order_and_counters_match_serial(
        self, partitioning, backend, pgq_factory
    ):
        serial_rows, serial_counters = run_with_counters(
            build(pgq_factory(), partitioning)
        )
        parallel_rows, parallel_counters = run_with_counters(
            build(pgq_factory(), partitioning, backend, parallelism=4)
        )
        # Exact order equality — stronger than order-after-normalization,
        # because batches are merged in dispatch order.
        assert parallel_rows == serial_rows
        assert parallel_counters.total_work == serial_counters.total_work
        assert parallel_counters.snapshot() == serial_counters.snapshot()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("parallelism", [2, 3, 8])
    def test_every_worker_count_matches(self, backend, parallelism):
        serial_rows, serial_counters = run_with_counters(
            build(aggregate_pgq(), HASH_PARTITION)
        )
        rows, counters = run_with_counters(
            build(aggregate_pgq(), HASH_PARTITION, backend, parallelism)
        )
        assert rows == serial_rows
        assert counters.snapshot() == serial_counters.snapshot()

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_null_group_survives_parallel_dispatch(self, backend):
        rows, _ = run_with_counters(
            build(aggregate_pgq(), HASH_PARTITION, backend, parallelism=2)
        )
        null_groups = [row for row in rows if row[0] is None]
        serial_rows, _ = run_with_counters(build(aggregate_pgq(), HASH_PARTITION))
        assert null_groups == [row for row in serial_rows if row[0] is None]
        assert len(null_groups) == 1  # all NULL keys form exactly one group

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_explicit_batch_size_keeps_equivalence(self, backend):
        serial_rows, serial_counters = run_with_counters(
            build(filter_project_pgq(), SORT_PARTITION)
        )
        rows, counters = run_with_counters(
            build(
                filter_project_pgq(),
                SORT_PARTITION,
                backend,
                parallelism=2,
                batch_size=1,
            )
        )
        assert rows == serial_rows
        assert counters.snapshot() == serial_counters.snapshot()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_inputs_roundtrip(self, seed):
        rows_in = random_rows(seed)
        reference = None
        for partitioning in PARTITIONINGS:
            for backend in BACKENDS:
                plan = PGApply(
                    PMaterialized(SCHEMA, rows_in),
                    ["g", "h"],
                    aggregate_pgq(),
                    "grp",
                    partitioning,
                    parallelism=3,
                    backend=backend,
                )
                result = sorted(run_plan(plan), key=repr)
                if reference is None:
                    reference = result
                else:
                    assert result == reference


class TestSqlLevel:
    """The knobs ride PlannerOptions / api.Database through real SQL."""

    GAPPLY_SQL = """
        select gapply(
            select p_name, p_retailprice from g
            where p_retailprice > (select avg(p_retailprice) from g)
        ) as (name, price)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_database_knobs_equivalent(self, parts_db, backend):
        serial = parts_db.sql(self.GAPPLY_SQL)
        parallel = parts_db.sql(self.GAPPLY_SQL, parallelism=4, backend=backend)
        assert parallel.rows == serial.rows
        assert (
            parallel.counters.total_work == serial.counters.total_work
        )
        assert parallel.counters.snapshot() == serial.counters.snapshot()

    def test_bare_parallelism_implies_process_backend(self, parts_db):
        result = parts_db.sql(self.GAPPLY_SQL, parallelism=2)
        gapply = _find_gapply(result.physical_plan)
        assert gapply.backend == PROCESS_BACKEND
        assert gapply.parallelism == 2

    # A pure-aggregation PGQ gets rewritten GApply -> groupby, so no
    # PGApply is ever built; the api layer must reject bad knobs anyway.
    GROUPBY_SQL = (
        "select gapply(select count(*) from g) as (n) "
        "from part group by p_brand : g"
    )

    @pytest.mark.parametrize("sql", [GAPPLY_SQL, GROUPBY_SQL])
    def test_bad_knobs_rejected_regardless_of_plan_shape(self, parts_db, sql):
        with pytest.raises(PlanError, match="unknown GApply backend"):
            parts_db.sql(sql, backend="bogus")
        with pytest.raises(PlanError, match="parallelism must be >= 1"):
            parts_db.sql(sql, parallelism=0)

    def test_planner_options_reach_the_operator(self, parts_db):
        result = parts_db.sql(
            self.GAPPLY_SQL,
            planner_options=PlannerOptions(
                gapply_backend=THREAD_BACKEND,
                gapply_parallelism=3,
                gapply_batch_size=2,
            ),
        )
        gapply = _find_gapply(result.physical_plan)
        assert gapply.backend == THREAD_BACKEND
        assert gapply.parallelism == 3
        assert gapply.batch_size == 2

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("query_name", ["Q1", "Q2", "Q3", "Q4"])
    def test_tpch_paper_queries_equivalent(
        self, tiny_tpch_db, backend, query_name
    ):
        from repro.workloads.queries import query_by_name

        sql = query_by_name(query_name).gapply_sql
        serial = tiny_tpch_db.sql(sql)
        parallel = tiny_tpch_db.sql(sql, parallelism=4, backend=backend)
        assert parallel.rows == serial.rows
        assert parallel.counters.snapshot() == serial.counters.snapshot()


@pytest.fixture(scope="module")
def tiny_tpch_db():
    from repro.api import Database
    from repro.workloads.tpch import TpchConfig, load_tpch

    db = Database()
    load_tpch(db.catalog, TpchConfig(scale=0.02))
    return db


def _find_gapply(plan) -> PGApply:
    if isinstance(plan, PGApply):
        return plan
    for child in plan.children():
        found = _find_gapply(child)
        if found is not None:
            return found
    return None


class TestWorkerPool:
    def test_factory_by_backend_name(self):
        for backend in BACKENDS:
            pool = WorkerPool.create(backend, 2)
            assert pool.backend == backend
            assert pool.parallelism == 2

    def test_unknown_backend_rejected(self):
        with pytest.raises(ExecutionError, match="unknown GApply backend"):
            WorkerPool.create("quantum", 2)

    def test_invalid_parallelism_rejected(self):
        with pytest.raises(ExecutionError, match="parallelism"):
            WorkerPool(0)

    def test_make_batches_preserves_order_and_covers_all(self):
        groups = [((i,), [(i, "x", 1.0)]) for i in range(10)]
        batches = make_batches(groups, parallelism=3)
        flattened = [group for batch in batches for group in batch]
        assert flattened == groups
        assert all(batches)

    def test_make_batches_explicit_size(self):
        groups = [((i,), []) for i in range(7)]
        batches = make_batches(groups, parallelism=2, batch_size=3)
        assert [len(batch) for batch in batches] == [3, 3, 1]
        with pytest.raises(ExecutionError):
            make_batches(groups, parallelism=2, batch_size=0)

    def test_execute_group_batch_counts_like_serial_phase(self):
        rows = random_rows(seed=11, count=20)
        groups = {}
        for row in rows:
            groups.setdefault(row[0], []).append(row)
        batch = [((key,), grp) for key, grp in groups.items()]
        out, snapshot, metrics = execute_group_batch(
            aggregate_pgq(), "grp", {}, {}, batch
        )
        assert snapshot["group_executions"] == len(batch)
        assert snapshot["rows"] >= len(out)
        assert len(out) == len(batch)  # one aggregate row per group
        assert metrics is None  # metrics ride along only when asked for

    def test_counters_snapshot_roundtrip(self):
        counters = Counters(rows=5, comparisons=2, peak_partition_rows=9)
        rebuilt = Counters.from_snapshot(counters.snapshot())
        assert rebuilt.snapshot() == counters.snapshot()


class TestGuards:
    def test_unknown_backend_rejected_at_plan_time(self):
        with pytest.raises(PlanError, match="backend"):
            build(aggregate_pgq(), HASH_PARTITION, backend="quantum")

    def test_nonpositive_parallelism_rejected_at_plan_time(self):
        with pytest.raises(PlanError, match="parallelism"):
            build(aggregate_pgq(), HASH_PARTITION, parallelism=0)

    def test_label_names_pool(self):
        serial = build(aggregate_pgq(), HASH_PARTITION)
        parallel = build(
            aggregate_pgq(), HASH_PARTITION, THREAD_BACKEND, parallelism=4
        )
        assert "thread x4" in parallel.label()
        assert "thread" not in serial.label()

    def test_worker_flag_forces_serial_path(self, monkeypatch):
        """Inside a pool worker a nested parallel GApply must not spawn a
        pool of its own (fork bombs, thread oversubscription)."""
        from repro.execution import parallel as parallel_module

        monkeypatch.setattr(
            parallel_module._thread_worker, "active", True, raising=False
        )
        assert parallel_worker_active()

        def explode(*args, **kwargs):
            raise AssertionError("worker must not create a nested pool")

        monkeypatch.setattr(WorkerPool, "create", staticmethod(explode))
        plan = build(aggregate_pgq(), HASH_PARTITION, THREAD_BACKEND, 4)
        serial_rows = run_plan(build(aggregate_pgq(), HASH_PARTITION))
        assert run_plan(plan) == serial_rows

    def test_unpicklable_plan_falls_back_to_serial(self, monkeypatch):
        """If the plan cannot be shipped to processes, PGApply warns and
        runs the serial phase — same rows, same counters."""
        import pickle

        from repro.execution import parallel as parallel_module

        monkeypatch.setattr(parallel_module, "_plan_pickler", lambda: pickle)
        serial_rows, serial_counters = run_with_counters(
            build(filter_project_pgq(), HASH_PARTITION)
        )
        plan = build(filter_project_pgq(), HASH_PARTITION, PROCESS_BACKEND, 4)
        with pytest.warns(RuntimeWarning, match="falling back to serial"):
            rows, counters = run_with_counters(plan)
        assert rows == serial_rows
        assert counters.snapshot() == serial_counters.snapshot()

    def test_parallel_unavailable_is_execution_error(self):
        assert issubclass(ParallelUnavailable, ExecutionError)
