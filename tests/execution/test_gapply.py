"""Unit tests for the physical GApply operator.

The key test checks PGApply against the paper's *formal definition*:

    U_{c in distinct(pi_C(R))} ({c} x PGQ(sigma_{C=c} R))
"""

import pytest

from repro.algebra.expressions import avg, col, count_star, gt, lit
from repro.errors import PlanError
from repro.execution.aggregates import PHashAggregate
from repro.execution.base import PMaterialized, run_plan
from repro.execution.basic import PFilter, PProject
from repro.execution.context import ExecutionContext
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION, PGApply
from repro.execution.scans import PGroupScan
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType, grouping_key

SCHEMA = Schema(
    (
        Column("g", DataType.INTEGER, "t"),
        Column("h", DataType.STRING, "t"),
        Column("v", DataType.FLOAT, "t"),
    )
)
ROWS = [
    (1, "x", 10.0),
    (1, "y", 20.0),
    (2, "x", 5.0),
    (2, "x", 5.0),  # duplicate row: multiset semantics
    (None, "z", 1.0),
]


def source(rows=None):
    return PMaterialized(SCHEMA, ROWS if rows is None else rows)


def count_pgq():
    return PHashAggregate(PGroupScan("grp", SCHEMA), (), (count_star("n"),))


def formal_definition(rows, key_positions, pgq_fn):
    """The paper's formal semantics, computed naively."""
    seen = []
    for row in rows:
        key = tuple(row[i] for i in key_positions)
        if grouping_key(key) not in [grouping_key(k) for k in seen]:
            seen.append(key)
    result = []
    for key in seen:
        group = [
            row
            for row in rows
            if grouping_key(tuple(row[i] for i in key_positions))
            == grouping_key(key)
        ]
        for out in pgq_fn(group):
            result.append(key + out)
    return result


class TestSemantics:
    @pytest.mark.parametrize("partitioning", [HASH_PARTITION, SORT_PARTITION])
    def test_count_per_group_matches_formal_definition(self, partitioning):
        plan = PGApply(source(), ["g"], count_pgq(), "grp", partitioning)
        expected = formal_definition(ROWS, [0], lambda grp: [(len(grp),)])
        assert sorted(run_plan(plan), key=repr) == sorted(expected, key=repr)

    def test_null_keys_form_one_group(self):
        plan = PGApply(source(), ["g"], count_pgq(), "grp")
        rows = {grouping_key((row[0],)): row[1] for row in run_plan(plan)}
        assert rows[grouping_key((None,))] == 1

    def test_multi_column_grouping(self):
        plan = PGApply(source(), ["g", "h"], count_pgq(), "grp")
        out = {row[:2]: row[2] for row in run_plan(plan)}
        assert out[(2, "x")] == 2
        assert out[(1, "x")] == 1

    def test_empty_input_produces_no_groups(self):
        plan = PGApply(source([]), ["g"], count_pgq(), "grp")
        assert run_plan(plan) == []

    def test_multiset_duplicates_preserved_in_group(self):
        pgq = PProject(PGroupScan("grp", SCHEMA), ((col("v"), "v"),))
        plan = PGApply(source(), ["g"], pgq, "grp")
        values = [row for row in run_plan(plan) if row[0] == 2]
        assert values == [(2, 5.0), (2, 5.0)]

    def test_filtering_pgq(self):
        pgq = PHashAggregate(
            PFilter(PGroupScan("grp", SCHEMA), gt(col("v"), lit(7.0))),
            (),
            (count_star("n"),),
        )
        plan = PGApply(source(), ["g"], pgq, "grp")
        out = {grouping_key((row[0],)): row[1] for row in run_plan(plan)}
        assert out[grouping_key((1,))] == 2
        assert out[grouping_key((2,))] == 0  # aggregate over empty subset

    def test_sort_partitioning_clusters_keys_in_order(self):
        plan = PGApply(source(), ["g"], count_pgq(), "grp", SORT_PARTITION)
        keys = [row[0] for row in run_plan(plan)]
        assert keys == [None, 1, 2]  # NULLS FIRST, then ascending


class TestMechanics:
    def test_unknown_partitioning_rejected(self):
        with pytest.raises(PlanError):
            PGApply(source(), ["g"], count_pgq(), "grp", "quantum")

    def test_counters(self):
        ctx = ExecutionContext()
        run_plan(PGApply(source(), ["g"], count_pgq(), "grp"), ctx)
        assert ctx.counters.groups_partitioned == 3
        assert ctx.counters.group_executions == 3
        assert ctx.counters.peak_partition_rows == 5
        assert ctx.counters.buffered_cells == 5 * 3

    def test_group_rows_are_copies(self):
        """Partition buffering materializes rows (width-proportional copy)."""
        plan = PGApply(source(), ["g"], count_pgq(), "grp")
        ctx = ExecutionContext()
        partitions = list(plan._partition_hash(ctx))
        all_buffered = [row for _, rows in partitions for row in rows]
        for buffered in all_buffered:
            assert buffered in ROWS
            assert not any(buffered is original for original in ROWS)

    def test_output_schema_keys_then_pgq(self):
        plan = PGApply(source(), ["g"], count_pgq(), "grp")
        assert plan.schema.qualified_names() == ["t.g", "n"]

    def test_reexecutable(self):
        plan = PGApply(source(), ["g"], count_pgq(), "grp")
        assert run_plan(plan) == run_plan(plan)

    def test_nested_gapply_with_distinct_variables(self):
        # inner GApply groups each outer group by h
        inner_pgq = PHashAggregate(
            PGroupScan("inner_grp", SCHEMA), (), (count_star("m"),)
        )
        inner = PGApply(
            PGroupScan("outer_grp", SCHEMA), ["h"], inner_pgq, "inner_grp"
        )
        plan = PGApply(source(), ["g"], inner, "outer_grp")
        rows = run_plan(plan)
        out = {(row[0], row[1]): row[2] for row in rows}
        assert out[(2, "x")] == 2
        assert out[(1, "y")] == 1

    def test_avg_pgq(self):
        pgq = PHashAggregate(PGroupScan("grp", SCHEMA), (), (avg(col("v"), "m"),))
        plan = PGApply(source(), ["g"], pgq, "grp")
        out = {grouping_key((row[0],)): row[1] for row in run_plan(plan)}
        assert out[grouping_key((1,))] == 15.0
