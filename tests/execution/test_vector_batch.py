"""Unit tests for the columnar batch and the batched expression kernels.

The contract under test: for every expression and every input batch,
``compile_batch(expr, schema)(batch, ctx)`` returns exactly
``[expr.compile(schema)(row, ctx) for row in batch.rows()]`` — same
values, same 3VL NULLs, same typed errors.
"""

from __future__ import annotations

import pytest

from repro.algebra.expressions import (
    And,
    Arithmetic,
    ArithmeticOp,
    CaseWhen,
    InList,
    IsNull,
    Negate,
    Not,
    Or,
    col,
    eq,
    ge,
    gt,
    lit,
    lt,
    ne,
)
from repro.errors import ExecutionError
from repro.execution.context import ExecutionContext
from repro.execution.vector.batch import ColumnBatch
from repro.execution.vector.exprs import compile_batch
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

SCHEMA = Schema(
    (
        Column("a", DataType.INTEGER, "t"),
        Column("b", DataType.INTEGER, "t"),
        Column("f", DataType.FLOAT, "t"),
        Column("s", DataType.STRING, "t"),
        Column("x", DataType.ANY, "t"),
    )
)

ROWS = [
    (1, 10, 1.5, "ab", 1),
    (2, 0, -2.0, "cd", "mixed"),
    (None, 3, None, None, None),
    (4, None, 0.0, "ab", True),
    (-5, 5, 3.25, "zz", 2.5),
    (0, 7, 1.0, "", 0),
]


def batch_of(rows=None):
    rows = ROWS if rows is None else rows
    return ColumnBatch.from_rows(list(rows), len(SCHEMA))


def assert_matches_scalar(expr, rows=None):
    """Batch evaluation must equal row-at-a-time evaluation exactly."""
    rows = ROWS if rows is None else rows
    ctx = ExecutionContext()
    scalar = expr.compile(SCHEMA)
    expected = [scalar(row, ctx) for row in rows]
    got = compile_batch(expr, SCHEMA)(batch_of(rows), ctx)
    assert list(got) == expected


class TestColumnBatch:
    def test_round_trip_rows(self):
        batch = batch_of()
        assert batch.rows() == ROWS
        assert batch.length == len(ROWS)
        assert batch.has_rows

    def test_column_extraction(self):
        # column() may hand back a list or tuple depending on the current
        # representation; only the values are contractual.
        batch = batch_of()
        assert list(batch.column(0)) == [row[0] for row in ROWS]
        assert list(batch.column(3)) == [row[3] for row in ROWS]

    def test_select_subset_preserves_order(self):
        batch = batch_of().select([4, 0, 2])
        assert batch.rows() == [ROWS[4], ROWS[0], ROWS[2]]
        assert list(batch.column(1)) == [ROWS[4][1], ROWS[0][1], ROWS[2][1]]

    def test_select_composes(self):
        batch = batch_of().select([0, 2, 4]).select([2, 0])
        assert batch.rows() == [ROWS[4], ROWS[0]]

    def test_head(self):
        assert batch_of().head(2).rows() == ROWS[:2]
        assert batch_of().head(100).rows() == ROWS

    def test_project_columns(self):
        batch = batch_of().project_columns((3, 0))
        assert batch.rows() == [(row[3], row[0]) for row in ROWS]

    def test_null_mask(self):
        batch = batch_of()
        assert batch.null_mask(0) == [row[0] is None for row in ROWS]

    def test_zero_width_batch(self):
        batch = ColumnBatch(columns=[], length=3)
        assert batch.length == 3
        assert batch.rows() == [(), (), ()]


class TestComparisonKernels:
    @pytest.mark.parametrize("make", [eq, ne, lt, gt, ge])
    def test_same_column_comparisons(self, make):
        assert_matches_scalar(make(col("a"), col("b")))

    def test_literal_comparison_fast_path(self):
        assert_matches_scalar(gt(col("a"), lit(1)))

    def test_string_comparison(self):
        assert_matches_scalar(eq(col("s"), lit("ab")))

    def test_any_column_generic_path(self):
        # ANY columns mix types; only rows where compare is defined are
        # present (int vs int), NULLs propagate.
        rows = [(1, 1, 1.0, "a", 5), (2, 2, 2.0, "b", None), (3, 3, 3.0, "c", 7)]
        assert_matches_scalar(gt(col("x"), lit(6)), rows)

    def test_null_propagates(self):
        values = compile_batch(eq(col("a"), lit(1)), SCHEMA)(
            batch_of(), ExecutionContext()
        )
        assert values[2] is None  # row with a IS NULL


class TestConnectives:
    def test_and_masks_divide_by_zero(self):
        # b != 0 AND a / b > 0 — the scalar evaluator short-circuits, so
        # the batched And must mask rows where the guard failed before
        # evaluating the division (otherwise row (2, 0, ...) raises).
        guard = ne(col("b"), lit(0))
        division = gt(Arithmetic(ArithmeticOp.DIV, col("a"), col("b")), lit(0))
        assert_matches_scalar(And(guard, division))

    def test_or_skips_decided_rows(self):
        first = eq(col("b"), lit(0))
        second = gt(Arithmetic(ArithmeticOp.DIV, col("a"), col("b")), lit(0))
        assert_matches_scalar(Or(first, second))

    def test_three_valued_and_or(self):
        assert_matches_scalar(And(gt(col("a"), lit(0)), gt(col("b"), lit(4))))
        assert_matches_scalar(Or(gt(col("a"), lit(0)), gt(col("b"), lit(4))))

    def test_not_and_is_null(self):
        assert_matches_scalar(Not(gt(col("a"), lit(1))))
        assert_matches_scalar(IsNull(col("f")))
        assert_matches_scalar(IsNull(col("a"), negated=True))


class TestArithmeticKernels:
    @pytest.mark.parametrize(
        "op", [ArithmeticOp.ADD, ArithmeticOp.SUB, ArithmeticOp.MUL]
    )
    def test_fast_numeric_ops(self, op):
        assert_matches_scalar(Arithmetic(op, col("a"), col("b")))
        assert_matches_scalar(Arithmetic(op, col("f"), lit(2.0)))

    def test_division_by_zero_raises_same_error(self):
        expr = Arithmetic(ArithmeticOp.DIV, col("a"), col("b"))
        with pytest.raises(ExecutionError):
            expr.compile(SCHEMA)(ROWS[1], ExecutionContext())
        with pytest.raises(ExecutionError):
            compile_batch(expr, SCHEMA)(batch_of(), ExecutionContext())

    def test_integer_division_truncates_toward_zero(self):
        rows = [(-7, 2, 0.0, "", 0), (7, -2, 0.0, "", 0), (7, 2, 0.0, "", 0)]
        assert_matches_scalar(
            Arithmetic(ArithmeticOp.DIV, col("a"), col("b")), rows
        )

    def test_negate(self):
        assert_matches_scalar(Negate(col("a")))


class TestInListAndFallback:
    def test_in_list_literals(self):
        assert_matches_scalar(InList(col("a"), (lit(1), lit(4), lit(9))))

    def test_in_list_with_null_item(self):
        # NULL in the list: misses become NULL, hits stay True.
        assert_matches_scalar(InList(col("a"), (lit(1), lit(None))))
        assert_matches_scalar(
            InList(col("a"), (lit(1), lit(None)), negated=True)
        )

    def test_case_when_scalar_fallback(self):
        expr = CaseWhen(
            whens=((gt(col("a"), lit(1)), lit("big")),),
            default=lit("small"),
        )
        assert_matches_scalar(expr)
