"""Unit tests for correlated Apply and Exists."""

from repro.algebra.expressions import Parameter, avg, col, count_star, eq, gt
from repro.execution.aggregates import PHashAggregate
from repro.execution.apply import PApply, PExists
from repro.execution.base import PMaterialized, run_plan
from repro.execution.basic import PFilter, PProject
from repro.execution.context import ExecutionContext
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

OUTER = Schema((Column("ok", DataType.INTEGER), Column("ov", DataType.FLOAT)))
INNER = Schema((Column("ik", DataType.INTEGER), Column("iv", DataType.FLOAT)))

OUTER_ROWS = [(1, 10.0), (2, 20.0), (3, 30.0)]
INNER_ROWS = [(1, 100.0), (1, 200.0), (2, 300.0)]


def outer():
    return PMaterialized(OUTER, OUTER_ROWS)


def inner():
    return PMaterialized(INNER, INNER_ROWS)


class TestExists:
    def test_nonempty_yields_one_empty_tuple(self):
        assert run_plan(PExists(inner())) == [()]

    def test_empty_yields_nothing(self):
        assert run_plan(PExists(PMaterialized(INNER, []))) == []

    def test_negated(self):
        assert run_plan(PExists(PMaterialized(INNER, []), negated=True)) == [()]
        assert run_plan(PExists(inner(), negated=True)) == []

    def test_short_circuits(self):
        ctx = ExecutionContext()
        run_plan(PExists(inner()), ctx)
        assert ctx.counters.rows <= 2  # one inner row pulled + the phi tuple


class TestCorrelatedApply:
    def correlated_count(self):
        filtered = PFilter(inner(), eq(col("ik"), Parameter("k")))
        agg = PHashAggregate(filtered, (), (count_star("n"),))
        return PApply(outer(), agg, (("k", "ok"),))

    def test_per_row_execution(self):
        rows = run_plan(self.correlated_count())
        assert rows == [(1, 10.0, 2), (2, 20.0, 1), (3, 30.0, 0)]

    def test_inner_executions_counted(self):
        ctx = ExecutionContext()
        run_plan(self.correlated_count(), ctx)
        assert ctx.counters.inner_executions == 3

    def test_exists_inner_keeps_outer_rows(self):
        filtered = PFilter(inner(), eq(col("ik"), Parameter("k")))
        plan = PApply(outer(), PExists(filtered), (("k", "ok"),))
        assert run_plan(plan) == [(1, 10.0), (2, 20.0)]

    def test_not_exists(self):
        filtered = PFilter(inner(), eq(col("ik"), Parameter("k")))
        plan = PApply(outer(), PExists(filtered, negated=True), (("k", "ok"),))
        assert run_plan(plan) == [(3, 30.0)]

    def test_nested_parameter_shadowing(self):
        # inner apply rebinds the same parameter name; innermost wins
        deep_filter = PFilter(inner(), eq(col("ik"), Parameter("k")))
        deep_agg = PHashAggregate(deep_filter, (), (count_star("deep_n"),))
        mid = PApply(inner(), deep_agg, (("k", "ik"),))
        mid_projected = PProject(mid, ((col("deep_n"), "n2"),))
        plan = PApply(outer(), mid_projected, ())
        rows = run_plan(plan)
        # mid produces counts [2, 2, 1] (two ik=1 rows, one ik=2 row) and is
        # crossed with each of the 3 outer rows
        counts = sorted(row[2] for row in rows)
        assert counts == [1, 1, 1, 2, 2, 2, 2, 2, 2]


class TestUncorrelatedApplyCaching:
    def test_inner_evaluated_once(self):
        agg = PHashAggregate(inner(), (), (avg(col("iv"), "m"),))
        plan = PApply(outer(), agg, ())
        ctx = ExecutionContext()
        rows = run_plan(plan, ctx)
        assert ctx.counters.inner_executions == 1
        assert all(row[2] == 200.0 for row in rows)

    def test_cached_results_correct_for_multi_row_inner(self):
        plan = PApply(outer(), inner(), ())
        rows = run_plan(plan)
        assert len(rows) == len(OUTER_ROWS) * len(INNER_ROWS)

    def test_empty_outer_never_runs_inner(self):
        agg = PHashAggregate(inner(), (), (avg(col("iv"), "m"),))
        plan = PApply(PMaterialized(OUTER, []), agg, ())
        ctx = ExecutionContext()
        assert run_plan(plan, ctx) == []
        assert ctx.counters.inner_executions == 0

    def test_ancestor_parameters_still_visible(self):
        # the cached inner may read parameters bound by an ancestor apply
        filtered = PFilter(inner(), gt(col("iv"), Parameter("threshold")))
        agg = PHashAggregate(filtered, (), (count_star("n"),))
        uncorrelated = PApply(inner(), agg, ())  # no own bindings
        plan = PApply(outer(), PProject(uncorrelated, ((col("n"), "n2"),)), (("threshold", "ov"),))
        rows = run_plan(plan)
        by_outer = {}
        for row in rows:
            by_outer.setdefault(row[0], set()).add(row[2])
        # threshold 10 -> all 3 inner rows pass; 20 -> 3; 30 -> 3 (iv >= 100)
        assert by_outer[1] == {3}
