"""Unit tests for the scan leaves and the materialized source."""

import pytest

from repro.errors import ExecutionError
from repro.execution.base import PMaterialized, run_plan
from repro.execution.context import ExecutionContext
from repro.execution.scans import PGroupScan, PTableScan
from repro.storage.schema import Column, Schema
from repro.storage.table import table_from_rows
from repro.storage.types import DataType


def make_table():
    return table_from_rows(
        "t", [("a", DataType.INTEGER), ("b", DataType.STRING)], [(1, "x"), (2, "y")]
    )


class TestTableScan:
    def test_emits_all_rows(self):
        plan = PTableScan(make_table())
        assert run_plan(plan) == [(1, "x"), (2, "y")]

    def test_schema_qualified_by_table_name(self):
        plan = PTableScan(make_table())
        assert plan.schema.qualified_names() == ["t.a", "t.b"]

    def test_alias_requalifies(self):
        plan = PTableScan(make_table(), alias="u")
        assert plan.schema.qualified_names() == ["u.a", "u.b"]
        assert "AS u" in plan.label()

    def test_counters(self):
        ctx = ExecutionContext()
        run_plan(PTableScan(make_table()), ctx)
        assert ctx.counters.table_scan_rows == 2

    def test_sees_inserted_rows(self):
        table = make_table()
        plan = PTableScan(table)
        table.insert((3, "z"))
        assert len(run_plan(plan)) == 3


class TestGroupScan:
    SCHEMA = Schema((Column("a", DataType.INTEGER),))

    def test_reads_bound_relation(self):
        plan = PGroupScan("g", self.SCHEMA)
        ctx = ExecutionContext().with_relation("g", [(1,), (2,)])
        assert run_plan(plan, ctx) == [(1,), (2,)]

    def test_unbound_variable_raises(self):
        plan = PGroupScan("g", self.SCHEMA)
        with pytest.raises(ExecutionError):
            run_plan(plan, ExecutionContext())

    def test_rebinding_changes_output(self):
        plan = PGroupScan("g", self.SCHEMA)
        first = ExecutionContext().with_relation("g", [(1,)])
        second = ExecutionContext().with_relation("g", [(9,), (8,)])
        assert run_plan(plan, first) == [(1,)]
        assert run_plan(plan, second) == [(9,), (8,)]

    def test_counters(self):
        plan = PGroupScan("g", self.SCHEMA)
        ctx = ExecutionContext().with_relation("g", [(1,), (2,), (3,)])
        run_plan(plan, ctx)
        assert ctx.counters.group_scan_rows == 3


class TestMaterialized:
    def test_round_trip(self):
        schema = Schema((Column("x", DataType.INTEGER),))
        plan = PMaterialized(schema, [(1,), (2,)])
        assert run_plan(plan) == [(1,), (2,)]
        assert "2 rows" in plan.label()

    def test_empty(self):
        plan = PMaterialized(Schema((Column("x", DataType.INTEGER),)), [])
        assert run_plan(plan) == []
