"""Fault injection and worker-crash recovery.

The contract: a killed process worker is retried with backoff; exhausted
retries degrade ``process -> thread -> serial`` with a structured warning
and still-correct results; pools are context managers that reap their
children on every exit path; and all of it is deterministic under a
seeded :class:`FaultPlan`."""

from __future__ import annotations

import multiprocessing
import random
import time

import pytest

from repro.api import Database
from repro.errors import SpillError, WorkerCrashed
from repro.execution import parallel
from repro.execution.faults import (
    INJECTION_POINTS,
    FaultPlan,
    active_plan,
    fault_injection,
    install_plan,
)
from repro.execution.parallel import (
    MAX_CRASH_RETRIES,
    PROCESS_BACKEND,
    ProcessWorkerPool,
    ThreadWorkerPool,
    WorkerPool,
)
from repro.storage.types import DataType

GAPPLY_SQL = (
    "select gapply(select count(*) as n from g) from t group by g : g"
)


@pytest.fixture
def db() -> Database:
    db = Database()
    db.create_table(
        "t",
        [("g", DataType.INTEGER), ("v", DataType.FLOAT)],
        [(i % 8, float(i)) for i in range(200)],
    )
    return db


@pytest.fixture
def fast_backoff(monkeypatch):
    """Record crash backoffs instead of actually sleeping."""
    sleeps: list[float] = []
    monkeypatch.setattr(parallel, "_sleep", sleeps.append)
    return sleeps


def assert_no_orphans(deadline: float = 5.0) -> None:
    """Every worker process is reaped shortly after the query ends."""
    end = time.monotonic() + deadline
    while multiprocessing.active_children():
        if time.monotonic() > end:  # pragma: no cover - failure path
            raise AssertionError(
                f"orphaned workers: {multiprocessing.active_children()}"
            )
        time.sleep(0.05)


class TestFaultPlan:
    def test_from_seed_is_deterministic(self):
        assert FaultPlan.from_seed(42) == FaultPlan.from_seed(42)

    def test_from_seed_covers_every_injection_point(self):
        planned = set()
        for seed in range(60):
            plan = FaultPlan.from_seed(seed)
            if plan.kill_batch is not None:
                planned.add("worker-kill")
            elif plan.delay_batch is not None:
                planned.add("batch-delay")
            elif plan.fail_spill_at is not None:
                planned.add("spill-write")
        assert planned == set(INJECTION_POINTS)

    def test_to_dict_round_trips(self):
        plan = FaultPlan.from_seed(7)
        assert FaultPlan(**plan.to_dict()) == plan

    def test_context_manager_restores_previous(self):
        outer = FaultPlan(seed=1, delay_batch=0)
        inner = FaultPlan(seed=2, delay_batch=1)
        install_plan(None)
        with fault_injection(outer):
            with fault_injection(inner):
                assert active_plan() is inner
            assert active_plan() is outer
        assert active_plan() is None

    def test_plans_are_picklable(self):
        import pickle

        plan = FaultPlan.from_seed(3)
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestCrashRecovery:
    def test_single_kill_is_retried_and_recovers(self, db, fast_backoff):
        plain = db.sql(GAPPLY_SQL, optimize=False)
        with fault_injection(FaultPlan(seed=1, kill_batch=1,
                                       kill_attempts=1)):
            result = db.sql(GAPPLY_SQL, optimize=False,
                            backend=PROCESS_BACKEND, parallelism=2)
        assert result.rows == plain.rows
        assert result.counters.snapshot() == plain.counters.snapshot()
        # The crash really happened: exactly one backoff, exponential base.
        assert fast_backoff == [parallel.CRASH_BACKOFF_SECONDS]
        assert_no_orphans()

    def test_exhausted_retries_degrade_down_the_ladder(self, db, fast_backoff):
        plain = db.sql(GAPPLY_SQL, optimize=False)
        with fault_injection(FaultPlan(seed=2, kill_batch=0,
                                       kill_attempts=99)):
            with pytest.warns(RuntimeWarning, match="degrading to 'thread'"):
                result = db.sql(GAPPLY_SQL, optimize=False,
                                backend=PROCESS_BACKEND, parallelism=2)
        assert result.rows == plain.rows
        assert result.counters.snapshot() == plain.counters.snapshot()
        # One backoff per rebuild, doubling each time.
        assert fast_backoff == [
            parallel.CRASH_BACKOFF_SECONDS * (2 ** i)
            for i in range(MAX_CRASH_RETRIES)
        ]
        assert_no_orphans()

    def test_mid_stream_crash_never_recounts_the_prefix(self, db,
                                                        fast_backoff):
        # Kill a *late* batch so earlier batches were already merged when
        # the ladder takes over; counters must still match serial exactly
        # (the completed prefix is not re-dispatched).
        plain = db.sql(GAPPLY_SQL, optimize=False)
        with fault_injection(FaultPlan(seed=3, kill_batch=3,
                                       kill_attempts=99)):
            with pytest.warns(RuntimeWarning, match="remaining"):
                result = db.sql(GAPPLY_SQL, optimize=False,
                                backend=PROCESS_BACKEND, parallelism=2)
        assert result.rows == plain.rows
        assert result.counters.snapshot() == plain.counters.snapshot()

    def test_worker_crashed_carries_consumed_batches(self):
        error = WorkerCrashed("died", consumed_batches=7)
        assert error.consumed_batches == 7


class TestSpillFaults:
    def test_failing_spill_write_raises_typed_error(self, db):
        with fault_injection(FaultPlan(seed=4, fail_spill_at=0)):
            with pytest.raises(SpillError, match="injected"):
                db.sql(GAPPLY_SQL, optimize=False, memory_budget=64)

    def test_fault_past_the_last_write_is_harmless(self, db):
        plain = db.sql(GAPPLY_SQL, optimize=False)
        with fault_injection(FaultPlan(seed=5, fail_spill_at=10_000_000)):
            result = db.sql(GAPPLY_SQL, optimize=False, memory_budget=64)
        assert result.rows == plain.rows


class TestPoolLifecycle:
    """WorkerPool context managers reap children on every exit path."""

    def test_close_is_idempotent(self):
        for pool in (WorkerPool(), ThreadWorkerPool(2), ProcessWorkerPool(2)):
            with pool:
                pass
            pool.close()
            pool.close()

    @staticmethod
    def _batches():
        from repro.algebra.expressions import count_star
        from repro.execution.aggregates import PHashAggregate
        from repro.execution.scans import PGroupScan
        from repro.storage.schema import Column, Schema

        schema = Schema(
            (Column("g", DataType.INTEGER, "t"),
             Column("v", DataType.FLOAT, "t"))
        )
        pgq = PHashAggregate(
            PGroupScan("grp", schema), (), (count_star("n"),)
        )
        groups = [
            ((k,), [(k, float(i)) for i in range(30)]) for k in range(6)
        ]
        return pgq, [groups[:3], groups[3:]]

    def test_exception_inside_with_block_reaps_processes(self):
        pgq, batches = self._batches()
        with pytest.raises(KeyboardInterrupt):
            with ProcessWorkerPool(2) as pool:
                results = pool.run(pgq, "grp", {}, {}, batches)
                next(results)  # pool is live, children exist
                raise KeyboardInterrupt
        assert_no_orphans()

    def test_abandoned_result_stream_reaps_processes(self):
        pgq, batches = self._batches()
        pool = ProcessWorkerPool(2)
        results = pool.run(pgq, "grp", {}, {}, batches)
        next(results)
        results.close()  # generator-close protocol -> finally -> close()
        assert_no_orphans()


class TestChaosDeterminism:
    def test_same_seed_same_outcome(self, db):
        # The harness promise chaos mode relies on: a seed fully
        # determines the fault, so a failing seed replays.
        seed = random.Random(0).randrange(1 << 30)
        outcomes = []
        for _ in range(2):
            with fault_injection(FaultPlan.from_seed(seed, batches=4)):
                try:
                    rows = db.sql(GAPPLY_SQL, optimize=False,
                                  memory_budget=128).rows
                    outcomes.append(("rows", rows))
                except SpillError:
                    outcomes.append(("spill-error", None))
        assert outcomes[0] == outcomes[1]
