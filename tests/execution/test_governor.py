"""Resource governor tests: budgets, cancellation, and the cross-backend
contract — the same violation raises the same typed error whether the
GApply execution phase runs serial, threaded, or in processes."""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.errors import (
    BudgetExceeded,
    MemoryBudgetExceeded,
    PlanError,
    QueryCancelled,
    RowBudgetExceeded,
    TimeoutExceeded,
)
from repro.execution.governor import CHECK_STRIDE, Budget, Governor
from repro.execution.parallel import BACKENDS
from repro.storage.types import DataType

GAPPLY_SQL = (
    "select gapply(select count(*) as n from g) from t group by g : g"
)


@pytest.fixture
def db() -> Database:
    db = Database()
    db.create_table(
        "t",
        [("g", DataType.INTEGER), ("v", DataType.FLOAT)],
        [(i % 8, float(i)) for i in range(400)],
    )
    return db


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestBudgetValidation:
    def test_defaults_are_unlimited(self):
        assert Budget().unlimited

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout": 0.0},
            {"timeout": -1.0},
            {"memory_cells": 0},
            {"max_rows": -1},
        ],
    )
    def test_bad_values_raise_plan_error(self, kwargs):
        with pytest.raises(PlanError):
            Budget(**kwargs)


class TestGovernorUnit:
    def test_timeout_uses_injected_clock(self):
        clock = FakeClock()
        governor = Governor(Budget(timeout=5.0), clock=clock)
        governor.check()  # within budget
        clock.now = 5.1
        with pytest.raises(TimeoutExceeded):
            governor.check()

    def test_tick_checks_only_on_the_stride(self):
        clock = FakeClock()
        governor = Governor(Budget(timeout=1.0), clock=clock)
        clock.now = 2.0  # already expired — but ticks below stride pass
        governor.tick(CHECK_STRIDE - 1)
        with pytest.raises(TimeoutExceeded):
            governor.tick(1)

    def test_cancel_observed_at_check(self):
        governor = Governor()
        governor.cancel("user hit ^C")
        with pytest.raises(QueryCancelled, match="user hit"):
            governor.check()

    def test_cell_accounting_and_peak(self):
        governor = Governor(Budget(memory_cells=100))
        governor.charge_cells(60)
        governor.release_cells(30)
        governor.charge_cells(60)  # 90 in use, still under
        assert governor.cells_in_use == 90
        assert governor.peak_cells == 90
        with pytest.raises(MemoryBudgetExceeded):
            governor.charge_cells(11)

    def test_output_budget(self):
        governor = Governor(Budget(max_rows=2))
        governor.tick_output(2)
        with pytest.raises(RowBudgetExceeded):
            governor.tick_output(1)

    def test_spill_threshold_is_the_memory_budget(self):
        assert Governor(Budget(memory_cells=64)).spill_threshold() == 64
        assert Governor().spill_threshold() is None

    def test_budget_errors_are_typed(self):
        for exc in (TimeoutExceeded, MemoryBudgetExceeded, RowBudgetExceeded):
            assert issubclass(exc, BudgetExceeded)


class TestWorkerLimitsProtocol:
    """The picklable budget snapshot shipped to process workers."""

    def test_none_when_nothing_to_enforce(self):
        assert Governor(Budget(memory_cells=10)).worker_limits() is None
        assert Governor.from_worker_limits(None) is None

    def test_timeout_is_rebased_to_remaining(self):
        clock = FakeClock()
        governor = Governor(Budget(timeout=10.0), clock=clock)
        clock.now = 4.0
        limits = governor.worker_limits()
        assert limits["timeout"] == pytest.approx(6.0)
        replica = Governor.from_worker_limits(limits)
        replica.check()  # fresh replica: clock starts now

    def test_expired_parent_ships_positive_epsilon(self):
        clock = FakeClock()
        governor = Governor(Budget(timeout=1.0), clock=clock)
        clock.now = 5.0
        limits = governor.worker_limits()
        assert limits["timeout"] > 0  # Budget forbids <= 0
        replica = Governor.from_worker_limits(limits)
        with pytest.raises(TimeoutExceeded):
            replica.tick(CHECK_STRIDE)

    def test_cancellation_ships(self):
        governor = Governor()
        governor.cancel()
        replica = Governor.from_worker_limits(governor.worker_limits())
        with pytest.raises(QueryCancelled):
            replica.check()


@pytest.mark.parametrize("backend", BACKENDS)
class TestBudgetsAcrossBackends:
    """Identical typed errors on serial, thread, and process backends."""

    def test_max_rows_raises_row_budget(self, db, backend):
        with pytest.raises(RowBudgetExceeded) as info:
            db.sql(GAPPLY_SQL, backend=backend, parallelism=2, max_rows=3)
        assert info.value.sql == GAPPLY_SQL

    def test_expired_timeout_raises_typed_error(self, db, backend):
        with pytest.raises(TimeoutExceeded) as info:
            db.sql(GAPPLY_SQL, backend=backend, parallelism=2, timeout=1e-9)
        assert info.value.sql == GAPPLY_SQL

    def test_generous_budgets_change_nothing(self, db, backend):
        plain = db.sql(GAPPLY_SQL, backend=backend, parallelism=2)
        budgeted = db.sql(
            GAPPLY_SQL,
            backend=backend,
            parallelism=2,
            timeout=3600.0,
            memory_budget=1 << 30,
            max_rows=1 << 30,
        )
        assert budgeted.rows == plain.rows
        assert budgeted.counters.snapshot() == plain.counters.snapshot()


class TestGovernorThroughApi:
    def test_precancelled_governor_raises_query_cancelled(self, db):
        governor = Governor()
        governor.cancel("shed load")
        with pytest.raises(QueryCancelled):
            db.execute(db.plan("select v from t order by v"),
                       governor=governor)

    def test_governor_and_knobs_are_mutually_exclusive(self, db):
        with pytest.raises(PlanError):
            db.execute(db.plan("select v from t"),
                       governor=Governor(), max_rows=5)

    def test_sort_under_memory_budget_spills(self, db):
        # PSort spills to sorted runs under a cell budget (DESIGN §14.5):
        # a budget far below the 400-row input must still produce exactly
        # the unbudgeted rows, with the spill visible in the counters.
        sql = "select v from t order by v"
        plain = db.sql(sql)
        budgeted = db.sql(sql, memory_budget=16, collect_metrics=True)
        assert budgeted.rows == plain.rows
        assert budgeted.metrics.total("spilled_rows") > 0

    def test_sort_row_wider_than_budget_still_raises(self, db):
        # Spilling frees the buffer, not the row: a budget smaller than
        # one row's width can never make progress and must raise.
        with pytest.raises(MemoryBudgetExceeded) as info:
            db.sql("select g, v from t order by v", memory_budget=1)
        assert info.value.sql == "select g, v from t order by v"

    def test_memory_budget_makes_gapply_spill_not_fail(self, db):
        plain = db.sql(GAPPLY_SQL, optimize=False)
        budgeted = db.sql(
            GAPPLY_SQL, optimize=False, memory_budget=64,
            collect_metrics=True,
        )
        assert budgeted.rows == plain.rows
        assert budgeted.metrics.total("spilled_rows") > 0

    def test_row_budget_counts_only_root_rows(self, db):
        # 8 groups -> 8 output rows; interior operators see 400. A root
        # budget of 8 must pass even though the pipeline moved far more.
        result = db.sql(GAPPLY_SQL, max_rows=8)
        assert len(result.rows) == 8
