"""Engine-differential tests: the vector engine must be indistinguishable
from Volcano for any plan — identical rows in identical order, identical
deterministic counters, identical per-operator metrics snapshots (time
excluded), and identical typed budget errors. Batching is an
implementation detail, never a semantic one.
"""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.errors import (
    MemoryBudgetExceeded,
    PlanError,
    RowBudgetExceeded,
    TimeoutExceeded,
)
from repro.execution.context import Counters, ExecutionContext
from repro.execution.governor import Budget, Governor
from repro.execution.vector.compiler import compile_plan
from repro.observe.metrics import MetricsRegistry
from repro.optimizer.planner import (
    ENGINES,
    VECTOR_ENGINE,
    VOLCANO_ENGINE,
    PlannerOptions,
)
from repro.storage.types import DataType
from repro.workloads.queries import PAPER_QUERIES

#: Every paper-query formulation (4 baseline + 4 gapply + the naive
#: correlated-subquery variants where the paper defines one).
FORMULATIONS = [
    (query.name, label, sql)
    for query in PAPER_QUERIES
    for label, sql in (
        ("baseline", query.baseline_sql),
        ("gapply", query.gapply_sql),
        ("naive", query.naive_sql),
    )
    if sql is not None
]

IDS = [f"{name}-{label}" for name, label, _ in FORMULATIONS]


def _lower(db: Database, sql: str, options: PlannerOptions | None = None):
    from repro.bench.harness import bind, lower as lower_plan, optimize_with

    logical = optimize_with(db.catalog, bind(db.catalog, sql))
    return lower_plan(db.catalog, logical, options)


def run_both(plan, batch_size: int = 1024):
    """(volcano, vector) triples of (rows, counter dict, metrics snapshot)."""
    outcomes = []
    for vector in (False, True):
        counters = Counters()
        metrics = MetricsRegistry()
        metrics.register_plan(plan)
        ctx = ExecutionContext(counters=counters, metrics=metrics)
        if vector:
            rows = compile_plan(plan, batch_size=batch_size).run(ctx)
        else:
            rows = list(plan.execute(ctx))
        outcomes.append((rows, dict(vars(counters)), metrics.snapshot()))
    return outcomes


def assert_equivalent(plan, batch_size: int = 1024):
    (v_rows, v_counters, v_snap), (b_rows, b_counters, b_snap) = run_both(
        plan, batch_size
    )
    assert b_rows == v_rows
    assert b_counters == v_counters
    assert b_snap == v_snap


class TestPaperFormulations:
    @pytest.mark.parametrize("name,label,sql", FORMULATIONS, ids=IDS)
    def test_identical_rows_counters_metrics(self, tpch_db, name, label, sql):
        assert_equivalent(_lower(tpch_db, sql))

    @pytest.mark.parametrize("batch_size", [1, 3])
    def test_tiny_batches_force_cross_batch_state(self, tpch_db, batch_size):
        # Small batches make limit countdowns, distinct sets and hash
        # builds span many batches; Q2 exercises joins + gapply.
        query = PAPER_QUERIES[1]
        assert_equivalent(_lower(tpch_db, query.baseline_sql), batch_size)
        assert_equivalent(_lower(tpch_db, query.gapply_sql), batch_size)

    def test_paper_plans_fully_vectorize(self, tpch_db):
        for query in PAPER_QUERIES:
            for sql in (query.baseline_sql, query.gapply_sql):
                plan = compile_plan(_lower(tpch_db, sql))
                assert plan.fully_vectorized, (query.name, plan.fallbacks)

    def test_naive_formulations_fall_back_but_agree(self, tpch_db):
        # Correlated subqueries lower to correlated Apply/Exists, which
        # the compiler routes through Volcano — noted, never wrong.
        for query in PAPER_QUERIES:
            if query.naive_sql is None:
                continue
            plan = compile_plan(_lower(tpch_db, query.naive_sql))
            assert not plan.fully_vectorized
            assert all(note.reason for note in plan.fallbacks)


class TestEngineKnob:
    def test_sql_engine_kwarg(self, tpch_db):
        sql = PAPER_QUERIES[0].baseline_sql
        volcano = tpch_db.sql(sql)
        vector = tpch_db.sql(sql, engine=VECTOR_ENGINE)
        assert volcano.engine == VOLCANO_ENGINE
        assert vector.engine == VECTOR_ENGINE
        assert vector.rows == volcano.rows
        assert vars(vector.counters) == vars(volcano.counters)

    def test_planner_options_engine(self, tpch_db):
        sql = PAPER_QUERIES[0].gapply_sql
        result = tpch_db.sql(
            sql, planner_options=PlannerOptions(engine=VECTOR_ENGINE)
        )
        assert result.engine == VECTOR_ENGINE
        assert result.rows == tpch_db.sql(sql).rows

    def test_unknown_engine_rejected(self, tpch_db):
        with pytest.raises(PlanError):
            tpch_db.sql(PAPER_QUERIES[0].baseline_sql, engine="columnar")
        with pytest.raises(PlanError):
            tpch_db.sql(
                PAPER_QUERIES[0].baseline_sql,
                planner_options=PlannerOptions(engine="columnar"),
            )

    def test_engines_constant_lists_both(self):
        assert VOLCANO_ENGINE in ENGINES
        assert VECTOR_ENGINE in ENGINES

    def test_vector_batch_size_knob(self, tpch_db):
        sql = PAPER_QUERIES[2].baseline_sql
        result = tpch_db.sql(
            sql,
            planner_options=PlannerOptions(
                engine=VECTOR_ENGINE, vector_batch_size=2
            ),
        )
        assert result.rows == tpch_db.sql(sql).rows


class TestBudgetEquivalence:
    """Typed budget errors must be engine-independent."""

    def run_engine(self, plan, vector: bool, governor: Governor):
        ctx = ExecutionContext(counters=Counters(), governor=governor)
        try:
            if vector:
                compile_plan(plan).run(ctx)
            else:
                list(plan.execute(ctx))
        except Exception as error:  # noqa: BLE001 - comparing types
            return type(error)
        return None

    def test_memory_budget_identical(self, tpch_db):
        for query in PAPER_QUERIES:
            plan = _lower(tpch_db, query.baseline_sql)
            volcano = self.run_engine(plan, False, Governor(Budget(memory_cells=50)))
            vector = self.run_engine(plan, True, Governor(Budget(memory_cells=50)))
            assert vector is volcano, query.name
            if volcano is not None:
                assert volcano is MemoryBudgetExceeded

    def test_fake_clock_timeout_identical(self, tpch_db):
        def ticking_clock():
            state = [0.0]

            def clock():
                state[0] += 0.5
                return state[0]

            return clock

        plan = _lower(tpch_db, PAPER_QUERIES[0].baseline_sql)
        volcano = self.run_engine(
            plan, False, Governor(Budget(timeout=1.0), clock=ticking_clock())
        )
        vector = self.run_engine(
            plan, True, Governor(Budget(timeout=1.0), clock=ticking_clock())
        )
        assert volcano is TimeoutExceeded
        assert vector is TimeoutExceeded

    def test_max_rows_identical_through_api(self, tpch_db):
        sql = PAPER_QUERIES[0].baseline_sql
        with pytest.raises(RowBudgetExceeded):
            tpch_db.sql(sql, max_rows=2)
        with pytest.raises(RowBudgetExceeded):
            tpch_db.sql(sql, max_rows=2, engine=VECTOR_ENGINE)


def null_heavy_db() -> Database:
    """A database where most grouping/join keys are NULL — the worst case
    for raw-key fast paths and NULL-skip bookkeeping."""
    db = Database()
    db.create_table(
        "events",
        [
            ("e_key", DataType.INTEGER),
            ("e_group", DataType.STRING),
            ("e_value", DataType.INTEGER),
        ],
        [
            (None, None, 1),
            (1, "a", None),
            (None, "a", 2),
            (2, None, 3),
            (1, "b", 4),
            (None, None, None),
            (2, "b", 5),
            (None, "b", None),
            (1, None, 6),
        ],
    )
    db.create_table(
        "lookup",
        [("l_key", DataType.INTEGER), ("l_tag", DataType.STRING)],
        [(1, "one"), (2, "two"), (None, "null"), (1, "uno")],
    )
    return db


NULL_HEAVY_QUERIES = [
    "select e_group, count(*), sum(e_value) from events group by e_group",
    "select distinct e_key, e_group from events",
    "select e_key, l_tag from events, lookup where e_key = l_key",
    "select e_key, e_value from events order by e_value, e_key",
    "select gapply(select count(*), sum(e_value) from g) as (n, total) "
    "from events group by e_group : g",
]


class TestAwkwardSchemas:
    @pytest.mark.parametrize("sql", NULL_HEAVY_QUERIES)
    def test_null_heavy_identical(self, sql):
        db = null_heavy_db()
        for batch_size in (1024, 2):
            assert_equivalent(_lower(db, sql), batch_size)

    def test_empty_groups_identical(self):
        # Every group's per-group rows are filtered away: the gapply
        # empty-group skip accounting must match the row engine exactly.
        db = null_heavy_db()
        sql = (
            "select gapply(select count(*) from g where e_value > 100) "
            "as (n) from events group by e_group : g"
        )
        assert_equivalent(_lower(db, sql))
        assert_equivalent(_lower(db, sql), 1)

    def test_empty_table_identical(self):
        db = Database()
        db.create_table(
            "empty", [("k", DataType.INTEGER), ("v", DataType.INTEGER)], []
        )
        for sql in (
            "select k, sum(v) from empty group by k",
            "select count(*) from empty",
            "select distinct k from empty",
        ):
            assert_equivalent(_lower(db, sql))
