"""Integration tests tied to the paper's figures and experiments.

F2  — Q1's logical and physical GApply plan shapes (Figure 2);
E1  — GApply formulations beat/match baselines in deterministic work units;
E8  — the client-side simulation over-estimates the native operator.
"""

import pytest

from repro.algebra.operators import GApply, GroupScan, Join, TableScan, UnionAll
from repro.bench.harness import bind, lower, measure_physical, optimize_with
from repro.execution.gapply import PGApply
from repro.execution.scans import PGroupScan
from repro.workloads.queries import PAPER_QUERIES, query_by_name


class TestFigure2PlanShape:
    """Figure 2: Q1 as a GApply over the partsupp-part join, whose per-group
    query unions a projection branch with an aggregate branch."""

    def test_logical_shape(self, tpch_db):
        plan = tpch_db.plan(query_by_name("Q1").gapply_sql)
        assert isinstance(plan, GApply)
        assert plan.grouping_columns == ("ps_suppkey",)
        # outer: partsupp joined with part (after normalization it may be a
        # select over a cross join; both scans must be present)
        scans = {
            node.table_name
            for node in plan.outer.walk()
            if isinstance(node, TableScan)
        }
        assert scans == {"partsupp", "part"}
        # per-group query: a union with a group-scan branch and an
        # aggregate branch
        unions = [n for n in plan.per_group.walk() if isinstance(n, UnionAll)]
        assert unions
        assert any(
            isinstance(node, GroupScan) for node in plan.per_group.walk()
        )

    def test_physical_shape(self, tpch_db):
        logical = optimize_with(
            tpch_db.catalog, bind(tpch_db.catalog, query_by_name("Q1").gapply_sql)
        )
        physical = lower(tpch_db.catalog, logical)
        assert isinstance(physical, PGApply)
        group_scans = [
            node
            for node in _walk_physical(physical)
            if isinstance(node, PGroupScan)
        ]
        assert group_scans  # the PGQ reads the relation-valued parameter

    def test_optimizer_keeps_single_join_in_outer(self, tpch_db):
        logical = optimize_with(
            tpch_db.catalog, bind(tpch_db.catalog, query_by_name("Q1").gapply_sql)
        )
        gapply = next(n for n in logical.walk() if isinstance(n, GApply))
        joins = [n for n in gapply.outer.walk() if isinstance(n, Join)]
        assert len(joins) == 1  # the partsupp-part join happens exactly once


def _walk_physical(node):
    yield node
    for child in node.children():
        yield from _walk_physical(child)


class TestFigure8WorkUnits:
    """Deterministic counterpart of Figure 8: comparing work units (the
    noise-free proxy) between the baseline and GApply formulations."""

    @pytest.mark.parametrize(
        "name", ["Q1", "Q2", "Q3"], ids=["Q1", "Q2", "Q3"]
    )
    def test_baseline_rescans_base_tables(self, tpch_db, name):
        """The paper's core observation: the classical formulations re-join
        (re-scan) the base tables once per branch, GApply scans them once."""
        query = query_by_name(name)
        baseline = measure_physical(
            lower(
                tpch_db.catalog,
                optimize_with(tpch_db.catalog, bind(tpch_db.catalog, query.baseline_sql)),
            ),
            repetitions=1,
        )
        gapply = measure_physical(
            lower(
                tpch_db.catalog,
                optimize_with(tpch_db.catalog, bind(tpch_db.catalog, query.gapply_sql)),
            ),
            repetitions=1,
        )
        assert baseline.scan_rows > gapply.scan_rows

    def test_q4_gapply_does_less_work(self, tpch_db):
        query = query_by_name("Q4")
        baseline = measure_physical(
            lower(
                tpch_db.catalog,
                optimize_with(tpch_db.catalog, bind(tpch_db.catalog, query.baseline_sql)),
            ),
            repetitions=1,
        )
        gapply = measure_physical(
            lower(
                tpch_db.catalog,
                optimize_with(tpch_db.catalog, bind(tpch_db.catalog, query.gapply_sql)),
            ),
            repetitions=1,
        )
        assert baseline.work > gapply.work

    def test_all_queries_produce_rows(self, tpch_db):
        for query in PAPER_QUERIES:
            result = tpch_db.sql(query.gapply_sql)
            assert len(result) > 0


class TestClientSimulation:
    def test_simulation_overestimates_native(self):
        """E8: the Section-5.1 protocol must cost at least as much as the
        native operator (the paper argues it is conservative)."""
        from repro.bench.client_sim import run_q4_calibration

        result = run_q4_calibration(scale=0.05)
        assert result.overhead >= 1.0
        assert result.rows > 0

    def test_simulation_phases_positive(self):
        from repro.bench.client_sim import run_q4_calibration

        result = run_q4_calibration(scale=0.03)
        assert result.outer_time > 0
        assert result.partition_time > 0
        assert result.execution_time > 0
        assert result.overestimate_time <= result.partition_time
