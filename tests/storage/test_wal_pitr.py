"""Point-in-time recovery: ``Database.open(recover_to=...)`` over the
archived segment/checkpoint chain reproduces any committed version;
anything else — interior of a transaction, beyond the newest version,
before retained history — fails with the typed
:class:`~repro.errors.PointInTimeUnavailable`."""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.errors import PointInTimeUnavailable
from repro.storage import DataType
from repro.storage.wal import (
    FSYNC_NEVER,
    recover_point_in_time,
    recoverable_range,
)

COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


def build_history(path: str, *, archive: bool = True) -> dict[int, list]:
    """A store with autocommits, a committed txn, a rolled-back txn, and
    checkpoints. Returns {boundary_version: expected rows of "t"}."""
    db = Database.open(path, fsync=FSYNC_NEVER, archive=archive)
    boundaries: dict[int, list] = {0: None}
    db.create_table("t", COLUMNS, [(1, "a")])  # v1
    boundaries[1] = [(1, "a")]
    db.catalog.insert_rows("t", [(2, "b")])  # v2
    boundaries[2] = [(1, "a"), (2, "b")]
    db.checkpoint()
    with db.begin():  # v3 begin, v4+v5 ops, v6 commit
        db.catalog.insert_rows("t", [(3, "c")])
        db.catalog.insert_rows("t", [(4, "d")])
    boundaries[6] = [(1, "a"), (2, "b"), (3, "c"), (4, "d")]
    txn = db.begin()  # v7 begin, v8 op, v9 abort
    db.catalog.insert_rows("t", [(5, "never")])
    txn.rollback()
    boundaries[9] = boundaries[6]
    db.checkpoint()
    db.catalog.insert_rows("t", [(6, "f")])  # v10
    boundaries[10] = boundaries[6] + [(6, "f")]
    db.close()
    return boundaries


class TestBoundaryReproduction:
    def test_every_committed_boundary_is_reproducible(self, tmp_path):
        boundaries = build_history(str(tmp_path))
        for version, rows in boundaries.items():
            catalog = recover_point_in_time(str(tmp_path), version)
            assert catalog.version == version
            if rows is None:
                assert not catalog.has_table("t")
            else:
                assert catalog.table("t").rows == rows, f"v{version}"

    def test_database_open_recover_to(self, tmp_path):
        boundaries = build_history(str(tmp_path))
        db = Database.open(str(tmp_path), recover_to=6)
        assert db.catalog.version == 6
        assert db.catalog.table("t").rows == boundaries[6]
        # A PITR database is a detached read view of history: it has no
        # WAL, so nothing it does can overwrite the store it came from.
        assert db.wal is None
        assert list(db.sql("select count(*) from t").rows) == [(4,)]
        db.close()
        # The real store is untouched and still opens at the newest state.
        live = Database.open(str(tmp_path))
        assert live.catalog.version == 10
        live.close()

    def test_rollback_boundary_reproduces_pre_txn_rows(self, tmp_path):
        build_history(str(tmp_path))
        catalog = recover_point_in_time(str(tmp_path), 9)
        # v9 is the abort record: same rows as v6, later version.
        assert catalog.version == 9
        assert catalog.table("t").rows == [
            (1, "a"), (2, "b"), (3, "c"), (4, "d"),
        ]

    def test_recover_to_zero_is_the_empty_store(self, tmp_path):
        build_history(str(tmp_path))
        catalog = recover_point_in_time(str(tmp_path), 0)
        assert catalog.version == 0
        assert catalog.table_names() == []


class TestTypedRefusals:
    def test_beyond_newest_version(self, tmp_path):
        build_history(str(tmp_path))
        with pytest.raises(PointInTimeUnavailable):
            recover_point_in_time(str(tmp_path), 999)

    def test_interior_of_a_transaction(self, tmp_path):
        build_history(str(tmp_path))
        for interior in (3, 4, 5):  # begin and ops of the committed txn
            with pytest.raises(PointInTimeUnavailable) as excinfo:
                recover_point_in_time(str(tmp_path), interior)
            # The refusal names the nearest committed boundaries so the
            # operator can retry with a valid target.
            message = str(excinfo.value)
            assert "2" in message and "6" in message, message

    def test_interior_of_rolled_back_transaction(self, tmp_path):
        build_history(str(tmp_path))
        for interior in (7, 8):
            with pytest.raises(PointInTimeUnavailable):
                recover_point_in_time(str(tmp_path), interior)

    def test_history_truncated_without_archive(self, tmp_path):
        build_history(str(tmp_path), archive=False)
        # Checkpoints deleted the early segments; only versions at or
        # after the oldest surviving checkpoint basis can be rebuilt.
        oldest, newest = recoverable_range(str(tmp_path))
        assert newest == 10
        assert oldest > 0
        with pytest.raises(PointInTimeUnavailable):
            recover_point_in_time(str(tmp_path), 1)
        # The surviving range still works.
        catalog = recover_point_in_time(str(tmp_path), newest)
        assert catalog.version == newest

    def test_database_open_propagates_refusal(self, tmp_path):
        build_history(str(tmp_path))
        with pytest.raises(PointInTimeUnavailable):
            Database.open(str(tmp_path), recover_to=4)


class TestRecoverableRange:
    def test_archive_store_covers_full_history(self, tmp_path):
        build_history(str(tmp_path))
        assert recoverable_range(str(tmp_path)) == (0, 10)

    def test_fresh_store_without_checkpoints(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.catalog.insert_rows("t", [(2, "b")])
        db.close()
        assert recoverable_range(str(tmp_path)) == (0, 2)

    def test_range_endpoints_are_recoverable(self, tmp_path):
        build_history(str(tmp_path), archive=False)
        oldest, newest = recoverable_range(str(tmp_path))
        for version in (oldest, newest):
            catalog = recover_point_in_time(str(tmp_path), version)
            assert catalog.version == version
