"""Unit tests for column/table statistics."""

import pytest

from repro.storage.statistics import (
    compute_column_statistics,
    compute_table_statistics,
    count_distinct_rows,
)
from repro.storage.table import table_from_rows
from repro.storage.types import DataType


class TestColumnStatistics:
    def test_counts(self):
        stats = compute_column_statistics([1, 2, 2, None, 3])
        assert stats.row_count == 5
        assert stats.null_count == 1
        assert stats.distinct_count == 3
        assert stats.min_value == 1
        assert stats.max_value == 3

    def test_null_fraction(self):
        stats = compute_column_statistics([None, None, 1, 2])
        assert stats.null_fraction == pytest.approx(0.5)

    def test_empty_column(self):
        stats = compute_column_statistics([])
        assert stats.row_count == 0
        assert stats.null_fraction == 0.0
        assert stats.selectivity_eq(5) == 0.0

    def test_selectivity_eq_uniform(self):
        stats = compute_column_statistics(list(range(10)))
        assert stats.selectivity_eq(3) == pytest.approx(0.1)

    def test_selectivity_eq_null_is_zero(self):
        stats = compute_column_statistics([1, 2, 3])
        assert stats.selectivity_eq(None) == 0.0

    def test_histogram_built_for_numeric_spread(self):
        stats = compute_column_statistics(list(range(100)))
        assert stats.histogram
        assert sum(b.count for b in stats.histogram) == 100

    def test_histogram_range_selectivity(self):
        stats = compute_column_statistics([float(i) for i in range(100)])
        # Roughly a quarter of values lie in [0, 25).
        estimate = stats.selectivity_range(0.0, 25.0)
        assert 0.2 <= estimate <= 0.3

    def test_range_selectivity_without_histogram(self):
        stats = compute_column_statistics(["a", "b", "c"])
        assert 0.0 <= stats.selectivity_range(None, None) <= 1.0

    def test_range_selectivity_outside_domain(self):
        stats = compute_column_statistics([float(i) for i in range(10)])
        assert stats.selectivity_range(100.0, 200.0) == pytest.approx(0.0)

    def test_no_histogram_for_strings(self):
        stats = compute_column_statistics(["x", "y"])
        assert stats.histogram == ()

    def test_no_histogram_for_booleans(self):
        stats = compute_column_statistics([True, False, True])
        assert stats.histogram == ()


class TestTableStatistics:
    def test_table_statistics_keys(self):
        table = table_from_rows(
            "t",
            [("a", DataType.INTEGER), ("b", DataType.STRING)],
            [(1, "x"), (2, "x")],
        )
        stats = compute_table_statistics(table)
        assert stats.row_count == 2
        assert stats.column("a").distinct_count == 2
        assert stats.column("t.b").distinct_count == 1

    def test_distinct_count_fallback(self):
        table = table_from_rows("t", [("a", DataType.INTEGER)], [(i,) for i in range(100)])
        stats = compute_table_statistics(table)
        assert stats.distinct_count("nonexistent") >= 1


class TestCountDistinctRows:
    def test_counts_combinations(self):
        rows = [(1, "a"), (1, "a"), (1, "b"), (2, "a")]
        assert count_distinct_rows(rows, [0]) == 2
        assert count_distinct_rows(rows, [0, 1]) == 3

    def test_nulls_form_one_group(self):
        rows = [(None,), (None,), (1,)]
        assert count_distinct_rows(rows, [0]) == 2
