"""Unit tests for the SQL value domain and three-valued logic."""

import datetime

import pytest

from repro.errors import TypeCheckError
from repro.storage.types import (
    FALSE,
    NULL_KEY,
    TRUE,
    UNKNOWN,
    DataType,
    TruthValue,
    check_value,
    common_type,
    compare_values,
    format_value,
    grouping_key,
    infer_type,
    sort_key,
    sql_eq,
    sql_ge,
    sql_gt,
    sql_le,
    sql_lt,
    sql_ne,
)


class TestInferType:
    def test_integers(self):
        assert infer_type(42) is DataType.INTEGER

    def test_floats(self):
        assert infer_type(3.14) is DataType.FLOAT

    def test_strings(self):
        assert infer_type("hello") is DataType.STRING

    def test_booleans_not_integers(self):
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(False) is DataType.BOOLEAN

    def test_dates(self):
        assert infer_type(datetime.date(2003, 6, 9)) is DataType.DATE

    def test_null_is_any(self):
        assert infer_type(None) is DataType.ANY

    def test_unsupported_value(self):
        with pytest.raises(TypeCheckError):
            infer_type([1, 2])


class TestCheckValue:
    def test_null_inhabits_every_type(self):
        for dtype in DataType:
            assert check_value(None, dtype) is None

    def test_integer_promotes_to_float(self):
        assert check_value(3, DataType.FLOAT) == 3

    def test_float_does_not_fit_integer(self):
        with pytest.raises(TypeCheckError):
            check_value(3.5, DataType.INTEGER)

    def test_boolean_is_not_integer(self):
        with pytest.raises(TypeCheckError):
            check_value(True, DataType.INTEGER)

    def test_any_accepts_everything(self):
        assert check_value("x", DataType.ANY) == "x"


class TestCommonType:
    def test_same_type(self):
        assert common_type(DataType.STRING, DataType.STRING) is DataType.STRING

    def test_numeric_widening(self):
        assert common_type(DataType.INTEGER, DataType.FLOAT) is DataType.FLOAT

    def test_any_defers(self):
        assert common_type(DataType.ANY, DataType.STRING) is DataType.STRING
        assert common_type(DataType.DATE, DataType.ANY) is DataType.DATE

    def test_incompatible(self):
        with pytest.raises(TypeCheckError):
            common_type(DataType.STRING, DataType.INTEGER)


class TestTruthValue:
    def test_bool_lowering_only_true_passes(self):
        assert bool(TRUE)
        assert not bool(FALSE)
        assert not bool(UNKNOWN)

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (TRUE, TRUE, TRUE),
            (TRUE, FALSE, FALSE),
            (TRUE, UNKNOWN, UNKNOWN),
            (FALSE, UNKNOWN, FALSE),
            (UNKNOWN, UNKNOWN, UNKNOWN),
        ],
    )
    def test_and(self, a, b, expected):
        assert a.and_(b) is expected
        assert b.and_(a) is expected

    @pytest.mark.parametrize(
        "a, b, expected",
        [
            (TRUE, FALSE, TRUE),
            (FALSE, FALSE, FALSE),
            (TRUE, UNKNOWN, TRUE),
            (FALSE, UNKNOWN, UNKNOWN),
            (UNKNOWN, UNKNOWN, UNKNOWN),
        ],
    )
    def test_or(self, a, b, expected):
        assert a.or_(b) is expected
        assert b.or_(a) is expected

    def test_not(self):
        assert TRUE.not_() is FALSE
        assert FALSE.not_() is TRUE
        assert UNKNOWN.not_() is UNKNOWN

    def test_of_and_to_sql_roundtrip(self):
        assert TruthValue.of(True) is TRUE
        assert TruthValue.of(False) is FALSE
        assert TruthValue.of(None) is UNKNOWN
        assert TRUE.to_sql() is True
        assert UNKNOWN.to_sql() is None


class TestCompareValues:
    def test_orderings(self):
        assert compare_values(1, 2) == -1
        assert compare_values(2, 1) == 1
        assert compare_values(2, 2) == 0

    def test_null_propagates(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None
        assert compare_values(None, None) is None

    def test_mixed_numerics(self):
        assert compare_values(1, 1.0) == 0
        assert compare_values(1, 1.5) == -1

    def test_cross_type_rejected(self):
        with pytest.raises(TypeCheckError):
            compare_values(1, "one")

    def test_string_ordering(self):
        assert compare_values("apple", "banana") == -1


class TestSqlComparisons:
    def test_eq(self):
        assert sql_eq(1, 1) is TRUE
        assert sql_eq(1, 2) is FALSE
        assert sql_eq(None, 1) is UNKNOWN

    def test_ne(self):
        assert sql_ne(1, 2) is TRUE
        assert sql_ne(2, 2) is FALSE
        assert sql_ne(None, None) is UNKNOWN

    def test_inequalities(self):
        assert sql_lt(1, 2) is TRUE
        assert sql_le(2, 2) is TRUE
        assert sql_gt(3, 2) is TRUE
        assert sql_ge(2, 3) is FALSE
        assert sql_ge(None, 3) is UNKNOWN


class TestGroupingKey:
    def test_nulls_group_together(self):
        assert grouping_key((None,)) == grouping_key((None,))

    def test_null_key_singleton(self):
        assert grouping_key((None,))[0] is NULL_KEY

    def test_boolean_tagged_apart_from_integers(self):
        assert grouping_key((True,)) != grouping_key((1,))
        assert grouping_key((False,)) != grouping_key((0,))

    def test_hashable(self):
        {grouping_key((None, 1, "x", True))}

    def test_null_sorts_first(self):
        keys = [sort_key((v,)) for v in (3, None, 1)]
        assert sorted(keys) == [sort_key((None,)), sort_key((1,)), sort_key((3,))]

    def test_null_key_comparisons(self):
        assert NULL_KEY < 5
        assert not (NULL_KEY > 5)
        assert NULL_KEY <= NULL_KEY
        assert NULL_KEY >= NULL_KEY


class TestFormatValue:
    def test_null(self):
        assert format_value(None) == "NULL"

    def test_booleans(self):
        assert format_value(True) == "TRUE"
        assert format_value(False) == "FALSE"

    def test_float_trimming(self):
        assert format_value(75.0) == "75"

    def test_date(self):
        assert format_value(datetime.date(2003, 6, 9)) == "2003-06-09"
