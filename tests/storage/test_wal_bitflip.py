"""Exhaustive single-bit-flip sweep over a committed-transaction WAL.

Satellite contract (DESIGN.md §15): for *any* single flipped bit in the
log, recovery must either reproduce an acknowledged boundary state (the
store as of some durable commit point) or refuse with the typed
:class:`~repro.errors.WalCorruptionError` — never silently serve a state
that drops or mangles acknowledged work while claiming success.

Two regimes, asserted separately:

* Flips anywhere in the final frame's payload or CRC field → always the
  typed error. A complete frame that fails its CRC is bit rot, not a
  torn write (torn writes shorten the file; they do not rewrite bytes),
  so truncating it would drop an acknowledged commit. This is the §15
  gap this PR closed.
* Flips in a *length* header can masquerade as a torn tail (the length
  is read before the CRC can vouch for it), so the honest contract
  there is boundary-state-or-error.
"""

from __future__ import annotations

import os
import shutil
import struct

import pytest

from repro.api import Database
from repro.errors import WalCorruptionError
from repro.storage import DataType
from repro.storage.wal import FSYNC_NEVER, recover

_HEADER = struct.Struct(">II")
COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


def build_reference(path: str) -> None:
    """v1 create, v2..v5 committed txn (2 inserts), v6 autocommit."""
    db = Database.open(path, fsync=FSYNC_NEVER)
    db.create_table("t", COLUMNS, [(1, "a")])
    with db.begin():
        db.catalog.insert_rows("t", [(2, "b")])
        db.catalog.insert_rows("t", [(3, "c")])
    db.catalog.insert_rows("t", [(4, "d")])
    db.close()


#: Every state an acknowledged commit point produced, keyed by the
#: catalog version recovery may report. Version 1 appears twice in
#: spirit: as the plain v1 boundary and as the pre-transaction basis a
#: tail-rollback restores.
BOUNDARY_ROWS = {
    0: None,  # empty store, table never created
    1: [(1, "a")],
    5: [(1, "a"), (2, "b"), (3, "c")],
    6: [(1, "a"), (2, "b"), (3, "c"), (4, "d")],
}


def segment_path(path: str) -> str:
    names = [n for n in os.listdir(path) if n.startswith("wal-")]
    assert len(names) == 1
    return os.path.join(path, names[0])


def frame_offsets(data: bytes) -> list[int]:
    offsets = [0]
    while offsets[-1] < len(data):
        length, _ = _HEADER.unpack_from(data, offsets[-1])
        offsets.append(offsets[-1] + _HEADER.size + length)
    return offsets


def flip_and_recover(ref: str, target: str, offset: int, bit: int):
    """Copy the store, flip one bit, recover. Returns (catalog, None) or
    (None, exc)."""
    shutil.copytree(ref, target)
    seg = segment_path(target)
    with open(seg, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        handle.seek(offset)
        handle.write(bytes([byte[0] ^ (1 << bit)]))
    try:
        catalog, _ = recover(target)
    except WalCorruptionError as exc:
        return None, exc
    return catalog, None


def assert_boundary_state(catalog, offset: int, bit: int) -> None:
    where = f"flip at byte {offset} bit {bit}"
    assert catalog.version in BOUNDARY_ROWS, (
        f"{where}: recovered interior version {catalog.version}"
    )
    expected = BOUNDARY_ROWS[catalog.version]
    if expected is None:
        assert not catalog.has_table("t"), where
    else:
        assert catalog.table("t").rows == expected, where


class TestBitFlipSweep:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        ref = tmp_path_factory.mktemp("bitflip") / "ref"
        build_reference(str(ref))
        return ref

    def test_every_byte_one_bit(self, reference, tmp_path):
        """One flipped bit per byte over the whole segment (the bit
        position cycles so all eight positions are exercised)."""
        data = open(segment_path(str(reference)), "rb").read()
        for offset in range(len(data)):
            bit = (offset * 5) % 8
            catalog, exc = flip_and_recover(
                str(reference), str(tmp_path / f"b{offset}"), offset, bit
            )
            if exc is not None:
                continue  # typed refusal is always acceptable
            assert_boundary_state(catalog, offset, bit)

    def test_final_frame_every_bit_raises(self, reference, tmp_path):
        """All eight bit positions for every payload/CRC byte of the
        final frame: a complete last frame that fails its checksum is
        never a torn tail."""
        data = open(segment_path(str(reference)), "rb").read()
        offsets = frame_offsets(data)
        final = offsets[-2]
        # Skip the 4-byte length field (a flipped length can legitimately
        # read as truncation); CRC field and payload must hard-fail.
        for offset in range(final + 4, len(data)):
            for bit in range(8):
                catalog, exc = flip_and_recover(
                    str(reference),
                    str(tmp_path / f"f{offset}_{bit}"),
                    offset,
                    bit,
                )
                assert exc is not None, (
                    f"flip at byte {offset} bit {bit} in the final frame "
                    f"silently recovered to v{catalog.version}"
                )

    def test_commit_record_flip_never_surfaces_partial_txn(
        self, reference, tmp_path
    ):
        """Damage anywhere in the committed transaction's bracket
        (begin/ops/commit frames) must never yield a state containing
        only part of the transaction."""
        data = open(segment_path(str(reference)), "rb").read()
        offsets = frame_offsets(data)
        # Frames: 0=create, 1=begin, 2=insert, 3=insert, 4=commit, 5=tail.
        txn_span = range(offsets[1], offsets[5])
        partial = [[(1, "a"), (2, "b")]]
        for offset in txn_span:
            catalog, exc = flip_and_recover(
                str(reference), str(tmp_path / f"t{offset}"), offset, 7
            )
            if exc is not None:
                continue
            assert catalog.table("t").rows not in partial, (
                f"flip at byte {offset} surfaced a half-applied transaction"
            )
            assert_boundary_state(catalog, offset, 7)
