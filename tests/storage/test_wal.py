"""Write-ahead log unit tests: journaling, recovery, checkpoints,
fsync policies, segment rotation, and the durable Database/Service
surfaces. Corruption handling has its own battery in
``test_wal_codec.py``; seeded crash points live in
``tests/fuzz/test_durability_chaos.py``."""

from __future__ import annotations

import os

import pytest

from repro.api import Database
from repro.errors import CatalogError, WalError
from repro.storage import DataType
from repro.storage.wal import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_NEVER,
    WriteAheadLog,
    recover,
)

COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


def durable_db(path, **kwargs) -> Database:
    return Database.open(str(path), **kwargs)


def seed_mutations(db: Database) -> None:
    db.create_table("t", COLUMNS, [(1, "a"), (2, "b")], primary_key=["k"])
    db.catalog.insert_rows("t", [(3, "c"), (4, "d")])
    db.create_index("t", ["v"])
    db.create_table("u", COLUMNS, [])
    db.add_foreign_key("u", ["k"], "t", ["k"])


class TestRoundTrip:
    def test_reopen_recovers_everything(self, tmp_path):
        db = durable_db(tmp_path)
        seed_mutations(db)
        version = db.catalog.version
        db.close()

        again = durable_db(tmp_path)
        table = again.catalog.table("t")
        assert table.rows == [(1, "a"), (2, "b"), (3, "c"), (4, "d")]
        assert table.primary_key == ("k",)
        assert ("v",) in table.indexes
        assert again.catalog.has_table("u")
        fks = again.catalog.foreign_keys()
        assert len(fks) == 1 and fks[0].parent_table == "t"
        assert again.catalog.version == version
        assert again.wal.recoveries == 1
        again.close()

    def test_each_mutation_bumps_version_and_appends_once(self, tmp_path):
        db = durable_db(tmp_path)
        seed_mutations(db)
        stats = db.wal.stats()
        assert stats["wal_appends"] == 5 == db.catalog.version
        assert stats["wal_bytes"] > 0
        db.close()

    def test_drop_is_durable(self, tmp_path):
        db = durable_db(tmp_path)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.create_table("gone", COLUMNS, [])
        db.catalog.drop("gone")
        db.close()
        again = durable_db(tmp_path)
        assert again.catalog.has_table("t")
        assert not again.catalog.has_table("gone")
        again.close()

    def test_fresh_directory_is_created(self, tmp_path):
        target = tmp_path / "nested" / "store"
        db = durable_db(target)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.close()
        assert durable_db(target).catalog.table("t").rows == [(1, "a")]

    def test_failed_mutation_logs_nothing(self, tmp_path):
        db = durable_db(tmp_path)
        db.create_table("t", COLUMNS, [])
        appends = db.wal.wal_appends
        with pytest.raises(CatalogError):
            db.create_table("t", COLUMNS, [])  # duplicate: validated first
        assert db.wal.wal_appends == appends
        db.close()
        assert durable_db(tmp_path).catalog.version == 1


class TestFsyncPolicies:
    def test_always_syncs_every_append(self, tmp_path):
        db = durable_db(tmp_path, fsync=FSYNC_ALWAYS)
        seed_mutations(db)
        assert db.wal.fsyncs == db.wal.wal_appends == 5
        db.close()

    def test_never_never_syncs(self, tmp_path):
        db = durable_db(tmp_path, fsync=FSYNC_NEVER)
        seed_mutations(db)
        db.close()
        assert db.wal.fsyncs == 0

    def test_batch_amortizes(self, tmp_path):
        db = durable_db(tmp_path, fsync=FSYNC_BATCH, batch_every=2)
        seed_mutations(db)  # 5 appends -> syncs after #2 and #4
        assert db.wal.fsyncs == 2
        db.close()  # close flushes the straggler
        assert db.wal.fsyncs == 3

    def test_bad_policy_rejected(self, tmp_path):
        with pytest.raises(WalError):
            WriteAheadLog(str(tmp_path), fsync="sometimes")


class TestSegmentsAndCheckpoints:
    def test_rotation_splits_log_across_segments(self, tmp_path):
        db = durable_db(tmp_path, segment_bytes=128)
        for i in range(6):
            db.create_table(f"t{i}", COLUMNS, [(i, f"v{i}")])
        db.close()
        segments = [f for f in os.listdir(tmp_path) if f.startswith("wal-")]
        assert len(segments) > 1
        again = durable_db(tmp_path)
        assert again.catalog.version == 6
        assert all(
            again.catalog.table(f"t{i}").rows == [(i, f"v{i}")]
            for i in range(6)
        )
        again.close()

    def test_checkpoint_truncates_older_segments(self, tmp_path):
        db = durable_db(tmp_path, segment_bytes=128)
        for i in range(6):
            db.create_table(f"t{i}", COLUMNS, [(i, f"v{i}")])
        db.checkpoint()
        names = sorted(os.listdir(tmp_path))
        checkpoints = [n for n in names if n.startswith("checkpoint-")]
        segments = [n for n in names if n.startswith("wal-")]
        assert len(checkpoints) == 1
        assert len(segments) == 1  # the fresh post-checkpoint segment
        db.catalog.insert_rows("t0", [(99, "tail")])
        db.close()

        again = durable_db(tmp_path)
        assert again.catalog.version == 7
        assert (99, "tail") in again.catalog.table("t0").rows
        assert again.wal.stats()["recoveries"] == 1
        again.close()

    def test_second_checkpoint_chains_incrementally(self, tmp_path):
        db = durable_db(tmp_path)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(2, "b")])
        db.checkpoint()
        checkpoints = [
            n for n in os.listdir(tmp_path) if n.startswith("checkpoint-")
        ]
        # The second checkpoint is an incremental delta: its full base
        # stays on disk because the chain still references it.
        assert len(checkpoints) == 2
        assert db.wal.checkpoints == 2
        assert db.wal.full_checkpoints == 1
        assert db.wal.incremental_checkpoints == 1
        db.close()
        again = durable_db(tmp_path)
        assert again.catalog.table("t").rows == [(1, "a"), (2, "b")]
        again.close()

    def test_full_checkpoint_supersedes_the_chain(self, tmp_path):
        db = durable_db(tmp_path)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(2, "b")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(3, "c")])
        db.checkpoint(full=True)
        checkpoints = [
            n for n in os.listdir(tmp_path) if n.startswith("checkpoint-")
        ]
        # A forced full image anchors a fresh chain; the superseded
        # full+delta pair is deleted.
        assert len(checkpoints) == 1
        db.close()
        again = durable_db(tmp_path)
        assert again.catalog.table("t").rows == [(1, "a"), (2, "b"), (3, "c")]
        again.close()

    def test_checkpoint_of_empty_store(self, tmp_path):
        db = durable_db(tmp_path)
        db.checkpoint()
        db.close()
        again = durable_db(tmp_path)
        assert again.catalog.version == 0
        assert list(again.catalog) == []
        again.close()

    def test_recover_function_reports_replay_count(self, tmp_path):
        db = durable_db(tmp_path)
        seed_mutations(db)
        db.checkpoint()
        db.catalog.insert_rows("t", [(9, "i")])
        db.close()
        catalog, replayed = recover(str(tmp_path))
        assert replayed == 1  # everything else came from the checkpoint
        assert catalog.version == 6


class TestDurableService:
    def test_stats_surface_wal_counters(self, tmp_path):
        from repro.serve import Service, ServiceConfig

        config = ServiceConfig(durable=True, data_dir=str(tmp_path))
        service = Service(config=config)
        service.create_table("t", COLUMNS, [(1, "a")])
        service.insert("t", [(2, "b")])
        stats = service.stats()
        for key in (
            "wal_appends",
            "wal_bytes",
            "fsyncs",
            "checkpoints",
            "recoveries",
        ):
            assert key in stats
        assert stats["wal_appends"] == 2
        assert stats["recoveries"] == 1
        service.shutdown()

    def test_shutdown_checkpoints_and_survives_restart(self, tmp_path):
        from repro.serve import Service, ServiceConfig

        config = ServiceConfig(durable=True, data_dir=str(tmp_path))
        service = Service(config=config)
        service.create_table("t", COLUMNS, [(1, "a")])
        service.shutdown()
        assert service.database.wal.checkpoints == 1

        revived = Service(config=config)
        assert list(revived.sql("select count(*) from t").rows) == [(1,)]
        revived.shutdown()

    def test_durable_requires_data_dir(self):
        from repro.errors import ServiceError
        from repro.serve import ServiceConfig

        with pytest.raises(ServiceError):
            ServiceConfig(durable=True)
