"""Unit tests for Schema and Column resolution."""

import pytest

from repro.errors import AmbiguousColumnError, SchemaError, UnknownColumnError
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType


def make_schema() -> Schema:
    return Schema(
        (
            Column("p_partkey", DataType.INTEGER, "part"),
            Column("p_name", DataType.STRING, "part"),
            Column("s_name", DataType.STRING, "supplier"),
        )
    )


class TestColumn:
    def test_qualified_name(self):
        assert Column("a", qualifier="t").qualified_name == "t.a"
        assert Column("a").qualified_name == "a"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_dot_in_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("t.a")

    def test_matches_bare_and_qualified(self):
        column = Column("a", qualifier="t")
        assert column.matches("a")
        assert column.matches("t.a")
        assert not column.matches("u.a")
        assert not column.matches("b")

    def test_with_qualifier(self):
        assert Column("a", qualifier="t").with_qualifier("u").qualified_name == "u.a"


class TestResolution:
    def test_bare_resolution(self):
        schema = make_schema()
        assert schema.index_of("p_name") == 1

    def test_qualified_resolution(self):
        schema = make_schema()
        assert schema.index_of("part.p_partkey") == 0

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            make_schema().index_of("nope")

    def test_ambiguous_bare_name(self):
        schema = Schema(
            (Column("name", qualifier="a"), Column("name", qualifier="b"))
        )
        with pytest.raises(AmbiguousColumnError):
            schema.index_of("name")
        # qualified access still works
        assert schema.index_of("a.name") == 0
        assert schema.index_of("b.name") == 1

    def test_duplicate_qualified_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("a", qualifier="t"), Column("a", qualifier="t")))

    def test_has(self):
        schema = make_schema()
        assert schema.has("p_name")
        assert schema.has("supplier.s_name")
        assert not schema.has("x")

    def test_has_true_for_ambiguous(self):
        schema = Schema(
            (Column("name", qualifier="a"), Column("name", qualifier="b"))
        )
        assert schema.has("name")

    def test_resolution_cached(self):
        schema = make_schema()
        assert schema.index_of("p_name") == schema.index_of("p_name")


class TestCombinators:
    def test_qualify(self):
        schema = make_schema().qualify("x")
        assert schema.qualified_names() == ["x.p_partkey", "x.p_name", "x.s_name"]

    def test_concat(self):
        left = Schema((Column("a", qualifier="l"),))
        right = Schema((Column("a", qualifier="r"), Column("b")))
        combined = left.concat(right)
        assert len(combined) == 3
        assert combined.index_of("l.a") == 0
        assert combined.index_of("r.a") == 1

    def test_concat_collision(self):
        left = Schema((Column("a", qualifier="t"),))
        with pytest.raises(SchemaError):
            left.concat(left)

    def test_project_preserves_columns(self):
        schema = make_schema().project(["s_name", "p_name"])
        assert schema.qualified_names() == ["supplier.s_name", "part.p_name"]

    def test_rename(self):
        schema = make_schema().rename(["x", "y", "z"])
        assert schema.names() == ["x", "y", "z"]
        assert schema[0].qualifier is None
        assert schema[0].dtype is DataType.INTEGER

    def test_rename_wrong_arity(self):
        with pytest.raises(SchemaError):
            make_schema().rename(["x"])

    def test_schema_of_helper(self):
        schema = Schema.of(("a", DataType.INTEGER), "b", Column("c", DataType.FLOAT))
        assert schema.names() == ["a", "b", "c"]
        assert schema[1].dtype is DataType.ANY


class TestDunder:
    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())

    def test_iteration(self):
        assert [c.name for c in make_schema()] == ["p_partkey", "p_name", "s_name"]

    def test_describe(self):
        text = make_schema().describe()
        assert "part.p_partkey" in text
        assert "integer" in text
