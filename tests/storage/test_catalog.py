"""Unit tests for the catalog: tables, constraints, statistics cache."""

import pytest

from repro.errors import CatalogError, ConstraintError
from repro.storage.catalog import Catalog
from repro.storage.table import table_from_rows
from repro.storage.types import DataType


def build_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        table_from_rows(
            "parent", [("id", DataType.INTEGER)], [(1,), (2,)], primary_key=["id"]
        )
    )
    catalog.register(
        table_from_rows(
            "child",
            [("cid", DataType.INTEGER), ("parent_id", DataType.INTEGER)],
            [(10, 1), (11, 2), (12, None)],
            primary_key=["cid"],
        )
    )
    return catalog


class TestRegistration:
    def test_register_and_lookup(self):
        catalog = build_catalog()
        assert catalog.table("parent").name == "parent"
        assert catalog.has_table("CHILD")  # case-insensitive

    def test_double_register_rejected(self):
        catalog = build_catalog()
        with pytest.raises(CatalogError):
            catalog.register(table_from_rows("parent", [("x", DataType.INTEGER)], []))

    def test_replace(self):
        catalog = build_catalog()
        catalog.register(
            table_from_rows("parent", [("x", DataType.INTEGER)], []), replace=True
        )
        assert catalog.table("parent").schema.names() == ["x"]

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            build_catalog().table("missing")

    def test_drop(self):
        catalog = build_catalog()
        catalog.drop("child")
        assert not catalog.has_table("child")
        with pytest.raises(CatalogError):
            catalog.drop("child")

    def test_table_names_sorted(self):
        assert build_catalog().table_names() == ["child", "parent"]

    def test_contains(self):
        assert "parent" in build_catalog()


class TestForeignKeys:
    def test_declare_and_find(self):
        catalog = build_catalog()
        catalog.add_foreign_key("child", ["parent_id"], "parent", ["id"])
        fk = catalog.find_foreign_key("child", ["parent_id"], "parent", ["id"])
        assert fk is not None
        assert fk.child_table == "child"

    def test_find_missing(self):
        catalog = build_catalog()
        assert catalog.find_foreign_key("child", ["cid"], "parent", ["id"]) is None

    def test_declare_unknown_column(self):
        catalog = build_catalog()
        with pytest.raises(Exception):
            catalog.add_foreign_key("child", ["nope"], "parent", ["id"])

    def test_validation_passes_with_nulls(self):
        catalog = build_catalog()
        catalog.add_foreign_key("child", ["parent_id"], "parent", ["id"])
        catalog.validate_constraints()  # NULL parent_id is exempt

    def test_validation_detects_orphan(self):
        catalog = build_catalog()
        catalog.add_foreign_key("child", ["parent_id"], "parent", ["id"])
        catalog.table("child").insert((13, 999))
        with pytest.raises(ConstraintError):
            catalog.validate_constraints()

    def test_drop_removes_fks(self):
        catalog = build_catalog()
        catalog.add_foreign_key("child", ["parent_id"], "parent", ["id"])
        catalog.drop("parent")
        assert catalog.foreign_keys() == ()

    def test_is_primary_key(self):
        catalog = build_catalog()
        assert catalog.is_primary_key("parent", ["id"])
        assert not catalog.is_primary_key("child", ["parent_id"])


class TestStatisticsCache:
    def test_statistics_computed_and_cached(self):
        catalog = build_catalog()
        first = catalog.statistics("parent")
        assert first is catalog.statistics("parent")

    def test_invalidate_one(self):
        catalog = build_catalog()
        first = catalog.statistics("parent")
        catalog.invalidate_statistics("parent")
        assert first is not catalog.statistics("parent")

    def test_invalidate_all(self):
        catalog = build_catalog()
        first = catalog.statistics("child")
        catalog.invalidate_statistics()
        assert first is not catalog.statistics("child")

    def test_register_invalidates(self):
        catalog = build_catalog()
        catalog.statistics("parent")
        catalog.register(
            table_from_rows("parent", [("id", DataType.INTEGER)], [(9,)]),
            replace=True,
        )
        assert catalog.statistics("parent").row_count == 1
