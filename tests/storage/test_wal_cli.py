"""``python -m repro.storage.wal <dir>`` inspection CLI: frame dumps,
end-to-end chain verification, recoverable-range reporting, and exit
codes (0 = healthy, 1 = verification failed, 2 = bad invocation)."""

from __future__ import annotations

import os
import struct

import pytest

from repro.api import Database
from repro.storage import DataType
from repro.storage.wal import FSYNC_NEVER, main

_HEADER = struct.Struct(">II")
COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


def build_store(path: str, *, archive: bool = False) -> None:
    db = Database.open(path, fsync=FSYNC_NEVER, archive=archive)
    db.create_table("t", COLUMNS, [(1, "a")])
    with db.begin():
        db.catalog.insert_rows("t", [(2, "b")])
    db.checkpoint()
    db.catalog.insert_rows("t", [(3, "c")])
    db.close()


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestHealthyStore:
    def test_summary_verify_and_range(self, tmp_path, capsys):
        build_store(str(tmp_path))
        code, out = run_cli(capsys, str(tmp_path))
        assert code == 0
        assert "1 live segment(s), 0 archived, 1 checkpoint(s)" in out
        # v1 create, v2..v4 txn, v5 tail insert; one record past the
        # checkpoint.
        assert "verify: ok — state v5, 1 table(s), 1 record(s)" in out
        assert "recoverable versions: v4..v5 (recover_to=)" in out

    def test_archive_store_reports_full_range(self, tmp_path, capsys):
        build_store(str(tmp_path), archive=True)
        code, out = run_cli(capsys, str(tmp_path))
        assert code == 0
        assert "1 archived" in out
        # With the archive the whole history replays from scratch.
        assert "recoverable versions: v0..v5" in out

    def test_dump_lists_every_frame_with_txn_ids(self, tmp_path, capsys):
        build_store(str(tmp_path))
        code, out = run_cli(capsys, str(tmp_path), "--dump")
        assert code == 0
        lines = out.splitlines()
        frames = [l for l in lines if " crc=ok" in l and "@" in l]
        # The live segment only holds the post-checkpoint record; the
        # checkpoint line carries the rest of history.
        assert any("v5 insert_rows txn=- crc=ok" in l for l in frames)
        assert any(
            l.startswith("checkpoint ") and "v4 full (1 table(s))" in l
            for l in lines
        )

    def test_dump_of_archived_history_shows_txn_bracket(
        self, tmp_path, capsys
    ):
        build_store(str(tmp_path), archive=True)
        code, out = run_cli(capsys, str(tmp_path), "--dump")
        assert code == 0
        assert "v2 txn_begin txn=2 crc=ok" in out
        assert "v3 insert_rows txn=2 crc=ok" in out
        assert "v4 txn_commit txn=2 crc=ok" in out

    def test_empty_directory(self, tmp_path, capsys):
        code, out = run_cli(capsys, str(tmp_path))
        assert code == 0
        assert "0 live segment(s), 0 archived, 0 checkpoint(s)" in out
        assert "verify: ok — state v0, 0 table(s), 0 record(s)" in out


class TestDamagedStore:
    def _segment(self, path: str) -> str:
        names = [n for n in os.listdir(path) if n.startswith("wal-")]
        return os.path.join(path, sorted(names)[0])

    def test_corrupt_frame_fails_verify_exit_1(self, tmp_path, capsys):
        build_store(str(tmp_path))
        seg = self._segment(str(tmp_path))
        with open(seg, "r+b") as handle:
            handle.seek(_HEADER.size + 2)
            byte = handle.read(1)
            handle.seek(_HEADER.size + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        code, out = run_cli(capsys, str(tmp_path))
        assert code == 1
        assert "verify: FAILED — WalCorruptionError" in out

    def test_dump_marks_bad_crc_without_raising(self, tmp_path, capsys):
        build_store(str(tmp_path))
        seg = self._segment(str(tmp_path))
        with open(seg, "r+b") as handle:
            handle.seek(_HEADER.size + 2)
            byte = handle.read(1)
            handle.seek(_HEADER.size + 2)
            handle.write(bytes([byte[0] ^ 0xFF]))
        code, out = run_cli(capsys, str(tmp_path), "--dump")
        assert code == 1  # dump succeeds, verify still fails
        assert "crc=BAD" in out

    def test_torn_tail_is_reported_not_repaired(self, tmp_path, capsys):
        # A torn tail is recoverable (verify reports the surviving
        # prefix), but the CLI is read-only: repair=False, so the file
        # is not truncated on disk.
        build_store(str(tmp_path))
        seg = self._segment(str(tmp_path))
        size = os.path.getsize(seg)
        with open(seg, "r+b") as handle:
            handle.truncate(size - 3)
        code, out = run_cli(capsys, str(tmp_path), "--dump")
        assert code == 0
        assert "TORN" in out
        # The torn v5 insert is gone; verification stops at v4.
        assert "verify: ok — state v4" in out
        assert os.path.getsize(seg) == size - 3  # untouched

    def test_missing_directory_exit_2(self, tmp_path, capsys):
        code, out = run_cli(capsys, str(tmp_path / "nope"))
        assert code == 2
        assert "is not a directory" in out

    def test_bad_flag_exits_2(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--frobnicate"])
        assert excinfo.value.code == 2


class TestModuleEntry:
    def test_python_dash_m_invocation(self, tmp_path):
        import subprocess
        import sys

        build_store(str(tmp_path))
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.storage.wal", str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert "verify: ok" in proc.stdout
