"""Unit tests for in-memory tables."""

import pytest

from repro.errors import ConstraintError, SchemaError, TypeCheckError
from repro.storage.table import Table, table_from_rows
from repro.storage.types import DataType


def small_table() -> Table:
    return table_from_rows(
        "t",
        [("k", DataType.INTEGER), ("v", DataType.STRING)],
        [(1, "a"), (2, "b"), (2, "b"), (3, None)],
    )


class TestInsert:
    def test_row_count(self):
        assert len(small_table()) == 4

    def test_width_mismatch(self):
        with pytest.raises(SchemaError):
            small_table().insert((1,))

    def test_type_mismatch(self):
        with pytest.raises(TypeCheckError):
            small_table().insert(("x", "a"))

    def test_nulls_allowed(self):
        table = small_table()
        table.insert((None, None))
        assert table.rows[-1] == (None, None)

    def test_duplicates_preserved(self):
        assert small_table().rows.count((2, "b")) == 2

    def test_insert_many(self):
        table = small_table()
        assert table.insert_many([(5, "e"), (6, "f")]) == 2
        assert len(table) == 6


class TestPrimaryKey:
    def test_valid_key_passes(self):
        table = table_from_rows(
            "t", [("k", DataType.INTEGER)], [(1,), (2,)], primary_key=["k"]
        )
        table.check_primary_key()

    def test_duplicate_key_detected(self):
        table = table_from_rows(
            "t", [("k", DataType.INTEGER)], [(1,), (1,)], primary_key=["k"]
        )
        with pytest.raises(ConstraintError):
            table.check_primary_key()

    def test_null_key_detected(self):
        table = table_from_rows(
            "t", [("k", DataType.INTEGER)], [(None,)], primary_key=["k"]
        )
        with pytest.raises(ConstraintError):
            table.check_primary_key()

    def test_composite_key(self):
        table = table_from_rows(
            "t",
            [("a", DataType.INTEGER), ("b", DataType.INTEGER)],
            [(1, 1), (1, 2)],
            primary_key=["a", "b"],
        )
        table.check_primary_key()

    def test_unknown_key_column_rejected_at_construction(self):
        with pytest.raises(Exception):
            table_from_rows("t", [("a", DataType.INTEGER)], [], primary_key=["zzz"])


class TestReads:
    def test_column_values(self):
        assert small_table().column_values("v") == ["a", "b", "b", None]

    def test_sorted_rows_nulls_first(self):
        table = small_table()
        assert table.sorted_rows(["v"])[0] == (3, None)

    def test_filter(self):
        filtered = small_table().filter(lambda row: row[0] == 2)
        assert len(filtered) == 2

    def test_to_dicts_uses_qualified_names(self):
        dicts = small_table().to_dicts()
        assert dicts[0] == {"t.k": 1, "t.v": "a"}

    def test_pretty_contains_headers_and_ellipsis(self):
        text = small_table().pretty(limit=2)
        assert "t.k" in text
        assert "more rows" in text

    def test_clear(self):
        table = small_table()
        table.clear()
        assert len(table) == 0


class TestQualification:
    def test_table_from_rows_qualifies_by_name(self):
        table = small_table()
        assert table.schema.qualified_names() == ["t.k", "t.v"]
