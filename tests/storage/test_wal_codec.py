"""WAL frame-codec corruption battery.

The framing rule under test (DESIGN.md §15): damage that reaches the
end of the newest segment is a **torn tail** — recovery physically
truncates back to the last good frame and returns the acknowledged
prefix — while damage *followed by more log data* is mid-log corruption
and must raise the typed :class:`~repro.errors.WalCorruptionError`,
never silently drop acknowledged records. Bit flips get the honest
weaker contract the format can actually promise (a flipped length
header can masquerade as a torn tail): recovery yields a strict prefix
of acknowledged history or the typed error — never wrong data.
"""

from __future__ import annotations

import os
import random
import shutil
import struct
import zlib

import pytest

from repro.api import Database
from repro.errors import WalCorruptionError, WalError
from repro.storage import DataType
from repro.storage.wal import (
    FSYNC_NEVER,
    WriteAheadLog,
    recover,
    table_state,
)

_HEADER = struct.Struct(">II")
COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]

#: Mutations in the reference store: 1 create + N_INSERTS inserts.
N_INSERTS = 9


def build_store(path: str) -> None:
    db = Database.open(path, fsync=FSYNC_NEVER)
    db.create_table("t", COLUMNS, [])
    for i in range(N_INSERTS):
        db.catalog.insert_rows("t", [(i, f"v{i}")])
    db.close()


def segment_path(path: str) -> str:
    names = [n for n in os.listdir(path) if n.startswith("wal-")]
    assert len(names) == 1
    return os.path.join(path, names[0])


def frame_offsets(data: bytes) -> list[int]:
    """Start offset of every frame in a segment, plus the end offset."""
    offsets = [0]
    while offsets[-1] < len(data):
        length, _ = _HEADER.unpack_from(data, offsets[-1])
        offsets.append(offsets[-1] + _HEADER.size + length)
    return offsets


def recovered_rows(path: str) -> list[tuple]:
    catalog, _ = recover(path)
    return list(catalog.table("t").rows) if catalog.has_table("t") else []


class TestTornTails:
    def test_cut_mid_payload_truncates_to_prefix(self, tmp_path):
        build_store(str(tmp_path))
        seg = segment_path(str(tmp_path))
        data = open(seg, "rb").read()
        offsets = frame_offsets(data)
        # Cut into the middle of the final frame's payload.
        cut = offsets[-2] + _HEADER.size + 3
        with open(seg, "r+b") as handle:
            handle.truncate(cut)
        catalog, replayed = recover(str(tmp_path))
        assert catalog.version == N_INSERTS  # lost exactly the last insert
        assert replayed == N_INSERTS
        # The tail was *physically* truncated back to clean history.
        assert os.path.getsize(seg) == offsets[-2]

    def test_cut_mid_header_truncates(self, tmp_path):
        build_store(str(tmp_path))
        seg = segment_path(str(tmp_path))
        offsets = frame_offsets(open(seg, "rb").read())
        with open(seg, "r+b") as handle:
            handle.truncate(offsets[-2] + 5)  # 5 of 8 header bytes
        catalog, _ = recover(str(tmp_path))
        assert catalog.version == N_INSERTS

    def test_every_cut_point_recovers_exact_prefix(self, tmp_path):
        build_store(str(tmp_path / "ref"))
        seg = segment_path(str(tmp_path / "ref"))
        data = open(seg, "rb").read()
        offsets = frame_offsets(data)
        rng = random.Random(0xC0DEC)
        cuts = {offsets[1], len(data) - 1} | {
            rng.randrange(1, len(data)) for _ in range(40)
        }
        for cut in sorted(cuts):
            target = tmp_path / f"cut{cut}"
            shutil.copytree(tmp_path / "ref", target)
            with open(segment_path(str(target)), "r+b") as handle:
                handle.truncate(cut)
            catalog, _ = recover(str(target))
            # Exactly the frames wholly before the cut survive.
            expected = sum(1 for end in offsets[1:] if end <= cut)
            assert catalog.version == expected, f"cut at byte {cut}"
            if expected > 1:
                rows = catalog.table("t").rows
                assert rows == [(i, f"v{i}") for i in range(expected - 1)]

    def test_appending_after_torn_tail_recovery_works(self, tmp_path):
        build_store(str(tmp_path))
        seg = segment_path(str(tmp_path))
        offsets = frame_offsets(open(seg, "rb").read())
        with open(seg, "r+b") as handle:
            handle.truncate(offsets[-2] + 2)
        db = Database.open(str(tmp_path))
        db.catalog.insert_rows("t", [(77, "resumed")])
        db.close()
        rows = recovered_rows(str(tmp_path))
        assert rows[-1] == (77, "resumed")
        assert len(rows) == N_INSERTS  # N-1 surviving + the new one


class TestMidLogDamage:
    def test_payload_flip_in_interior_record_raises(self, tmp_path):
        build_store(str(tmp_path))
        seg = segment_path(str(tmp_path))
        offsets = frame_offsets(open(seg, "rb").read())
        flip_at = offsets[3] + _HEADER.size + 2  # payload of 4th record
        with open(seg, "r+b") as handle:
            handle.seek(flip_at)
            byte = handle.read(1)
            handle.seek(flip_at)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError):
            recover(str(tmp_path))

    def test_payload_flip_in_final_record_raises(self, tmp_path):
        # Closed §15 gap: a complete final frame whose CRC fails is bit
        # rot, not a torn write (torn writes shorten the file, they do
        # not rewrite bytes) — silently truncating it would drop an
        # acknowledged commit. Typed refusal instead.
        build_store(str(tmp_path))
        seg = segment_path(str(tmp_path))
        offsets = frame_offsets(open(seg, "rb").read())
        flip_at = offsets[-2] + _HEADER.size + 2
        with open(seg, "r+b") as handle:
            handle.seek(flip_at)
            byte = handle.read(1)
            handle.seek(flip_at)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError):
            recover(str(tmp_path))

    def test_flip_in_older_segment_raises(self, tmp_path):
        # Multi-segment store: damage in any non-final segment can never
        # be a torn tail.
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER, segment_bytes=64)
        db.create_table("t", COLUMNS, [])
        for i in range(N_INSERTS):
            db.catalog.insert_rows("t", [(i, f"v{i}")])
        db.close()
        segments = sorted(
            n for n in os.listdir(tmp_path) if n.startswith("wal-")
        )
        assert len(segments) > 2
        victim = os.path.join(tmp_path, segments[0])
        with open(victim, "r+b") as handle:
            handle.seek(_HEADER.size + 1)
            byte = handle.read(1)
            handle.seek(_HEADER.size + 1)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError):
            recover(str(tmp_path))

    def test_random_flips_yield_prefix_or_typed_error(self, tmp_path):
        build_store(str(tmp_path / "ref"))
        data = open(segment_path(str(tmp_path / "ref")), "rb").read()
        full = [(i, f"v{i}") for i in range(N_INSERTS)]
        rng = random.Random(0xF11B)
        for trial in range(40):
            target = tmp_path / f"flip{trial}"
            shutil.copytree(tmp_path / "ref", target)
            flip_at = rng.randrange(len(data))
            with open(segment_path(str(target)), "r+b") as handle:
                handle.seek(flip_at)
                byte = handle.read(1)
                handle.seek(flip_at)
                handle.write(bytes([byte[0] ^ (1 << rng.randrange(8))]))
            try:
                rows = recovered_rows(str(target))
            except WalCorruptionError:
                continue  # typed refusal is always acceptable
            assert rows == full[: len(rows)], (
                f"flip at byte {flip_at} produced non-prefix rows"
            )


class TestVersionDiscipline:
    def _raw_wal(self, path: str) -> tuple[WriteAheadLog, dict]:
        scratch = Database()
        scratch.create_table("t", COLUMNS, [(0, "v0")])
        state = table_state(scratch.catalog.table("t"))
        wal = WriteAheadLog(path, fsync=FSYNC_NEVER)
        wal.append(1, "create_table", {"table": state, "replace": False})
        return wal, state

    def test_duplicate_versions_replay_idempotently(self, tmp_path):
        wal, _ = self._raw_wal(str(tmp_path))
        record = {"table": "t", "rows": [(1, "v1")]}
        wal.append(2, "insert_rows", record)
        wal.append(2, "insert_rows", record)  # stale duplicate
        wal.append(3, "insert_rows", {"table": "t", "rows": [(2, "v2")]})
        wal.close()
        catalog, replayed = recover(str(tmp_path))
        assert replayed == 3
        assert catalog.version == 3
        assert catalog.table("t").rows == [(0, "v0"), (1, "v1"), (2, "v2")]

    def test_version_gap_raises(self, tmp_path):
        wal, _ = self._raw_wal(str(tmp_path))
        wal.append(3, "insert_rows", {"table": "t", "rows": [(3, "v3")]})
        wal.close()
        with pytest.raises(WalCorruptionError, match="version gap"):
            recover(str(tmp_path))

    def test_out_of_order_start_raises(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=FSYNC_NEVER)
        wal.append(2, "insert_rows", {"table": "t", "rows": []})
        wal.close()
        with pytest.raises(WalCorruptionError, match="version gap"):
            recover(str(tmp_path))

    def test_unknown_kind_rejected_at_append(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync=FSYNC_NEVER)
        with pytest.raises(WalError):
            wal.append(1, "truncate_table", {})
        wal.close()

    def test_unknown_kind_on_disk_raises_at_replay(self, tmp_path):
        # A frame with a valid CRC but an unrecognized kind: written by
        # some future version, or damage that survived the checksum.
        import pickle

        payload = pickle.dumps(
            {"version": 1, "kind": "vacuum", "data": {}}, protocol=4
        )
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        name = "wal-" + "0" * 19 + "1.log"
        (tmp_path / name).write_bytes(frame)
        with pytest.raises(WalCorruptionError, match="unknown"):
            recover(str(tmp_path))


class TestCheckpointDamage:
    def test_corrupt_newest_checkpoint_raises(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.close()
        ckpt = [
            n for n in os.listdir(tmp_path) if n.startswith("checkpoint-")
        ][0]
        path = os.path.join(tmp_path, ckpt)
        with open(path, "r+b") as handle:
            handle.seek(_HEADER.size + 4)
            byte = handle.read(1)
            handle.seek(_HEADER.size + 4)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError, match="CRC"):
            Database.open(str(tmp_path))

    def test_truncated_checkpoint_raises(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.close()
        ckpt = [
            n for n in os.listdir(tmp_path) if n.startswith("checkpoint-")
        ][0]
        with open(os.path.join(tmp_path, ckpt), "r+b") as handle:
            handle.truncate(_HEADER.size + 4)
        with pytest.raises(WalCorruptionError):
            recover(str(tmp_path))

    def test_tmp_orphans_are_swept(self, tmp_path):
        build_store(str(tmp_path))
        orphan = tmp_path / ("checkpoint-" + "0" * 20 + ".ckpt.tmp")
        orphan.write_bytes(b"torn checkpoint bytes")
        db = Database.open(str(tmp_path))
        assert not orphan.exists()
        assert db.catalog.version == 1 + N_INSERTS
        db.close()
