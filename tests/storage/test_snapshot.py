"""Copy-on-write versioning: frozen tables, catalog snapshots, atomic
batch inserts, and the lock-free index state publication readers rely on."""

from __future__ import annotations

import threading

import pytest

from repro.errors import CatalogError, ConstraintError
from repro.storage.catalog import Catalog, CatalogSnapshot
from repro.storage.table import table_from_rows
from repro.storage.types import DataType


def ledger_catalog() -> Catalog:
    catalog = Catalog()
    catalog.register(
        table_from_rows(
            "ledger",
            [("id", DataType.INTEGER), ("amount", DataType.INTEGER)],
            [(1, 5), (2, -5)],
            primary_key=["id"],
        )
    )
    return catalog


class TestFrozenTables:
    def test_freeze_blocks_mutation(self):
        table = table_from_rows("t", [("a", DataType.INTEGER)], [(1,)])
        table.freeze()
        with pytest.raises(ConstraintError, match="frozen snapshot"):
            table.insert((2,))
        with pytest.raises(ConstraintError, match="frozen snapshot"):
            table.clear()
        assert table.rows == [(1,)]

    def test_clone_is_writable_and_independent(self):
        table = table_from_rows(
            "t",
            [("a", DataType.INTEGER), ("b", DataType.STRING)],
            [(1, "x")],
            primary_key=["a"],
        )
        table.create_index(["a"])
        table.freeze()
        twin = table.clone()
        assert not twin.frozen
        twin.insert((2, "y"))
        assert table.rows == [(1, "x")]
        assert twin.rows == [(1, "x"), (2, "y")]
        assert twin.schema == table.schema
        assert twin.primary_key == table.primary_key
        # Indexes were recreated on the clone and see its rows.
        index = twin.indexes[("a",)]
        assert [row for row in index.lookup((2,))] == [(2, "y")]

    def test_validate_row_still_enforced(self):
        table = table_from_rows("t", [("a", DataType.INTEGER)], [(1,)])
        clone = table.clone()
        from repro.errors import SchemaError

        with pytest.raises((SchemaError, ConstraintError)):
            clone.insert((1, 2, 3))


class TestCatalogSnapshot:
    def test_snapshot_is_immutable_and_versioned(self):
        catalog = ledger_catalog()
        snap = catalog.snapshot()
        assert isinstance(snap, CatalogSnapshot)
        assert snap.version == catalog.version
        for method, args in [
            ("register", (table_from_rows("x", [("a", DataType.INTEGER)], []),)),
            ("drop", ("ledger",)),
            ("insert_rows", ("ledger", [(3, 0)])),
        ]:
            with pytest.raises(CatalogError, match="read-only snapshot"):
                getattr(snap, method)(*args)

    def test_writes_after_snapshot_are_invisible_to_it(self):
        catalog = ledger_catalog()
        snap = catalog.snapshot()
        catalog.insert_rows("ledger", [(3, 7), (4, -7)])
        catalog.register(
            table_from_rows("extra", [("v", DataType.INTEGER)], [(1,)])
        )
        assert len(catalog.table("ledger").rows) == 4
        assert len(snap.table("ledger").rows) == 2
        with pytest.raises(CatalogError):
            snap.table("extra")
        # And the snapshot taken now sees the new state.
        assert len(catalog.snapshot().table("ledger").rows) == 4

    def test_insert_rows_clones_only_frozen_versions(self):
        catalog = ledger_catalog()
        live = catalog.table("ledger")
        catalog.insert_rows("ledger", [(3, 0)])
        # No snapshot yet: the write lands in place, no version churn.
        assert catalog.table("ledger") is live
        catalog.snapshot()
        catalog.insert_rows("ledger", [(4, 0)])
        swapped = catalog.table("ledger")
        assert swapped is not live
        assert len(live.rows) == 3  # the frozen version never moved
        assert len(swapped.rows) == 4

    def test_insert_rows_validates_before_touching_anything(self):
        catalog = ledger_catalog()
        snap = catalog.snapshot()
        with pytest.raises(Exception):
            catalog.insert_rows("ledger", [(3, 0), ("bad", "row", 1)])
        # The failed batch left no partial state behind.
        assert len(catalog.table("ledger").rows) == 2
        assert len(snap.table("ledger").rows) == 2

    def test_insert_rows_invalidates_statistics(self):
        catalog = ledger_catalog()
        before = catalog.statistics("ledger").row_count
        catalog.insert_rows("ledger", [(3, 1), (4, -1)])
        assert catalog.statistics("ledger").row_count == before + 2

    def test_replace_table_swaps_a_version(self):
        catalog = ledger_catalog()
        version = catalog.version
        replacement = catalog.table("ledger").clone()
        replacement.insert((3, 0))
        catalog.replace_table(replacement)
        assert catalog.table("ledger") is replacement
        assert catalog.version == version + 1
        with pytest.raises(CatalogError, match="unknown table"):
            catalog.replace_table(
                table_from_rows("ghost", [("a", DataType.INTEGER)], [])
            )

    def test_mutations_bump_version(self):
        catalog = ledger_catalog()
        v0 = catalog.version
        catalog.register(
            table_from_rows("extra", [("v", DataType.INTEGER)], [])
        )
        catalog.insert_rows("extra", [(1,)])
        catalog.drop("extra")
        assert catalog.version == v0 + 3


class TestConcurrentAccess:
    def test_lazy_index_build_race_returns_consistent_state(self):
        # Many threads trigger the same lazy index build on a frozen
        # version at once; the atomic state publication must hand every
        # one of them a complete (buckets + sorted arrays) state.
        table = table_from_rows(
            "t",
            [("k", DataType.INTEGER), ("v", DataType.INTEGER)],
            [(i % 10, i) for i in range(200)],
        )
        index = table.create_index(["k"])
        table.freeze()
        errors: list[str] = []
        barrier = threading.Barrier(8, timeout=10.0)

        def probe():
            barrier.wait()
            for key in range(10):
                rows = list(index.lookup((key,)))
                if len(rows) != 20:
                    errors.append(f"key {key}: {len(rows)} rows")
                if index.distinct_key_count() != 10:
                    errors.append("distinct count torn")

        threads = [threading.Thread(target=probe) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(10.0)
            assert not thread.is_alive()
        assert errors == []

    def test_writers_and_snapshot_readers_interleave_safely(self):
        catalog = ledger_catalog()
        stop = threading.Event()
        torn: list[int] = []

        def reader():
            while not stop.is_set():
                snap = catalog.snapshot()
                rows = snap.table("ledger").rows
                total = sum(amount for _, amount in rows)
                if total != 0 or len(rows) % 2 != 0:
                    torn.append(total)
                    return

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        for i in range(50):
            base = 10 + 2 * i
            catalog.insert_rows(
                "ledger", [(base, i + 1), (base + 1, -(i + 1))]
            )
        stop.set()
        for thread in threads:
            thread.join(10.0)
            assert not thread.is_alive()
        assert torn == []
        assert len(catalog.table("ledger").rows) == 2 + 100
