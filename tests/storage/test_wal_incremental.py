"""Incremental checkpoints: delta format on disk, the
``full_checkpoint_every`` schedule, chain resolution at recovery, and
retirement of superseded files (delete vs. archive)."""

from __future__ import annotations

import os

import pytest

from repro.api import Database
from repro.errors import WalCorruptionError
from repro.storage import DataType
from repro.storage.wal import FSYNC_NEVER, _load_checkpoint, recover

COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


def checkpoint_files(path) -> list[str]:
    return sorted(
        n for n in os.listdir(path) if n.startswith("checkpoint-")
    )


def load(path, name) -> dict:
    return _load_checkpoint(os.path.join(str(path), name))


class TestDeltaFormat:
    def test_first_checkpoint_is_always_full(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        (name,) = checkpoint_files(tmp_path)
        state = load(tmp_path, name)
        assert state["format"] == "full"
        assert db.wal.full_checkpoints == 1
        db.close()

    def test_delta_carries_only_dirty_tables(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("big", COLUMNS, [(i, f"v{i}") for i in range(500)])
        db.create_table("small", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("small", [(2, "b")])
        db.checkpoint()
        names = checkpoint_files(tmp_path)
        assert len(names) == 2
        delta = load(tmp_path, names[-1])
        assert delta["format"] == "delta"
        # Only the touched table rides in the delta; `big` stays in the
        # base image — that is the entire point of the incremental form.
        assert [t["name"] for t in delta["tables"]] == ["small"]
        assert delta["dropped"] == []
        assert delta["foreign_keys"] is None  # FK set untouched
        base = load(tmp_path, names[0])
        assert delta["base"] == base["version"]
        db.close()

    def test_delta_records_drops_and_fk_changes(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("parent", COLUMNS, [(1, "a")])
        db.create_table("child", COLUMNS, [(1, "a")])
        db.create_table("doomed", COLUMNS, [])
        db.checkpoint()
        db.catalog.drop("doomed")
        db.add_foreign_key("child", ["k"], "parent", ["k"])
        db.checkpoint()
        delta = load(tmp_path, checkpoint_files(tmp_path)[-1])
        assert delta["format"] == "delta"
        assert delta["dropped"] == ["doomed"]
        assert delta["foreign_keys"] is not None
        db.close()
        catalog, _ = recover(str(tmp_path))
        assert not catalog.has_table("doomed")
        assert len(catalog.foreign_keys()) == 1


class TestSchedule:
    def test_full_checkpoint_every_caps_the_chain(self, tmp_path):
        db = Database.open(
            str(tmp_path), fsync=FSYNC_NEVER, full_checkpoint_every=3
        )
        db.create_table("t", COLUMNS, [])
        formats = []
        for i in range(7):
            db.catalog.insert_rows("t", [(i, f"v{i}")])
            db.checkpoint()
            formats.append(
                load(tmp_path, checkpoint_files(tmp_path)[-1])["format"]
            )
        # Chains of one full anchor + two deltas, then a fresh anchor.
        assert formats == [
            "full", "delta", "delta",
            "full", "delta", "delta",
            "full",
        ]
        assert db.wal.full_checkpoints == 3
        assert db.wal.incremental_checkpoints == 4
        db.close()
        catalog, _ = recover(str(tmp_path))
        assert len(catalog.table("t").rows) == 7

    def test_forced_full_resets_the_chain(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(2, "b")])
        db.checkpoint(full=True)
        names = checkpoint_files(tmp_path)
        # The forced full superseded the first anchor entirely.
        assert len(names) == 1
        assert load(tmp_path, names[0])["format"] == "full"
        db.close()

    def test_recovery_from_mid_chain_state(self, tmp_path):
        # Records after the newest delta replay on top of the resolved
        # chain.
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(2, "b")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(3, "c")])  # tail beyond the chain
        db.close()
        catalog, replayed = recover(str(tmp_path))
        assert replayed == 1
        assert catalog.table("t").rows == [(1, "a"), (2, "b"), (3, "c")]


class TestChainIntegrity:
    def _chained_store(self, tmp_path) -> None:
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(2, "b")])
        db.checkpoint()
        db.close()

    def test_missing_base_raises(self, tmp_path):
        self._chained_store(tmp_path)
        names = checkpoint_files(tmp_path)
        assert load(tmp_path, names[-1])["format"] == "delta"
        os.unlink(os.path.join(str(tmp_path), names[0]))  # the anchor
        with pytest.raises(WalCorruptionError, match="chain"):
            recover(str(tmp_path))

    def test_corrupt_base_raises(self, tmp_path):
        self._chained_store(tmp_path)
        anchor = os.path.join(str(tmp_path), checkpoint_files(tmp_path)[0])
        with open(anchor, "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(WalCorruptionError):
            recover(str(tmp_path))


class TestRetirement:
    def test_superseded_files_deleted_without_archive(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(2, "b")])
        db.checkpoint(full=True)
        db.close()
        assert len(checkpoint_files(tmp_path)) == 1
        assert not os.path.isdir(tmp_path / "archive")

    def test_archive_mode_moves_instead_of_deleting(self, tmp_path):
        db = Database.open(str(tmp_path), fsync=FSYNC_NEVER, archive=True)
        db.create_table("t", COLUMNS, [(1, "a")])
        db.checkpoint()
        db.catalog.insert_rows("t", [(2, "b")])
        db.checkpoint(full=True)
        db.close()
        archived = sorted(os.listdir(tmp_path / "archive"))
        # The pre-checkpoint segments and the superseded first
        # checkpoint all moved to the archive.
        assert any(n.startswith("wal-") for n in archived)
        assert any(n.startswith("checkpoint-") for n in archived)
        # And the archived history still supports full replay (PITR).
        from repro.storage.wal import recoverable_range

        assert recoverable_range(str(tmp_path))[0] == 0
