"""Unit tests for secondary indexes."""

import pytest

from repro.errors import SchemaError
from repro.storage.table import table_from_rows
from repro.storage.types import DataType


def indexed_table():
    table = table_from_rows(
        "t",
        [("k", DataType.INTEGER), ("grp", DataType.INTEGER), ("v", DataType.FLOAT)],
        [(i, i % 3, float(i)) for i in range(12)],
    )
    return table


class TestEqualityLookup:
    def test_lookup_matches(self):
        table = indexed_table()
        index = table.create_index(["grp"])
        assert {row[0] for row in index.lookup((1,))} == {1, 4, 7, 10}

    def test_lookup_miss(self):
        index = indexed_table().create_index(["grp"])
        assert index.lookup((99,)) == []

    def test_null_probe_matches_nothing(self):
        index = indexed_table().create_index(["grp"])
        assert index.lookup((None,)) == []

    def test_null_values_not_indexed(self):
        table = table_from_rows(
            "t", [("a", DataType.INTEGER)], [(1,), (None,), (1,)]
        )
        index = table.create_index(["a"])
        assert len(index.lookup((1,))) == 2

    def test_multi_column_index(self):
        table = indexed_table()
        index = table.create_index(["grp", "k"])
        assert index.lookup((1, 4)) == [(4, 1, 4.0)]
        assert index.lookup((1, 5)) == []


class TestRangeScan:
    def test_closed_range(self):
        index = indexed_table().create_index(["v"])
        values = [row[2] for row in index.range_scan(3.0, 6.0)]
        assert values == [3.0, 4.0, 5.0, 6.0]

    def test_open_bounds(self):
        index = indexed_table().create_index(["v"])
        assert len(list(index.range_scan(None, 2.0))) == 3
        assert len(list(index.range_scan(9.0, None))) == 3
        assert len(list(index.range_scan(None, None))) == 12

    def test_exclusive_bounds(self):
        index = indexed_table().create_index(["v"])
        values = [
            row[2]
            for row in index.range_scan(3.0, 6.0, low_inclusive=False, high_inclusive=False)
        ]
        assert values == [4.0, 5.0]

    def test_range_requires_single_column(self):
        index = indexed_table().create_index(["grp", "k"])
        with pytest.raises(SchemaError):
            list(index.range_scan(0, 1))


class TestMaintenance:
    def test_insert_invalidates(self):
        table = indexed_table()
        index = table.create_index(["grp"])
        before = len(index.lookup((0,)))
        table.insert((100, 0, 100.0))
        assert len(index.lookup((0,))) == before + 1

    def test_clear_invalidates(self):
        table = indexed_table()
        index = table.create_index(["grp"])
        index.lookup((0,))
        table.clear()
        assert index.lookup((0,)) == []

    def test_create_index_idempotent(self):
        table = indexed_table()
        assert table.create_index(["grp"]) is table.create_index(["grp"])

    def test_index_on_any_order(self):
        table = indexed_table()
        created = table.create_index(["grp", "k"])
        assert table.index_on(["k", "grp"]) is created
        assert table.index_on(["v"]) is None
        assert table.index_on(["missing"]) is None

    def test_distinct_key_count(self):
        index = indexed_table().create_index(["grp"])
        assert index.distinct_key_count() == 3
