"""Multi-statement transaction battery: atomic commit/rollback through
:meth:`Database.begin`, recovery atomicity (a crash before the durable
commit record rolls the whole transaction back), version accounting,
ownership rules, and poisoned-WAL semantics. Crash-point fuzzing of the
same surface lives in ``tests/fuzz/test_durability_chaos.py``."""

from __future__ import annotations

import threading

import pytest

from repro.api import Database
from repro.errors import CatalogError, WalError
from repro.storage import DataType
from repro.storage.wal import FSYNC_NEVER, recover

COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


def seeded_db(path) -> Database:
    db = Database.open(str(path), fsync=FSYNC_NEVER)
    db.create_table("t", COLUMNS, [(1, "a")])
    return db


class TestCommitAndRollback:
    def test_commit_makes_all_operations_durable(self, tmp_path):
        db = seeded_db(tmp_path)
        txn = db.begin()
        db.catalog.insert_rows("t", [(2, "b")])
        db.create_table("u", COLUMNS, [(10, "x")])
        db.create_index("t", ["v"])
        txn.commit()
        db.close()

        again = Database.open(str(tmp_path))
        assert again.catalog.table("t").rows == [(1, "a"), (2, "b")]
        assert again.catalog.table("u").rows == [(10, "x")]
        assert ("v",) in again.catalog.table("t").indexes
        again.close()

    def test_rollback_discards_in_memory_and_on_disk(self, tmp_path):
        db = seeded_db(tmp_path)
        txn = db.begin()
        db.catalog.insert_rows("t", [(2, "b")])
        db.create_table("u", COLUMNS, [])
        txn.rollback()
        # In memory: the pre-transaction state is restored.
        assert db.catalog.table("t").rows == [(1, "a")]
        assert not db.catalog.has_table("u")
        db.close()
        # On disk: the abort record makes the discard part of history.
        again = Database.open(str(tmp_path))
        assert again.catalog.table("t").rows == [(1, "a")]
        assert not again.catalog.has_table("u")
        again.close()

    def test_context_manager_commits_on_clean_exit(self, tmp_path):
        db = seeded_db(tmp_path)
        with db.begin():
            db.catalog.insert_rows("t", [(2, "b")])
        db.close()
        catalog, _ = recover(str(tmp_path))
        assert catalog.table("t").rows == [(1, "a"), (2, "b")]

    def test_context_manager_rolls_back_on_exception(self, tmp_path):
        db = seeded_db(tmp_path)
        with pytest.raises(RuntimeError):
            with db.begin():
                db.catalog.insert_rows("t", [(2, "b")])
                raise RuntimeError("client bug")
        assert db.catalog.table("t").rows == [(1, "a")]
        db.close()
        catalog, _ = recover(str(tmp_path))
        assert catalog.table("t").rows == [(1, "a")]

    def test_explicit_terminate_inside_block_wins(self, tmp_path):
        db = seeded_db(tmp_path)
        with db.begin() as txn:
            db.catalog.insert_rows("t", [(2, "b")])
            txn.rollback()
        assert txn.state == "rolled back"
        assert db.catalog.table("t").rows == [(1, "a")]
        db.close()

    def test_handle_is_single_use(self, tmp_path):
        db = seeded_db(tmp_path)
        txn = db.begin()
        txn.commit()
        with pytest.raises(CatalogError, match="already committed"):
            txn.commit()
        with pytest.raises(CatalogError, match="already committed"):
            txn.rollback()
        db.close()

    def test_works_on_non_durable_database(self):
        db = Database()
        db.create_table("t", COLUMNS, [(1, "a")])
        with pytest.raises(ValueError):
            with db.begin():
                db.catalog.insert_rows("t", [(2, "b")])
                raise ValueError("abort")
        assert db.catalog.table("t").rows == [(1, "a")]
        with db.begin():
            db.catalog.insert_rows("t", [(3, "c")])
        assert db.catalog.table("t").rows == [(1, "a"), (3, "c")]


class TestRecoveryAtomicity:
    def test_crash_before_commit_rolls_back_everything(self, tmp_path):
        db = seeded_db(tmp_path)
        db.begin()
        db.catalog.insert_rows("t", [(2, "b")])
        db.create_table("u", COLUMNS, [(10, "x")])
        # Simulated crash: the operation records are on disk but no
        # terminator ever lands.
        db.wal.close()
        catalog, _ = recover(str(tmp_path))
        assert catalog.table("t").rows == [(1, "a")]
        assert not catalog.has_table("u")
        # Reopening for writes works: the torn transaction was rolled
        # back physically, so new history appends cleanly.
        again = Database.open(str(tmp_path))
        again.catalog.insert_rows("t", [(5, "e")])
        again.close()
        catalog, _ = recover(str(tmp_path))
        assert catalog.table("t").rows == [(1, "a"), (5, "e")]

    def test_committed_txn_then_torn_txn(self, tmp_path):
        db = seeded_db(tmp_path)
        with db.begin():
            db.catalog.insert_rows("t", [(2, "b")])
        db.begin()
        db.catalog.insert_rows("t", [(3, "c")])
        db.wal.close()
        catalog, _ = recover(str(tmp_path))
        # The committed transaction survives; the torn one vanishes.
        assert catalog.table("t").rows == [(1, "a"), (2, "b")]

    def test_empty_torn_txn_rolls_back(self, tmp_path):
        db = seeded_db(tmp_path)
        db.begin()
        db.wal.close()
        catalog, _ = recover(str(tmp_path))
        assert catalog.version == 1
        assert catalog.table("t").rows == [(1, "a")]


class TestVersionAccounting:
    def test_begin_ops_and_commit_each_consume_a_version(self, tmp_path):
        db = seeded_db(tmp_path)
        base = db.catalog.version
        with db.begin():
            db.catalog.insert_rows("t", [(2, "b")])
            db.catalog.insert_rows("t", [(3, "c")])
        # begin + 2 inserts + commit = 4 versions.
        assert db.catalog.version == base + 4
        db.close()
        again = Database.open(str(tmp_path))
        assert again.catalog.version == base + 4
        again.close()

    def test_rollback_never_rewinds_the_version(self, tmp_path):
        db = seeded_db(tmp_path)
        base = db.catalog.version
        with pytest.raises(RuntimeError):
            with db.begin():
                db.catalog.insert_rows("t", [(2, "b")])
                raise RuntimeError
        # begin + insert + abort all keep their versions: the plan cache
        # keys on version, so a rewound counter could alias stale plans.
        assert db.catalog.version == base + 3
        db.close()
        again = Database.open(str(tmp_path))
        assert again.catalog.version == base + 3
        assert again.catalog.table("t").rows == [(1, "a")]
        again.close()

    def test_snapshot_during_txn_sees_pre_txn_state(self, tmp_path):
        db = seeded_db(tmp_path)
        pre_version = db.catalog.version
        with db.begin():
            db.catalog.insert_rows("t", [(2, "b")])
            snap = db.catalog.snapshot()
            assert snap.version == pre_version
            assert snap.table("t").rows == [(1, "a")]
        assert db.catalog.snapshot().table("t").rows == [(1, "a"), (2, "b")]
        db.close()


class TestOwnershipAndNesting:
    def test_nested_begin_rejected(self, tmp_path):
        db = seeded_db(tmp_path)
        with db.begin():
            with pytest.raises(CatalogError, match="nested"):
                db.begin()
        db.close()

    def test_commit_from_another_thread_rejected(self, tmp_path):
        db = seeded_db(tmp_path)
        txn = db.begin()
        errors: list[BaseException] = []

        def foreign_commit():
            try:
                db.catalog.commit_transaction()
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        worker = threading.Thread(target=foreign_commit)
        worker.start()
        worker.join()
        assert len(errors) == 1
        assert isinstance(errors[0], CatalogError)
        assert "another thread" in str(errors[0])
        txn.commit()  # the owner can still finish normally
        db.close()

    def test_concurrent_writer_queues_behind_txn(self, tmp_path):
        db = seeded_db(tmp_path)
        order: list[str] = []
        txn = db.begin()
        db.catalog.insert_rows("t", [(2, "b")])

        def blocked_writer():
            db.catalog.insert_rows("t", [(3, "c")])
            order.append("writer")

        worker = threading.Thread(target=blocked_writer)
        worker.start()
        worker.join(timeout=0.2)
        assert worker.is_alive()  # still parked on the txn gate
        order.append("commit")
        txn.commit()
        worker.join(timeout=5.0)
        assert not worker.is_alive()
        assert order == ["commit", "writer"]
        assert db.catalog.table("t").rows == [(1, "a"), (2, "b"), (3, "c")]
        db.close()

    def test_commit_without_begin_rejected(self, tmp_path):
        db = seeded_db(tmp_path)
        with pytest.raises(CatalogError, match="no active transaction"):
            db.catalog.commit_transaction()
        db.close()


class TestFailureSemantics:
    def test_poisoned_wal_fails_commit_and_restores_state(self, tmp_path):
        db = seeded_db(tmp_path)
        txn = db.begin()
        db.catalog.insert_rows("t", [(2, "b")])
        db.wal.poison("simulated media failure")
        with pytest.raises(WalError):
            txn.commit()
        assert txn.state == "failed"
        # In-memory state rolled back to the pre-transaction basis: the
        # operations can never become durable, so pretending they
        # applied would ack work recovery must drop.
        assert db.catalog.table("t").rows == [(1, "a")]
        catalog, _ = recover(str(tmp_path))
        assert catalog.table("t").rows == [(1, "a")]

    def test_checkpoint_refused_inside_txn(self, tmp_path):
        db = seeded_db(tmp_path)
        with db.begin():
            with pytest.raises(WalError, match="transaction"):
                db.checkpoint()
        db.close()
