"""Every benchmark script must expose a working ``--smoke`` mode.

The CI benchmark-smoke job runs ``python benchmarks/bench_*.py --smoke
--out <artifact>.json`` for each script and uploads the JSON; this suite
is the tripwire that keeps that job honest: scripts are discovered by
glob (a new benchmark can't ship without smoke support), each must exit 0
inside the smoke budget, and each must emit well-formed measurement
records in the harness JSON format.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = sorted((REPO_ROOT / "benchmarks").glob("bench_*.py"))

#: Per-script wall budget, seconds. Smoke runs take well under 10s each on
#: a laptop; the margin absorbs slow shared CI runners without letting a
#: genuinely broken (hanging, full-scale) script slip through.
SMOKE_BUDGET = 90.0

REQUIRED_RECORD_KEYS = {
    "name",
    "elapsed",
    "work",
    "rows",
    "backend",
    "parallelism",
}


def _run_script(script: Path, *args: str, timeout: float):
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = (
        src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    )
    return subprocess.run(
        [sys.executable, str(script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
        cwd=REPO_ROOT,
    )


def test_benchmark_scripts_discovered():
    names = [script.name for script in BENCHMARKS]
    assert "bench_fig8_speedup.py" in names
    assert "bench_parallel_gapply.py" in names
    assert len(BENCHMARKS) >= 7


@pytest.mark.parametrize("script", BENCHMARKS, ids=lambda s: s.stem)
def test_smoke_mode_completes_under_budget(script, tmp_path):
    out = tmp_path / f"{script.stem}.json"
    start = time.perf_counter()
    proc = _run_script(
        script, "--smoke", "--out", str(out), timeout=SMOKE_BUDGET
    )
    elapsed = time.perf_counter() - start
    assert proc.returncode == 0, (
        f"{script.name} --smoke failed:\n{proc.stdout}\n{proc.stderr}"
    )
    assert elapsed < SMOKE_BUDGET

    document = json.loads(out.read_text())
    assert document["meta"]["smoke"] is True
    measurements = document["measurements"]
    assert measurements, f"{script.name} emitted no measurements"
    for record in measurements:
        assert REQUIRED_RECORD_KEYS <= set(record), (
            f"{script.name} record missing keys: "
            f"{REQUIRED_RECORD_KEYS - set(record)}"
        )
        assert record["elapsed"] >= 0


@pytest.mark.parametrize("script", BENCHMARKS, ids=lambda s: s.stem)
def test_help_documents_smoke_flag(script):
    proc = _run_script(script, "--help", timeout=30)
    assert proc.returncode == 0
    assert "--smoke" in proc.stdout
