"""Durability chaos slice: seeded crash points must recover the exact
acknowledged-commit prefix. The CI job runs a wider sweep through
``python -m repro.fuzz --durability``; this battery keeps a
representative slice in tier-1 and pins the harness determinism."""

from __future__ import annotations

from repro.execution.faults import DURABILITY_POINTS, FaultPlan
from repro.fuzz.durability import (
    build_durability_case,
    run_durability_case,
    run_durability_chaos,
)


def test_sweep_slice_is_green():
    report = run_durability_chaos(seed=0, n=40, stop_after=3)
    assert report.ok, report.summary()
    assert report.cases == 40


def test_sweep_covers_every_crash_point():
    scenarios = {build_durability_case(seed).scenario for seed in range(120)}
    assert scenarios == set(DURABILITY_POINTS)


def test_case_building_is_deterministic():
    a, b = build_durability_case(17), build_durability_case(17)
    assert a == b
    assert build_durability_case(18) != a


def test_failing_detail_replays_identically():
    # Not a failure — but the per-case runner itself must be replayable:
    # the same case gives the same verdict twice.
    for seed in (3, 11, 29):
        case = build_durability_case(seed)
        assert run_durability_case(case) == run_durability_case(case)


def test_for_durability_plans_are_process_stable():
    # Seed derivation must not depend on string hashing (PYTHONHASHSEED):
    # pin a few concrete plans so a drift breaks loudly.
    plan = FaultPlan.for_durability(0)
    assert plan == FaultPlan.for_durability(0)
    armed = [
        p
        for p in (FaultPlan.for_durability(s) for s in range(30))
        if p != FaultPlan(seed=p.seed)
    ]
    assert armed  # the menu really arms crash points over a small range


def test_cli_durability_mode(capsys):
    from repro.fuzz.__main__ import main

    assert main(["--durability", "--seed", "0", "--n", "8"]) == 0
    out = capsys.readouterr().out
    assert "chaos: 8 cases, ok" in out
