"""Tier-1 differential fuzzing: seeded cases plus corpus replay.

The seeded sweep is the cheap always-on slice of the fuzzer (the CI
``fuzz`` job and ``python -m repro.fuzz`` run much larger sweeps); the
corpus replay guards every bug the fuzzer has ever minimized — each
reproducer in ``tests/fuzz_corpus/`` must stay clean forever.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.errors import PlanError
from repro.fuzz import (
    generate_case,
    load_corpus,
    plan_configurations,
    profile_configurations,
    run_case,
    run_fuzz,
)

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus"


class TestSeededSweep:
    def test_200_cases_no_divergence(self):
        report = run_fuzz(seed=0, n=200, profile="quick", shrink=False)
        assert report.ok, report.summary()
        assert report.cases == 200
        # The oracle must actually engage: skips should be the exception.
        assert report.oracle_checked >= 190
        assert report.config_runs > 0

    def test_generation_is_deterministic(self):
        first = generate_case(1234)
        second = generate_case(1234)
        assert first.sql == second.sql
        assert first.db.tables[0].rows == second.db.tables[0].rows

    def test_distinct_seeds_vary(self):
        queries = {generate_case(seed).sql for seed in range(20)}
        assert len(queries) > 15


class TestCorpusReplay:
    """Every minimized reproducer must pass the full differential check."""

    def _cases(self):
        cases = load_corpus(CORPUS_DIR)
        assert cases, f"fuzz corpus missing at {CORPUS_DIR}"
        return cases

    def test_corpus_nonempty(self):
        assert len(self._cases()) >= 2

    @pytest.mark.parametrize(
        "name",
        [path.name for path in sorted(CORPUS_DIR.glob("*.json"))],
    )
    def test_reproducer_stays_clean(self, name):
        case = next(c for c in self._cases() if c.path.name == name)
        failure = run_case(case.to_fuzz_case(), plan_configurations(full=True))
        assert failure is None, failure.describe()


class TestProfiles:
    def test_quick_is_subset_of_full(self):
        quick = {c.name for c in profile_configurations("quick")}
        full = {c.name for c in profile_configurations("full")}
        assert quick < full

    def test_full_covers_every_rule(self):
        from repro.optimizer.rules import DEFAULT_RULES

        names = {c.name for c in profile_configurations("full")}
        for rule in DEFAULT_RULES:
            assert f"no-{rule.name}" in names

    def test_unknown_profile_rejected(self):
        with pytest.raises(PlanError):
            profile_configurations("nope")
