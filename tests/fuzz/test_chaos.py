"""The chaos harness itself: seeded sweeps hold the correct-rows-or-typed-
error invariant, and cases are fully determined by their seed."""

from __future__ import annotations

from repro.fuzz.chaos import SCENARIOS, build_case, run_chaos


class TestCaseConstruction:
    def test_cases_are_deterministic(self):
        for seed in range(20):
            assert build_case(seed).describe() == build_case(seed).describe()

    def test_seeds_cover_every_scenario(self):
        seen = {build_case(seed).scenario for seed in range(80)}
        assert seen == set(SCENARIOS)

    def test_descriptions_are_json_serializable(self):
        import json

        for seed in range(20):
            json.dumps(build_case(seed).describe())


class TestSweep:
    def test_small_sweep_holds_the_invariant(self):
        # A bounded slice of what the CI chaos job runs at scale; any
        # failure here is a real engine bug (replay with the seed).
        report = run_chaos(seed=0, n=15)
        assert report.cases == 15
        assert report.ok, [f.describe() for f in report.failures]

    def test_summary_mentions_scenarios(self):
        report = run_chaos(seed=100, n=5)
        assert "5 cases" in report.summary()
