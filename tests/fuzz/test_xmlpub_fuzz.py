"""Tier-1 slice of the ``xmlpub`` differential fuzz profile.

Three layers, mirroring the SQL fuzzer's tier-1 tests:

* a seeded sweep of generated tagger-level cases (chunk invariance for
  every chunk size, parse + structure oracle) plus periodic end-to-end
  view cases through ``Database.publish``;
* replay of the minimized reproducers checked into
  ``tests/fuzz_corpus/xmlpub/`` — each one is a bug the fuzzer actually
  caught (control characters, carriage-return normalization, ``]]>``),
  kept green forever;
* determinism: the same seed must generate byte-identical cases, or
  every reproducer in the corpus loses its meaning.
"""

from pathlib import Path

import pytest

from repro.fuzz import (
    check_view_case,
    check_xmlpub_case,
    generate_xmlpub_case,
    load_xmlpub_corpus,
    run_xmlpub_fuzz,
)

CORPUS_DIR = Path(__file__).resolve().parents[1] / "fuzz_corpus" / "xmlpub"


class TestSweep:
    def test_seeded_sweep_is_clean(self):
        report = run_xmlpub_fuzz(seed=0, n=40, view_case_every=10)
        assert report.ok, report.summary()
        assert report.checked == 40
        assert report.view_cases == 4

    def test_single_case_oracle_is_clean(self):
        case = generate_xmlpub_case(7)
        assert check_xmlpub_case(case) is None


class TestCorpusReplay:
    def test_corpus_exists_and_is_loaded(self):
        cases = load_xmlpub_corpus(CORPUS_DIR)
        assert len(cases) >= 3  # the bugs the fuzzer caught and minimized

    @pytest.mark.parametrize(
        "path",
        sorted(CORPUS_DIR.glob("fuzz-xmlpub-*.json")),
        ids=lambda path: path.stem,
    )
    def test_reproducer_stays_fixed(self, path, tmp_path):
        # Load just this file through the public loader.
        link = tmp_path / path.name
        link.write_text(path.read_text())
        (case,) = load_xmlpub_corpus(tmp_path)
        failure = check_xmlpub_case(case)
        assert failure is None, failure.describe()


class TestDeterminism:
    def test_same_seed_same_case(self):
        for seed in (0, 1, 17, 4242):
            first = generate_xmlpub_case(seed)
            second = generate_xmlpub_case(seed)
            assert first.spec == second.spec
            assert first.rows == second.rows

    def test_view_case_differential(self):
        # One end-to-end case per supported view query family, directly.
        for seed in range(5):
            failure = check_view_case(seed)
            assert failure is None, failure.describe()
