"""Property tests for the SQLite lowering: the paper's queries round-trip.

Every formulation of every paper query (GApply, classical baseline, and
the naive variant where the paper gives one) is lowered to plain SQLite
SQL, executed on a mirrored TPC-H instance, and compared — as NULL-aware
normalized multisets — against the engine's own output. This pins the
oracle encoding of GApply (correlated-subquery / group-by expansion) to
known-good queries before the fuzzer trusts it on random ones.
"""

from __future__ import annotations

import pytest

from repro.fuzz.oracle import compare_multisets, run_oracle, sqlite_mirror
from repro.sql import parse
from repro.sql.printer import print_query
from repro.sql.sqlite import to_sqlite
from repro.workloads.queries import PAPER_QUERIES

FORMULATIONS = [
    (query.name, kind, sql)
    for query in PAPER_QUERIES
    for kind, sql in [
        ("gapply", query.gapply_sql),
        ("baseline", query.baseline_sql),
        ("naive", query.naive_sql),
    ]
    if sql is not None
]


@pytest.fixture(scope="module")
def tpch_mirror(tpch_catalog):
    connection = sqlite_mirror(tpch_catalog)
    yield connection
    connection.close()


@pytest.mark.parametrize(
    "name,kind,sql",
    FORMULATIONS,
    ids=[f"{name}-{kind}" for name, kind, _ in FORMULATIONS],
)
class TestPaperQueriesAgainstOracle:
    def test_engine_matches_sqlite(self, tpch_db, tpch_mirror, name, kind, sql):
        engine_rows = tpch_db.sql(sql).rows
        oracle_rows = run_oracle(parse(sql), tpch_mirror)
        mismatch = compare_multisets(engine_rows, oracle_rows)
        assert mismatch is None, mismatch.describe("engine", "sqlite")

    def test_printer_round_trip_preserves_oracle(
        self, tpch_mirror, name, kind, sql
    ):
        """Lowering must be stable under an AST print/parse round trip."""
        ast = parse(sql)
        reprinted = parse(print_query(ast))
        assert to_sqlite(reprinted) == to_sqlite(ast)


def test_lowering_is_plain_sql():
    """The lowered text must not leak dialect syntax SQLite can't parse."""
    for _, _, sql in FORMULATIONS:
        lowered = to_sqlite(parse(sql))
        assert "gapply" not in lowered.lower()
        assert " : " not in lowered
