"""Concurrent chaos: the tier-1 slice of what the CI serve-stress job
runs at scale. Every seed's multi-threaded workload must end in
snapshot-consistent rows or typed errors — never a torn read, wrong
answer, hang, or leaked resource."""

from __future__ import annotations

import json

from repro.fuzz.chaos import (
    CONCURRENT_SCENARIOS,
    build_concurrent_case,
    run_concurrent_chaos,
)


class TestCaseConstruction:
    def test_cases_are_deterministic(self):
        for seed in range(15):
            assert (
                build_concurrent_case(seed).describe()
                == build_concurrent_case(seed).describe()
            )

    def test_seeds_cover_every_scenario(self):
        seen = {
            build_concurrent_case(seed).scenario
            for seed in range(len(CONCURRENT_SCENARIOS))
        }
        assert seen == set(CONCURRENT_SCENARIOS)

    def test_descriptions_are_json_serializable(self):
        for seed in range(10):
            json.dumps(build_concurrent_case(seed).describe())


class TestConcurrentSweep:
    def test_small_sweep_holds_the_invariant(self):
        # One seed per scenario, modest thread count: the bounded tier-1
        # slice of the CI job's 100-seed, 16-thread sweep. Any failure
        # here is a real concurrency bug (replay with the seed).
        report = run_concurrent_chaos(seed=0, n=5, threads=6, ops_per_thread=4)
        assert report.cases == 5
        assert report.ok, [f.describe() for f in report.failures]
        assert set(report.outcomes) == set(CONCURRENT_SCENARIOS)

    def test_higher_seeds_also_hold(self):
        report = run_concurrent_chaos(
            seed=40, n=5, threads=4, ops_per_thread=3
        )
        assert report.ok, [f.describe() for f in report.failures]

    def test_failures_would_carry_the_case_shape(self):
        # The report plumbing: a (synthetic) failure serializes with the
        # full case for replay.
        from repro.fuzz.chaos import ChaosFailure

        case = build_concurrent_case(3)
        failure = ChaosFailure(case, "synthetic")
        described = failure.describe()
        assert described["detail"] == "synthetic"
        assert described["scenario"] == case.scenario
        assert described["threads"] == case.threads
