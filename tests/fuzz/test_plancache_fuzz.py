"""Tier-1 slice of the plan-cache differential fuzz profile.

The full sweep (600 cases, disjoint seed range) runs in CI's fuzz job;
this keeps a small always-on slice in tier-1 so a cache regression fails
fast locally. Every case runs cold (must miss), hot (must hit with
byte-identical rows/counters/metrics), and re-parameterized with fresh
same-type literals (must hit, rows identical to an uncached run),
alternating volcano/vector engines.
"""

from repro.fuzz.plancache import run_plancache_fuzz

SEED = 40000  # same range CI sweeps, so local failures replay in CI
CASES = 30


def test_plancache_fuzz_slice():
    report = run_plancache_fuzz(seed=SEED, n=CASES)
    details = "\n\n".join(
        f"seed {f.seed} [{f.stage}]\n{f.sql}\n{f.detail}"
        for f in report.failures
    )
    assert report.ok, f"{report.summary()}\n{details}"
    assert report.checked == CASES
