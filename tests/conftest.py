"""Shared fixtures: small hand-made databases and a tiny TPC-H instance."""

from __future__ import annotations

import pytest

from repro.api import Database
from repro.storage import Catalog, DataType
from repro.workloads.tpch import TpchConfig, load_tpch


def pytest_addoption(parser):
    parser.addoption(
        "--update-snapshots",
        action="store_true",
        default=False,
        help="rewrite the golden EXPLAIN plan snapshots under "
        "tests/snapshots/ instead of comparing against them",
    )


@pytest.fixture
def update_snapshots(request) -> bool:
    return request.config.getoption("--update-snapshots")


@pytest.fixture
def parts_db() -> Database:
    """A small supplier/part/partsupp database with declared keys.

    Layout: 12 parts, 3 suppliers; supplier 100+i supplies the parts with
    partkey % 3 == i, so each supplier supplies exactly 4 parts with prices
    {10i, ...}. Deterministic and small enough to verify by hand.
    """
    db = Database()
    db.create_table(
        "part",
        [
            ("p_partkey", DataType.INTEGER),
            ("p_name", DataType.STRING),
            ("p_brand", DataType.STRING),
            ("p_size", DataType.INTEGER),
            ("p_retailprice", DataType.FLOAT),
        ],
        [
            (i, f"part{i}", "A" if i % 2 == 0 else "B", i % 4, float(i * 10))
            for i in range(1, 13)
        ],
        primary_key=["p_partkey"],
    )
    db.create_table(
        "partsupp",
        [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
        [(100 + (i % 3), i) for i in range(1, 13)],
        primary_key=["ps_suppkey", "ps_partkey"],
    )
    db.create_table(
        "supplier",
        [("s_suppkey", DataType.INTEGER), ("s_name", DataType.STRING)],
        [(100 + i, f"supp{i}") for i in range(3)],
        primary_key=["s_suppkey"],
    )
    db.add_foreign_key("partsupp", ["ps_partkey"], "part", ["p_partkey"])
    db.add_foreign_key("partsupp", ["ps_suppkey"], "supplier", ["s_suppkey"])
    return db


@pytest.fixture(scope="session")
def tpch_catalog() -> Catalog:
    """A small shared TPC-H catalog (read-only across the session)."""
    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=0.02), validate=True)
    return catalog


@pytest.fixture(scope="session")
def tpch_db(tpch_catalog: Catalog) -> Database:
    return Database(tpch_catalog)


def rows_sorted(rows) -> list:
    """Order-insensitive row-multiset comparison helper."""
    return sorted(rows, key=repr)
