"""Unit tests for logical operators: schema derivation and tree utilities."""

import pytest

from repro.algebra.expressions import avg, col, count_star, eq, gt, lit
from repro.algebra.operators import (
    Alias,
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    JoinKind,
    Limit,
    OrderBy,
    Project,
    Prune,
    Remap,
    Select,
    TableScan,
    Union,
    UnionAll,
    gapply_output_schema,
    project_columns,
    replace_group_scans,
)
from repro.errors import PlanError, SchemaError
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

PART = Schema(
    (
        Column("p_partkey", DataType.INTEGER),
        Column("p_name", DataType.STRING),
        Column("p_price", DataType.FLOAT),
    )
)
SUPP = Schema(
    (Column("s_suppkey", DataType.INTEGER), Column("s_name", DataType.STRING))
)


def part_scan() -> TableScan:
    return TableScan("part", PART)


def supp_scan() -> TableScan:
    return TableScan("supplier", SUPP)


class TestScans:
    def test_table_scan_qualifies(self):
        assert part_scan().schema.qualified_names() == [
            "part.p_partkey",
            "part.p_name",
            "part.p_price",
        ]

    def test_alias_requalifies(self):
        scan = TableScan("part", PART, alias="p")
        assert scan.schema.qualified_names()[0] == "p.p_partkey"
        assert scan.binding_name == "p"

    def test_group_scan_schema(self):
        scan = GroupScan("g", PART)
        assert scan.schema is scan.group_schema


class TestUnaryOperators:
    def test_select_preserves_schema(self):
        node = Select(part_scan(), gt(col("p_price"), lit(1.0)))
        assert node.schema == part_scan().schema

    def test_select_validates_references(self):
        node = Select(part_scan(), gt(col("nonexistent"), lit(1.0)))
        with pytest.raises(Exception):
            node.schema

    def test_project_names_and_types(self):
        node = Project(part_scan(), ((col("p_name"), "name"), (lit(1), "one")))
        assert node.schema.names() == ["name", "one"]
        assert node.schema[1].dtype is DataType.INTEGER

    def test_prune_preserves_qualifiers(self):
        node = Prune(part_scan(), ("part.p_price", "part.p_name"))
        assert node.schema.qualified_names() == ["part.p_price", "part.p_name"]

    def test_project_columns_helper(self):
        node = project_columns(part_scan(), ["p_name"])
        assert node.schema.names() == ["p_name"]
        assert node.schema[0].qualifier is None

    def test_alias_operator(self):
        node = Alias(part_scan(), "x")
        assert node.schema.qualified_names()[0] == "x.p_partkey"

    def test_remap(self):
        node = Remap(
            part_scan(),
            (("part.p_name", Column("title", qualifier="out")),),
        )
        assert node.schema.qualified_names() == ["out.title"]
        assert node.schema[0].dtype is DataType.STRING

    def test_distinct_orderby_limit_preserve_schema(self):
        scan = part_scan()
        assert Distinct(scan).schema == scan.schema
        assert OrderBy(scan, (("p_name", True),)).schema == scan.schema
        assert Limit(scan, 5).schema == scan.schema

    def test_orderby_validates(self):
        with pytest.raises(Exception):
            OrderBy(part_scan(), (("zzz", True),)).schema


class TestJoin:
    def test_inner_join_schema_concat(self):
        node = Join(part_scan(), supp_scan(), None, JoinKind.CROSS)
        assert len(node.schema) == 5

    def test_semi_join_schema_is_left(self):
        node = Join(
            part_scan(),
            supp_scan(),
            eq(col("p_partkey"), col("s_suppkey")),
            JoinKind.SEMI,
        )
        assert node.schema == part_scan().schema

    def test_equijoin_pairs(self):
        node = Join(
            part_scan(), supp_scan(), eq(col("p_partkey"), col("s_suppkey"))
        )
        assert node.equijoin_pairs() == [("p_partkey", "s_suppkey")]

    def test_equijoin_pairs_reversed_sides(self):
        node = Join(
            part_scan(), supp_scan(), eq(col("s_suppkey"), col("p_partkey"))
        )
        assert node.equijoin_pairs() == [("p_partkey", "s_suppkey")]

    def test_non_equi_predicate_has_no_pairs(self):
        node = Join(part_scan(), supp_scan(), gt(col("p_partkey"), col("s_suppkey")))
        assert node.equijoin_pairs() == []


class TestGroupBy:
    def test_keys_and_aggregates(self):
        node = GroupBy(part_scan(), ("p_name",), (avg(col("p_price"), "m"),))
        assert node.schema.names() == ["p_name", "m"]
        assert node.schema[1].dtype is DataType.FLOAT

    def test_scalar_aggregate(self):
        node = GroupBy(part_scan(), (), (count_star("n"),))
        assert node.is_scalar_aggregate
        assert node.schema.names() == ["n"]


class TestUnions:
    def test_union_all_schema(self):
        a = project_columns(part_scan(), ["p_name"])
        node = UnionAll((a, a))
        assert node.schema.names() == ["p_name"]

    def test_width_mismatch_rejected(self):
        a = project_columns(part_scan(), ["p_name"])
        b = project_columns(part_scan(), ["p_name", "p_price"])
        with pytest.raises(SchemaError):
            UnionAll((a, b)).schema

    def test_union_type_widening(self):
        a = Project(part_scan(), ((col("p_partkey"), "x"),))
        b = Project(part_scan(), ((col("p_price"), "x"),))
        assert Union((a, b)).schema[0].dtype is DataType.FLOAT

    def test_empty_union_rejected(self):
        with pytest.raises(PlanError):
            UnionAll(()).schema


class TestApplyExists:
    def test_exists_null_schema(self):
        assert len(Exists(part_scan()).schema) == 0

    def test_apply_with_exists_inner_keeps_outer_schema(self):
        node = Apply(part_scan(), Exists(supp_scan()))
        assert node.schema == part_scan().schema

    def test_apply_appends_inner_columns(self):
        inner = Project(supp_scan(), ((col("s_name"), "sq_name"),))
        node = Apply(part_scan(), inner)
        assert node.schema.names()[-1] == "sq_name"

    def test_apply_validates_bindings(self):
        node = Apply(part_scan(), Exists(supp_scan()), (("p", "no_such"),))
        with pytest.raises(Exception):
            node.schema


class TestGApply:
    def make(self, pgq=None):
        outer = part_scan()
        if pgq is None:
            pgq = GroupBy(GroupScan("g", outer.schema), (), (count_star("n"),))
        return GApply(outer, ("p_partkey",), pgq, "g")

    def test_output_schema(self):
        node = self.make()
        assert node.schema.qualified_names() == ["part.p_partkey", "n"]

    def test_group_scan_schema_mismatch_rejected(self):
        outer = part_scan()
        pgq = GroupBy(GroupScan("g", SUPP), (), (count_star("n"),))
        with pytest.raises(PlanError):
            GApply(outer, ("p_partkey",), pgq, "g").schema

    def test_wrong_variable_rejected(self):
        outer = part_scan()
        pgq = GroupBy(GroupScan("other", outer.schema), (), (count_star("n"),))
        with pytest.raises(PlanError):
            GApply(outer, ("p_partkey",), pgq, "g").schema

    def test_whole_group_passthrough_requalifies_keys(self):
        outer = part_scan()
        pgq = GroupScan("g", outer.schema)
        node = GApply(outer, ("p_partkey",), pgq, "g")
        # key copy collides with the passthrough column -> g-qualified
        assert node.schema.qualified_names()[0] == "g.p_partkey"

    def test_gapply_output_schema_helper(self):
        schema = gapply_output_schema(
            PART, ("p_partkey",), Schema((Column("n", DataType.INTEGER),)), "g"
        )
        assert schema.names() == ["p_partkey", "n"]

    def test_group_scans_listed(self):
        node = self.make()
        assert len(node.group_scans()) == 1

    def test_replace_group_scans(self):
        node = self.make()
        new_schema = Schema((Column("p_partkey", DataType.INTEGER),))
        rewritten = replace_group_scans(node.per_group, new_schema)
        scans = [n for n in rewritten.walk() if isinstance(n, GroupScan)]
        assert all(s.group_schema == new_schema for s in scans)


class TestTreeUtilities:
    def test_walk_preorder(self):
        node = Select(part_scan(), gt(col("p_price"), lit(0.0)))
        kinds = [type(n).__name__ for n in node.walk()]
        assert kinds == ["Select", "TableScan"]

    def test_contains(self):
        node = Distinct(Select(part_scan(), gt(col("p_price"), lit(0.0))))
        assert node.contains(TableScan)
        assert not node.contains(Join)

    def test_with_children_same_arity(self):
        node = Select(part_scan(), gt(col("p_price"), lit(0.0)))
        rebuilt = node.with_children((supp_scan(),))
        assert isinstance(rebuilt.child, TableScan)
        assert rebuilt.child.table_name == "supplier"

    def test_transform_up(self):
        node = Select(part_scan(), gt(col("p_price"), lit(0.0)))

        def drop_select(n):
            return n.child if isinstance(n, Select) else n

        assert isinstance(node.transform_up(drop_select), TableScan)

    def test_pretty_is_indented(self):
        node = Select(part_scan(), gt(col("p_price"), lit(0.0)))
        lines = node.pretty().splitlines()
        assert lines[0].startswith("Select")
        assert lines[1].startswith("  TableScan")

    def test_node_count(self):
        node = Join(part_scan(), supp_scan(), None, JoinKind.CROSS)
        assert node.node_count() == 3

    def test_structural_equality(self):
        assert part_scan() == part_scan()
        assert self_make_equal()


def self_make_equal() -> bool:
    a = Select(TableScan("part", PART), gt(col("p_price"), lit(0.0)))
    b = Select(TableScan("part", PART), gt(col("p_price"), lit(0.0)))
    return a == b and hash(a) == hash(b)
