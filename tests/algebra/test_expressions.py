"""Unit tests for the scalar expression language."""

import pytest

from repro.algebra.expressions import (
    AggregateAccumulator,
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    CaseWhen,
    ComparisonOp,
    FunctionCall,
    InList,
    IsNull,
    Negate,
    Not,
    Or,
    Parameter,
    avg,
    col,
    conjoin,
    conjuncts,
    count,
    count_star,
    eq,
    ge,
    gt,
    le,
    lit,
    lt,
    max_,
    min_,
    ne,
    sum_,
)
from repro.errors import ExecutionError, TypeCheckError
from repro.execution.context import ExecutionContext
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

SCHEMA = Schema(
    (
        Column("a", DataType.INTEGER, "t"),
        Column("b", DataType.FLOAT, "t"),
        Column("s", DataType.STRING, "t"),
    )
)


def run(expression, row, ctx=None):
    return expression.compile(SCHEMA)(row, ctx)


class TestLeaves:
    def test_column_ref_bare_and_qualified(self):
        assert run(col("a"), (1, 2.0, "x")) == 1
        assert run(col("t.b"), (1, 2.0, "x")) == 2.0

    def test_literal(self):
        assert run(lit(42), (0, 0.0, "")) == 42
        assert run(lit(None), (0, 0.0, "")) is None

    def test_parameter_reads_context(self):
        ctx = ExecutionContext(scalars={"p": 7})
        assert run(Parameter("p"), (0, 0.0, ""), ctx) == 7

    def test_unbound_parameter_raises(self):
        ctx = ExecutionContext()
        with pytest.raises(ExecutionError):
            run(Parameter("p"), (0, 0.0, ""), ctx)

    def test_parameter_without_context_raises(self):
        with pytest.raises(ExecutionError):
            run(Parameter("p"), (0, 0.0, ""), None)


class TestComparison:
    def test_all_operators(self):
        row = (2, 3.0, "x")
        assert run(eq(col("a"), lit(2)), row) is True
        assert run(ne(col("a"), lit(2)), row) is False
        assert run(lt(col("a"), lit(3)), row) is True
        assert run(le(col("a"), lit(2)), row) is True
        assert run(gt(col("b"), lit(2.5)), row) is True
        assert run(ge(col("b"), lit(3.5)), row) is False

    def test_null_yields_null(self):
        assert run(eq(col("a"), lit(None)), (1, 0.0, "")) is None

    def test_flip_and_negate(self):
        assert ComparisonOp.LT.flip() is ComparisonOp.GT
        assert ComparisonOp.LE.negate() is ComparisonOp.GT
        assert ComparisonOp.EQ.flip() is ComparisonOp.EQ


class TestBooleanLogic:
    def test_and_short_circuits_on_false(self):
        row = (1, 1.0, "x")
        expr = And(eq(col("a"), lit(2)), eq(col("a"), lit(None)))
        assert run(expr, row) is False  # FALSE AND UNKNOWN = FALSE

    def test_and_unknown(self):
        row = (1, 1.0, "x")
        expr = And(eq(col("a"), lit(1)), eq(col("a"), lit(None)))
        assert run(expr, row) is None

    def test_or_true_dominates_unknown(self):
        row = (1, 1.0, "x")
        expr = Or(eq(col("a"), lit(1)), eq(col("a"), lit(None)))
        assert run(expr, row) is True

    def test_or_unknown(self):
        row = (1, 1.0, "x")
        expr = Or(eq(col("a"), lit(2)), eq(col("a"), lit(None)))
        assert run(expr, row) is None

    def test_not(self):
        row = (1, 1.0, "x")
        assert run(Not(eq(col("a"), lit(1))), row) is False
        assert run(Not(eq(col("a"), lit(None))), row) is None

    def test_nary_flattening(self):
        expr = And([eq(col("a"), lit(1)), eq(col("a"), lit(1))])
        assert len(expr.operands) == 2


class TestIsNull:
    def test_is_null(self):
        assert run(IsNull(col("a")), (None, 0.0, "")) is True
        assert run(IsNull(col("a")), (1, 0.0, "")) is False

    def test_is_not_null(self):
        assert run(IsNull(col("a"), negated=True), (None, 0.0, "")) is False


class TestArithmetic:
    def test_operations(self):
        row = (7, 2.0, "")
        assert run(Arithmetic(ArithmeticOp.ADD, col("a"), lit(1)), row) == 8
        assert run(Arithmetic(ArithmeticOp.SUB, col("a"), lit(1)), row) == 6
        assert run(Arithmetic(ArithmeticOp.MUL, col("a"), col("b")), row) == 14.0
        assert run(Arithmetic(ArithmeticOp.MOD, col("a"), lit(4)), row) == 3

    def test_integer_division_truncates_toward_zero(self):
        row = (7, 2.0, "")
        assert run(Arithmetic(ArithmeticOp.DIV, col("a"), lit(2)), row) == 3
        assert run(Arithmetic(ArithmeticOp.DIV, lit(-7), lit(2)), row) == -3

    def test_float_division(self):
        assert run(Arithmetic(ArithmeticOp.DIV, lit(7.0), lit(2)), ()) == 3.5

    def test_null_propagates(self):
        assert run(Arithmetic(ArithmeticOp.ADD, lit(None), lit(1)), ()) is None

    def test_division_by_zero_raises(self):
        with pytest.raises(ExecutionError):
            run(Arithmetic(ArithmeticOp.DIV, lit(1), lit(0)), ())

    def test_non_numeric_rejected(self):
        with pytest.raises(TypeCheckError):
            run(Arithmetic(ArithmeticOp.ADD, lit("x"), lit(1)), ())

    def test_negate(self):
        assert run(Negate(col("a")), (5, 0.0, "")) == -5
        assert run(Negate(lit(None)), ()) is None


class TestInList:
    def test_membership(self):
        row = (2, 0.0, "")
        assert run(InList(col("a"), (lit(1), lit(2))), row) is True
        assert run(InList(col("a"), (lit(3),)), row) is False

    def test_not_in(self):
        row = (2, 0.0, "")
        assert run(InList(col("a"), (lit(3),), negated=True), row) is True

    def test_null_operand(self):
        assert run(InList(lit(None), (lit(1),)), ()) is None

    def test_null_in_list_makes_miss_unknown(self):
        row = (2, 0.0, "")
        assert run(InList(col("a"), (lit(3), lit(None))), row) is None
        # ... but a hit is still TRUE
        assert run(InList(col("a"), (lit(2), lit(None))), row) is True


class TestCaseWhen:
    def test_first_match_wins(self):
        expr = CaseWhen(
            (
                (gt(col("a"), lit(10)), lit("big")),
                (gt(col("a"), lit(0)), lit("small")),
            ),
            lit("neg"),
        )
        assert run(expr, (20, 0.0, "")) == "big"
        assert run(expr, (5, 0.0, "")) == "small"
        assert run(expr, (-1, 0.0, "")) == "neg"

    def test_unknown_condition_skipped(self):
        expr = CaseWhen(((eq(col("a"), lit(None)), lit("x")),), lit("dflt"))
        assert run(expr, (1, 0.0, "")) == "dflt"


class TestFunctions:
    def test_concat_and_upper(self):
        expr = FunctionCall("concat", (col("s"), lit("!")))
        assert run(expr, (0, 0.0, "hi")) == "hi!"
        assert run(FunctionCall("upper", (col("s"),)), (0, 0.0, "hi")) == "HI"

    def test_null_propagation(self):
        assert run(FunctionCall("concat", (lit(None), lit("x"))), ()) is None

    def test_substring_is_one_based(self):
        expr = FunctionCall("substring", (lit("hello"), lit(2), lit(3)))
        assert run(expr, ()) == "ell"

    def test_coalesce(self):
        expr = FunctionCall("coalesce", (lit(None), lit(None), lit(5)))
        assert run(expr, ()) == 5

    def test_bitxor(self):
        assert run(FunctionCall("bitxor", (lit(5), lit(3))), ()) == 6

    def test_unknown_function_rejected(self):
        with pytest.raises(TypeCheckError):
            FunctionCall("frobnicate", ())


class TestStructuralUtilities:
    def test_columns_collects_references(self):
        expr = And(eq(col("a"), lit(1)), gt(col("t.b"), col("a")))
        assert expr.columns() == frozenset({"a", "t.b"})

    def test_parameters_collects(self):
        expr = eq(col("a"), Parameter("p"))
        assert expr.parameters() == frozenset({"p"})

    def test_substitute(self):
        expr = eq(col("a"), lit(1)).substitute({"a": col("z")})
        assert expr == eq(col("z"), lit(1))

    def test_equality_is_structural(self):
        assert eq(col("a"), lit(1)) == eq(col("a"), lit(1))
        assert eq(col("a"), lit(1)) != eq(col("a"), lit(2))

    def test_conjuncts_and_conjoin(self):
        expr = And(eq(col("a"), lit(1)), And(gt(col("b"), lit(0)), lt(col("b"), lit(9))))
        parts = conjuncts(expr)
        assert len(parts) == 3
        rebuilt = conjoin(parts)
        assert set(conjuncts(rebuilt)) == set(parts)

    def test_conjoin_dedupes(self):
        p = eq(col("a"), lit(1))
        assert conjoin([p, p]) == p

    def test_conjoin_empty_is_none(self):
        assert conjoin([]) is None
        assert conjoin([None, None]) is None

    def test_str_forms(self):
        assert str(eq(col("a"), lit(1))) == "(a = 1)"
        assert str(lit("it's")) == "'it''s'"


class TestAggregates:
    def test_count_star(self):
        acc = AggregateAccumulator(count_star())
        for _ in range(3):
            acc.add(None)
        assert acc.result() == 3

    def test_count_skips_nulls(self):
        acc = AggregateAccumulator(count(col("a")))
        for value in (1, None, 2):
            acc.add(value)
        assert acc.result() == 2

    def test_sum_avg(self):
        acc = AggregateAccumulator(sum_(col("a")))
        for value in (1, 2, 3, None):
            acc.add(value)
        assert acc.result() == 6
        acc = AggregateAccumulator(avg(col("a")))
        for value in (1, 2, 3, None):
            acc.add(value)
        assert acc.result() == pytest.approx(2.0)

    def test_min_max(self):
        acc_min = AggregateAccumulator(min_(col("a")))
        acc_max = AggregateAccumulator(max_(col("a")))
        for value in (5, None, 2, 9):
            acc_min.add(value)
            acc_max.add(value)
        assert acc_min.result() == 2
        assert acc_max.result() == 9

    def test_empty_results(self):
        assert AggregateAccumulator(count(col("a"))).result() == 0
        assert AggregateAccumulator(sum_(col("a"))).result() is None
        assert AggregateAccumulator(avg(col("a"))).result() is None
        assert AggregateAccumulator(min_(col("a"))).result() is None

    def test_count_distinct(self):
        acc = AggregateAccumulator(count(col("a"), distinct=True))
        for value in (1, 1, 2, None, 2):
            acc.add(value)
        assert acc.result() == 2

    def test_empty_result_constants(self):
        assert AggregateFunction.COUNT.empty_result == 0
        assert AggregateFunction.COUNT_STAR.empty_result == 0
        assert AggregateFunction.SUM.empty_result is None

    def test_count_star_distinct_invalid(self):
        with pytest.raises(TypeCheckError):
            AggregateCall(AggregateFunction.COUNT_STAR, None, distinct=True)

    def test_argument_required(self):
        with pytest.raises(TypeCheckError):
            AggregateCall(AggregateFunction.SUM, None)

    def test_output_name(self):
        assert count_star().output_name() == "count_star"
        assert avg(col("t.b"), "mean").output_name() == "mean"
        assert sum_(col("x")).output_name() == "sum_x"
