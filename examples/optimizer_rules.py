"""A guided tour of the Section-4 transformation rules.

For each rule, builds a query where the rule applies, shows the plan before
and after firing it, and measures the change in deterministic work units.

Run:  python examples/optimizer_rules.py
"""

from repro.api import Database
from repro.bench.harness import (
    bind,
    lower,
    measure_physical,
    optimize_with,
    traditional_rules,
)
from repro.optimizer.engine import apply_rule_once
from repro.optimizer.rules import rule_by_name
from repro.workloads.rule_queries import TABLE1_SWEEPS
from repro.workloads.tpch import TpchConfig, load_tpch


def demonstrate(db: Database, rule_name: str, sql: str, note: str) -> None:
    print(f"==== {rule_name} ====")
    print(f"  {note}")
    catalog = db.catalog
    normalized = optimize_with(catalog, bind(catalog, sql), traditional_rules())
    rule = rule_by_name(rule_name)
    rewritten = apply_rule_once(normalized, rule, catalog)
    if rewritten is None:
        print("  (rule does not apply)\n")
        return
    before = measure_physical(lower(catalog, normalized), repetitions=1)
    after = measure_physical(lower(catalog, rewritten), repetitions=1)
    print("  -- before --")
    print("\n".join("  " + line for line in normalized.pretty().splitlines()[:9]))
    print("  -- after --")
    print("\n".join("  " + line for line in rewritten.pretty().splitlines()[:9]))
    print(
        f"  work: {before.work} -> {after.work} "
        f"({before.work / max(after.work, 1):.2f}x), rows unchanged: "
        f"{before.rows == after.rows}\n"
    )


NOTES = {
    "selection_before_gapply": (
        "Theorem 1: the per-group query only touches cheap parts, so its "
        "covering range filters the outer query before partitioning."
    ),
    "projection_before_gapply": (
        "Only the grouping columns and the columns the per-group query "
        "references need to flow into the partition buffers."
    ),
    "gapply_to_groupby": (
        "A pure-aggregation per-group query is just a GROUP BY (Figure 4)."
    ),
    "exists_group_selection": (
        "Figure 5/6: extract qualifying group ids first, then reconstruct "
        "only those groups with a join."
    ),
    "aggregate_group_selection": (
        "Same two-phase idea with an aggregate condition: a pipelined "
        "GROUP BY finds the qualifying ids without buffering whole groups."
    ),
    "invariant_grouping": (
        "Definition 2 / Figure 7: the supplier join above the GApply is a "
        "foreign-key join on the grouping column, so the groupwise work "
        "moves below it."
    ),
}


def main() -> None:
    db = Database()
    load_tpch(db.catalog, TpchConfig(scale=0.05))
    for sweep in TABLE1_SWEEPS:
        parameter, sql = sweep.instances()[0]
        demonstrate(db, sweep.rule_name, sql, NOTES[sweep.rule_name])


if __name__ == "__main__":
    main()
