"""Groupwise processing beyond XML: the data-warehousing use case.

The paper notes (Section 1) that relation-valued variables were first
motivated by *decision support*: "querying multiple features of groups"
[Chatziantoniou & Ross]. This example shows three classic warehouse
reports that are awkward in plain SQL but direct with gapply:

1. top-price band per supplier (each group compared to its own maximum);
2. outlier detection (per-group average as the yardstick);
3. per-group share-of-total (every row against its group's sum).

Run:  python examples/warehouse_reporting.py
"""

from repro.api import Database
from repro.workloads.tpch import TpchConfig, load_tpch


def report(db: Database, title: str, sql: str, limit: int = 8) -> None:
    print(f"==== {title} ====")
    result = db.sql(sql)
    print(result.pretty(limit))
    print(f"({len(result)} rows; work units {result.counters.total_work})\n")


def main() -> None:
    db = Database()
    load_tpch(db.catalog, TpchConfig(scale=0.05))

    report(
        db,
        "price band: parts within 10% of their supplier's maximum",
        """
        select gapply(
            select p_name, p_retailprice from g
            where p_retailprice >= 0.9 * (select max(p_retailprice) from g)
        ) as (name, price)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
        """,
    )

    report(
        db,
        "outliers: parts more than 1.3x their supplier's average",
        """
        select gapply(
            select p_name, p_retailprice from g
            where p_retailprice > 1.3 * (select avg(p_retailprice) from g)
        ) as (name, price)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
        """,
    )

    report(
        db,
        "share of total: each part's fraction of its supplier's stock value",
        """
        select gapply(
            select p_name,
                   p_retailprice / (select sum(p_retailprice) from g)
            from g
            where p_retailprice >= (select max(p_retailprice) from g)
        ) as (top_part, share)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
        """,
    )

    report(
        db,
        "multi-feature summary: several group statistics at once",
        """
        select gapply(
            select count(*), min(p_retailprice), max(p_retailprice),
                   avg(p_retailprice), sum(ps_availqty)
            from g
        ) as (parts, cheapest, priciest, mean_price, stock)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
        """,
    )


if __name__ == "__main__":
    main()
