"""XML publishing end to end: the paper's motivating scenario.

Defines the Figure-1 XML view over TPC-H (suppliers with nested parts),
takes the paper's Q1 and Q2 in XQuery, translates each into

  (a) the classical *sorted outer union* SQL ("sorting and tagging"), and
  (b) the GApply formulation,

executes both against the engine, feeds each through the constant-space
tagger, and verifies the published documents agree — then compares the
work the two server-side plans did.

Run:  python examples/xml_publishing.py
"""

import re

from repro.api import Database
from repro.workloads.tpch import TpchConfig, load_tpch
from repro.xmlpub import ConstantSpaceTagger, tpch_supplier_view, translate_xquery

Q1_XQUERY = """
for $s in /doc(tpch.xml)/suppliers/supplier
return <ret>
    $s/s_suppkey,
    <parts>
        for $p in $s/part
        return <part> $p/p_name, $p/p_retailprice </part>
    </parts>,
    avg($s/part/p_retailprice)
</ret>
"""

Q2_XQUERY = """
for $s in /doc(tpch.xml)/suppliers/supplier
return <ret>
    $s/s_suppkey,
    <count_above>
        count($s/part[p_retailprice >= avg($s/part/p_retailprice)])
    </count_above>,
    <count_below>
        count($s/part[p_retailprice < avg($s/part/p_retailprice)])
    </count_below>
</ret>
"""

GROUP_SELECTION_XQUERY = """
for $s in /doc(tpch.xml)/suppliers/supplier
where some $p in $s/part satisfies $p/p_retailprice > 2000
return $s
"""


def publish(db: Database, xquery: str, label: str) -> None:
    view = tpch_supplier_view()
    translated = translate_xquery(xquery, view, db.catalog)

    print(f"==== {label} ====")
    print("-- gapply SQL --")
    print(" ", re.sub(r"\s+", " ", translated.gapply_sql).strip()[:200], "...")
    print("-- sorted outer union SQL --")
    print(" ", re.sub(r"\s+", " ", translated.outer_union_sql).strip()[:200], "...")

    union_result = db.sql(translated.outer_union_sql)
    gapply_result = db.sql(translated.gapply_sql)

    tagger = ConstantSpaceTagger(translated.spec)
    union_xml = tagger.tag_to_string(union_result.rows)
    gapply_xml = tagger.tag_to_string(gapply_result.rows)

    tag = translated.spec.group_tag
    fragments = sorted(re.findall(rf"<{tag}>.*?</{tag}>", union_xml))
    same = fragments == sorted(re.findall(rf"<{tag}>.*?</{tag}>", gapply_xml))
    print(f"documents equivalent: {same}   ({len(fragments)} <{tag}> elements)")
    print(
        f"work units: outer-union={union_result.counters.total_work}  "
        f"gapply={gapply_result.counters.total_work}"
    )
    print("document head:")
    pretty = ConstantSpaceTagger(translated.spec, indent=True).tag_to_string(
        gapply_result.rows
    )
    print("\n".join("  " + line for line in pretty.splitlines()[:12]))
    print()


def main() -> None:
    db = Database()
    load_tpch(db.catalog, TpchConfig(scale=0.05))
    print(
        f"TPC-H loaded: {len(db.table('part'))} parts, "
        f"{len(db.table('supplier'))} suppliers, "
        f"{len(db.table('partsupp'))} partsupp rows\n"
    )
    publish(db, Q1_XQUERY, "Q1: parts and the per-supplier average")
    publish(db, Q2_XQUERY, "Q2: counts above and below the average")
    publish(db, GROUP_SELECTION_XQUERY, "group selection: suppliers of an expensive part")


if __name__ == "__main__":
    main()
