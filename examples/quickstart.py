"""Quickstart: the GApply operator in five minutes.

Builds a small database, runs ordinary SQL, then runs the paper's
``gapply`` extension — a per-group query bound to a relation-valued
variable — and shows what the optimizer does with it.

Run:  python examples/quickstart.py
"""

from repro.api import Database
from repro.storage import DataType


def main() -> None:
    db = Database()

    # ------------------------------------------------------------------
    # 1. Create tables (a part-supplier toy schema).
    # ------------------------------------------------------------------
    db.create_table(
        "part",
        [
            ("p_partkey", DataType.INTEGER),
            ("p_name", DataType.STRING),
            ("p_retailprice", DataType.FLOAT),
        ],
        [(i, f"part-{i}", float(i * 10)) for i in range(1, 13)],
        primary_key=["p_partkey"],
    )
    db.create_table(
        "partsupp",
        [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
        [(100 + (i % 3), i) for i in range(1, 13)],
    )
    db.add_foreign_key("partsupp", ["ps_partkey"], "part", ["p_partkey"])

    # ------------------------------------------------------------------
    # 2. Ordinary SQL works as expected.
    # ------------------------------------------------------------------
    print("== plain SQL ==")
    result = db.sql(
        "select ps_suppkey, count(*) as parts, avg(p_retailprice) as avg_price "
        "from partsupp, part where ps_partkey = p_partkey "
        "group by ps_suppkey order by ps_suppkey"
    )
    print(result.pretty())

    # ------------------------------------------------------------------
    # 3. The paper's extension: a per-group query over a relation-valued
    #    variable. GROUP BY declares the variable after ':'; the gapply()
    #    select item runs a full query against each group.
    #
    #    Here: for each supplier, every part priced above that supplier's
    #    own average. A plain GROUP BY cannot express this in one pass.
    # ------------------------------------------------------------------
    print("\n== gapply: parts above each supplier's own average ==")
    result = db.sql(
        """
        select gapply(
            select p_name, p_retailprice from g
            where p_retailprice > (select avg(p_retailprice) from g)
        ) as (name, price)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
        """
    )
    print(result.pretty())

    # ------------------------------------------------------------------
    # 4. Look at the plan: the engine partitions the join result once and
    #    runs the per-group query per group; the optimizer has pruned the
    #    outer query to the columns the group actually needs.
    # ------------------------------------------------------------------
    print("\n== optimized plan ==")
    print(
        db.explain(
            """
            select gapply(
                select p_name, p_retailprice from g
                where p_retailprice > (select avg(p_retailprice) from g)
            ) as (name, price)
            from partsupp, part
            where ps_partkey = p_partkey
            group by ps_suppkey : g
            """
        )
    )

    # ------------------------------------------------------------------
    # 5. Execution statistics come back with every result.
    # ------------------------------------------------------------------
    print("\n== counters ==")
    for name, value in result.counters.snapshot().items():
        print(f"  {name:<22} {value}")


if __name__ == "__main__":
    main()
