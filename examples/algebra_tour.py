"""Library-level tour: building and running plans without SQL.

Everything the SQL front end does is available programmatically — this is
the level at which an XQuery translator (the paper's intended client)
would drive the engine. The tour builds Figure 2's Q1 plan by hand,
optimizes it, executes it under both partition strategies, and inspects
the optimizer's property analyses directly.

Run:  python examples/algebra_tour.py
"""

from repro.algebra import (
    GApply,
    GroupBy,
    GroupScan,
    Join,
    Project,
    Select,
    TableScan,
    UnionAll,
    avg,
    col,
    eq,
    gt,
    lit,
)
from repro.execution import ExecutionContext, run_plan
from repro.optimizer import Optimizer, Planner, PlannerOptions
from repro.optimizer.properties import (
    covering_range,
    empty_on_empty,
    gp_eval_columns,
    referenced_columns,
)
from repro.storage import Catalog
from repro.workloads.tpch import TpchConfig, load_tpch


def build_q1(catalog: Catalog) -> GApply:
    """Figure 2 (left): Q1 as a logical plan."""
    outer = Join(
        TableScan.of(catalog.table("partsupp")),
        TableScan.of(catalog.table("part")),
        eq(col("ps_partkey"), col("p_partkey")),
    )
    group = outer.schema
    per_group = UnionAll(
        (
            Project(
                GroupScan("g", group),
                (
                    (col("p_name"), "name"),
                    (col("p_retailprice"), "price"),
                    (lit(None), "avgprice"),
                ),
            ),
            Project(
                GroupBy(
                    GroupScan("g", group), (), (avg(col("p_retailprice"), "m"),)
                ),
                ((lit(None), "name"), (lit(None), "price"), (col("m"), "avgprice")),
            ),
        )
    )
    return GApply(outer, ("ps_suppkey",), per_group, "g")


def main() -> None:
    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=0.02))

    plan = build_q1(catalog)
    print("== logical plan (Figure 2, left) ==")
    print(plan.pretty())

    # ------------------------------------------------------------------
    # Property analyses from Section 4, directly.
    # ------------------------------------------------------------------
    print("\n== per-group query analyses ==")
    print("emptyOnEmpty:      ", empty_on_empty(plan.per_group))
    print("covering range:    ", covering_range(plan.per_group))
    print("gp-eval columns:   ", sorted(gp_eval_columns(plan.per_group)))
    print("referenced columns:", sorted(referenced_columns(plan.per_group)))

    # A filtered variant to show a non-trivial covering range:
    filtered_pgq = Project(
        Select(GroupScan("g", plan.outer.schema), gt(col("p_retailprice"), lit(1500.0))),
        ((col("p_name"), "name"),),
    )
    print(
        "covering range of a filtered per-group query:",
        covering_range(filtered_pgq),
    )

    # ------------------------------------------------------------------
    # Optimize and execute.
    # ------------------------------------------------------------------
    report = Optimizer(catalog).optimize(plan)
    print("\n== optimization ==")
    print("explored plans:", report.explored)
    print("fired rules:   ", ", ".join(report.fired) or "(none)")
    print(
        f"estimated cost: {report.original_estimate.cost:.0f} -> "
        f"{report.best_estimate.cost:.0f}"
    )

    for partitioning in ("hash", "sort"):
        physical = Planner(
            catalog, PlannerOptions(gapply_partitioning=partitioning)
        ).plan(report.best)
        ctx = ExecutionContext()
        rows = run_plan(physical, ctx)
        print(
            f"\n== execution ({partitioning} partitioning) == "
            f"{len(rows)} rows, {ctx.counters.total_work} work units, "
            f"{ctx.counters.groups_partitioned} groups"
        )
        for row in rows[:4]:
            print("  ", row)


if __name__ == "__main__":
    main()
