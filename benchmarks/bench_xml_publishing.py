"""End-to-end XML publishing: translate + execute + tag, both formulations.

Measures the full pipeline the paper's architecture diagram implies:
XQuery -> SQL -> server execution -> constant-space tagging, comparing
"sorting and tagging" against the GApply path for the paper's Q1 and Q2.

Script mode adds a **streaming** section: the same queries through
``Database.publish`` (lazy rows -> bounded chunk buffer -> encoded
chunks), reporting docs/sec plus memory metrics (traced allocation peak
and process peak RSS) in each measurement's ``metrics`` dict, and a
``stream-mem`` pair publishing a generated Figure-8-style document at 1x
and 10x rows under a fixed cell budget — the JSON artifact CI uploads
shows at a glance whether streaming stayed constant-memory.
"""

import time

import pytest

from repro.api import Database
from repro.xmlpub import ConstantSpaceTagger, tpch_supplier_view, translate_xquery

Q1 = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "<parts> for $p in $s/part return <part> $p/p_name, $p/p_retailprice "
    "</part> </parts>, avg($s/part/p_retailprice) </ret>"
)
Q2 = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "<count_above> count($s/part[p_retailprice >= avg($s/part/p_retailprice)]) "
    "</count_above>, <count_below> count($s/part[p_retailprice < "
    "avg($s/part/p_retailprice)]) </count_below> </ret>"
)

XQUERIES = {"Q1": Q1, "Q2": Q2}


@pytest.fixture(scope="module")
def pipelines(bench_catalog):
    """(plan, tagger) pairs per query per formulation, prepared untimed."""
    from repro.bench.harness import bind, lower, optimize_with

    db = Database(bench_catalog)
    view = tpch_supplier_view()
    prepared = {}
    for name, xquery in XQUERIES.items():
        translated = translate_xquery(xquery, view, db.catalog)
        for label, sql in (
            ("union", translated.outer_union_sql),
            ("gapply", translated.gapply_sql),
        ):
            logical = optimize_with(db.catalog, bind(db.catalog, sql))
            prepared[(name, label)] = (
                lower(db.catalog, logical),
                ConstantSpaceTagger(translated.spec),
            )
    return prepared


def publish(plan, tagger) -> int:
    from repro.execution.base import run_plan
    from repro.execution.context import ExecutionContext

    rows = run_plan(plan, ExecutionContext())
    return sum(len(chunk) for chunk in tagger.tag(rows))


@pytest.mark.parametrize("name", list(XQUERIES))
def test_publish_sorting_and_tagging(benchmark, pipelines, name):
    plan, tagger = pipelines[(name, "union")]
    size = benchmark(publish, plan, tagger)
    assert size > 0


@pytest.mark.parametrize("name", list(XQUERIES))
def test_publish_gapply(benchmark, pipelines, name):
    plan, tagger = pipelines[(name, "gapply")]
    size = benchmark(publish, plan, tagger)
    assert size > 0


def _measure_stream(fn, repetitions: int):
    """Best-of-N for a streaming publish; memory metrics from the best run.

    ``metrics`` carries ``docs_per_sec`` (1/elapsed for the single
    document), ``doc_bytes``, ``traced_peak_bytes`` (tracemalloc high
    water across the run) and ``peak_rss_kb`` (process lifetime high
    water — monotone, so only comparable within one artifact).
    """
    import resource
    import tracemalloc

    from repro.bench.harness import Measurement

    best = float("inf")
    doc_bytes = traced_peak = 0
    for _ in range(repetitions):
        tracemalloc.start()
        started = time.perf_counter()
        size = fn()
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if elapsed < best:
            best, doc_bytes, traced_peak = elapsed, size, peak
    return Measurement(
        elapsed=best,
        work=0,
        rows=doc_bytes,
        metrics={
            "docs_per_sec": (1.0 / best) if best > 0 else 0.0,
            "doc_bytes": doc_bytes,
            "traced_peak_bytes": traced_peak,
            "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        },
    )


def _fig8_stream_db(n_rows: int, n_groups: int = 250):
    """A generated Figure-8-style parent/child database for stream-mem."""
    from repro.storage.types import DataType
    from repro.xmlpub.view import (
        XmlChildEdge,
        XmlField,
        XmlView,
        XmlViewNode,
    )

    db = Database()
    db.create_table(
        "grp",
        [("g_key", DataType.INTEGER), ("g_name", DataType.STRING)],
        [(g, f"group{g}") for g in range(n_groups)],
        primary_key=["g_key"],
    )
    db.create_table(
        "item",
        [
            ("i_id", DataType.INTEGER),
            ("i_gkey", DataType.INTEGER),
            ("i_name", DataType.STRING),
            ("i_price", DataType.FLOAT),
        ],
        [
            (i, i % n_groups, f"item-{i}", (i % 400) * 0.25)
            for i in range(n_rows)
        ],
        primary_key=["i_id"],
    )
    db.catalog.statistics("grp")
    db.catalog.statistics("item")
    view = XmlView(
        root_tag="groups",
        node=XmlViewNode(
            tag="grp",
            query="select g_key, g_name from grp",
            key=("g_key",),
            fields=(XmlField("g_key"), XmlField("g_name")),
            children=(
                XmlChildEdge(
                    node=XmlViewNode(
                        tag="item",
                        query="select i_gkey, i_id, i_name, i_price from item",
                        key=("i_id",),
                        fields=(XmlField("i_name"), XmlField("i_price")),
                    ),
                    parent_columns=("g_key",),
                    child_columns=("i_gkey",),
                ),
            ),
        ),
    )
    query = (
        "for $g in /doc(d)/groups/grp return <ret> $g/g_key, "
        "<items> for $i in $g/item return <item> $i/i_name, $i/i_price "
        "</item> </items>, avg($g/item/i_price) </ret>"
    )
    return db, view, query


def _script_cases(scale: float, repetitions: int):
    from smokebench import measure_callable
    from repro.bench.harness import bind, lower, optimize_with
    from repro.optimizer.planner import PlannerOptions
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch
    from repro.xmlpub import FORMULATIONS

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    view = tpch_supplier_view()
    named = []
    for name, xquery in XQUERIES.items():
        translated = translate_xquery(xquery, view, catalog)
        for label, sql in (
            ("union", translated.outer_union_sql),
            ("gapply", translated.gapply_sql),
        ):
            logical = optimize_with(catalog, bind(catalog, sql))
            plan = lower(catalog, logical)
            tagger = ConstantSpaceTagger(translated.spec)
            named.append(
                (
                    f"{name}/{label}",
                    measure_callable(
                        lambda plan=plan, tagger=tagger: publish(plan, tagger),
                        repetitions,
                    ),
                )
            )
    # Streaming section: the full Database.publish pipeline (lazy rows,
    # bounded chunk buffer), docs/sec + memory metrics per measurement.
    stream_db = Database(catalog)
    for name, xquery in XQUERIES.items():
        for label in FORMULATIONS:

            def run(db=stream_db, q=xquery, formulation=label) -> int:
                return sum(len(c) for c in db.publish(view, q, formulation))

            named.append((f"{name}/{label}/stream", _measure_stream(run, repetitions)))
    # Constant-memory check: one generated document at 1x and 10x rows,
    # same cell budget; flat traced_peak_bytes across the pair is the
    # streaming claim (asserted in tests/xmlpub/test_stream_memory.py;
    # reported here so the CI artifact records the trend over time).
    base_rows = max(1_000, int(500_000 * scale) // 10)
    for label, n_rows in (("1x", base_rows), ("10x", base_rows * 10)):
        db, fig8_view, fig8_query = _fig8_stream_db(n_rows)

        def run_mem(db=db, v=fig8_view, q=fig8_query) -> int:
            return sum(
                len(c)
                for c in db.publish(
                    v,
                    q,
                    "gapply",
                    memory_budget=20_000,
                    timeout=300,
                    planner_options=PlannerOptions(gapply_partitioning="sort"),
                )
            )

        named.append((f"stream-mem/{label}", _measure_stream(run_mem, 1)))
    return named


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("xml_publishing", _script_cases)
