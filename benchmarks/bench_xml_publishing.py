"""End-to-end XML publishing: translate + execute + tag, both formulations.

Measures the full pipeline the paper's architecture diagram implies:
XQuery -> SQL -> server execution -> constant-space tagging, comparing
"sorting and tagging" against the GApply path for the paper's Q1 and Q2.
"""

import pytest

from repro.api import Database
from repro.xmlpub import ConstantSpaceTagger, tpch_supplier_view, translate_xquery

Q1 = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "<parts> for $p in $s/part return <part> $p/p_name, $p/p_retailprice "
    "</part> </parts>, avg($s/part/p_retailprice) </ret>"
)
Q2 = (
    "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> $s/s_suppkey, "
    "<count_above> count($s/part[p_retailprice >= avg($s/part/p_retailprice)]) "
    "</count_above>, <count_below> count($s/part[p_retailprice < "
    "avg($s/part/p_retailprice)]) </count_below> </ret>"
)

XQUERIES = {"Q1": Q1, "Q2": Q2}


@pytest.fixture(scope="module")
def pipelines(bench_catalog):
    """(plan, tagger) pairs per query per formulation, prepared untimed."""
    from repro.bench.harness import bind, lower, optimize_with

    db = Database(bench_catalog)
    view = tpch_supplier_view()
    prepared = {}
    for name, xquery in XQUERIES.items():
        translated = translate_xquery(xquery, view, db.catalog)
        for label, sql in (
            ("union", translated.outer_union_sql),
            ("gapply", translated.gapply_sql),
        ):
            logical = optimize_with(db.catalog, bind(db.catalog, sql))
            prepared[(name, label)] = (
                lower(db.catalog, logical),
                ConstantSpaceTagger(translated.spec),
            )
    return prepared


def publish(plan, tagger) -> int:
    from repro.execution.base import run_plan
    from repro.execution.context import ExecutionContext

    rows = run_plan(plan, ExecutionContext())
    return sum(len(chunk) for chunk in tagger.tag(rows))


@pytest.mark.parametrize("name", list(XQUERIES))
def test_publish_sorting_and_tagging(benchmark, pipelines, name):
    plan, tagger = pipelines[(name, "union")]
    size = benchmark(publish, plan, tagger)
    assert size > 0


@pytest.mark.parametrize("name", list(XQUERIES))
def test_publish_gapply(benchmark, pipelines, name):
    plan, tagger = pipelines[(name, "gapply")]
    size = benchmark(publish, plan, tagger)
    assert size > 0


def _script_cases(scale: float, repetitions: int):
    from smokebench import measure_callable
    from repro.bench.harness import bind, lower, optimize_with
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    view = tpch_supplier_view()
    named = []
    for name, xquery in XQUERIES.items():
        translated = translate_xquery(xquery, view, catalog)
        for label, sql in (
            ("union", translated.outer_union_sql),
            ("gapply", translated.gapply_sql),
        ):
            logical = optimize_with(catalog, bind(catalog, sql))
            plan = lower(catalog, logical)
            tagger = ConstantSpaceTagger(translated.spec)
            named.append(
                (
                    f"{name}/{label}",
                    measure_callable(
                        lambda plan=plan, tagger=tagger: publish(plan, tagger),
                        repetitions,
                    ),
                )
            )
    return named


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("xml_publishing", _script_cases)
