"""Script-mode CLI shared by every ``benchmarks/bench_*.py``.

Each benchmark file is primarily a pytest-benchmark suite. Run directly
(``python benchmarks/bench_X.py``) it instead exposes a **smoke mode**::

    python benchmarks/bench_fig8_speedup.py --smoke --out fig8.json

``--smoke`` runs the same measured code paths at a tiny TPC-H scale with a
single repetition — fast enough for per-PR CI — and ``--out`` writes the
harness JSON measurement document (:func:`repro.bench.harness.
write_measurements_json`), which the CI benchmark-smoke job uploads as an
artifact so perf regressions are visible per PR. Without ``--smoke`` the
script runs at the regular benchmark scale (slower, better numbers).

The contract enforced by ``tests/test_bench_smoke.py``: every benchmark
script accepts ``--smoke``/``--out``, exits 0 within the smoke budget, and
emits at least one measurement record.
"""

from __future__ import annotations

import argparse
import time
from typing import Callable, Sequence

from repro.bench.harness import Measurement, write_measurements_json

SMOKE_SCALE = 0.02
FULL_SCALE = 0.1
SMOKE_REPETITIONS = 1
FULL_REPETITIONS = 3

#: name -> Measurement pairs, as produced by each script's case builder.
NamedMeasurements = Sequence[tuple[str, Measurement]]


def bench_main(
    benchmark_name: str,
    build_cases: Callable[[float, int], NamedMeasurements],
    argv: list[str] | None = None,
) -> NamedMeasurements:
    """Parse the shared CLI, run ``build_cases(scale, repetitions)``,
    print a table, and optionally write the JSON document."""
    parser = argparse.ArgumentParser(
        prog=f"python benchmarks/bench_{benchmark_name}.py",
        description=f"Script mode for the {benchmark_name} benchmark suite "
        "(pytest runs the full pytest-benchmark version).",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"smoke mode: scale {SMOKE_SCALE}, {SMOKE_REPETITIONS} repetition "
        "(the per-PR CI configuration)",
    )
    parser.add_argument(
        "--scale", type=float, default=None, help="override the TPC-H scale"
    )
    parser.add_argument(
        "--repetitions", type=int, default=None, help="best-of-N repetitions"
    )
    parser.add_argument(
        "--out", default=None, help="write the measurement JSON document here"
    )
    args = parser.parse_args(argv)
    scale = args.scale if args.scale is not None else (
        SMOKE_SCALE if args.smoke else FULL_SCALE
    )
    repetitions = args.repetitions if args.repetitions is not None else (
        SMOKE_REPETITIONS if args.smoke else FULL_REPETITIONS
    )

    started = time.perf_counter()
    named = list(build_cases(scale, repetitions))
    total = time.perf_counter() - started

    width = max((len(name) for name, _ in named), default=4)
    mode = "smoke" if args.smoke else "full"
    print(f"{benchmark_name} [{mode}] scale={scale} repetitions={repetitions}")
    print(
        f"{'case':<{width}} {'elapsed':>10} {'work':>10} {'rows':>7}  "
        "backend    engine"
    )
    for name, m in named:
        print(
            f"{name:<{width}} {m.elapsed * 1e3:>8.2f}ms {m.work:>10} "
            f"{m.rows:>7}  {m.backend}x{m.parallelism:<7} {m.engine}"
        )
    print(f"total wall time: {total:.2f}s")

    if args.out:
        write_measurements_json(
            args.out,
            named,
            benchmark=benchmark_name,
            scale=scale,
            repetitions=repetitions,
            smoke=args.smoke,
            total_seconds=total,
        )
        print(f"wrote {args.out}")
    return named


def measure_callable(
    fn: Callable[[], int], repetitions: int, **fields: object
) -> Measurement:
    """Best-of-N timing for a whole-pipeline callable returning a size.

    For pipelines that do more than execute one physical plan (e.g. the
    XML publishing path: execute + tag); ``work`` is 0 unless passed in
    via ``fields``.
    """
    best = float("inf")
    size = 0
    for _ in range(repetitions):
        start = time.perf_counter()
        size = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    defaults: dict = {"work": 0, "rows": size}
    defaults.update(fields)
    return Measurement(elapsed=best, **defaults)
