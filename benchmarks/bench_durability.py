"""Durability costs: WAL commit latency and crash-recovery time.

The write-ahead log (``repro.storage.wal``) journals every catalog
mutation before applying it, so durable commit latency is dominated by
the fsync policy: ``always`` pays one ``fsync(2)`` per mutation,
``batch`` amortizes one fsync over every N appends, ``never`` leaves
durability to the OS page cache (commit = one unbuffered ``write(2)``).
This suite measures that ladder, plus the other number a durable store
owes its operators: how long ``Database.open`` takes to recover — as a
function of log length, and after a checkpoint truncates the log down
to one snapshot plus a short tail.

Expectations worth stating up front: ``always`` should be an order of
magnitude (or more, on real disks) slower per commit than ``never``;
recovery should scale linearly with replayed records; the checkpointed
reopen should beat full replay of the same history. The group-commit
cases measure the multi-writer story: with ``fsync="group"`` aggregate
commit throughput should *rise* with writer count (more commits share
each fsync), where ``always`` stays flat or degrades.

Run:  pytest benchmarks/bench_durability.py --benchmark-only
"""

import shutil
import tempfile
import threading

import pytest

from repro.api import Database
from repro.storage.types import DataType
from repro.storage.wal import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_GROUP,
    FSYNC_NEVER,
)

COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]
POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_NEVER)

#: Writer-count ladder for the group-commit throughput cases.
WRITER_COUNTS = (1, 4, 16)
#: Policies worth comparing under concurrency: the per-commit-fsync
#: baseline vs. the batching policy built for this shape.
CONCURRENT_POLICIES = (FSYNC_ALWAYS, FSYNC_GROUP)

#: Single-row commits per measured run in the pytest suite.
BENCH_COMMITS = 100


def _commit_rows(directory: str, fsync: str, count: int) -> int:
    """Open a durable store and commit ``count`` single-row inserts."""
    db = Database.open(directory, fsync=fsync)
    db.create_table("t", COLUMNS, [])
    for i in range(count):
        db.catalog.insert_rows("t", [(i, f"v{i}")])
    db.close()
    return count


def _reopen(directory: str) -> int:
    db = Database.open(directory)
    rows = len(db.catalog.table("t").rows)
    db.close()
    return rows


def _concurrent_commits(
    directory: str, fsync: str, writers: int, per_writer: int
) -> int:
    """``writers`` threads each durably commit ``per_writer`` rows
    through the shared service; returns the total commit count."""
    from repro.serve import Service, ServiceConfig

    # Zero coalescing delay: batches form only from genuine overlap
    # (followers arriving while the leader's fsync is in flight), so the
    # ladder measures batching itself, not the latency cap.
    service = Service(
        config=ServiceConfig(
            durable=True,
            data_dir=directory,
            fsync=fsync,
            group_commit_delay=0.0,
            checkpoint_on_shutdown=False,
        )
    )
    service.create_table("t", COLUMNS, [])

    def writer(worker: int) -> None:
        for i in range(per_writer):
            service.insert("t", [(worker * 1_000_000 + i, "x")])

    threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(writers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    service.shutdown()
    return writers * per_writer


@pytest.mark.parametrize("fsync", POLICIES)
def test_commit_latency(benchmark, fsync):
    def run():
        directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
        try:
            return _commit_rows(directory, fsync, BENCH_COMMITS)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    assert benchmark(run) == BENCH_COMMITS


def test_recovery_replay(benchmark):
    directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
    try:
        _commit_rows(directory, FSYNC_NEVER, BENCH_COMMITS)
        # Recovery replays the same (untouched) log on every repetition.
        assert benchmark(_reopen, directory) == BENCH_COMMITS
    finally:
        shutil.rmtree(directory, ignore_errors=True)


@pytest.mark.parametrize("fsync", CONCURRENT_POLICIES)
@pytest.mark.parametrize("writers", WRITER_COUNTS)
def test_concurrent_commit_throughput(benchmark, fsync, writers):
    per_writer = max(1, BENCH_COMMITS // writers)

    def run():
        directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
        try:
            return _concurrent_commits(directory, fsync, writers, per_writer)
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    assert benchmark(run) == writers * per_writer


def test_recovery_from_checkpoint(benchmark):
    directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
    try:
        db = Database.open(directory, fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [])
        for i in range(BENCH_COMMITS):
            db.catalog.insert_rows("t", [(i, f"v{i}")])
        db.checkpoint()
        db.close()
        assert benchmark(_reopen, directory) == BENCH_COMMITS
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _script_cases(scale: float, repetitions: int):
    from smokebench import measure_callable

    # Scale the commit count with the shared TPC-H scale knob so smoke
    # mode stays inside the CI budget (scale 0.02 -> 100 commits).
    ops = max(100, int(scale * 5000))
    cases = []

    for fsync in POLICIES:
        def run(fsync=fsync):
            directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
            try:
                return _commit_rows(directory, fsync, ops)
            finally:
                shutil.rmtree(directory, ignore_errors=True)

        cases.append(
            (f"commit-fsync-{fsync}", measure_callable(run, repetitions, work=ops))
        )

    for factor, label in ((1, "short"), (4, "long")):
        directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
        try:
            _commit_rows(directory, FSYNC_NEVER, ops * factor)
            cases.append(
                (
                    f"recover-log-{label}",
                    measure_callable(
                        lambda d=directory: _reopen(d),
                        repetitions,
                        work=ops * factor,
                    ),
                )
            )
        finally:
            shutil.rmtree(directory, ignore_errors=True)

    directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
    try:
        db = Database.open(directory, fsync=FSYNC_NEVER)
        db.create_table("t", COLUMNS, [])
        for i in range(ops * 4):
            db.catalog.insert_rows("t", [(i, f"v{i}")])
        db.checkpoint()
        db.close()
        cases.append(
            (
                "recover-checkpointed",
                measure_callable(
                    lambda d=directory: _reopen(d), repetitions, work=ops * 4
                ),
            )
        )
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    # Group-commit throughput ladder: total commits held constant so
    # the numbers compare across writer counts; the group policy should
    # pull ahead as writers (and thus batching opportunities) grow.
    group_total = max(64, int(scale * 3200))
    for fsync in CONCURRENT_POLICIES:
        for writers in WRITER_COUNTS:
            per_writer = max(1, group_total // writers)

            def run(fsync=fsync, writers=writers, per_writer=per_writer):
                directory = tempfile.mkdtemp(prefix="repro-bench-wal-")
                try:
                    return _concurrent_commits(
                        directory, fsync, writers, per_writer
                    )
                finally:
                    shutil.rmtree(directory, ignore_errors=True)

            cases.append(
                (
                    f"group-commit-{fsync}-w{writers}",
                    measure_callable(
                        run, repetitions, work=writers * per_writer
                    ),
                )
            )

    return cases


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("durability", _script_cases)
