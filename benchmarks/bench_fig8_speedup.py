"""Figure 8: Q1-Q4 with and without GApply.

Each paper query is benchmarked in both formulations; the ratio of the
``baseline`` group's time to the ``gapply`` group's time for the same query
is the bar height in the paper's Figure 8. The paper reports ratios up to
~2x (SQL Server 2000, 5 GB TPC-H); see EXPERIMENTS.md for our measured
ratios and the substitution notes.

Run:  pytest benchmarks/bench_fig8_speedup.py --benchmark-only
      python -m repro.bench.fig8            # the summary table
      python benchmarks/bench_fig8_speedup.py --smoke --out fig8.json
"""

import pytest

from conftest import execute
from repro.workloads.queries import PAPER_QUERIES

QUERIES = {query.name: query for query in PAPER_QUERIES}


@pytest.mark.parametrize("name", list(QUERIES), ids=list(QUERIES))
def test_fig8_baseline(benchmark, prepared, name):
    """The classical sorted-outer-union / derived-table formulation."""
    plan = prepared(QUERIES[name].baseline_sql)
    rows = benchmark(execute, plan)
    assert rows > 0


@pytest.mark.parametrize("name", list(QUERIES), ids=list(QUERIES))
def test_fig8_gapply(benchmark, prepared, name):
    """The Section-3.1 gapply formulation."""
    plan = prepared(QUERIES[name].gapply_sql)
    rows = benchmark(execute, plan)
    assert rows > 0


@pytest.mark.parametrize(
    "name",
    [query.name for query in PAPER_QUERIES if query.naive_sql is not None],
)
def test_fig8_naive(benchmark, prepared, name):
    """The paper's 'semantically equivalent but different' formulations it
    reports as orders of magnitude slower (correlated per-row subqueries)."""
    plan = prepared(QUERIES[name].naive_sql)
    rows = benchmark(execute, plan)
    assert rows > 0


def _script_cases(scale: float, repetitions: int):
    """Every Figure-8 case, measured under both execution engines over the
    same loaded catalog (names are ``engine/query/formulation``). The CI
    bench gate reads the resulting JSON and checks vector-over-Volcano
    speedups against ``benchmarks/baselines.json``."""
    from repro.bench.fig8 import run_figure8
    from repro.optimizer.planner import ENGINES
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    named = []
    for engine in ENGINES:
        rows = run_figure8(
            scale=scale, repetitions=repetitions, engine=engine,
            catalog=catalog,
        )
        for row in rows:
            named.append((f"{engine}/{row.query}/baseline", row.baseline))
            named.append((f"{engine}/{row.query}/gapply_hash", row.gapply_hash))
            named.append((f"{engine}/{row.query}/gapply_sort", row.gapply_sort))
    return named


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("fig8_speedup", _script_cases)
