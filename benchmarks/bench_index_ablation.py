"""Ablation: what secondary indexes buy the transformation rules.

The paper's server had indexes; the huge Table-1 benefits (selection's
732x) come from selective predicates turning into cheap index seeks after
a rule fires. This ablation measures the selection-before-GApply rewrite
with the planner's index support on and off: the *rule* fires either way,
but without indexes its benefit is capped by full-scan costs.
"""

import pytest

from conftest import execute
from repro.bench.harness import (
    bind,
    lower,
    optimize_with,
    rules_without,
    traditional_rules,
)
from repro.optimizer.engine import apply_rule_once
from repro.optimizer.planner import PlannerOptions
from repro.optimizer.rules import rule_by_name
from repro.workloads.rule_queries import SELECTION_SWEEP


@pytest.fixture(scope="module")
def selection_plans(bench_catalog):
    parameter, sql = SELECTION_SWEEP.instances()[1]  # the 905.0 threshold
    normalized = optimize_with(
        bench_catalog, bind(bench_catalog, sql), traditional_rules()
    )
    rule = rule_by_name("selection_before_gapply")
    forced = apply_rule_once(normalized, rule, bench_catalog)
    assert forced is not None
    treated = optimize_with(
        bench_catalog, forced, rules_without("selection_before_gapply")
    )
    return normalized, treated


def test_rule_with_indexes(benchmark, bench_catalog, selection_plans):
    _, treated = selection_plans
    plan = lower(bench_catalog, treated, PlannerOptions(use_indexes=True))
    benchmark(execute, plan)


def test_rule_without_indexes(benchmark, bench_catalog, selection_plans):
    _, treated = selection_plans
    plan = lower(bench_catalog, treated, PlannerOptions(use_indexes=False))
    benchmark(execute, plan)


def test_no_rule_with_indexes(benchmark, bench_catalog, selection_plans):
    normalized, _ = selection_plans
    plan = lower(bench_catalog, normalized, PlannerOptions(use_indexes=True))
    benchmark(execute, plan)


def test_no_rule_without_indexes(benchmark, bench_catalog, selection_plans):
    normalized, _ = selection_plans
    plan = lower(bench_catalog, normalized, PlannerOptions(use_indexes=False))
    benchmark(execute, plan)


def _script_cases(scale: float, repetitions: int):
    from repro.bench.harness import measure_physical
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    parameter, sql = SELECTION_SWEEP.instances()[1]
    normalized = optimize_with(catalog, bind(catalog, sql), traditional_rules())
    rule = rule_by_name("selection_before_gapply")
    forced = apply_rule_once(normalized, rule, catalog)
    assert forced is not None, "selection rule must fire on its own sweep"
    treated = optimize_with(
        catalog, forced, rules_without("selection_before_gapply")
    )
    named = []
    for label, logical in (("rule", treated), ("no_rule", normalized)):
        for index_label, use_indexes in (("indexes", True), ("no_indexes", False)):
            plan = lower(catalog, logical, PlannerOptions(use_indexes=use_indexes))
            named.append(
                (f"{label}/{index_label}", measure_physical(plan, repetitions))
            )
    return named


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("index_ablation", _script_cases)
