"""Spill-to-disk GApply partitioning: in-memory vs forced-spill cost.

The partition phase buffers the whole GApply input; under a cell budget it
spills resident groups to an offset-addressed run file and reads them back
at execution time (``repro.storage.spill``). This suite measures that
price on Q4 — the paper's natively-GApply-planned query — comparing the
unbounded in-memory plan against plans forced to spill via
``PlannerOptions.gapply_spill_threshold``, under both partitioning
strategies. Every spilled configuration must return exactly the in-memory
row count; full byte-level equivalence across all ten paper formulations
is covered by ``tests/execution/test_spill.py``.

Expectation worth stating up front: spilling trades memory for pickling
and disk traffic, so forced-spill should be strictly slower — the number
to watch is the *ratio*, which bounds what a ``memory_budget=`` query pays
when its partition buffer overflows.

Run:  pytest benchmarks/bench_spill.py --benchmark-only
"""

import pytest

from conftest import execute
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION
from repro.optimizer.planner import PlannerOptions
from repro.workloads.queries import query_by_name

QUERY = "Q4"

#: Cells the partition buffer may hold resident. Small enough that Q4's
#: input overflows even at smoke scale (asserted below), large enough to
#: produce several runs rather than one row per run.
SPILL_THRESHOLD = 256

PARTITIONINGS = (HASH_PARTITION, SORT_PARTITION)


def _options(partitioning: str, spill: bool) -> PlannerOptions:
    return PlannerOptions(
        gapply_partitioning=partitioning,
        gapply_spill_threshold=SPILL_THRESHOLD if spill else None,
    )


@pytest.fixture(scope="module")
def in_memory_rows(prepared):
    return execute(prepared(query_by_name(QUERY).gapply_sql))


@pytest.mark.parametrize("partitioning", PARTITIONINGS)
def test_in_memory(benchmark, prepared, in_memory_rows, partitioning):
    plan = prepared(
        query_by_name(QUERY).gapply_sql, _options(partitioning, spill=False)
    )
    rows = benchmark(execute, plan)
    assert rows == in_memory_rows


@pytest.mark.parametrize("partitioning", PARTITIONINGS)
def test_forced_spill(benchmark, prepared, in_memory_rows, partitioning):
    plan = prepared(
        query_by_name(QUERY).gapply_sql, _options(partitioning, spill=True)
    )
    rows = benchmark(execute, plan)
    assert rows == in_memory_rows


@pytest.mark.parametrize("partitioning", PARTITIONINGS)
def test_threshold_actually_spills(prepared, partitioning):
    """Not a timing: guard that the benchmark measures real disk traffic.

    If the threshold stopped forcing a spill (say, the scale shrank), the
    'forced-spill' numbers would silently measure the in-memory path.
    """
    from repro.execution.base import run_plan
    from repro.execution.context import ExecutionContext

    plan = prepared(
        query_by_name(QUERY).gapply_sql, _options(partitioning, spill=True)
    )
    ctx = ExecutionContext()
    run_plan(plan, ctx)
    assert ctx.counters.spilled_rows > 0
    assert ctx.counters.spill_runs > 0


def _script_cases(scale: float, repetitions: int):
    from repro.bench.harness import bind, lower, measure_physical, optimize_with
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    logical = optimize_with(
        catalog, bind(catalog, query_by_name(QUERY).gapply_sql)
    )

    cases = []
    for partitioning in PARTITIONINGS:
        for spill in (False, True):
            plan = lower(catalog, logical, _options(partitioning, spill))
            label = "spill" if spill else "memory"
            cases.append(
                (
                    f"{QUERY}-{partitioning}-{label}",
                    measure_physical(plan, repetitions=repetitions),
                )
            )
    return cases


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("spill", _script_cases)
