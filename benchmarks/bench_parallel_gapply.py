"""Parallel GApply execution phase: worker-count sweep on the Figure-8 query.

The partition phase makes groups independent, so the execution phase can
fan out to a worker pool (``repro.execution.parallel``). This suite sweeps
the backend (serial / thread / process) and the worker count (1/2/4/8) on
Q4 — the paper's one natively-GApply-planned query — and asserts every
configuration returns exactly the serial row count (full row/counter
equivalence is covered by ``tests/execution/test_parallel_gapply.py``).

Expectations worth stating up front: the thread backend is GIL-bound and
should hover near 1x; the process backend pays a plan-pickling and fork
cost and only wins once per-group work dominates that overhead and real
cores are available. The summary table and JSON curves come from
``python -m repro.bench.parallel`` / ``python benchmarks/
bench_parallel_gapply.py --smoke``.

Run:  pytest benchmarks/bench_parallel_gapply.py --benchmark-only
"""

import pytest

from conftest import execute
from repro.optimizer.planner import PlannerOptions
from repro.workloads.queries import query_by_name

QUERY = "Q4"
WORKER_COUNTS = (1, 2, 4, 8)


def _options(backend: str, workers: int) -> PlannerOptions:
    return PlannerOptions(gapply_backend=backend, gapply_parallelism=workers)


@pytest.fixture(scope="module")
def serial_rows(prepared):
    return execute(prepared(query_by_name(QUERY).gapply_sql))


def test_serial_baseline(benchmark, prepared, serial_rows):
    plan = prepared(query_by_name(QUERY).gapply_sql)
    rows = benchmark(execute, plan)
    assert rows == serial_rows


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_thread_backend(benchmark, prepared, serial_rows, workers):
    plan = prepared(query_by_name(QUERY).gapply_sql, _options("thread", workers))
    rows = benchmark(execute, plan)
    assert rows == serial_rows


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_process_backend(benchmark, prepared, serial_rows, workers):
    plan = prepared(query_by_name(QUERY).gapply_sql, _options("process", workers))
    rows = benchmark(execute, plan)
    assert rows == serial_rows


def _script_cases(scale: float, repetitions: int):
    from repro.bench.parallel import run_parallel_sweep

    # Smoke sweeps stay at 1/2 workers so a CI runner with few cores still
    # finishes inside the budget; the module CLI does the full 1/2/4/8.
    sweep = run_parallel_sweep(
        scale=scale,
        workers=(1, 2) if repetitions == 1 else WORKER_COUNTS,
        query_name=QUERY,
        repetitions=repetitions,
    )
    return sweep.named_measurements()


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("parallel_gapply", _script_cases)
