"""E8: the Section-5.1 client-side simulation vs the native operator.

The paper calibrated its methodology on Q4, the one query where SQL Server
picked a native GApply plan: the client-side simulation took ~20% longer,
so all client-simulated numbers are conservative. This benchmark measures
the native plan and each simulated phase; the printed calibration summary
comes from ``python -m repro.bench.client_sim``.
"""

import pytest

from conftest import execute
from repro.api import Database
from repro.bench.client_sim import simulate_gapply
from repro.workloads.queries import query_by_name

OUTER_SQL = (
    "select ps_suppkey, p_size, p_name, p_retailprice "
    "from partsupp, part where ps_partkey = p_partkey"
)
PER_GROUP_SQL = (
    "select p_name, p_retailprice from tmpgroup "
    "where p_retailprice > (select avg(p_retailprice) from tmpgroup)"
)


def test_native_q4(benchmark, prepared):
    plan = prepared(query_by_name("Q4").gapply_sql)
    benchmark(execute, plan)


def test_simulated_q4(benchmark, bench_catalog):
    db = Database(bench_catalog)

    def simulate():
        phases = simulate_gapply(
            db, OUTER_SQL, ["ps_suppkey", "p_size"], PER_GROUP_SQL
        )
        outer, partition, overestimate, execution, rows = phases
        return rows

    rows = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert rows > 0
