"""E8: the Section-5.1 client-side simulation vs the native operator.

The paper calibrated its methodology on Q4, the one query where SQL Server
picked a native GApply plan: the client-side simulation took ~20% longer,
so all client-simulated numbers are conservative. This benchmark measures
the native plan and each simulated phase; the printed calibration summary
comes from ``python -m repro.bench.client_sim``.
"""

from conftest import execute
from repro.api import Database
from repro.bench.client_sim import simulate_gapply
from repro.workloads.queries import query_by_name

OUTER_SQL = (
    "select ps_suppkey, p_size, p_name, p_retailprice "
    "from partsupp, part where ps_partkey = p_partkey"
)
PER_GROUP_SQL = (
    "select p_name, p_retailprice from tmpgroup "
    "where p_retailprice > (select avg(p_retailprice) from tmpgroup)"
)


def test_native_q4(benchmark, prepared):
    plan = prepared(query_by_name("Q4").gapply_sql)
    benchmark(execute, plan)


def test_simulated_q4(benchmark, bench_catalog):
    db = Database(bench_catalog)

    def simulate():
        phases = simulate_gapply(
            db, OUTER_SQL, ["ps_suppkey", "p_size"], PER_GROUP_SQL
        )
        outer, partition, overestimate, execution, rows = phases
        return rows

    rows = benchmark.pedantic(simulate, rounds=3, iterations=1)
    assert rows > 0


def _script_cases(scale: float, repetitions: int):
    from repro.bench.harness import Measurement
    from repro.bench.client_sim import run_q4_calibration

    result = run_q4_calibration(scale)
    # The simulated phases are whole-protocol wall times, not single-plan
    # executions, so they carry no work counters — the native row does.
    return [
        ("q4/native", result.native),
        (
            "q4/simulated_total",
            Measurement(result.simulated_total, 0, result.rows),
        ),
        ("q4/sim_outer", Measurement(result.outer_time, 0, 0)),
        ("q4/sim_partition", Measurement(result.partition_time, 0, 0)),
        ("q4/sim_overestimate", Measurement(result.overestimate_time, 0, 0)),
        ("q4/sim_execution", Measurement(result.execution_time, 0, 0)),
    ]


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("client_simulation", _script_cases)
