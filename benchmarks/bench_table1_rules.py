"""Table 1: effect of each transformation rule.

For every rule the paper benchmarks, the parameterized query's most
selective instance is measured with the rule forced off (``without``) and
forced on (``with``); the time ratio is the rule's benefit. The full sweep
(all parameter values, plus the max/avg/avg-over-wins aggregation) is
printed by ``python -m repro.bench.table1``.

Run:  pytest benchmarks/bench_table1_rules.py --benchmark-only
"""

import pytest

from conftest import execute
from repro.bench.harness import (
    bind,
    lower,
    optimize_with,
    rules_without,
    traditional_rules,
)
from repro.optimizer.engine import apply_rule_once
from repro.optimizer.rules import rule_by_name
from repro.workloads.rule_queries import TABLE1_SWEEPS

SWEEPS = {sweep.rule_name: sweep for sweep in TABLE1_SWEEPS}


def _plans(bench_catalog, rule_name):
    sweep = SWEEPS[rule_name]
    parameter, sql = sweep.instances()[0]
    normalized = optimize_with(
        bench_catalog, bind(bench_catalog, sql), traditional_rules()
    )
    rule = rule_by_name(rule_name)
    forced = apply_rule_once(normalized, rule, bench_catalog)
    assert forced is not None, f"{rule_name} must fire on its own sweep"
    without = optimize_with(bench_catalog, normalized, rules_without(rule_name))
    with_rule = optimize_with(bench_catalog, forced, rules_without(rule_name))
    return lower(bench_catalog, without), lower(bench_catalog, with_rule)


@pytest.mark.parametrize("rule_name", list(SWEEPS), ids=list(SWEEPS))
def test_table1_without_rule(benchmark, bench_catalog, rule_name):
    without, _ = _plans(bench_catalog, rule_name)
    benchmark(execute, without)


@pytest.mark.parametrize("rule_name", list(SWEEPS), ids=list(SWEEPS))
def test_table1_with_rule(benchmark, bench_catalog, rule_name):
    _, with_rule = _plans(bench_catalog, rule_name)
    benchmark(execute, with_rule)


def _script_cases(scale: float, repetitions: int):
    from repro.bench.harness import measure_rule_effect
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    named = []
    for rule_name, sweep in SWEEPS.items():
        parameter, sql = sweep.instances()[0]
        effect = measure_rule_effect(
            catalog, sql, rule_by_name(rule_name), parameter, repetitions=repetitions
        )
        named.append((f"{rule_name}/without", effect.without_rule))
        named.append((f"{rule_name}/with", effect.with_rule))
    return named


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("table1_rules", _script_cases)
