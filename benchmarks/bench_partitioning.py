"""Ablation: GApply's two partition-phase strategies (Section 3).

The paper implements partitioning "either through sorting or through
hashing" and reports that "the impact of GApply is comparable whether we
perform partitioning through sorting or through hashing" (Section 5.2).
This benchmark checks that claim on our substrate, and also measures the
clustering dividend: sort partitioning makes the explicit ORDER BY the
tagger would otherwise need redundant (Section 3.1).
"""

import pytest

from conftest import execute
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION
from repro.optimizer.planner import PlannerOptions
from repro.workloads.queries import query_by_name

QUERY_NAMES = ("Q1", "Q2")
STRATEGIES = (HASH_PARTITION, SORT_PARTITION)


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_partition_hash(benchmark, prepared, name):
    plan = prepared(
        query_by_name(name).gapply_sql,
        PlannerOptions(gapply_partitioning=HASH_PARTITION),
    )
    benchmark(execute, plan)


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_partition_sort(benchmark, prepared, name):
    plan = prepared(
        query_by_name(name).gapply_sql,
        PlannerOptions(gapply_partitioning=SORT_PARTITION),
    )
    benchmark(execute, plan)


def test_sort_partitioning_emits_clustered_keys(prepared):
    """Sanity companion to the benchmark: sort partitioning's output is
    clustered (and ordered) by key, so no extra partition operator is
    needed above GApply for the tagger."""
    from repro.execution.base import run_plan
    from repro.execution.context import ExecutionContext

    plan = prepared(
        query_by_name("Q1").gapply_sql,
        PlannerOptions(gapply_partitioning=SORT_PARTITION),
    )
    rows = run_plan(plan, ExecutionContext())
    keys = [row[0] for row in rows]
    assert keys == sorted(keys)


def _script_cases(scale: float, repetitions: int):
    from repro.bench.harness import measure_sql
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    named = []
    for name in QUERY_NAMES:
        for strategy in STRATEGIES:
            named.append(
                (
                    f"{name}/{strategy}",
                    measure_sql(
                        catalog,
                        query_by_name(name).gapply_sql,
                        options=PlannerOptions(gapply_partitioning=strategy),
                        repetitions=repetitions,
                    ),
                )
            )
    return named


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("partitioning", _script_cases)
