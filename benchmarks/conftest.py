"""Shared benchmark fixtures: a TPC-H catalog and pre-lowered plans.

Plans are bound, optimized and lowered *outside* the timed region — the
benchmarks time execution only, matching the paper's server-side elapsed
times.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import bind, lower, optimize_with
from repro.execution.base import run_plan
from repro.execution.context import ExecutionContext
from repro.optimizer.planner import PlannerOptions
from repro.storage.catalog import Catalog
from repro.workloads.tpch import TpchConfig, load_tpch

BENCH_SCALE = 0.1


@pytest.fixture(scope="session")
def bench_catalog() -> Catalog:
    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=BENCH_SCALE))
    return catalog


@pytest.fixture(scope="session")
def prepared(bench_catalog):
    """Factory: SQL text -> executable physical plan (cached)."""
    cache: dict[tuple, object] = {}

    def prepare(sql: str, options: PlannerOptions | None = None):
        key = (sql, options)
        if key not in cache:
            logical = optimize_with(bench_catalog, bind(bench_catalog, sql))
            cache[key] = lower(bench_catalog, logical, options)
        return cache[key]

    return prepare


def execute(plan) -> int:
    """The timed unit: run a physical plan to completion."""
    return len(run_plan(plan, ExecutionContext()))
