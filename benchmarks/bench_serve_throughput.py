"""Concurrent service throughput: queries/sec and tail latency vs client
concurrency, plus the cost of admission control itself.

The :mod:`repro.serve` service puts admission control, snapshot pinning
and per-query governors in front of every read. This suite measures what
that buys and what it costs on the paper's Q1 workload:

* **service overhead** — one client, service path vs calling
  ``Database.sql`` directly: the price of admission + snapshot per query;
* **concurrency scaling** — N client threads hammering the service;
  throughput should hold (Python threads serialize CPU, so the point is
  *no collapse* from lock contention, not speedup) and every result must
  be correct;
* **overload behavior** — more clients than slots with a tiny queue:
  shed queries fail in microseconds with ``ServiceOverloaded`` instead of
  queueing without bound; the shed rate and the p99 of *admitted* queries
  are the numbers to watch (reported in the measurement's metrics dict);
* **plan-cache payoff** — a zipf-skewed stream over a handful of
  parameterized query shapes (the production shape of the paper's
  workload: the same published views re-requested with new parameters),
  measured with the plan cache on vs off; the p50 gap is the per-query
  bind+optimize cost the cache deletes, reported with the hit rate.

Run:  pytest benchmarks/bench_serve_throughput.py --benchmark-only
"""

from __future__ import annotations

import random
import threading
import time

import pytest

from repro.api import Database
from repro.errors import ServiceOverloaded
from repro.serve import Service, ServiceConfig
from repro.workloads.queries import query_by_name

QUERY = "Q1"

#: Client thread counts for the scaling sweep.
CONCURRENCIES = (1, 4, 8)

#: Queries each client issues per measured run.
OPS_PER_CLIENT = 4


def _run_clients(
    service: Service, sql: str, clients: int, ops: int
) -> dict[str, float]:
    """Drive ``clients`` threads x ``ops`` queries; return timing stats."""
    latencies: list[float] = []
    sheds = [0]
    lock = threading.Lock()
    barrier = threading.Barrier(clients)

    def client():
        mine: list[float] = []
        my_sheds = 0
        barrier.wait()
        for _ in range(ops):
            started = time.perf_counter()
            try:
                service.sql(sql)
            except ServiceOverloaded:
                my_sheds += 1
                continue
            mine.append(time.perf_counter() - started)
        with lock:
            latencies.extend(mine)
            sheds[0] += my_sheds

    threads = [threading.Thread(target=client) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies.sort()
    completed = len(latencies)
    p99 = latencies[min(completed - 1, int(completed * 0.99))] if completed else 0.0
    return {
        "elapsed": elapsed,
        "completed": completed,
        "shed": sheds[0],
        "p99": p99,
        "throughput": completed / elapsed if elapsed else 0.0,
    }


# ----------------------------------------------------------------------
# Skewed query-shape workload (plan-cache on vs off)
# ----------------------------------------------------------------------

#: Parameterized shapes for the skew workload: explicit ``$1`` markers
#: with a value generator, so every arrival is a *different text-level
#: query* of a cached shape. ``None`` marks parameter-free shapes.
SHAPE_WORKLOAD: tuple[tuple[str, object], ...] = (
    (
        "select p_name, p_retailprice from part where p_retailprice < $1",
        lambda rng: [round(rng.uniform(900.0, 2100.0), 2)],
    ),
    (
        "select count(*) from partsupp where ps_availqty < $1",
        lambda rng: [rng.randrange(1, 10000)],
    ),
    (
        "select s_name, s_acctbal from supplier where s_acctbal > $1",
        lambda rng: [round(rng.uniform(-900.0, 9000.0), 2)],
    ),
    (
        "select p_brand, count(*) from part where p_size < $1 "
        "group by p_brand",
        lambda rng: [rng.randrange(5, 50)],
    ),
    (
        "select gapply(select count(*) from g where p_retailprice > $1) "
        "as (expensive) from partsupp, part "
        "where ps_partkey = p_partkey group by ps_suppkey : g",
        lambda rng: [round(rng.uniform(900.0, 2100.0), 2)],
    ),
    (query_by_name(QUERY).gapply_sql, None),
)

#: Zipf-ish weights: shape 0 dominates, the tail still recurs — the
#: skew that makes a plan cache pay for itself.
SHAPE_WEIGHTS = tuple(1.0 / rank for rank in range(1, len(SHAPE_WORKLOAD) + 1))

SKEW_OPS = 120


def _skewed_ops(seed: int, ops: int):
    """The (sql, params) stream, deterministic per seed so the cache-on
    and cache-off arms replay the identical workload."""
    rng = random.Random(seed)
    indexes = rng.choices(range(len(SHAPE_WORKLOAD)), SHAPE_WEIGHTS, k=ops)
    stream = []
    for index in indexes:
        sql, make_params = SHAPE_WORKLOAD[index]
        stream.append((sql, make_params(rng) if make_params else None))
    return stream


def _run_skewed(service: Service, seed: int, ops: int) -> dict[str, float]:
    """One client replaying the skewed stream; per-query latencies."""
    latencies: list[float] = []
    for sql, params in _skewed_ops(seed, ops):
        started = time.perf_counter()
        service.sql(sql, params=params)
        latencies.append(time.perf_counter() - started)
    latencies.sort()
    count = len(latencies)
    return {
        "elapsed": sum(latencies),
        "completed": count,
        "p50": latencies[count // 2],
        "p99": latencies[min(count - 1, int(count * 0.99))],
    }


# ----------------------------------------------------------------------
# pytest-benchmark suite
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def service(bench_catalog):
    with Service(Database(bench_catalog)) as svc:
        yield svc


@pytest.fixture(scope="module")
def expected_rows(bench_catalog):
    return len(Database(bench_catalog).sql(query_by_name(QUERY).gapply_sql).rows)


def test_direct_database_baseline(benchmark, bench_catalog, expected_rows):
    db = Database(bench_catalog)
    sql = query_by_name(QUERY).gapply_sql
    rows = benchmark(lambda: len(db.sql(sql).rows))
    assert rows == expected_rows


def test_service_single_client(benchmark, service, expected_rows):
    sql = query_by_name(QUERY).gapply_sql
    rows = benchmark(lambda: len(service.sql(sql).rows))
    assert rows == expected_rows


@pytest.mark.parametrize("clients", CONCURRENCIES)
def test_service_concurrent_clients(benchmark, service, clients):
    sql = query_by_name(QUERY).gapply_sql
    stats = benchmark.pedantic(
        _run_clients,
        args=(service, sql, clients, OPS_PER_CLIENT),
        rounds=3,
        iterations=1,
    )
    assert stats["completed"] == clients * OPS_PER_CLIENT
    assert stats["shed"] == 0  # default queue depth absorbs this load


@pytest.mark.parametrize("cache", ["on", "off"])
def test_skewed_shapes(benchmark, bench_catalog, cache):
    database = (
        Database(bench_catalog)
        if cache == "on"
        else Database(bench_catalog, plan_cache=None)
    )
    with Service(database) as svc:
        stats = benchmark.pedantic(
            _run_skewed, args=(svc, 0, SKEW_OPS), rounds=3, iterations=1
        )
    assert stats["completed"] == SKEW_OPS


# ----------------------------------------------------------------------
# Script mode (CI bench-smoke)
# ----------------------------------------------------------------------


def _script_cases(scale: float, repetitions: int):
    from repro.bench.harness import Measurement
    from repro.storage.catalog import Catalog
    from repro.workloads.tpch import TpchConfig, load_tpch

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    sql = query_by_name(QUERY).gapply_sql
    rows = len(Database(catalog).sql(sql).rows)

    cases = []
    for clients in CONCURRENCIES:
        best: dict[str, float] | None = None
        service = Service(Database(catalog))
        try:
            for _ in range(repetitions):
                stats = _run_clients(service, sql, clients, OPS_PER_CLIENT)
                if best is None or stats["elapsed"] < best["elapsed"]:
                    best = stats
        finally:
            service.shutdown(drain_timeout=10.0)
        cases.append(
            (
                f"{QUERY}-service-c{clients}",
                Measurement(
                    elapsed=best["elapsed"],
                    work=int(best["completed"]),
                    rows=rows,
                    backend="service",
                    parallelism=clients,
                    metrics={
                        "throughput_qps": round(best["throughput"], 2),
                        "p99_seconds": round(best["p99"], 6),
                        "shed": int(best["shed"]),
                    },
                ),
            )
        )

    # Overload: 8 clients into 1 slot with a 1-deep queue — measures the
    # shedding path. Time per *attempt* stays flat because shed queries
    # fail fast instead of queueing without bound.
    overload = Service(
        Database(catalog),
        config=ServiceConfig(max_concurrency=1, max_queue_depth=1),
    )
    try:
        best = None
        for _ in range(repetitions):
            stats = _run_clients(overload, sql, 8, OPS_PER_CLIENT)
            if best is None or stats["elapsed"] < best["elapsed"]:
                best = stats
        shed_rate = best["shed"] / (8 * OPS_PER_CLIENT)
    finally:
        overload.shutdown(drain_timeout=10.0)
    cases.append(
        (
            f"{QUERY}-service-overload",
            Measurement(
                elapsed=best["elapsed"],
                work=int(best["completed"]),
                rows=rows,
                backend="service-overload",
                parallelism=8,
                metrics={
                    "throughput_qps": round(best["throughput"], 2),
                    "p99_seconds": round(best["p99"], 6),
                    "shed": int(best["shed"]),
                    "shed_rate": round(shed_rate, 3),
                },
            ),
        )
    )

    # Skewed-shape workload, plan cache on vs off: the same seeded stream
    # of parameterized arrivals, so the p50/p99 gap is the per-query
    # bind+optimize cost the cache deletes.
    for cache_on in (True, False):
        database = Database(catalog) if cache_on else Database(
            catalog, plan_cache=None
        )
        service = Service(database)
        try:
            best = None
            for _ in range(repetitions):
                stats = _run_skewed(service, seed=0, ops=SKEW_OPS)
                if best is None or stats["elapsed"] < best["elapsed"]:
                    best = stats
            metrics = {
                "p50_seconds": round(best["p50"], 6),
                "p99_seconds": round(best["p99"], 6),
                "shapes": len(SHAPE_WORKLOAD),
            }
            if cache_on:
                cache_stats = database.plan_cache.stats()
                lookups = cache_stats["hits"] + cache_stats["misses"]
                metrics["cache_hit_rate"] = round(
                    cache_stats["hits"] / lookups, 3
                ) if lookups else 0.0
                metrics["cache_replans"] = cache_stats["replans"]
        finally:
            service.shutdown(drain_timeout=10.0)
        label = "cache-on" if cache_on else "cache-off"
        cases.append(
            (
                f"skewed-shapes-{label}",
                Measurement(
                    elapsed=best["elapsed"],
                    work=int(best["completed"]),
                    rows=int(best["completed"]),
                    backend=f"service-{label}",
                    parallelism=1,
                    metrics=metrics,
                ),
            )
        )
    return cases


if __name__ == "__main__":
    from smokebench import bench_main

    bench_main("serve_throughput", _script_cases)
