"""CI bench gate: vector-over-Volcano speedups vs checked-in baselines.

Reads the measurement JSON emitted by::

    python benchmarks/bench_fig8_speedup.py --smoke --repetitions 3 --out fig8.json

pairs every ``vector/<case>`` with its ``volcano/<case>`` twin, and
checks three things against ``benchmarks/baselines.json``:

1. **Engine equivalence** — the deterministic ``work`` counter must be
   bit-identical between the two engines for every case. This is the
   vector engine's core contract and has zero measurement noise, so any
   difference is a hard failure regardless of tolerance.
2. **Speedup regressions** — the elapsed-time speedup
   ``volcano/vector`` must not fall more than ``--tolerance`` (default
   25%) below the checked-in baseline speedup. Cases whose baseline
   speedup sits below ``--noise-floor`` (default 1.2x) are skipped:
   sub-millisecond timings at smoke scale cannot distinguish 1.0x from
   1.2x reliably, and gating on them would make CI flaky.
3. **Work drift** — ``work`` is deterministic for a given scale, so a
   change means the planner produced a different plan. Drift beyond the
   tolerance fails; smaller drift is reported in the comparison document
   but allowed (plan-shape PRs refresh baselines explicitly).

``--update-baselines`` rewrites the baselines file from the current
measurements instead of checking (run it locally after an intentional
perf or plan change, and commit the result). ``--out`` writes the full
comparison document, which CI uploads as an artifact so a red gate shows
per-case numbers without re-running anything.

Exit status: 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINES = Path(__file__).resolve().parent / "baselines.json"
DEFAULT_TOLERANCE = 0.25
DEFAULT_NOISE_FLOOR = 1.2

VOLCANO_PREFIX = "volcano/"
VECTOR_PREFIX = "vector/"


def pair_cases(measurements: list[dict]) -> dict[str, dict]:
    """``{case: {"speedup": float, "work": int, ...}}`` from engine pairs."""
    by_name = {m["name"]: m for m in measurements}
    cases: dict[str, dict] = {}
    for name, volcano in by_name.items():
        if not name.startswith(VOLCANO_PREFIX):
            continue
        case = name[len(VOLCANO_PREFIX):]
        vector = by_name.get(VECTOR_PREFIX + case)
        if vector is None:
            continue
        speedup = (
            volcano["elapsed"] / vector["elapsed"]
            if vector["elapsed"] > 0
            else float("inf")
        )
        cases[case] = {
            "speedup": round(speedup, 3),
            "work": volcano["work"],
            "vector_work": vector["work"],
            "volcano_elapsed": volcano["elapsed"],
            "vector_elapsed": vector["elapsed"],
            "rows": volcano["rows"],
        }
    return cases


def check(
    cases: dict[str, dict],
    baselines: dict,
    tolerance: float,
    noise_floor: float,
) -> tuple[list[dict], list[str]]:
    """Compare measured cases to baselines; (per-case records, failures)."""
    failures: list[str] = []
    records: list[dict] = []
    base_cases = baselines.get("cases", {})
    for case in sorted(set(base_cases) - set(cases)):
        failures.append(f"{case}: present in baselines but not measured")
    for case, current in sorted(cases.items()):
        record = {"case": case, **current}
        if current["work"] != current["vector_work"]:
            failures.append(
                f"{case}: engine work diverged — volcano={current['work']} "
                f"vector={current['vector_work']} (equivalence contract)"
            )
            record["status"] = "work-diverged"
            records.append(record)
            continue
        base = base_cases.get(case)
        if base is None:
            failures.append(
                f"{case}: no baseline (run with --update-baselines and "
                "commit benchmarks/baselines.json)"
            )
            record["status"] = "no-baseline"
            records.append(record)
            continue
        record["baseline_speedup"] = base["speedup"]
        record["baseline_work"] = base["work"]
        status = "ok"
        work_drift = (
            abs(current["work"] - base["work"]) / base["work"]
            if base["work"]
            else 0.0
        )
        record["work_drift"] = round(work_drift, 4)
        if work_drift > tolerance:
            failures.append(
                f"{case}: work drifted {work_drift:.0%} "
                f"(baseline {base['work']}, now {current['work']}) — "
                "plan changed; refresh baselines if intentional"
            )
            status = "work-drift"
        elif base["speedup"] < noise_floor:
            status = "below-noise-floor"
        elif current["speedup"] < base["speedup"] * (1.0 - tolerance):
            failures.append(
                f"{case}: speedup regressed to {current['speedup']:.2f}x "
                f"(baseline {base['speedup']:.2f}x, tolerance {tolerance:.0%})"
            )
            status = "speedup-regressed"
        record["status"] = status
        records.append(record)
    return records, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python benchmarks/fig8_gate.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("measurements", help="measurement JSON from --smoke --out")
    parser.add_argument(
        "--baselines", default=str(DEFAULT_BASELINES),
        help="checked-in baselines file (default benchmarks/baselines.json)",
    )
    parser.add_argument(
        "--out", default=None, help="write the comparison JSON document here"
    )
    parser.add_argument(
        "--update-baselines", action="store_true",
        help="rewrite the baselines file from these measurements and exit",
    )
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE)
    parser.add_argument("--noise-floor", type=float, default=DEFAULT_NOISE_FLOOR)
    args = parser.parse_args(argv)

    document = json.loads(Path(args.measurements).read_text())
    cases = pair_cases(document.get("measurements", []))
    if not cases:
        print("bench gate: no volcano/vector case pairs in measurements")
        return 1

    if args.update_baselines:
        baselines = {
            "benchmark": document.get("meta", {}).get("benchmark"),
            "scale": document.get("meta", {}).get("scale"),
            "repetitions": document.get("meta", {}).get("repetitions"),
            "tolerance": args.tolerance,
            "noise_floor": args.noise_floor,
            "cases": {
                case: {"speedup": data["speedup"], "work": data["work"]}
                for case, data in sorted(cases.items())
            },
        }
        Path(args.baselines).write_text(json.dumps(baselines, indent=2) + "\n")
        print(f"bench gate: wrote {len(cases)} baselines to {args.baselines}")
        return 0

    baselines = json.loads(Path(args.baselines).read_text())
    scale = document.get("meta", {}).get("scale")
    if scale != baselines.get("scale"):
        print(
            f"bench gate: measurement scale {scale} != baseline scale "
            f"{baselines.get('scale')} — work counters are scale-dependent"
        )
        return 1
    records, failures = check(
        cases, baselines, args.tolerance, args.noise_floor
    )

    width = max(len(r["case"]) for r in records)
    print(f"{'case':<{width}} {'speedup':>8} {'baseline':>9} {'work':>9}  status")
    for r in records:
        base = r.get("baseline_speedup")
        base_text = f"{base:>8.2f}x" if base is not None else f"{'-':>9}"
        print(
            f"{r['case']:<{width}} {r['speedup']:>7.2f}x {base_text} "
            f"{r['work']:>9}  {r['status']}"
        )

    if args.out:
        comparison = {
            "meta": document.get("meta", {}),
            "tolerance": args.tolerance,
            "noise_floor": args.noise_floor,
            "failures": failures,
            "cases": records,
        }
        Path(args.out).write_text(json.dumps(comparison, indent=2) + "\n")
        print(f"wrote {args.out}")

    if failures:
        print(f"\nbench gate FAILED ({len(failures)}):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nbench gate passed: {len(records)} cases")
    return 0


if __name__ == "__main__":
    sys.exit(main())
