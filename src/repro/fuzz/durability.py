"""Durability chaos: seeded crash points against a durable database.

The regular chaos mode (:mod:`repro.fuzz.chaos`) asserts "correct rows
or a typed error" for queries under faults; this module asserts the
storage half of the robustness contract — **exact prefix durability**.
Each seed deterministically derives a workload of catalog mutations
(create/insert/index/FK/drop, interleaved with checkpoints), an fsync
policy, WAL tuning knobs, and one crash point from
:data:`repro.execution.faults.DURABILITY_POINTS`:

* kill before the Nth WAL append,
* a short (torn) write of the Nth WAL frame,
* an fsync failure at the Nth WAL sync,
* a crash during a checkpoint (mid temp write / before the atomic
  rename / before the superseded-segment deletion),
* or no fault at all (clean shutdown + reopen).

The workload runs until it finishes or the armed point fires
(:class:`~repro.execution.faults.SimulatedCrash`, whereupon the store is
abandoned exactly as a dead process would leave it — unbuffered segment
writes mean the on-disk bytes are precisely what the crashed process
managed to write). Then ``Database.open`` recovers, and the invariant is
checked: the recovered catalog equals — tables, rows, schemas, primary
keys, index column sets, foreign keys, and the version counter itself —
a catalog built by replaying exactly the *acknowledged* operations. No
lost acks, no phantom rows, no ``.tmp`` orphans, and a second reopen
reproduces the same state (recovery is idempotent).
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Callable

from repro.api import Database
from repro.errors import WalCorruptionError, WalError
from repro.execution.faults import (
    FaultPlan,
    SimulatedCrash,
    fault_injection,
)
from repro.fuzz.chaos import ChaosFailure, ChaosReport
from repro.storage import DataType
from repro.storage.wal import FSYNC_POLICIES

_COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


@dataclass
class DurabilityCase:
    """Everything one seed decided; replaying the seed rebuilds it."""

    seed: int
    fsync: str
    fault: FaultPlan
    op_count: int
    checkpoint_every: int  # 0 = never checkpoint
    segment_bytes: int
    batch_every: int

    @property
    def scenario(self) -> str:
        fault = self.fault
        if fault.wal_kill_at is not None:
            return "wal-kill"
        if fault.wal_short_write_at is not None:
            return "wal-short-write"
        if fault.wal_fsync_fail_at is not None:
            return "wal-fsync-fail"
        if fault.checkpoint_crash_at is not None:
            return f"checkpoint-{fault.checkpoint_crash_phase}"
        return "none"

    def describe(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "fsync": self.fsync,
            "op_count": self.op_count,
            "checkpoint_every": self.checkpoint_every,
            "segment_bytes": self.segment_bytes,
            "batch_every": self.batch_every,
            "fault": self.fault.to_dict(),
        }


def build_durability_case(seed: int) -> DurabilityCase:
    """Deterministically derive one durability case from its seed."""
    rng = random.Random(seed)
    return DurabilityCase(
        seed=seed,
        fsync=rng.choice(FSYNC_POLICIES),
        fault=FaultPlan.for_durability(seed, appends=28, checkpoints=3),
        op_count=rng.randrange(12, 30),
        checkpoint_every=rng.choice((0, 5, 9)),
        # Tiny segments force rotation mid-workload; large ones keep
        # everything in one file — both paths must recover.
        segment_bytes=rng.choice((256, 4096, 1 << 20)),
        batch_every=rng.choice((2, 8)),
    )


def _generate_ops(rng: random.Random, count: int) -> list[tuple]:
    """A deterministic mutation sequence that is always applicable in
    order (inserts/indexes/FKs only target tables still live)."""
    ops: list[tuple] = []
    live: list[str] = []
    next_id = 0
    for _ in range(count):
        choices = ["create"]
        if live:
            choices += ["insert"] * 6 + ["index", "fk"]
            if len(live) > 2:
                choices.append("drop")
        kind = rng.choice(choices)
        if kind == "create":
            name = f"t{next_id}"
            next_id += 1
            live.append(name)
            ops.append(("create_table", name))
        elif kind == "insert":
            table = rng.choice(live)
            rows = [
                (rng.randrange(1000), f"v{rng.randrange(100)}")
                for _ in range(rng.randrange(1, 5))
            ]
            ops.append(("insert_rows", table, rows))
        elif kind == "index":
            table = rng.choice(live)
            columns = rng.choice((["k"], ["v"], ["k", "v"]))
            ops.append(("create_index", table, columns))
        elif kind == "fk":
            child = rng.choice(live)
            parent = rng.choice(live)
            ops.append(("add_foreign_key", child, ["k"], parent, ["k"]))
        else:
            table = live.pop(rng.randrange(len(live)))
            ops.append(("drop_table", table))
    return ops


def _apply_op(db: Database, op: tuple) -> None:
    kind = op[0]
    if kind == "create_table":
        db.create_table(op[1], _COLUMNS, [])
    elif kind == "insert_rows":
        db.catalog.insert_rows(op[1], op[2])
    elif kind == "create_index":
        db.catalog.create_index(op[1], op[2])
    elif kind == "add_foreign_key":
        db.catalog.add_foreign_key(op[1], op[2], op[3], op[4])
    elif kind == "drop_table":
        db.catalog.drop(op[1])
    else:  # pragma: no cover - generator and applier move together
        raise AssertionError(f"unknown op {kind!r}")


def _references_dead_table(op: tuple, dead: set[str]) -> bool:
    if not dead:
        return False
    if op[0] == "add_foreign_key":
        return op[1] in dead or op[3] in dead
    return op[0] != "create_table" and op[1] in dead


def catalog_fingerprint(db: Database) -> dict[str, Any]:
    """Everything the exact-prefix invariant compares, as plain data."""
    return {
        "version": db.catalog.version,
        "tables": {
            table.name: {
                "columns": [(c.name, c.dtype.value) for c in table.schema],
                "rows": list(table.rows),
                "primary_key": table.primary_key,
                "indexes": sorted(table.indexes),
            }
            for table in db.catalog
        },
        "foreign_keys": sorted(
            (
                fk.child_table,
                fk.child_columns,
                fk.parent_table,
                fk.parent_columns,
            )
            for fk in db.catalog.foreign_keys()
        ),
    }


def run_durability_case(case: DurabilityCase) -> str | None:
    """Run one case; None when the invariant held, else a detail string."""
    directory = tempfile.mkdtemp(prefix="repro-wal-chaos-")
    try:
        return _run_in_directory(case, directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def _run_in_directory(case: DurabilityCase, directory: str) -> str | None:
    rng = random.Random(case.seed * 7919 + 17)
    ops = _generate_ops(rng, case.op_count)
    acked: list[tuple] = []
    crashed = False
    # Tables whose CREATE was rejected by a WAL fault: the generator
    # assumed they exist, so later ops naming them must be skipped
    # (they were never acknowledged either).
    dead: set[str] = set()
    with fault_injection(case.fault):
        db = Database.open(
            directory,
            fsync=case.fsync,
            segment_bytes=case.segment_bytes,
            batch_every=case.batch_every,
        )
        for position, op in enumerate(ops):
            if _references_dead_table(op, dead):
                continue
            try:
                _apply_op(db, op)
            except SimulatedCrash:
                crashed = True
                db.wal.abandon()
                break
            except WalError:
                # Typed append/fsync failure: the op was NOT acknowledged
                # and its frame was rolled back — it must not reappear.
                if op[0] == "create_table":
                    dead.add(op[1])
                continue
            acked.append(op)
            if (
                case.checkpoint_every
                and (position + 1) % case.checkpoint_every == 0
            ):
                try:
                    db.checkpoint()
                except SimulatedCrash:
                    crashed = True
                    db.wal.abandon()
                    break
                except WalError:
                    pass  # checkpoint failed; the log is still the truth
        if not crashed:
            db.close()

    expected = Database()
    for op in acked:
        _apply_op(expected, op)

    try:
        recovered = Database.open(directory)
    except WalCorruptionError as error:
        return f"recovery refused a crash-consistent store: {error}"
    try:
        want = catalog_fingerprint(expected)
        got = catalog_fingerprint(recovered)
        if got != want:
            return _diff_detail(want, got, len(acked), crashed)
        leaked = [
            name for name in os.listdir(directory) if name.endswith(".tmp")
        ]
        if leaked:
            return f"leaked temp files after recovery: {leaked}"
    finally:
        recovered.close()
    # Recovery must be idempotent: a second open sees the same state.
    again = Database.open(directory)
    try:
        if catalog_fingerprint(again) != want:
            return "second recovery diverged from the first"
    finally:
        again.close()
    return None


def _diff_detail(
    want: dict, got: dict, acked: int, crashed: bool
) -> str:
    parts = [
        f"recovered state != acknowledged prefix ({acked} acked ops, "
        f"crashed={crashed})"
    ]
    if want["version"] != got["version"]:
        parts.append(
            f"version {got['version']} != expected {want['version']}"
        )
    missing = sorted(set(want["tables"]) - set(got["tables"]))
    phantom = sorted(set(got["tables"]) - set(want["tables"]))
    if missing:
        parts.append(f"lost tables {missing}")
    if phantom:
        parts.append(f"phantom tables {phantom}")
    for name in sorted(set(want["tables"]) & set(got["tables"])):
        if want["tables"][name] != got["tables"][name]:
            wrows = want["tables"][name]["rows"]
            grows = got["tables"][name]["rows"]
            parts.append(
                f"table {name}: {len(grows)} rows != {len(wrows)} expected"
            )
    if want["foreign_keys"] != got["foreign_keys"]:
        parts.append("foreign keys diverged")
    return "; ".join(parts)


def run_durability_chaos(
    seed: int = 0,
    n: int = 50,
    stop_after: int = 5,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Sweep ``n`` seeded crash-point cases; exact prefix durability for
    every one of them."""
    report = ChaosReport()
    for case_seed in range(seed, seed + n):
        case = build_durability_case(case_seed)
        detail = run_durability_case(case)
        report.cases += 1
        report.outcomes[case.scenario] = (
            report.outcomes.get(case.scenario, 0) + 1
        )
        if detail is not None:
            report.failures.append(ChaosFailure(case, detail))
            if progress is not None:
                progress(
                    f"seed {case_seed} [{case.scenario}] FAILED: {detail}"
                )
            if len(report.failures) >= stop_after:
                break
        elif progress is not None and report.cases % 25 == 0:
            progress(f"{report.cases}/{n} cases ok")
    return report
