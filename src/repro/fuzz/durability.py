"""Durability chaos: seeded crash points against a durable database.

The regular chaos mode (:mod:`repro.fuzz.chaos`) asserts "correct rows
or a typed error" for queries under faults; this module asserts the
storage half of the robustness contract — **exact transactional prefix
durability**. Each seed deterministically derives a workload of catalog
events — autocommit mutations interleaved with multi-statement
transaction blocks that commit or roll back — plus checkpoints, an
fsync policy (including group commit), WAL tuning knobs, archive mode,
and one crash point from
:data:`repro.execution.faults.DURABILITY_POINTS`:

* kill before the Nth WAL append,
* a short (torn) write of the Nth WAL frame,
* an fsync failure at the Nth WAL sync,
* a kill immediately *after* a group-commit batch fsync (the batch is
  durable, nothing was acknowledged — the "in doubt" window),
* a crash during a checkpoint (mid temp write / before the atomic
  rename / before the superseded-segment deletion),
* or no fault at all (clean shutdown + reopen).

The workload runs until it finishes or the armed point fires
(:class:`~repro.execution.faults.SimulatedCrash`, whereupon the store is
abandoned exactly as a dead process would leave it). Then
``Database.open`` recovers, and the invariant is checked: the recovered
catalog equals — tables, rows, schemas, primary keys, index column
sets, foreign keys, and the version counter itself — a catalog built by
replaying exactly the *acknowledged committed* events. A transaction
contributes all of its operations or none; a crash mid-transaction
contributes none. The one sanctioned ambiguity is the group-commit
in-doubt window: a crash after the batch fsync but before the ack may
recover the in-flight event as well — the recovered state must then
equal acked-plus-exactly-that-event, never anything in between.

On top of the prefix check, cases whose history is complete (archive
mode, or no checkpoint ever truncated the log) verify **point-in-time
recovery**: ``Database.open(recover_to=V)`` at a deterministically
chosen committed boundary must reproduce exactly the committed prefix
up to V, a version inside a transaction must be refused with the typed
:class:`~repro.errors.PointInTimeUnavailable`, and so must a version
beyond the newest committed state.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Callable

from repro.api import Database
from repro.errors import (
    PointInTimeUnavailable,
    WalCorruptionError,
    WalError,
)
from repro.execution.faults import (
    FaultPlan,
    SimulatedCrash,
    fault_injection,
)
from repro.fuzz.chaos import ChaosFailure, ChaosReport
from repro.storage import DataType
from repro.storage.wal import FSYNC_GROUP, FSYNC_POLICIES

_COLUMNS = [("k", DataType.INTEGER), ("v", DataType.STRING)]


@dataclass
class DurabilityCase:
    """Everything one seed decided; replaying the seed rebuilds it."""

    seed: int
    fsync: str
    fault: FaultPlan
    op_count: int
    checkpoint_every: int  # 0 = never checkpoint (counted in events)
    segment_bytes: int
    batch_every: int
    archive: bool

    @property
    def scenario(self) -> str:
        fault = self.fault
        if fault.wal_kill_at is not None:
            return "wal-kill"
        if fault.wal_short_write_at is not None:
            return "wal-short-write"
        if fault.wal_fsync_fail_at is not None:
            return "wal-fsync-fail"
        if fault.group_fsync_kill_at is not None:
            return "group-fsync-kill"
        if fault.checkpoint_crash_at is not None:
            return f"checkpoint-{fault.checkpoint_crash_phase}"
        return "none"

    def describe(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "fsync": self.fsync,
            "op_count": self.op_count,
            "checkpoint_every": self.checkpoint_every,
            "segment_bytes": self.segment_bytes,
            "batch_every": self.batch_every,
            "archive": self.archive,
            "fault": self.fault.to_dict(),
        }


def build_durability_case(seed: int) -> DurabilityCase:
    """Deterministically derive one durability case from its seed."""
    rng = random.Random(seed)
    # Every draw happens unconditionally so each knob's value depends
    # only on the seed, never on another knob.
    fsync = rng.choice(FSYNC_POLICIES)
    fault = FaultPlan.for_durability(seed, appends=28, checkpoints=3)
    op_count = rng.randrange(12, 30)
    checkpoint_every = rng.choice((0, 5, 9))
    segment_bytes = rng.choice((256, 4096, 1 << 20))
    batch_every = rng.choice((2, 8))
    archive = rng.choice((False, True))
    if fault.group_fsync_kill_at is not None:
        # The group-fsync crash point only exists under the group
        # policy; forcing it (after all draws) keeps the scenario from
        # degenerating into a clean run three times out of four.
        fsync = FSYNC_GROUP
    return DurabilityCase(
        seed=seed,
        fsync=fsync,
        fault=fault,
        op_count=op_count,
        checkpoint_every=checkpoint_every,
        # Tiny segments force rotation mid-workload; large ones keep
        # everything in one file — both paths must recover.
        segment_bytes=segment_bytes,
        batch_every=batch_every,
        archive=archive,
    )


def _one_op(
    rng: random.Random, live: list[str], next_id: int
) -> tuple[tuple, int]:
    """One mutation that is applicable given the current ``live`` tables
    (mutates ``live`` in place); returns (op, next_id)."""
    choices = ["create"]
    if live:
        choices += ["insert"] * 6 + ["index", "fk"]
        if len(live) > 2:
            choices.append("drop")
    kind = rng.choice(choices)
    if kind == "create":
        name = f"t{next_id}"
        live.append(name)
        return ("create_table", name), next_id + 1
    if kind == "insert":
        table = rng.choice(live)
        rows = [
            (rng.randrange(1000), f"v{rng.randrange(100)}")
            for _ in range(rng.randrange(1, 5))
        ]
        return ("insert_rows", table, rows), next_id
    if kind == "index":
        table = rng.choice(live)
        columns = rng.choice((["k"], ["v"], ["k", "v"]))
        return ("create_index", table, columns), next_id
    if kind == "fk":
        child = rng.choice(live)
        parent = rng.choice(live)
        return ("add_foreign_key", child, ["k"], parent, ["k"]), next_id
    table = live.pop(rng.randrange(len(live)))
    return ("drop_table", table), next_id


def _generate_events(rng: random.Random, count: int) -> list[tuple]:
    """A deterministic event sequence: ``("op", op)`` autocommit events
    and ``("txn", [ops], "commit"|"rollback")`` transaction blocks.

    Generation assumes planned outcomes: a rolled-back block restores
    the live-table list (its effects never happened), a committed block
    keeps them. Table ids never repeat, so a block that *fails* at run
    time can only make later events reference missing tables — which the
    runner skips via its dead-table set — never alias a different one.
    """
    events: list[tuple] = []
    live: list[str] = []
    next_id = 0
    budget = count
    while budget > 0:
        if rng.random() < 0.35:
            n_ops = min(budget, rng.randrange(1, 5))
            outcome = "commit" if rng.random() < 0.7 else "rollback"
            saved_live = list(live)
            ops = []
            for _ in range(n_ops):
                op, next_id = _one_op(rng, live, next_id)
                ops.append(op)
            if outcome == "rollback":
                live[:] = saved_live
            events.append(("txn", ops, outcome))
            budget -= n_ops
        else:
            op, next_id = _one_op(rng, live, next_id)
            events.append(("op", op))
            budget -= 1
    return events


def _apply_op(db: Database, op: tuple) -> None:
    kind = op[0]
    if kind == "create_table":
        db.create_table(op[1], _COLUMNS, [])
    elif kind == "insert_rows":
        db.catalog.insert_rows(op[1], op[2])
    elif kind == "create_index":
        db.catalog.create_index(op[1], op[2])
    elif kind == "add_foreign_key":
        db.catalog.add_foreign_key(op[1], op[2], op[3], op[4])
    elif kind == "drop_table":
        db.catalog.drop(op[1])
    else:  # pragma: no cover - generator and applier move together
        raise AssertionError(f"unknown op {kind!r}")


def _op_tables(op: tuple) -> tuple[str, ...]:
    if op[0] == "add_foreign_key":
        return (op[1], op[3])
    return (op[1],)


def _references_dead_table(op: tuple, dead: set[str]) -> bool:
    if not dead or op[0] == "create_table":
        return False
    return any(t in dead for t in _op_tables(op))


def catalog_fingerprint(db: Database) -> dict[str, Any]:
    """Everything the exact-prefix invariant compares, as plain data."""
    return {
        "version": db.catalog.version,
        "tables": {
            table.name: {
                "columns": [(c.name, c.dtype.value) for c in table.schema],
                "rows": list(table.rows),
                "primary_key": table.primary_key,
                "indexes": sorted(table.indexes),
            }
            for table in db.catalog
        },
        "foreign_keys": sorted(
            (
                fk.child_table,
                fk.child_columns,
                fk.parent_table,
                fk.parent_columns,
            )
            for fk in db.catalog.foreign_keys()
        ),
    }


def _expected_fingerprint(ops: list[tuple], version: int) -> dict[str, Any]:
    """Fingerprint of replaying ``ops`` with the version pinned.

    The replay database is non-durable (each op bumps the version by
    exactly 1), but the durable store also consumes versions for
    transaction begin/commit/abort markers — ``version`` carries the
    marker-inclusive count the recovered store must report."""
    expected = Database()
    for op in ops:
        _apply_op(expected, op)
    fingerprint = catalog_fingerprint(expected)
    fingerprint["version"] = version
    return fingerprint


def run_durability_case(case: DurabilityCase) -> str | None:
    """Run one case; None when the invariant held, else a detail string."""
    directory = tempfile.mkdtemp(prefix="repro-wal-chaos-")
    try:
        return _run_in_directory(case, directory)
    finally:
        shutil.rmtree(directory, ignore_errors=True)


class _Workload:
    """Mutable run-state of one chaos case: the acked ledger and the
    bookkeeping that predicts the recovered store."""

    def __init__(self) -> None:
        #: Operations covered by an acknowledged commit, in order.
        self.committed: list[tuple] = []
        #: The version the recovered store must report — committed ops
        #: plus every acknowledged transaction marker.
        self.version = 0
        #: (version, committed-op count) after each acked event — the
        #: committed-state boundaries PITR must reproduce.
        self.boundaries: list[tuple[int, int]] = [(0, 0)]
        #: Tables whose create never took effect; later events that
        #: reference them are skipped (the generator assumed the create).
        self.dead: set[str] = set()
        #: The begin-record version of the first acknowledged
        #: transaction — a version strictly inside a transaction, which
        #: PITR must refuse.
        self.interior_version: int | None = None
        #: The event in flight when a crash fired *after* its records
        #: may have become durable (group-commit in-doubt window).
        self.in_doubt: tuple[list[tuple], int] | None = None

    def ack_event(self, ops: list[tuple], version_delta: int) -> None:
        self.committed.extend(ops)
        self.version += version_delta
        self.boundaries.append((self.version, len(self.committed)))


def _run_events(
    case: DurabilityCase, db: Database, events: list[tuple], w: _Workload
) -> bool:
    """Apply the workload; returns True if a SimulatedCrash fired."""
    for event in events:
        if event[0] == "op":
            op = event[1]
            if _references_dead_table(op, w.dead):
                continue
            before = db.catalog.version
            try:
                _apply_op(db, op)
            except SimulatedCrash:
                if case.fault.group_fsync_kill_at is not None:
                    # The batch fsync succeeded before the kill: the op
                    # is durable but was never acknowledged.
                    w.in_doubt = ([op], 1)
                return True
            except WalError:
                # Typed append/fsync failure: the op was NOT acknowledged
                # and its frame was rolled back — it must not reappear.
                if op[0] == "create_table":
                    w.dead.add(op[1])
                continue
            # A duplicate create_index is a catalog no-op: it journals
            # nothing and consumes no version (and 'succeeds' even on a
            # poisoned WAL). Count what really happened — the in-memory
            # before/after delta — not what the generator planned.
            w.ack_event([op], db.catalog.version - before)
        else:
            _, ops, outcome = event
            try:
                txn = db.begin()
            except SimulatedCrash:
                return True
            except WalError:
                # Poisoned/failed WAL: the whole block never started.
                for op in ops:
                    if op[0] == "create_table":
                        w.dead.add(op[1])
                continue
            applied: list[tuple] = []
            consumed = 0  # versions the block's ops actually took
            try:
                for op in ops:
                    if _references_dead_table(op, w.dead):
                        continue
                    before = db.catalog.version
                    try:
                        _apply_op(db, op)
                    except WalError:
                        if op[0] == "create_table":
                            w.dead.add(op[1])
                        continue
                    applied.append(op)
                    consumed += db.catalog.version - before
                if outcome == "commit":
                    txn.commit()
                else:
                    txn.rollback()
            except SimulatedCrash:
                if case.fault.group_fsync_kill_at is not None:
                    # group-fsync-kill fires only after a successful
                    # batch fsync, and inside a transaction only the
                    # terminator waits on one — so the whole block (or
                    # for a rollback, its version bumps) is durable but
                    # unacknowledged.
                    kept = applied if outcome == "commit" else []
                    w.in_doubt = (kept, 2 + consumed)
                return True
            except WalError:
                # The terminator failed to append: the catalog rolled
                # back and the WAL is poisoned — the block contributes
                # nothing durable, and neither will anything after it.
                for op in ops:
                    if op[0] == "create_table":
                        w.dead.add(op[1])
                continue
            if w.interior_version is None:
                w.interior_version = w.version + 1
            if outcome == "commit":
                w.ack_event(applied, 2 + consumed)
            else:
                w.ack_event([], 2 + consumed)
                for op in applied:
                    if op[0] == "create_table":
                        w.dead.add(op[1])
    return False


def _run_in_directory(case: DurabilityCase, directory: str) -> str | None:
    rng = random.Random(case.seed * 7919 + 17)
    events = _generate_events(rng, case.op_count)
    w = _Workload()
    crashed = False
    with fault_injection(case.fault):
        db = Database.open(
            directory,
            fsync=case.fsync,
            segment_bytes=case.segment_bytes,
            batch_every=case.batch_every,
            archive=case.archive,
            # Keep the leader's follower wait out of single-writer runs.
            group_commit_delay=0.0,
        )
        checkpoint_clock = 0
        for start in range(0, len(events)):
            crashed = _run_events(case, db, events[start:start + 1], w)
            if crashed:
                db.wal.abandon()
                break
            checkpoint_clock += 1
            if (
                case.checkpoint_every
                and checkpoint_clock % case.checkpoint_every == 0
            ):
                try:
                    db.checkpoint()
                except SimulatedCrash:
                    crashed = True
                    db.wal.abandon()
                    break
                except WalError:
                    pass  # checkpoint failed; the log is still the truth
        if not crashed:
            db.close()

    want = _expected_fingerprint(w.committed, w.version)
    try:
        recovered = Database.open(directory, archive=case.archive)
    except WalCorruptionError as error:
        return f"recovery refused a crash-consistent store: {error}"
    try:
        got = catalog_fingerprint(recovered)
        accepted = want
        if got != want:
            if w.in_doubt is not None:
                ops, delta = w.in_doubt
                alt = _expected_fingerprint(
                    w.committed + ops, w.version + delta
                )
                if got != alt:
                    return _diff_detail(
                        alt, got, len(w.committed), crashed
                    ) + " (in-doubt variant also mismatched)"
                accepted = alt
            else:
                return _diff_detail(want, got, len(w.committed), crashed)
        leaked = [
            name for name in os.listdir(directory) if name.endswith(".tmp")
        ]
        if leaked:
            return f"leaked temp files after recovery: {leaked}"
    finally:
        recovered.close()
    # Recovery must be idempotent: a second open sees the same state.
    again = Database.open(directory, archive=case.archive)
    try:
        if catalog_fingerprint(again) != accepted:
            return "second recovery diverged from the first"
    finally:
        again.close()
    return _check_pitr(case, directory, w, accepted)


def _check_pitr(
    case: DurabilityCase,
    directory: str,
    w: _Workload,
    accepted: dict[str, Any],
) -> str | None:
    """Point-in-time checks against the recovered store.

    Reproduction of an intermediate boundary needs the full history
    (archive mode, or a log no checkpoint ever truncated); the typed
    refusals hold for every store.
    """
    recovered_version = accepted["version"]
    try:
        Database.open(directory, recover_to=recovered_version + 1000)
        return "recover_to beyond the newest committed version succeeded"
    except PointInTimeUnavailable:
        pass
    if not (case.archive or case.checkpoint_every == 0):
        return None
    reachable = [
        b for b in w.boundaries if b[0] <= recovered_version
    ]
    if reachable:
        pick = random.Random(case.seed * 104729 + 5)
        version, n_ops = reachable[pick.randrange(len(reachable))]
        try:
            at = Database.open(directory, recover_to=version)
        except WalError as error:
            return f"recover_to={version} refused a committed boundary: " \
                f"{error}"
        got = catalog_fingerprint(at)
        want = _expected_fingerprint(w.committed[:n_ops], version)
        if got != want:
            return (
                f"recover_to={version} diverged from the committed prefix: "
                + _diff_detail(want, got, n_ops, crashed=False)
            )
    interior = w.interior_version
    if interior is not None and interior <= recovered_version:
        try:
            Database.open(directory, recover_to=interior)
            return (
                f"recover_to={interior} (inside a transaction) succeeded"
            )
        except PointInTimeUnavailable:
            pass
    return None


def _diff_detail(
    want: dict, got: dict, acked: int, crashed: bool
) -> str:
    parts = [
        f"recovered state != acknowledged prefix ({acked} acked ops, "
        f"crashed={crashed})"
    ]
    if want["version"] != got["version"]:
        parts.append(
            f"version {got['version']} != expected {want['version']}"
        )
    missing = sorted(set(want["tables"]) - set(got["tables"]))
    phantom = sorted(set(got["tables"]) - set(want["tables"]))
    if missing:
        parts.append(f"lost tables {missing}")
    if phantom:
        parts.append(f"phantom tables {phantom}")
    for name in sorted(set(want["tables"]) & set(got["tables"])):
        if want["tables"][name] != got["tables"][name]:
            wrows = want["tables"][name]["rows"]
            grows = got["tables"][name]["rows"]
            parts.append(
                f"table {name}: {len(grows)} rows != {len(wrows)} expected"
            )
    if want["foreign_keys"] != got["foreign_keys"]:
        parts.append("foreign keys diverged")
    return "; ".join(parts)


def run_durability_chaos(
    seed: int = 0,
    n: int = 50,
    stop_after: int = 5,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Sweep ``n`` seeded crash-point cases; exact transactional prefix
    durability (plus point-in-time spot checks) for every one of them."""
    report = ChaosReport()
    for case_seed in range(seed, seed + n):
        case = build_durability_case(case_seed)
        detail = run_durability_case(case)
        report.cases += 1
        report.outcomes[case.scenario] = (
            report.outcomes.get(case.scenario, 0) + 1
        )
        if detail is not None:
            report.failures.append(ChaosFailure(case, detail))
            if progress is not None:
                progress(
                    f"seed {case_seed} [{case.scenario}] FAILED: {detail}"
                )
            if len(report.failures) >= stop_after:
                break
        elif progress is not None and report.cases % 25 == 0:
            progress(f"{report.cases}/{n} cases ok")
    return report
