"""Seeded random schemas, data, and dialect queries for differential fuzzing.

Everything is driven by one ``random.Random(seed)`` instance, so a case is
fully reproducible from its seed. The generator is *semantics-aware*: it
only emits queries whose meaning is identical in this engine and in the
SQLite oracle, steering around the documented gaps (see
:mod:`repro.sql.sqlite`):

* type-directed generation — the engine raises on cross-type comparisons
  where SQLite's universal type ordering would happily answer;
* floats are multiples of 0.25 with bounded magnitude, so sums are exact
  in binary and aggregation order cannot change results;
* no division or modulo (engine raises on zero, SQLite returns NULL);
* no LIMIT (nondeterministic multiset) and no ORDER BY (irrelevant under
  multiset comparison);
* scalar subqueries are always single-aggregate selects (exactly one row);
* union branches agree on per-position types (plus free NULLs), so UNION
  distinct never compares across types.

Data targets the paper's stress axes: skewed group sizes (a few big
groups, a long tail), NULL-heavy grouping and value columns, groups that
a per-group WHERE empties out, and FK chains between tables for joins
under and over GApply.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.api import Database
from repro.sql import ast as A
from repro.sql.printer import print_query
from repro.storage.types import DataType

STRING_VOCAB = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")
GROUP_VARIABLE = "g"

AGG_FUNCTIONS = ("count", "sum", "avg", "min", "max")


# ----------------------------------------------------------------------
# Schema + data
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FuzzColumn:
    name: str
    dtype: DataType
    role: str  # "pk" | "group" | "value" | "fk"


@dataclass
class FuzzTable:
    name: str
    columns: list[FuzzColumn]
    rows: list[tuple]
    primary_key: list[str]

    def columns_of(self, *dtypes: DataType) -> list[FuzzColumn]:
        return [c for c in self.columns if c.dtype in dtypes]


@dataclass
class FuzzDatabase:
    """A generated schema + data set, buildable into both engines."""

    tables: list[FuzzTable]
    # (child_table, child_column, parent_table, parent_column)
    foreign_keys: list[tuple[str, str, str, str]] = field(default_factory=list)

    def build(self) -> Database:
        db = Database()
        for table in self.tables:
            db.create_table(
                table.name,
                [(c.name, c.dtype) for c in table.columns],
                table.rows,
                primary_key=table.primary_key or None,
            )
        for child, child_col, parent, parent_col in self.foreign_keys:
            db.add_foreign_key(child, [child_col], parent, [parent_col])
        return db

    def table(self, name: str) -> FuzzTable:
        for table in self.tables:
            if table.name == name:
                return table
        raise KeyError(name)


def _grid_float(rng: random.Random) -> float:
    # Multiples of 0.25 are exactly representable; bounded magnitude keeps
    # products and sums exact too, making aggregation order-independent.
    return rng.randrange(-400, 1600) * 0.25


def _group_pool(rng: random.Random, dtype: DataType) -> list:
    size = rng.choice([1, 2, 2, 3, 3, 4])
    if dtype is DataType.INTEGER:
        return rng.sample(range(0, 10), size)
    return rng.sample(STRING_VOCAB, size)


def _skewed_pick(rng: random.Random, pool: list):
    # Zipf-flavored: the first pool element dominates, giving one big
    # group and a tail of small ones (the paper's skew concern).
    if len(pool) == 1 or rng.random() < 0.5:
        return pool[0]
    return rng.choice(pool[1:])


def generate_database(rng: random.Random) -> FuzzDatabase:
    n_tables = rng.choice([1, 2, 2, 3])
    tables: list[FuzzTable] = []
    fks: list[tuple[str, str, str, str]] = []
    for index in range(n_tables):
        prefix = f"t{index}"
        columns = [FuzzColumn(f"{prefix}id", DataType.INTEGER, "pk")]
        for g in range(rng.choice([1, 1, 2])):
            dtype = rng.choice([DataType.INTEGER, DataType.STRING])
            columns.append(FuzzColumn(f"{prefix}g{g}", dtype, "group"))
        for v in range(rng.choice([1, 2, 2])):
            dtype = rng.choice([DataType.INTEGER, DataType.FLOAT])
            columns.append(FuzzColumn(f"{prefix}v{v}", dtype, "value"))
        if rng.random() < 0.6:
            columns.append(FuzzColumn(f"{prefix}s0", DataType.STRING, "value"))
        parent: FuzzTable | None = None
        if index > 0 and rng.random() < 0.7:
            parent = rng.choice(tables)
            columns.append(FuzzColumn(f"{prefix}fk", DataType.INTEGER, "fk"))

        n_rows = rng.choice([0, 3, 6, 10, 16, 25, 40])
        null_rate = rng.choice([0.0, 0.1, 0.3, 0.5])
        pools = {
            c.name: _group_pool(rng, c.dtype) for c in columns if c.role == "group"
        }
        parent_keys = [row[0] for row in parent.rows] if parent else []
        rows = []
        for pk in range(1, n_rows + 1):
            row = []
            for column in columns:
                if column.role == "pk":
                    row.append(pk)
                elif column.role == "group":
                    if rng.random() < null_rate:
                        row.append(None)
                    else:
                        row.append(_skewed_pick(rng, pools[column.name]))
                elif column.role == "fk":
                    if parent_keys and rng.random() > null_rate:
                        row.append(rng.choice(parent_keys))
                    else:
                        row.append(None)
                elif rng.random() < null_rate:
                    row.append(None)
                elif column.dtype is DataType.INTEGER:
                    row.append(rng.randint(-50, 200))
                elif column.dtype is DataType.FLOAT:
                    row.append(_grid_float(rng))
                else:
                    row.append(rng.choice(STRING_VOCAB))
            rows.append(tuple(row))
        table = FuzzTable(prefix, columns, rows, [f"{prefix}id"])
        tables.append(table)
        if parent is not None:
            fks.append((prefix, f"{prefix}fk", parent.name, f"{parent.name}id"))
    return FuzzDatabase(tables, fks)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

_NUMERIC = (DataType.INTEGER, DataType.FLOAT)


def _lit(value) -> A.AstLiteral:
    return A.AstLiteral(value)


def _col(column: FuzzColumn) -> A.AstColumn:
    return A.AstColumn(column.name)


class _QueryGenerator:
    def __init__(self, rng: random.Random, db: FuzzDatabase):
        self.rng = rng
        self.db = db

    # -- literals ------------------------------------------------------

    def literal_for(self, dtype: DataType) -> A.AstLiteral:
        rng = self.rng
        if dtype is DataType.INTEGER:
            return _lit(rng.randint(-50, 200))
        if dtype is DataType.FLOAT:
            return _lit(_grid_float(rng))
        return _lit(rng.choice(STRING_VOCAB))

    # -- scalar expressions -------------------------------------------

    def scalar(self, columns: list[FuzzColumn], dtype: DataType, depth: int = 1):
        """A scalar expression of the given type over the given columns."""
        rng = self.rng
        typed = [c for c in columns if c.dtype is dtype]
        numeric = [c for c in columns if c.dtype in _NUMERIC]
        strings = [c for c in columns if c.dtype is DataType.STRING]
        choices = ["literal"]
        if typed:
            choices += ["column"] * 4 + ["coalesce"]
        if depth > 0:
            if dtype in _NUMERIC and typed:
                choices += ["arith", "abs"]
            if dtype is DataType.INTEGER and strings:
                choices.append("length")
            if dtype is DataType.STRING and typed:
                choices += ["upper", "lower", "concat"]
            if typed and (numeric or strings):
                choices.append("case")
        kind = rng.choice(choices)
        if kind == "column":
            return _col(rng.choice(typed))
        if kind == "literal":
            return self.literal_for(dtype)
        if kind == "coalesce":
            return A.AstFunction(
                "coalesce", (_col(rng.choice(typed)), self.literal_for(dtype))
            )
        if kind == "arith":
            op = rng.choice(["+", "-", "*"])
            right = (
                _col(rng.choice(typed))
                if rng.random() < 0.5
                else self.literal_for(dtype)
            )
            if op == "*":  # keep magnitudes bounded and exact
                right = _lit(rng.randint(-3, 4))
            return A.AstBinary(op, _col(rng.choice(typed)), right)
        if kind == "abs":
            return A.AstFunction("abs", (_col(rng.choice(typed)),))
        if kind == "length":
            return A.AstFunction("length", (_col(rng.choice(strings)),))
        if kind in ("upper", "lower"):
            return A.AstFunction(kind, (_col(rng.choice(typed)),))
        if kind == "concat":
            return A.AstFunction(
                "concat", (_col(rng.choice(typed)), self.literal_for(dtype))
            )
        assert kind == "case"
        condition = self.atom(columns)
        return A.AstCase(
            whens=((condition, self.scalar(columns, dtype, 0)),),
            default=self.scalar(columns, dtype, 0),
        )

    # -- predicates ----------------------------------------------------

    def atom(self, columns: list[FuzzColumn]) -> A.AstExpression:
        """A simple (subquery-free) boolean atom."""
        rng = self.rng
        column = rng.choice(columns)
        kind = rng.choice(["cmp", "cmp", "cmp", "between", "inlist", "isnull"])
        if kind == "isnull":
            return A.AstIsNull(_col(column), negated=rng.random() < 0.4)
        if column.dtype in _NUMERIC:
            peers = [c for c in columns if c.dtype in _NUMERIC and c is not column]
        else:
            peers = [
                c for c in columns if c.dtype is column.dtype and c is not column
            ]
        if kind == "between" and column.dtype in _NUMERIC:
            low, high = sorted(
                [self.literal_for(column.dtype).value for _ in range(2)],
                key=lambda v: (v is None, v),
            )
            return A.AstBetween(
                _col(column), _lit(low), _lit(high), negated=rng.random() < 0.3
            )
        if kind == "inlist":
            items = tuple(
                self.literal_for(column.dtype)
                for _ in range(rng.randint(1, 3))
            )
            return A.AstInList(_col(column), items, negated=rng.random() < 0.3)
        op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        if peers and rng.random() < 0.35:
            return A.AstBinary(op, _col(column), _col(rng.choice(peers)))
        return A.AstBinary(op, _col(column), self.literal_for(column.dtype))

    def boolean(self, columns: list[FuzzColumn], depth: int = 1) -> A.AstExpression:
        """A subquery-free boolean expression (atoms under AND/OR/NOT)."""
        rng = self.rng
        choices = ["atom"] * 4 + (["and", "or", "not"] if depth > 0 else [])
        kind = rng.choice(choices)
        if kind == "atom":
            return self.atom(columns)
        if kind in ("and", "or"):
            return A.AstBinary(
                kind, self.boolean(columns, depth - 1), self.boolean(columns, depth - 1)
            )
        return A.AstUnary("not", self.boolean(columns, 0))

    def predicate(
        self,
        columns: list[FuzzColumn],
        subquery_tables: list[FuzzTable] = (),
        group_columns: list[FuzzColumn] | None = None,
        depth: int = 1,
    ) -> A.AstExpression:
        """A WHERE predicate: a boolean core AND-ed with subquery atoms.

        The engine's binder decorrelates subqueries only when they appear
        as top-level WHERE conjuncts, so subqueries (EXISTS / IN / scalar
        aggregate comparisons) are only ever AND-ed in, never nested under
        OR or NOT. ``subquery_tables`` are base tables usable inside them;
        ``group_columns`` being set means the group variable is in scope,
        enabling per-group subqueries over it.
        """
        rng = self.rng
        kinds = []
        if subquery_tables:
            kinds += ["exists", "insub"]
        if group_columns is not None:
            kinds += ["group_agg", "group_agg", "group_exists", "group_insub"]
        conjuncts: list[A.AstExpression] = []
        if not kinds or rng.random() < 0.75:
            conjuncts.append(self.boolean(columns, depth))
        if kinds:
            budget = 1 if rng.random() < 0.8 else 2
            for _ in range(budget):
                if conjuncts and rng.random() < 0.5:
                    continue
                kind = rng.choice(kinds)
                if kind == "exists":
                    conjuncts.append(
                        self._exists_subquery(rng.choice(subquery_tables), columns)
                    )
                elif kind == "insub":
                    conjuncts.append(
                        self._in_subquery(rng.choice(subquery_tables), columns)
                    )
                elif kind == "group_agg":
                    conjuncts.append(
                        self._group_aggregate_cmp(columns, group_columns)
                    )
                elif kind == "group_exists":
                    conjuncts.append(self._group_exists(group_columns))
                else:
                    conjuncts.append(
                        self._group_in_subquery(columns, group_columns)
                    )
        if not conjuncts:
            conjuncts.append(self.boolean(columns, depth))
        predicate = conjuncts[0]
        for extra in conjuncts[1:]:
            predicate = A.AstBinary("and", predicate, extra)
        return predicate

    def _exists_subquery(self, table: FuzzTable, outer_columns) -> A.AstExpression:
        """EXISTS over a base table, correlated by an equality when a
        type-compatible column pair exists."""
        rng = self.rng
        conjuncts = [self.atom(table.columns)]
        pairs = [
            (inner, outer)
            for inner in table.columns
            for outer in outer_columns
            if inner.dtype is outer.dtype and inner.name != outer.name
        ]
        if pairs and rng.random() < 0.6:
            inner, outer = rng.choice(pairs)
            conjuncts.append(A.AstBinary("=", _col(inner), _col(outer)))
        where = conjuncts[0]
        for extra in conjuncts[1:]:
            where = A.AstBinary("and", where, extra)
        select = A.AstSelect(
            items=(A.AstSelectItem(_lit(1)),),
            from_items=(A.AstTableRef(table.name),),
            where=where,
        )
        return A.AstExists(
            A.AstQuery((select,)), negated=rng.random() < 0.4
        )

    def _in_subquery(self, table: FuzzTable, outer_columns) -> A.AstExpression:
        rng = self.rng
        inner = rng.choice(table.columns)
        outers = [c for c in outer_columns if c.dtype is inner.dtype]
        if not outers:
            return self.atom(outer_columns)
        select = A.AstSelect(
            items=(A.AstSelectItem(_col(inner)),),
            from_items=(A.AstTableRef(table.name),),
            where=self.atom(table.columns) if rng.random() < 0.6 else None,
        )
        return A.AstInSubquery(
            _col(rng.choice(outers)),
            A.AstQuery((select,)),
            negated=rng.random() < 0.4,
        )

    def _group_scalar_aggregate(self, group_columns) -> A.AstScalarSubquery:
        """``(select agg(col) from g [where ..])`` — exactly one row."""
        rng = self.rng
        numeric = [c for c in group_columns if c.dtype in _NUMERIC]
        if numeric:
            fn = rng.choice(["avg", "sum", "min", "max", "count"])
            arg = _col(rng.choice(numeric))
            agg = A.AstFunction(fn, (arg,))
        else:
            agg = A.AstFunction("count", (), star=True)
        select = A.AstSelect(
            items=(A.AstSelectItem(agg),),
            from_items=(A.AstTableRef(GROUP_VARIABLE),),
            where=self.atom(group_columns) if rng.random() < 0.3 else None,
        )
        return A.AstScalarSubquery(A.AstQuery((select,)))

    def _group_aggregate_cmp(self, columns, group_columns) -> A.AstExpression:
        """``col >= (select avg(v) from g)`` — the paper's Q2/Q3 shape."""
        rng = self.rng
        numeric = [c for c in columns if c.dtype in _NUMERIC]
        if not numeric:
            return self.atom(columns)
        op = rng.choice(["<", "<=", ">", ">=", "=", "<>"])
        return A.AstBinary(
            op, _col(rng.choice(numeric)), self._group_scalar_aggregate(group_columns)
        )

    def _group_exists(self, group_columns) -> A.AstExpression:
        rng = self.rng
        select = A.AstSelect(
            items=(A.AstSelectItem(_lit(1)),),
            from_items=(A.AstTableRef(GROUP_VARIABLE),),
            where=self.atom(group_columns),
        )
        return A.AstExists(A.AstQuery((select,)), negated=rng.random() < 0.4)

    def _group_in_subquery(self, columns, group_columns) -> A.AstExpression:
        rng = self.rng
        inner = rng.choice(group_columns)
        outers = [c for c in columns if c.dtype is inner.dtype]
        if not outers:
            return self.atom(columns)
        select = A.AstSelect(
            items=(A.AstSelectItem(_col(inner)),),
            from_items=(A.AstTableRef(GROUP_VARIABLE),),
            where=self.atom(group_columns) if rng.random() < 0.5 else None,
        )
        return A.AstInSubquery(
            _col(rng.choice(outers)),
            A.AstQuery((select,)),
            negated=rng.random() < 0.4,
        )

    # -- aggregates ----------------------------------------------------

    def aggregate_item(self, columns: list[FuzzColumn], dtype: DataType):
        """An aggregate expression whose result has the given type."""
        rng = self.rng
        numeric = [c for c in columns if c.dtype in _NUMERIC]
        if dtype is DataType.INTEGER:
            kind = rng.choice(["count_star", "count", "count_distinct", "minmax_int"])
            if kind == "count_star":
                return A.AstFunction("count", (), star=True)
            if kind == "count":
                return A.AstFunction("count", (_col(rng.choice(columns)),))
            if kind == "count_distinct":
                return A.AstFunction(
                    "count", (_col(rng.choice(columns)),), distinct=True
                )
            ints = [c for c in columns if c.dtype is DataType.INTEGER]
            if ints:
                return A.AstFunction(
                    rng.choice(["min", "max", "sum"]), (_col(rng.choice(ints)),)
                )
            return A.AstFunction("count", (), star=True)
        if dtype is DataType.FLOAT:
            if numeric:
                fn = rng.choice(["avg", "sum", "min", "max"])
                return A.AstFunction(fn, (_col(rng.choice(numeric)),))
            return None
        strings = [c for c in columns if c.dtype is DataType.STRING]
        if strings:
            return A.AstFunction(
                rng.choice(["min", "max"]), (_col(rng.choice(strings)),)
            )
        return None

    # -- query shapes --------------------------------------------------

    def _output_dtype(self, columns: list[FuzzColumn]) -> DataType:
        """An output-column type; STRING only when a string column exists
        (so every union branch can produce items/aggregates of the type)."""
        pool = [DataType.INTEGER, DataType.FLOAT]
        if any(c.dtype is DataType.STRING for c in columns):
            pool.append(DataType.STRING)
        return self.rng.choice(pool)

    def from_clause(
        self, want_join: bool
    ) -> tuple[tuple[A.AstNode, ...], A.AstExpression | None, list[FuzzColumn]]:
        """FROM items + join predicate + the columns they bring in scope."""
        rng = self.rng
        tables = self.db.tables
        first = rng.choice(tables)
        if not want_join or len(tables) < 2:
            return (A.AstTableRef(first.name),), None, list(first.columns)
        # Prefer an FK pair; fall back to any same-type column pair.
        candidates = []
        for child, child_col, parent, parent_col in self.db.foreign_keys:
            candidates.append((child, child_col, parent, parent_col))
        if candidates and rng.random() < 0.8:
            child, child_col, parent, parent_col = rng.choice(candidates)
            left, right = self.db.table(child), self.db.table(parent)
            condition = A.AstBinary("=", A.AstColumn(child_col), A.AstColumn(parent_col))
        else:
            second = rng.choice([t for t in tables if t is not first])
            pairs = [
                (a, b)
                for a in first.columns
                for b in second.columns
                if a.dtype is b.dtype
            ]
            if not pairs:
                return (A.AstTableRef(first.name),), None, list(first.columns)
            a, b = rng.choice(pairs)
            left, right = first, second
            condition = A.AstBinary("=", _col(a), _col(b))
        columns = list(left.columns) + list(right.columns)
        if rng.random() < 0.5:
            items = (
                A.AstJoin(
                    A.AstTableRef(left.name), A.AstTableRef(right.name), condition
                ),
            )
            return items, None, columns
        items = (A.AstTableRef(left.name), A.AstTableRef(right.name))
        return items, condition, columns

    def other_tables(self, in_scope: list[FuzzColumn]) -> list[FuzzTable]:
        scoped = {c.name for c in in_scope}
        return [
            t
            for t in self.db.tables
            if not any(c.name in scoped for c in t.columns)
        ]

    # -- plain (non-GApply) queries -----------------------------------

    def plain_query(self) -> A.AstQuery:
        rng = self.rng
        from_items, join_pred, columns = self.from_clause(rng.random() < 0.4)
        subq_tables = self.other_tables(columns)
        if rng.random() < 0.35:
            select = self._grouped_select(from_items, join_pred, columns, subq_tables)
            return A.AstQuery((select,))
        n_items = rng.randint(1, 3)
        dtypes = [self._output_dtype(columns) for _ in range(n_items)]
        selects = []
        for _ in range(rng.choice([1, 1, 1, 2])):
            items = tuple(
                A.AstSelectItem(self.scalar(columns, dtype), alias=f"c{i}")
                for i, dtype in enumerate(dtypes)
            )
            where = join_pred
            if rng.random() < 0.8:
                extra = self.predicate(columns, subq_tables)
                where = A.AstBinary("and", where, extra) if where else extra
            selects.append(
                A.AstSelect(
                    items=items,
                    from_items=from_items,
                    where=where,
                    distinct=rng.random() < 0.25,
                )
            )
        union_all = len(selects) == 1 or rng.random() < 0.8
        return A.AstQuery(tuple(selects), union_all=union_all)

    def _grouped_select(
        self, from_items, join_pred, columns, subq_tables
    ) -> A.AstSelect:
        rng = self.rng
        group_col = rng.choice(
            [c for c in columns if c.role in ("group", "fk")] or columns
        )
        items = [A.AstSelectItem(_col(group_col), alias="k")]
        for i in range(rng.randint(1, 2)):
            agg = None
            while agg is None:
                agg = self.aggregate_item(columns, self._output_dtype(columns))
            items.append(A.AstSelectItem(agg, alias=f"a{i}"))
        where = join_pred
        if rng.random() < 0.5:
            extra = self.predicate(columns, subq_tables)
            where = A.AstBinary("and", where, extra) if where else extra
        having = None
        if rng.random() < 0.3:
            having = A.AstBinary(
                rng.choice(["<", "<=", ">", ">=", "="]),
                A.AstFunction("count", (), star=True),
                _lit(rng.randint(0, 4)),
            )
        return A.AstSelect(
            items=tuple(items),
            from_items=from_items,
            where=where,
            group_by=(group_col.name,),
            having=having,
        )

    # -- GApply queries ------------------------------------------------

    def gapply_query(self) -> A.AstQuery:
        rng = self.rng
        from_items, join_pred, columns = self.from_clause(rng.random() < 0.4)
        subq_tables = self.other_tables(columns)
        key_candidates = [c for c in columns if c.role in ("group", "fk")] or columns
        n_keys = min(len(key_candidates), rng.choice([1, 1, 1, 2]))
        keys = rng.sample(key_candidates, n_keys)

        outer_where = join_pred
        if rng.random() < 0.4:
            extra = self.predicate(columns, subq_tables)
            outer_where = (
                A.AstBinary("and", outer_where, extra) if outer_where else extra
            )

        n_cols = rng.randint(1, 3)
        dtypes = [self._output_dtype(columns) for _ in range(n_cols)]
        n_branches = rng.choice([1, 1, 2, 2, 3])
        branches = tuple(
            self._pgq_branch(columns, dtypes) for _ in range(n_branches)
        )
        union_all = n_branches == 1 or rng.random() < 0.85
        pgq = A.AstQuery(branches, union_all=union_all)
        names = tuple(f"o{i}" for i in range(n_cols))
        select = A.AstSelect(
            items=(),
            from_items=from_items,
            where=outer_where,
            group_by=tuple(k.name for k in keys),
            group_variable=GROUP_VARIABLE,
            gapply=A.AstGApplyItem(pgq, names),
        )
        return A.AstQuery((select,))

    def _pgq_branch(self, columns, dtypes) -> A.AstSelect:
        rng = self.rng
        kind = rng.choice(["row", "row", "agg", "agg", "grouped"])
        if kind == "grouped":
            # The inner grouping key occupies output position 0, so it must
            # match that position's type plan.
            if len(dtypes) < 2 or not any(c.dtype is dtypes[0] for c in columns):
                kind = "agg"
        if kind == "row":
            items = tuple(
                A.AstSelectItem(self.scalar(columns, dtype))
                for dtype in dtypes
            )
            where = None
            if rng.random() < 0.7:
                where = self.predicate(columns, [], group_columns=columns)
            return A.AstSelect(
                items=items,
                from_items=(A.AstTableRef(GROUP_VARIABLE),),
                where=where,
                distinct=rng.random() < 0.2,
            )
        if kind == "agg":
            items = []
            aggregate_positions = []
            for position, dtype in enumerate(dtypes):
                agg = (
                    self.aggregate_item(columns, dtype)
                    if rng.random() < 0.7
                    else None
                )
                if agg is not None:
                    aggregate_positions.append(position)
                    items.append(A.AstSelectItem(agg))
                else:
                    value = (
                        self.literal_for(dtype) if rng.random() < 0.7 else _lit(None)
                    )
                    items.append(A.AstSelectItem(value))
            if not aggregate_positions:
                # Every position must stay on its type plan; _output_dtype
                # guarantees an aggregate exists for each planned type.
                position = rng.randrange(len(dtypes))
                agg = None
                while agg is None:
                    agg = self.aggregate_item(columns, dtypes[position])
                items[position] = A.AstSelectItem(agg)
            where = None
            if rng.random() < 0.5:
                where = self.predicate(columns, [], group_columns=columns)
            return A.AstSelect(
                items=tuple(items),
                from_items=(A.AstTableRef(GROUP_VARIABLE),),
                where=where,
            )
        # Grouped branch: group the group's rows again by some column
        # type-matching output position 0 (checked above).
        inner_key = rng.choice([c for c in columns if c.dtype is dtypes[0]])
        items = [A.AstSelectItem(_col(inner_key))]
        for dtype in dtypes[1:]:
            agg = None
            while agg is None:
                agg = self.aggregate_item(columns, dtype)
            items.append(A.AstSelectItem(agg))
        having = None
        if rng.random() < 0.4:
            having = A.AstBinary(
                rng.choice(["<", "<=", ">", ">="]),
                A.AstFunction("count", (), star=True),
                _lit(rng.randint(0, 3)),
            )
        return A.AstSelect(
            items=tuple(items),
            from_items=(A.AstTableRef(GROUP_VARIABLE),),
            where=self.atom(columns) if rng.random() < 0.4 else None,
            group_by=(inner_key.name,),
            having=having,
        )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


@dataclass
class FuzzCase:
    """One reproducible fuzz input: seed, database, query."""

    seed: int
    db: FuzzDatabase
    query: A.AstQuery

    @property
    def sql(self) -> str:
        return print_query(self.query)


def generate_case(seed: int) -> FuzzCase:
    rng = random.Random(seed)
    db = generate_database(rng)
    while all(not t.rows for t in db.tables) and len(db.tables) < 4:
        # An all-empty database exercises nothing; re-roll data sizes.
        db = generate_database(rng)
    gen = _QueryGenerator(rng, db)
    if rng.random() < 0.55:
        query = gen.gapply_query()
    else:
        query = gen.plain_query()
    return FuzzCase(seed=seed, db=db, query=query)
