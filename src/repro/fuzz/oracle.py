"""SQLite oracle execution and NULL-aware multiset comparison.

The differential fuzzer's ground truth: mirror the engine catalog into an
in-memory ``sqlite3`` database, run the lowered query
(:func:`repro.sql.sqlite.to_sqlite`) there, and compare its rows against
the engine's as *multisets* — neither side guarantees an order, and both
sides' NULLs must compare equal to each other for the purpose of "same
bag of rows".

Normalization rules (`normalize_value`):

* ``bool`` -> ``int`` (the engine has a BOOLEAN type, SQLite stores 0/1);
* ``date`` -> ISO string (SQLite has no date type; the mirror stores text);
* integral ``float`` -> ``int`` (SQLite's ``sum`` over INTEGER yields int
  where the engine may carry float, and vice versa for ``avg``);
* other floats are rounded through ``repr`` at 12 significant digits so
  the two engines' different summation orders cannot manufacture a
  last-ulp mismatch (the generator additionally emits only values exactly
  representable in binary, making sums order-independent in practice).
"""

from __future__ import annotations

import datetime as _dt
import sqlite3
from dataclasses import dataclass

from repro.sql import ast as A
from repro.sql.parser import parse
from repro.sql.sqlite import to_sqlite
from repro.storage.catalog import Catalog
from repro.storage.types import DataType

_SQLITE_TYPES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "REAL",
    DataType.STRING: "TEXT",
    DataType.BOOLEAN: "INTEGER",
    DataType.DATE: "TEXT",
    DataType.ANY: "",
}


def _storage_value(value):
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, _dt.date):
        return value.isoformat()
    return value


def sqlite_mirror(catalog: Catalog) -> sqlite3.Connection:
    """An in-memory SQLite database holding every catalog table.

    Column names are the engine's bare names (the dialect requires them
    to be unambiguous, so no qualification is needed on the mirror side).
    """
    connection = sqlite3.connect(":memory:")
    for table in catalog:
        decls = ", ".join(
            f'"{column.name}" {_SQLITE_TYPES[column.dtype]}'.strip()
            for column in table.schema
        )
        connection.execute(f'CREATE TABLE "{table.name}" ({decls})')
        if table.rows:
            slots = ", ".join("?" for _ in table.schema)
            connection.executemany(
                f'INSERT INTO "{table.name}" VALUES ({slots})',
                [tuple(_storage_value(v) for v in row) for row in table.rows],
            )
    connection.commit()
    return connection


def run_oracle(
    query: str | A.AstQuery, connection: sqlite3.Connection
) -> list[tuple]:
    """Lower a dialect query and execute it on the SQLite mirror."""
    ast = parse(query) if isinstance(query, str) else query
    return [tuple(row) for row in connection.execute(to_sqlite(ast))]


# ----------------------------------------------------------------------
# Normalization + comparison
# ----------------------------------------------------------------------


def normalize_value(value):
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, _dt.date):
        return value.isoformat()
    if isinstance(value, float):
        if value.is_integer():
            return int(value)
        return float(f"{value:.12g}")
    return value


def normalize_row(row: tuple) -> tuple:
    return tuple(normalize_value(value) for value in row)


def _sort_key(row: tuple):
    # NULL-aware total order: None sorts first within its column, and the
    # type name breaks ties between int/str etc. so heterogeneous columns
    # (possible via CASE/coalesce) still sort deterministically.
    return tuple(
        (0, "", 0) if value is None else (1, type(value).__name__, value)
        for value in row
    )


def _ordered(rows: list[tuple]) -> list[tuple]:
    normalized = [normalize_row(row) for row in rows]
    try:
        return sorted(normalized, key=_sort_key)
    except TypeError:
        # Same column holds e.g. int and str across rows; fall back to a
        # representation sort (still a total order, still deterministic).
        return sorted(normalized, key=repr)


@dataclass(frozen=True)
class Mismatch:
    """First divergences between two normalized multisets, for reporting."""

    left_only: tuple[tuple, ...]
    right_only: tuple[tuple, ...]

    def describe(self, left_name: str = "engine", right_name: str = "oracle") -> str:
        lines = []
        for name, rows in ((left_name, self.left_only), (right_name, self.right_only)):
            for row in rows[:5]:
                lines.append(f"  only in {name}: {row!r}")
        return "\n".join(lines) or "  (row counts differ)"


def compare_multisets(left: list[tuple], right: list[tuple]) -> Mismatch | None:
    """None when the two row bags are equal after normalization."""
    left_sorted = _ordered(left)
    right_sorted = _ordered(right)
    if left_sorted == right_sorted:
        return None
    from collections import Counter

    left_counts = Counter(left_sorted)
    right_counts = Counter(right_sorted)
    left_only = tuple(row for row in left_sorted if left_counts[row] > right_counts[row])
    right_only = tuple(
        row for row in right_sorted if right_counts[row] > left_counts[row]
    )
    return Mismatch(left_only=left_only, right_only=right_only)
