"""Differential fuzzing of the streaming XML publisher.

Two layers of seeded random cases, both with a materialized reference:

* **Tagger-level** — a random :class:`~repro.xmlpub.tagger.TaggerSpec`
  (random key arity, scalar/rows branches with disjoint payload slices,
  optional containers) over a random clustered row stream drawn from a
  hostile value pool (control characters, ``]]>``, markup characters,
  ``\\r``, unicode, NULL, dates, booleans, quarter-step floats). Checks:

  1. *chunk invariance* — ``stream_document`` output re-joined is
     byte-identical to ``tag_to_string`` for chunk sizes from 1 byte to
     64 KiB; chunking must move framing, never bytes;
  2. *parse round-trip* — the document parses with a conforming XML
     parser (:mod:`xml.etree.ElementTree`) and the parsed element
     structure equals an **independent simulation** built straight from
     the spec and rows (group boundaries, container nesting, key items,
     field texts via :func:`~repro.xmlpub.tagger.sanitize_parsed_text`) —
     this is what catches group-boundary and escaping bugs.

* **View-level** (sampled) — the standard supplier view over randomized
  hostile table data, published end-to-end through
  :meth:`Database.publish <repro.api.Database.publish>`: streamed bytes
  must equal materializing the same SQL formulation and tagging it, for
  both formulations × both engines × serial/thread (and sampled process)
  GApply backends.

Failures shrink greedily (drop groups, drop rows, simplify strings) while
preserving the failing stage, and persist as typed-value JSON reproducers
under ``tests/fuzz_corpus/xmlpub/`` — a separate directory from the SQL
corpus because the payload shape differs. Tier-1 replays every file.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import random
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.api import Database
from repro.errors import ReproError
from repro.storage.types import DataType
from repro.xmlpub.stream import PublishStats, stream_document
from repro.xmlpub.tagger import (
    ConstantSpaceTagger,
    KeyItem,
    RowsBranch,
    ScalarBranch,
    TaggerSpec,
    sanitize_parsed_text,
)
from repro.xmlpub.translate import FORMULATIONS, translate_xquery
from repro.xmlpub.view import tpch_supplier_view

#: Chunk sizes every tagger-level case is streamed at; 1 forces a flush
#: per fragment, 64 KiB usually yields a single chunk.
CHUNK_SIZES = (1, 7, 64, 65536)

#: Values designed to break escaping, formatting, or parser round-trips.
NASTY_VALUES: tuple[Any, ...] = (
    None,
    True,
    False,
    0,
    -7,
    123456789,
    0.25,
    -3.75,
    55.0,
    1e10,
    "",
    "plain",
    "a&b<c>d",
    "]]>",
    "two\nlines",
    "tab\tsep",
    "carriage\rreturn",
    "\r\n",
    "\x00",
    "ctl\x01\x02chars",
    "\x1f",
    "quote'dq\"",
    "ünïcödé ☃",
    "x" * 100,
    datetime.date(2003, 6, 9),
    datetime.date(1970, 1, 1),
)

#: Hostile strings for the view-level cases (flow into p_name / s_name).
NASTY_STRINGS = tuple(v for v in NASTY_VALUES if isinstance(v, str))

_TAG_WORDS = ("g", "item", "val", "node", "k", "row", "grp", "f", "leaf")


@dataclass
class XmlPubCase:
    """One tagger-level reproducer: a spec plus a clustered row stream."""

    seed: int
    spec: TaggerSpec
    rows: list[tuple]


@dataclass
class XmlPubFailure:
    seed: int
    stage: str  # "chunking" | "parse" | "view" | "error"
    detail: str
    case: XmlPubCase | None = None

    def describe(self) -> dict[str, Any]:
        return {"seed": self.seed, "stage": self.stage, "detail": self.detail}


@dataclass
class XmlPubReport:
    cases: int = 0
    checked: int = 0
    view_cases: int = 0
    failures: list[XmlPubFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"xmlpub fuzz: {self.cases} tagger cases "
            f"({self.view_cases} end-to-end) — {status}"
        )


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------


class _Names:
    """Distinct XML tag names, so the parse oracle is never ambiguous."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.count = 0

    def next(self) -> str:
        self.count += 1
        return f"{self.rng.choice(_TAG_WORDS)}{self.count}"


def generate_xmlpub_case(seed: int) -> XmlPubCase:
    """Deterministically build one random spec + clustered row stream."""
    rng = random.Random(seed)
    names = _Names(rng)
    key_count = rng.randint(1, 2)
    key_items = tuple(
        KeyItem(names.next(), index)
        for index in range(key_count)
        if rng.random() < 0.85
    )
    branches: list[ScalarBranch | RowsBranch] = []
    payload_cursor = 0
    for branch_id in range(rng.randint(1, 3)):
        if rng.random() < 0.4:
            branches.append(
                ScalarBranch(branch_id, names.next(), payload_cursor)
            )
            payload_cursor += 1
        else:
            fields = tuple(
                (names.next(), payload_cursor + k)
                for k in range(rng.randint(1, 3))
            )
            payload_cursor += len(fields)
            container = names.next() if rng.random() < 0.7 else None
            branches.append(
                RowsBranch(branch_id, container, names.next(), fields)
            )
    spec = TaggerSpec(
        root_tag=names.next(),
        group_tag=names.next(),
        key_count=key_count,
        key_items=key_items,
        branches=tuple(branches),
    )
    rows: list[tuple] = []
    for group_index in range(rng.randint(0, 5)):
        # First key column is distinct by construction so the stream is
        # genuinely clustered; further key columns draw from the pool.
        key: tuple = (group_index,) + tuple(
            rng.choice(NASTY_VALUES) for _ in range(key_count - 1)
        )
        for branch in spec.branches:
            count = 1 if isinstance(branch, ScalarBranch) else rng.randint(0, 3)
            for _ in range(count):
                payload = [None] * payload_cursor
                if isinstance(branch, ScalarBranch):
                    payload[branch.payload_index] = rng.choice(NASTY_VALUES)
                else:
                    for _, index in branch.fields:
                        payload[index] = rng.choice(NASTY_VALUES)
                rows.append(key + (branch.branch,) + tuple(payload))
    return XmlPubCase(seed=seed, spec=spec, rows=rows)


# ----------------------------------------------------------------------
# The parse oracle: independent simulation vs. what a parser hands back
# ----------------------------------------------------------------------


def expected_structure(spec: TaggerSpec, rows: Iterable[tuple]) -> list[list]:
    """What the parsed document must contain, derived without the tagger.

    One entry per group, in stream order; each group is a list of
    entries — ``["leaf", tag, text]`` for key items and scalar branches,
    ``["container", tag, [rows...]]`` / ``["row", tag, fields]`` for rows
    branches — where ``text`` is the parser-visible form of the value
    (:func:`sanitize_parsed_text`).
    """
    groups: list[list] = []
    current_key: tuple | None = None
    group: list | None = None

    def entry_for(row: tuple, branch: ScalarBranch | RowsBranch) -> list:
        base = spec.branch_column + 1
        if isinstance(branch, ScalarBranch):
            return [
                "leaf",
                branch.tag,
                sanitize_parsed_text(row[base + branch.payload_index]),
            ]
        fields = [
            [tag, sanitize_parsed_text(row[base + index])]
            for tag, index in branch.fields
        ]
        return ["row", branch.row_tag, fields]

    for row in rows:
        key = row[: spec.key_count]
        if key != current_key:
            current_key = key
            group = [
                ["leaf", item.tag, sanitize_parsed_text(key[item.key_index])]
                for item in spec.key_items
            ]
            groups.append(group)
        branch = spec.branch_by_id(row[spec.branch_column])
        entry = entry_for(row, branch)
        container = (
            branch.container_tag if isinstance(branch, RowsBranch) else None
        )
        if container is None:
            group.append(entry)
        elif group and group[-1][0] == "container" and group[-1][1] == container:
            group[-1][2].append(entry[1:])
        else:
            group.append(["container", container, [entry[1:]]])
    return groups


def parsed_structure(spec: TaggerSpec, document: bytes) -> list[list]:
    """The same canonical structure, read back from parsed XML."""
    root = ET.fromstring(document)
    if root.tag != spec.root_tag:
        raise AssertionError(
            f"root tag {root.tag!r} != expected {spec.root_tag!r}"
        )
    containers = {
        b.container_tag
        for b in spec.branches
        if isinstance(b, RowsBranch) and b.container_tag is not None
    }
    groups: list[list] = []
    for group_el in root:
        if group_el.tag != spec.group_tag:
            raise AssertionError(
                f"unexpected group tag {group_el.tag!r}"
            )
        group: list = []
        for child in group_el:
            if child.tag in containers:
                group.append(
                    [
                        "container",
                        child.tag,
                        [
                            [row.tag, [[f.tag, f.text or ""] for f in row]]
                            for row in child
                        ],
                    ]
                )
            elif len(child):
                group.append(
                    ["row", child.tag, [[f.tag, f.text or ""] for f in child]]
                )
            else:
                group.append(["leaf", child.tag, child.text or ""])
        groups.append(group)
    return groups


# ----------------------------------------------------------------------
# Checks
# ----------------------------------------------------------------------


def check_case(case: XmlPubCase) -> XmlPubFailure | None:
    """Run the chunk-invariance and parse oracles; None means clean."""
    tagger = ConstantSpaceTagger(case.spec)
    reference = tagger.tag_to_string(case.rows).encode()
    for chunk_bytes in CHUNK_SIZES:
        stats = PublishStats()
        streamed = b"".join(
            stream_document(
                case.rows, case.spec, chunk_bytes=chunk_bytes, stats=stats
            )
        )
        if streamed != reference:
            return XmlPubFailure(
                case.seed,
                "chunking",
                f"chunk_bytes={chunk_bytes}: streamed {len(streamed)}B != "
                f"materialized {len(reference)}B",
                case,
            )
        if stats.bytes_emitted != len(reference):
            return XmlPubFailure(
                case.seed,
                "chunking",
                f"chunk_bytes={chunk_bytes}: stats report "
                f"{stats.bytes_emitted}B emitted, document is "
                f"{len(reference)}B",
                case,
            )
    try:
        parsed = parsed_structure(case.spec, reference)
    except (ET.ParseError, AssertionError) as error:
        return XmlPubFailure(
            case.seed, "parse", f"document does not parse: {error}", case
        )
    expected = expected_structure(case.spec, case.rows)
    if parsed != expected:
        return XmlPubFailure(
            case.seed,
            "parse",
            "parsed structure diverges from the spec/row simulation\n"
            f"expected: {expected!r}\n"
            f"parsed:   {parsed!r}",
            case,
        )
    return None


#: The paper's query shapes, over the standard supplier view.
VIEW_XQUERIES = (
    (
        "q1",
        "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> "
        "$s/s_suppkey, <parts> for $p in $s/part return <part> $p/p_name, "
        "$p/p_retailprice </part> </parts>, avg($s/part/p_retailprice) "
        "</ret>",
    ),
    (
        "q2",
        "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> "
        "$s/s_suppkey, <count_above> count($s/part[p_retailprice >= "
        "avg($s/part/p_retailprice)]) </count_above>, <count_below> "
        "count($s/part[p_retailprice < avg($s/part/p_retailprice)]) "
        "</count_below> </ret>",
    ),
    (
        "q3",
        "for $s in /doc(tpch.xml)/suppliers/supplier return <ret> "
        "$s/s_suppkey, <highend> for $p in $s/part[p_retailprice >= 0.8 * "
        "max($s/part/p_retailprice)] return <part> $p/p_name </part> "
        "</highend> </ret>",
    ),
    (
        "gs",
        "for $s in /doc(tpch.xml)/suppliers/supplier where some $p in "
        "$s/part satisfies $p/p_retailprice > 40 return $s",
    ),
    (
        "ags",
        "for $s in /doc(tpch.xml)/suppliers/supplier where "
        "avg($s/part/p_retailprice) > 30 return $s",
    ),
)


def build_view_database(rng: random.Random) -> Database:
    """The supplier-view schema with randomized hostile data."""
    n_suppliers = rng.randint(1, 4)
    n_parts = rng.randint(1, 12)
    db = Database()
    db.create_table(
        "part",
        [
            ("p_partkey", DataType.INTEGER),
            ("p_name", DataType.STRING),
            ("p_retailprice", DataType.FLOAT),
        ],
        [
            (i, rng.choice(NASTY_STRINGS), rng.randint(0, 400) * 0.25)
            for i in range(1, n_parts + 1)
        ],
        primary_key=["p_partkey"],
    )
    db.create_table(
        "partsupp",
        [("ps_suppkey", DataType.INTEGER), ("ps_partkey", DataType.INTEGER)],
        [
            (100 + rng.randrange(n_suppliers), i)
            for i in range(1, n_parts + 1)
            if rng.random() < 0.9
        ],
    )
    db.create_table(
        "supplier",
        [("s_suppkey", DataType.INTEGER), ("s_name", DataType.STRING)],
        [
            (100 + i, rng.choice(NASTY_STRINGS))
            for i in range(n_suppliers)
        ],
        primary_key=["s_suppkey"],
    )
    return db


def check_view_case(
    seed: int, include_process: bool = False
) -> XmlPubFailure | None:
    """Streamed == materialized, end to end through ``Database.publish``.

    Covers both formulations × both engines × the serial and thread
    GApply backends (process too when ``include_process`` — it forks a
    worker pool per query, so the sweep samples it sparsely).
    """
    rng = random.Random(seed ^ 0xD0C)
    db = build_view_database(rng)
    name, query = VIEW_XQUERIES[seed % len(VIEW_XQUERIES)]
    view = tpch_supplier_view()
    translated = translate_xquery(query, view, db.catalog)
    backends: list[tuple[str | None, int | None]] = [
        (None, None), ("thread", 2)
    ]
    if include_process:
        backends.append(("process", 2))
    for formulation in FORMULATIONS:
        sql = translated.sql_for(formulation)
        for engine in ("volcano", "vector"):
            reference = (
                ConstantSpaceTagger(translated.spec)
                .tag_to_string(db.sql(sql, engine=engine).rows)
                .encode()
            )
            for backend, parallelism in backends:
                config = (
                    f"{name}/{formulation}/{engine}/"
                    f"{backend or 'serial'}"
                )
                try:
                    streamed = db.publish(
                        view,
                        query,
                        formulation,
                        engine=engine,
                        backend=backend,
                        parallelism=parallelism,
                        chunk_bytes=rng.choice(CHUNK_SIZES),
                    ).read_all()
                except ReproError as error:
                    return XmlPubFailure(
                        seed,
                        "view",
                        f"{config}: {type(error).__name__}: {error}",
                    )
                if streamed != reference:
                    return XmlPubFailure(
                        seed,
                        "view",
                        f"{config}: streamed {len(streamed)}B != "
                        f"materialized {len(reference)}B",
                    )
    return None


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------


def _simplified_strings(value: Any) -> list[Any]:
    if not isinstance(value, str) or not value:
        return []
    candidates = [""]
    if len(value) > 1:
        # Each single character on its own often preserves the bug.
        candidates.extend(sorted(set(value), key=value.index)[:4])
    return candidates


def shrink_xmlpub_case(
    case: XmlPubCase, failure: XmlPubFailure
) -> XmlPubCase:
    """Greedy minimization preserving the failing stage."""

    def still_fails(candidate: XmlPubCase) -> bool:
        found = check_case(candidate)
        return found is not None and found.stage == failure.stage

    current = case
    # Pass 1: drop rows (largest step first).
    changed = True
    while changed:
        changed = False
        step = max(1, len(current.rows) // 2)
        while step >= 1:
            index = 0
            while index < len(current.rows):
                candidate = XmlPubCase(
                    current.seed,
                    current.spec,
                    current.rows[:index] + current.rows[index + step:],
                )
                if still_fails(candidate):
                    current = candidate
                    changed = True
                else:
                    index += step
            step //= 2
    # Pass 2: simplify string values cell by cell.
    for row_index, row in enumerate(list(current.rows)):
        for cell_index, value in enumerate(row):
            for simpler in _simplified_strings(value):
                new_row = row[:cell_index] + (simpler,) + row[cell_index + 1:]
                candidate = XmlPubCase(
                    current.seed,
                    current.spec,
                    current.rows[:row_index]
                    + [new_row]
                    + current.rows[row_index + 1:],
                )
                if still_fails(candidate):
                    current = candidate
                    row = new_row
                    break
    return current


# ----------------------------------------------------------------------
# Corpus persistence (typed values; separate directory from SQL corpus)
# ----------------------------------------------------------------------


def _encode_value(value: Any) -> list:
    if value is None:
        return ["null"]
    if isinstance(value, bool):
        return ["bool", value]
    if isinstance(value, int):
        return ["int", value]
    if isinstance(value, float):
        return ["float", value]
    if isinstance(value, str):
        return ["str", value]
    if isinstance(value, datetime.date):
        return ["date", value.isoformat()]
    raise TypeError(f"unencodable corpus value {value!r}")


def _decode_value(encoded: list) -> Any:
    kind = encoded[0]
    if kind == "null":
        return None
    if kind == "bool":
        return bool(encoded[1])
    if kind == "int":
        return int(encoded[1])
    if kind == "float":
        return float(encoded[1])
    if kind == "str":
        return str(encoded[1])
    if kind == "date":
        return datetime.date.fromisoformat(encoded[1])
    raise ValueError(f"unknown corpus value kind {kind!r}")


def _spec_payload(spec: TaggerSpec) -> dict:
    branches = []
    for branch in spec.branches:
        if isinstance(branch, ScalarBranch):
            branches.append(
                ["scalar", branch.branch, branch.tag, branch.payload_index]
            )
        else:
            branches.append(
                [
                    "rows",
                    branch.branch,
                    branch.container_tag,
                    branch.row_tag,
                    [list(f) for f in branch.fields],
                ]
            )
    return {
        "root_tag": spec.root_tag,
        "group_tag": spec.group_tag,
        "key_count": spec.key_count,
        "key_items": [[item.tag, item.key_index] for item in spec.key_items],
        "branches": branches,
    }


def _spec_from_payload(payload: dict) -> TaggerSpec:
    branches: list[ScalarBranch | RowsBranch] = []
    for entry in payload["branches"]:
        if entry[0] == "scalar":
            branches.append(ScalarBranch(entry[1], entry[2], entry[3]))
        else:
            branches.append(
                RowsBranch(
                    entry[1],
                    entry[2],
                    entry[3],
                    tuple((tag, index) for tag, index in entry[4]),
                )
            )
    return TaggerSpec(
        root_tag=payload["root_tag"],
        group_tag=payload["group_tag"],
        key_count=payload["key_count"],
        key_items=tuple(
            KeyItem(tag, index) for tag, index in payload["key_items"]
        ),
        branches=tuple(branches),
    )


def save_xmlpub_case(
    case: XmlPubCase, detail: str, directory: Path | str
) -> Path:
    """Write one reproducer; content-addressed like the SQL corpus."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "seed": case.seed,
        "kind": "xmlpub",
        "detail": detail,
        "spec": _spec_payload(case.spec),
        "rows": [[_encode_value(v) for v in row] for row in case.rows],
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:12]
    path = directory / f"fuzz-xmlpub-{digest}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_xmlpub_corpus(directory: Path | str) -> list[XmlPubCase]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("fuzz-xmlpub-*.json")):
        payload = json.loads(path.read_text())
        cases.append(
            XmlPubCase(
                seed=payload["seed"],
                spec=_spec_from_payload(payload["spec"]),
                rows=[
                    tuple(_decode_value(v) for v in row)
                    for row in payload["rows"]
                ],
            )
        )
    return cases


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------


def run_xmlpub_fuzz(
    seed: int,
    n: int,
    stop_after: int = 5,
    shrink: bool = True,
    corpus_dir: Path | str | None = None,
    view_case_every: int = 5,
    process_case_every: int = 25,
    progress: Callable[[str], None] | None = None,
) -> XmlPubReport:
    """Drive ``n`` tagger-level cases with end-to-end view cases mixed in."""
    report = XmlPubReport()
    for offset in range(n):
        case_seed = seed + offset
        report.cases += 1
        try:
            case = generate_xmlpub_case(case_seed)
            failure = check_case(case)
            if failure is None and offset % view_case_every == 0:
                report.view_cases += 1
                failure = check_view_case(
                    case_seed,
                    include_process=offset % process_case_every == 0,
                )
        except ReproError as error:
            failure = XmlPubFailure(
                case_seed, "error", f"{type(error).__name__}: {error}"
            )
        if failure is None:
            report.checked += 1
        else:
            if failure.case is not None and shrink:
                failure.case = shrink_xmlpub_case(failure.case, failure)
            if failure.case is not None and corpus_dir is not None:
                path = save_xmlpub_case(
                    failure.case, failure.detail, corpus_dir
                )
                if progress is not None:
                    progress(f"[xmlpub] reproducer saved to {path}")
            report.failures.append(failure)
            if progress is not None:
                progress(
                    f"[xmlpub] seed {case_seed} {failure.stage}: "
                    f"{failure.detail.splitlines()[0]}"
                )
            if len(report.failures) >= stop_after:
                break
        if progress is not None and (offset + 1) % 100 == 0:
            progress(f"[xmlpub] {offset + 1}/{n} cases checked")
    return report
