"""Plan-cache differential fuzzing: cold vs hot vs re-parameterized.

For every generated case the same query runs three ways against one
cache-enabled database, each checked against a cache-free reference
database built from the same seeded data:

* **cold** — first arrival, must miss the cache and produce exactly the
  rows/counters/metrics of the uncached reference run;
* **hot** — second arrival, must hit the cache and reproduce the cold
  run byte for byte;
* **re-parameterized** — the same query shape with fresh literals (same
  types, so the cache key is unchanged), must hit the cache and produce
  the row multiset of an uncached run of the new text. When the cached
  template lowers to the same physical plan the uncached run chooses,
  counters and metrics must match too (they may legitimately differ
  when value-dependent costing picks another plan for the new values —
  that is the adaptive re-plan machinery's department, not a bug).

Cases alternate execution engines (volcano/vector) so cached-plan replay
is exercised through both lowering paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api import Database, QueryResult
from repro.errors import ReproError
from repro.fuzz.generator import STRING_VOCAB, FuzzCase, generate_case
from repro.sql import ast as A
from repro.sql.normalize import _rewrite_statement
from repro.sql.printer import print_query

ENGINES_BY_PARITY = ("volcano", "vector")


@dataclass
class PlanCacheFailure:
    seed: int
    stage: str  # "cold" | "hot" | "reparam" | "error"
    sql: str
    detail: str

    def describe(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "stage": self.stage,
            "sql": self.sql,
            "detail": self.detail,
        }


@dataclass
class PlanCacheReport:
    cases: int = 0
    checked: int = 0  # cases that executed all three modes
    failures: list[PlanCacheFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} FAILURE(S)"
        return (
            f"plan-cache fuzz: {self.cases} cases, {self.checked} checked "
            f"cold/hot/re-parameterized — {status}"
        )


def fresh_literals(query: A.AstQuery, rng: random.Random) -> A.AstQuery:
    """Same query shape, new literal values of the same types.

    Type-preserving by construction: the plan-cache key includes the
    parameter type signature, so only a same-type rewrite is guaranteed
    to hit the cached entry. Sign-preserving too: ``-2`` prints as
    ``-2``, which re-parses as unary minus over the literal ``2`` — a
    different query *shape* — so a mutation may not cross zero. Values
    stay inside the generator's domains (small ints, quarter-step
    floats, the string vocabulary) so the engine/SQLite semantic gaps
    the generator steers around stay closed.
    """

    def visit(node: A.AstExpression) -> A.AstExpression:
        if not isinstance(node, A.AstLiteral):
            return node
        value = node.value
        if value is None:
            return node
        if isinstance(value, bool):
            return A.AstLiteral(rng.choice((True, False)))
        negative = str(value).startswith("-")
        if isinstance(value, int):
            magnitude = rng.randint(1, 9) if negative else rng.randint(0, 9)
            return A.AstLiteral(-magnitude if negative else magnitude)
        if isinstance(value, float):
            steps = rng.randint(1, 40) if negative else rng.randint(0, 40)
            return A.AstLiteral((-steps if negative else steps) * 0.25)
        if isinstance(value, str):
            return A.AstLiteral(rng.choice(STRING_VOCAB))
        return node

    return _rewrite_statement(query, visit)


def plan_signature(result: QueryResult) -> str:
    """Structural identity of the executed physical plan."""
    lines: list[str] = []

    def walk(node, depth: int) -> None:
        lines.append("  " * depth + node.label())
        for child in node.children():
            walk(child, depth + 1)

    walk(result.physical_plan, 0)
    return "\n".join(lines)


def _normalized(rows: list[tuple]) -> list[tuple]:
    return sorted(rows, key=repr)


def _diff(kind: str, cached: QueryResult, reference: QueryResult) -> str | None:
    """Compare a cached run against its uncached reference."""
    if _normalized(cached.rows) != _normalized(reference.rows):
        return (
            f"{kind}: rows diverge (cached {len(cached.rows)}, "
            f"reference {len(reference.rows)})"
        )
    if cached.counters.snapshot() != reference.counters.snapshot():
        return (
            f"{kind}: work counters diverge\n"
            f"cached:    {cached.counters.snapshot()}\n"
            f"reference: {reference.counters.snapshot()}"
        )
    if cached.metrics.snapshot() != reference.metrics.snapshot():
        return f"{kind}: per-operator metrics diverge"
    return None


def check_case(case: FuzzCase, engine: str) -> PlanCacheFailure | None:
    """Run one case cold/hot/re-parameterized; None means all agreed."""
    sql = case.sql
    cached_db = case.db.build()  # default: plan cache on
    reference_db = case.db.build()
    reference_db.plan_cache = None  # the uncached twin

    def run(db: Database, text: str) -> QueryResult:
        return db.sql(text, collect_metrics=True, engine=engine)

    reference = run(reference_db, sql)
    cold = run(cached_db, sql)
    if cold.plan_cache is None or cold.plan_cache["source"] != "miss":
        return PlanCacheFailure(
            case.seed, "cold", sql,
            f"expected a cache miss, got {cold.plan_cache!r}",
        )
    problem = _diff("cold-vs-uncached", cold, reference)
    if problem:
        return PlanCacheFailure(case.seed, "cold", sql, problem)

    hot = run(cached_db, sql)
    if hot.plan_cache is None or hot.plan_cache["source"] != "hit":
        return PlanCacheFailure(
            case.seed, "hot", sql,
            f"expected a cache hit, got {hot.plan_cache!r}",
        )
    problem = _diff("hot-vs-cold", hot, cold)
    if problem:
        return PlanCacheFailure(case.seed, "hot", sql, problem)

    mutation_rng = random.Random(case.seed ^ 0x5EED)
    new_sql = print_query(fresh_literals(case.query, mutation_rng))
    warm = run(cached_db, new_sql)
    if warm.plan_cache is None or warm.plan_cache["source"] != "hit":
        return PlanCacheFailure(
            case.seed, "reparam", new_sql,
            f"expected a cache hit for the re-parameterized text, got "
            f"{warm.plan_cache!r}",
        )
    warm_reference = run(reference_db, new_sql)
    if _normalized(warm.rows) != _normalized(warm_reference.rows):
        return PlanCacheFailure(
            case.seed, "reparam", new_sql,
            f"rows diverge (cached {len(warm.rows)}, reference "
            f"{len(warm_reference.rows)})",
        )
    if plan_signature(warm) == plan_signature(warm_reference):
        problem = _diff("reparam-vs-uncached", warm, warm_reference)
        if problem:
            return PlanCacheFailure(case.seed, "reparam", new_sql, problem)
    return None


def run_plancache_fuzz(
    seed: int,
    n: int,
    stop_after: int = 5,
    progress: Callable[[str], None] | None = None,
) -> PlanCacheReport:
    report = PlanCacheReport()
    for offset in range(n):
        case_seed = seed + offset
        case = generate_case(case_seed)
        engine = ENGINES_BY_PARITY[offset % len(ENGINES_BY_PARITY)]
        report.cases += 1
        try:
            failure = check_case(case, engine)
        except ReproError as error:
            # The generator only emits queries both engines accept; an
            # engine error on the cached path is a real failure.
            failure = PlanCacheFailure(
                case_seed, "error", case.sql, f"{type(error).__name__}: {error}"
            )
        if failure is None:
            report.checked += 1
        else:
            report.failures.append(failure)
            if progress is not None:
                progress(
                    f"[plancache] seed {case_seed} {failure.stage}: "
                    f"{failure.detail.splitlines()[0]}"
                )
            if len(report.failures) >= stop_after:
                break
        if progress is not None and (offset + 1) % 100 == 0:
            progress(f"[plancache] {offset + 1}/{n} cases checked")
    return report
