"""Persistence for minimized fuzz reproducers.

A corpus case is one JSON file under ``tests/fuzz_corpus/`` carrying the
full failing input — schema, data, foreign keys, and the query as dialect
SQL text — plus metadata about what failed. Replaying a case re-runs the
*differential check itself* (engine vs. oracle vs. plan space), so the
corpus doubles as a regression suite: every engine bug the fuzzer ever
found stays fixed, or the replay test fails.

Filenames are content-addressed (``fuzz-<kind>-<digest>.json``) so two
shrinks of the same bug collide instead of accumulating.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.fuzz.generator import FuzzCase, FuzzColumn, FuzzDatabase, FuzzTable
from repro.sql.parser import parse
from repro.storage.types import DataType


@dataclass(frozen=True)
class CorpusCase:
    """One reproducer loaded from (or bound for) the corpus directory."""

    seed: int
    kind: str
    config: str | None
    detail: str
    sql: str
    db: FuzzDatabase
    path: Path | None = None

    def to_fuzz_case(self) -> FuzzCase:
        return FuzzCase(seed=self.seed, db=self.db, query=parse(self.sql))


def _database_payload(db: FuzzDatabase) -> dict:
    return {
        "tables": [
            {
                "name": table.name,
                "columns": [[c.name, c.dtype.value, c.role] for c in table.columns],
                "primary_key": list(table.primary_key),
                "rows": [list(row) for row in table.rows],
            }
            for table in db.tables
        ],
        "foreign_keys": [list(fk) for fk in db.foreign_keys],
    }


def _database_from_payload(payload: dict) -> FuzzDatabase:
    tables = [
        FuzzTable(
            name=entry["name"],
            columns=[
                FuzzColumn(name, DataType(dtype), role)
                for name, dtype, role in entry["columns"]
            ],
            rows=[tuple(row) for row in entry["rows"]],
            primary_key=list(entry["primary_key"]),
        )
        for entry in payload["tables"]
    ]
    fks = [tuple(fk) for fk in payload.get("foreign_keys", [])]
    return FuzzDatabase(tables, fks)


def save_case(
    case: FuzzCase,
    kind: str,
    detail: str,
    directory: Path | str,
    config: str | None = None,
    metrics: dict | None = None,
) -> Path:
    """Write one reproducer; returns its (content-addressed) path.

    ``metrics`` is an optional per-operator metrics snapshot of the
    failing execution (diagnostic context for whoever picks the case up).
    It is excluded from the content digest: two shrinks of the same bug
    must still collide even if instrumentation output changes between
    engine versions.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "seed": case.seed,
        "kind": kind,
        "config": config,
        "detail": detail,
        "sql": case.sql,
        **_database_payload(case.db),
    }
    digest = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()[:12]
    if metrics is not None:
        payload["metrics"] = metrics
    path = directory / f"fuzz-{kind}-{digest}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def load_corpus(directory: Path | str) -> list[CorpusCase]:
    directory = Path(directory)
    if not directory.is_dir():
        return []
    cases = []
    for path in sorted(directory.glob("*.json")):
        payload = json.loads(path.read_text())
        cases.append(
            CorpusCase(
                seed=payload["seed"],
                kind=payload["kind"],
                config=payload.get("config"),
                detail=payload.get("detail", ""),
                sql=payload["sql"],
                db=_database_from_payload(payload),
                path=path,
            )
        )
    return cases
