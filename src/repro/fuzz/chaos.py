"""Chaos mode: seeded fault plans against live GApply queries.

The differential fuzzer (:mod:`repro.fuzz.runner`) checks the engine
against a SQLite oracle on *clean* runs. Chaos mode checks the other half
of the robustness contract: under injected faults — killed process
workers, delayed batches, failing spill writes — and under adversarial
budgets, every query must end in one of exactly two ways:

* the **correct rows** (identical to an unfaulted serial run), or
* a **typed error** from :mod:`repro.errors` that the scenario allows.

Never a wrong answer, never a hang, never a bare ``RuntimeError``, never
an orphaned worker process. Each seed deterministically picks a scenario,
a fault plan and budget knobs, so a failing seed replays exactly.

Scenarios (one per case, chosen by the seed):

==================  ======================================================
``worker-kill``     a process worker dies once; crash recovery must retry
                    and still produce correct rows
``kill-exhaust``    the same batch dies on every attempt; retries exhaust
                    and the degradation ladder (process -> thread) must
                    still produce correct rows, with a ``RuntimeWarning``
``delay-timeout``   a batch is delayed past a tiny wall-clock budget;
                    either the query beats the clock (correct rows) or it
                    raises ``TimeoutExceeded``
``spill-fail``      a memory budget forces the partition phase to spill
                    and the Nth spill write fails; correct rows (fault
                    landed past the last write) or ``SpillError``
``memory-budget``   a sort-carrying query under a random cell budget;
                    correct rows or ``MemoryBudgetExceeded`` (sorts have
                    no spill path)
``row-budget``      a random ``max_rows``; correct rows when under, else
                    ``RowBudgetExceeded``
``clean-spill``     a memory budget small enough to force spilling, no
                    faults; must be byte-identical to the in-memory run
==================  ======================================================

The fixture is the tiny TPC-H instance the paper queries run on
(SF=0.01), built once per process; expected rows come from a plain
serial run of the same SQL.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api import Database
from repro.errors import (
    BudgetExceeded,
    MemoryBudgetExceeded,
    QueryCancelled,
    ReproError,
    RowBudgetExceeded,
    SpillError,
    TimeoutExceeded,
)
from repro.execution.faults import FaultPlan, fault_injection
from repro.execution.parallel import (
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    THREAD_BACKEND,
)
from repro.workloads.queries import Q1
from repro.workloads.tpch import TpchConfig, load_tpch

#: Scenario names, in the order the seed's RNG draws from.
SCENARIOS = (
    "worker-kill",
    "kill-exhaust",
    "delay-timeout",
    "spill-fail",
    "memory-budget",
    "row-budget",
    "clean-spill",
)

#: Dispatch-batch count the fixture query produces at parallelism 2
#: (one supplier group per batch); kill/delay batch indices draw from it.
FIXTURE_BATCHES = 4


@dataclass
class ChaosFixture:
    """The shared database plus precomputed clean-run answers."""

    db: Database
    gapply_sql: str
    baseline_sql: str
    gapply_rows: list[tuple]
    baseline_rows: list[tuple]


_fixture: ChaosFixture | None = None


def chaos_fixture() -> ChaosFixture:
    """Build (once) the tiny TPC-H database and the expected rows."""
    global _fixture
    if _fixture is None:
        db = Database()
        load_tpch(db.catalog, TpchConfig())
        gapply_rows = list(db.sql(Q1.gapply_sql).rows)
        baseline_rows = list(db.sql(Q1.baseline_sql).rows)
        _fixture = ChaosFixture(
            db=db,
            gapply_sql=Q1.gapply_sql,
            baseline_sql=Q1.baseline_sql,
            gapply_rows=gapply_rows,
            baseline_rows=baseline_rows,
        )
    return _fixture


@dataclass
class ChaosCase:
    """Everything one seed decided: replaying the seed rebuilds it."""

    seed: int
    scenario: str
    sql: str
    expected: list[tuple]
    fault: FaultPlan | None = None
    backend: str = SERIAL_BACKEND
    parallelism: int = 1
    timeout: float | None = None
    memory_budget: int | None = None
    max_rows: int | None = None
    #: Error types that count as a correct outcome for this scenario.
    allowed_errors: tuple[type, ...] = ()
    #: Must the run end in correct rows (no error tolerated)?
    must_succeed: bool = True

    def describe(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "backend": self.backend,
            "parallelism": self.parallelism,
            "timeout": self.timeout,
            "memory_budget": self.memory_budget,
            "max_rows": self.max_rows,
            "fault": None if self.fault is None else self.fault.to_dict(),
            "allowed_errors": [e.__name__ for e in self.allowed_errors],
        }


def build_case(seed: int) -> ChaosCase:
    """Deterministically derive one chaos case from its seed."""
    fixture = chaos_fixture()
    rng = random.Random(seed)
    scenario = rng.choice(SCENARIOS)
    sql = fixture.gapply_sql
    expected = fixture.gapply_rows
    case = ChaosCase(seed=seed, scenario=scenario, sql=sql, expected=expected)

    if scenario == "worker-kill":
        case.backend = PROCESS_BACKEND
        case.parallelism = 2
        case.fault = FaultPlan(
            seed=seed,
            kill_batch=rng.randrange(FIXTURE_BATCHES),
            kill_attempts=1,
        )
    elif scenario == "kill-exhaust":
        case.backend = PROCESS_BACKEND
        case.parallelism = 2
        case.fault = FaultPlan(
            seed=seed,
            kill_batch=rng.randrange(FIXTURE_BATCHES),
            kill_attempts=99,
        )
    elif scenario == "delay-timeout":
        case.backend = rng.choice(
            (SERIAL_BACKEND, THREAD_BACKEND, PROCESS_BACKEND)
        )
        case.parallelism = 1 if case.backend == SERIAL_BACKEND else 2
        case.fault = FaultPlan(
            seed=seed,
            delay_batch=rng.randrange(FIXTURE_BATCHES),
            delay_seconds=rng.uniform(0.02, 0.08),
        )
        case.timeout = rng.uniform(0.005, 0.05)
        case.allowed_errors = (TimeoutExceeded, QueryCancelled)
        case.must_succeed = False
    elif scenario == "spill-fail":
        case.memory_budget = rng.choice((64, 128, 256))
        case.fault = FaultPlan(seed=seed, fail_spill_at=rng.randrange(64))
        case.allowed_errors = (SpillError,)
        case.must_succeed = False
    elif scenario == "memory-budget":
        # The baseline formulation carries an ORDER BY: its sort has no
        # spill path, so a small budget must raise, never misbehave.
        case.sql = fixture.baseline_sql
        case.expected = fixture.baseline_rows
        case.memory_budget = rng.choice((32, 256, 4096, 1 << 20))
        case.allowed_errors = (MemoryBudgetExceeded,)
        case.must_succeed = False
    elif scenario == "row-budget":
        case.max_rows = rng.randrange(0, len(expected) + 5)
        if case.max_rows < len(expected):
            case.allowed_errors = (RowBudgetExceeded,)
            case.must_succeed = False
    elif scenario == "clean-spill":
        case.memory_budget = rng.choice((64, 128, 512))
    return case


@dataclass
class ChaosFailure:
    """One broken invariant, with everything needed to replay it."""

    case: ChaosCase
    detail: str

    def describe(self) -> dict[str, Any]:
        return {**self.case.describe(), "detail": self.detail}


@dataclass
class ChaosReport:
    cases: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    failures: list[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        mix = ", ".join(
            f"{name}={count}" for name, count in sorted(self.outcomes.items())
        )
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return f"chaos: {self.cases} cases, {status} ({mix})"


def run_chaos_case(case: ChaosCase) -> str | None:
    """Run one case; return None when the invariant held, else a detail
    string describing how it broke."""
    fixture = chaos_fixture()
    kwargs: dict[str, Any] = {
        "backend": case.backend,
        "parallelism": case.parallelism,
        "timeout": case.timeout,
        "memory_budget": case.memory_budget,
        "max_rows": case.max_rows,
        # GApply must survive to execution for faults/spill to bite; the
        # optimizer may otherwise rewrite it into a plain aggregate.
        "optimize": False,
    }
    try:
        with warnings.catch_warnings():
            # Degradation-ladder warnings are expected chaos behavior.
            warnings.simplefilter("ignore", RuntimeWarning)
            if case.fault is not None:
                with fault_injection(case.fault):
                    result = fixture.db.sql(case.sql, **kwargs)
            else:
                result = fixture.db.sql(case.sql, **kwargs)
    except ReproError as error:
        if isinstance(error, case.allowed_errors):
            return None
        return (
            f"unexpected typed error {type(error).__name__}: {error} "
            f"(allowed: {[e.__name__ for e in case.allowed_errors]})"
        )
    except Exception as error:  # noqa: BLE001 - the invariant under test
        return f"untyped error escaped: {type(error).__name__}: {error}"
    if list(result.rows) != case.expected:
        return (
            f"wrong answer: {len(result.rows)} rows != "
            f"{len(case.expected)} expected"
        )
    return None


def run_chaos(
    seed: int = 0,
    n: int = 50,
    stop_after: int = 5,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Sweep ``n`` seeded fault plans; see the module docstring for the
    invariant each one asserts."""
    report = ChaosReport()
    for case_seed in range(seed, seed + n):
        case = build_case(case_seed)
        detail = run_chaos_case(case)
        report.cases += 1
        report.outcomes[case.scenario] = (
            report.outcomes.get(case.scenario, 0) + 1
        )
        if detail is not None:
            report.failures.append(ChaosFailure(case, detail))
            if progress is not None:
                progress(f"seed {case_seed} [{case.scenario}] FAILED: {detail}")
            if len(report.failures) >= stop_after:
                break
        elif progress is not None and report.cases % 25 == 0:
            progress(f"{report.cases}/{n} cases ok")
    return report
