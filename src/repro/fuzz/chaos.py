"""Chaos mode: seeded fault plans against live GApply queries.

The differential fuzzer (:mod:`repro.fuzz.runner`) checks the engine
against a SQLite oracle on *clean* runs. Chaos mode checks the other half
of the robustness contract: under injected faults — killed process
workers, delayed batches, failing spill writes — and under adversarial
budgets, every query must end in one of exactly two ways:

* the **correct rows** (identical to an unfaulted serial run), or
* a **typed error** from :mod:`repro.errors` that the scenario allows.

Never a wrong answer, never a hang, never a bare ``RuntimeError``, never
an orphaned worker process. Each seed deterministically picks a scenario,
a fault plan and budget knobs, so a failing seed replays exactly.

Scenarios (one per case, chosen by the seed):

==================  ======================================================
``worker-kill``     a process worker dies once; crash recovery must retry
                    and still produce correct rows
``kill-exhaust``    the same batch dies on every attempt; retries exhaust
                    and the degradation ladder (process -> thread) must
                    still produce correct rows, with a ``RuntimeWarning``
``delay-timeout``   a batch is delayed past a tiny wall-clock budget;
                    either the query beats the clock (correct rows) or it
                    raises ``TimeoutExceeded``
``spill-fail``      a memory budget forces the partition phase to spill
                    and the Nth spill write fails; correct rows (fault
                    landed past the last write) or ``SpillError``
``memory-budget``   a sort-carrying query under a random cell budget;
                    correct rows (sorts and DISTINCT spill to disk) or
                    ``MemoryBudgetExceeded`` from a hash build
``row-budget``      a random ``max_rows``; correct rows when under, else
                    ``RowBudgetExceeded``
``clean-spill``     a memory budget small enough to force spilling, no
                    faults; must be byte-identical to the in-memory run
==================  ======================================================

The fixture is the tiny TPC-H instance the paper queries run on
(SF=0.01), built once per process; expected rows come from a plain
serial run of the same SQL.

**Concurrent chaos** (:func:`run_concurrent_chaos`) extends the same
invariant to the :mod:`repro.serve` service layer: per seed, a fresh
service over a *ledger* table is hammered by many client threads issuing
a mix of reads, atomic write batches and DDL — sometimes under a fault
plan, an admission queue sized to shed, or a shutdown racing the clients.
Every ledger write is a zero-sum batch of :data:`LEDGER_BATCH` rows, so
any torn read (a snapshot exposing part of a batch) breaks an arithmetic
invariant every reader checks: ``sum(l_amount) == 0`` and
``count(*) % LEDGER_BATCH == 0`` globally, and per-batch GApply sums all
zero. The allowed outcomes are exactly correct-snapshot rows or a typed
error appropriate to the scenario (``ServiceOverloaded`` when shedding,
``ServiceStopped``/``QueryCancelled`` around shutdown, ``SpillError``
under spill faults, budget errors under budgets) — never a wrong answer,
torn read, hang, leaked spill file, or lingering worker thread.
"""

from __future__ import annotations

import random
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.api import Database
from repro.errors import (
    MemoryBudgetExceeded,
    QueryCancelled,
    ReproError,
    RowBudgetExceeded,
    SpillError,
    TimeoutExceeded,
)
from repro.execution.faults import FaultPlan, fault_injection
from repro.execution.parallel import (
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    THREAD_BACKEND,
)
from repro.optimizer.planner import ENGINES, VOLCANO_ENGINE
from repro.workloads.queries import Q1
from repro.workloads.tpch import TpchConfig, load_tpch

#: Scenario names, in the order the seed's RNG draws from.
SCENARIOS = (
    "worker-kill",
    "kill-exhaust",
    "delay-timeout",
    "spill-fail",
    "memory-budget",
    "row-budget",
    "clean-spill",
)

#: Dispatch-batch count the fixture query produces at parallelism 2
#: (one supplier group per batch); kill/delay batch indices draw from it.
FIXTURE_BATCHES = 4


@dataclass
class ChaosFixture:
    """The shared database plus precomputed clean-run answers."""

    db: Database
    gapply_sql: str
    baseline_sql: str
    gapply_rows: list[tuple]
    baseline_rows: list[tuple]


_fixture: ChaosFixture | None = None


def chaos_fixture() -> ChaosFixture:
    """Build (once) the tiny TPC-H database and the expected rows."""
    global _fixture
    if _fixture is None:
        db = Database()
        load_tpch(db.catalog, TpchConfig())
        gapply_rows = list(db.sql(Q1.gapply_sql).rows)
        baseline_rows = list(db.sql(Q1.baseline_sql).rows)
        _fixture = ChaosFixture(
            db=db,
            gapply_sql=Q1.gapply_sql,
            baseline_sql=Q1.baseline_sql,
            gapply_rows=gapply_rows,
            baseline_rows=baseline_rows,
        )
    return _fixture


@dataclass
class ChaosCase:
    """Everything one seed decided: replaying the seed rebuilds it."""

    seed: int
    scenario: str
    sql: str
    expected: list[tuple]
    fault: FaultPlan | None = None
    backend: str = SERIAL_BACKEND
    parallelism: int = 1
    timeout: float | None = None
    memory_budget: int | None = None
    max_rows: int | None = None
    #: Which execution engine drives the query; every scenario's invariant
    #: (correct rows or an allowed typed error) is engine-independent.
    engine: str = VOLCANO_ENGINE
    #: Error types that count as a correct outcome for this scenario.
    allowed_errors: tuple[type, ...] = ()
    #: Must the run end in correct rows (no error tolerated)?
    must_succeed: bool = True

    def describe(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "backend": self.backend,
            "parallelism": self.parallelism,
            "timeout": self.timeout,
            "memory_budget": self.memory_budget,
            "max_rows": self.max_rows,
            "engine": self.engine,
            "fault": None if self.fault is None else self.fault.to_dict(),
            "allowed_errors": [e.__name__ for e in self.allowed_errors],
        }


def build_case(seed: int) -> ChaosCase:
    """Deterministically derive one chaos case from its seed."""
    fixture = chaos_fixture()
    rng = random.Random(seed)
    scenario = rng.choice(SCENARIOS)
    sql = fixture.gapply_sql
    expected = fixture.gapply_rows
    case = ChaosCase(seed=seed, scenario=scenario, sql=sql, expected=expected)

    if scenario == "worker-kill":
        case.backend = PROCESS_BACKEND
        case.parallelism = 2
        case.fault = FaultPlan(
            seed=seed,
            kill_batch=rng.randrange(FIXTURE_BATCHES),
            kill_attempts=1,
        )
    elif scenario == "kill-exhaust":
        case.backend = PROCESS_BACKEND
        case.parallelism = 2
        case.fault = FaultPlan(
            seed=seed,
            kill_batch=rng.randrange(FIXTURE_BATCHES),
            kill_attempts=99,
        )
    elif scenario == "delay-timeout":
        case.backend = rng.choice(
            (SERIAL_BACKEND, THREAD_BACKEND, PROCESS_BACKEND)
        )
        case.parallelism = 1 if case.backend == SERIAL_BACKEND else 2
        case.fault = FaultPlan(
            seed=seed,
            delay_batch=rng.randrange(FIXTURE_BATCHES),
            delay_seconds=rng.uniform(0.02, 0.08),
        )
        case.timeout = rng.uniform(0.005, 0.05)
        case.allowed_errors = (TimeoutExceeded, QueryCancelled)
        case.must_succeed = False
    elif scenario == "spill-fail":
        case.memory_budget = rng.choice((64, 128, 256))
        case.fault = FaultPlan(seed=seed, fail_spill_at=rng.randrange(64))
        case.allowed_errors = (SpillError,)
        case.must_succeed = False
    elif scenario == "memory-budget":
        # The baseline formulation carries an ORDER BY: under a small
        # budget the sort spills to disk (still correct rows) while a
        # hash join/aggregate build may raise — never a wrong answer.
        case.sql = fixture.baseline_sql
        case.expected = fixture.baseline_rows
        case.memory_budget = rng.choice((32, 256, 4096, 1 << 20))
        case.allowed_errors = (MemoryBudgetExceeded,)
        case.must_succeed = False
    elif scenario == "row-budget":
        case.max_rows = rng.randrange(0, len(expected) + 5)
        if case.max_rows < len(expected):
            case.allowed_errors = (RowBudgetExceeded,)
            case.must_succeed = False
    elif scenario == "clean-spill":
        case.memory_budget = rng.choice((64, 128, 512))
    # Drawn LAST so the engine dimension extends the seed space without
    # reshuffling which scenario/fault shape every existing seed produces.
    case.engine = rng.choice(ENGINES)
    return case


@dataclass
class ChaosFailure:
    """One broken invariant, with everything needed to replay it.

    ``case`` is a :class:`ChaosCase` or :class:`ConcurrentChaosCase`;
    both expose ``describe()``.
    """

    case: Any
    detail: str

    def describe(self) -> dict[str, Any]:
        return {**self.case.describe(), "detail": self.detail}


@dataclass
class ChaosReport:
    cases: int = 0
    outcomes: dict[str, int] = field(default_factory=dict)
    failures: list[ChaosFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        mix = ", ".join(
            f"{name}={count}" for name, count in sorted(self.outcomes.items())
        )
        status = "ok" if self.ok else f"{len(self.failures)} FAILURES"
        return f"chaos: {self.cases} cases, {status} ({mix})"


def run_chaos_case(case: ChaosCase) -> str | None:
    """Run one case; return None when the invariant held, else a detail
    string describing how it broke."""
    fixture = chaos_fixture()
    kwargs: dict[str, Any] = {
        "backend": case.backend,
        "parallelism": case.parallelism,
        "timeout": case.timeout,
        "memory_budget": case.memory_budget,
        "max_rows": case.max_rows,
        "engine": case.engine,
        # GApply must survive to execution for faults/spill to bite; the
        # optimizer may otherwise rewrite it into a plain aggregate.
        "optimize": False,
    }
    try:
        with warnings.catch_warnings():
            # Degradation-ladder warnings are expected chaos behavior.
            warnings.simplefilter("ignore", RuntimeWarning)
            if case.fault is not None:
                with fault_injection(case.fault):
                    result = fixture.db.sql(case.sql, **kwargs)
            else:
                result = fixture.db.sql(case.sql, **kwargs)
    except ReproError as error:
        if isinstance(error, case.allowed_errors):
            return None
        return (
            f"unexpected typed error {type(error).__name__}: {error} "
            f"(allowed: {[e.__name__ for e in case.allowed_errors]})"
        )
    except Exception as error:  # noqa: BLE001 - the invariant under test
        return f"untyped error escaped: {type(error).__name__}: {error}"
    if list(result.rows) != case.expected:
        return (
            f"wrong answer: {len(result.rows)} rows != "
            f"{len(case.expected)} expected"
        )
    return None


def run_chaos(
    seed: int = 0,
    n: int = 50,
    stop_after: int = 5,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Sweep ``n`` seeded fault plans; see the module docstring for the
    invariant each one asserts."""
    report = ChaosReport()
    for case_seed in range(seed, seed + n):
        case = build_case(case_seed)
        detail = run_chaos_case(case)
        report.cases += 1
        report.outcomes[case.scenario] = (
            report.outcomes.get(case.scenario, 0) + 1
        )
        if detail is not None:
            report.failures.append(ChaosFailure(case, detail))
            if progress is not None:
                progress(f"seed {case_seed} [{case.scenario}] FAILED: {detail}")
            if len(report.failures) >= stop_after:
                break
        elif progress is not None and report.cases % 25 == 0:
            progress(f"{report.cases}/{n} cases ok")
    return report


# ----------------------------------------------------------------------
# Concurrent chaos: multi-threaded clients against a live Service
# ----------------------------------------------------------------------

#: Rows per atomic ledger write; every batch sums to zero, which is what
#: makes torn reads arithmetically visible.
LEDGER_BATCH = 4

#: Concurrent scenarios, drawn per seed.
CONCURRENT_SCENARIOS = (
    "steady",
    "overload",
    "spill-pressure",
    "faulted-spill",
    "shutdown-mid-run",
)

#: How long to wait for a client thread before calling the run a hang.
JOIN_TIMEOUT = 60.0


@dataclass
class ConcurrentChaosCase:
    """One seed's concurrent workload shape (deterministic replay)."""

    seed: int
    scenario: str
    threads: int
    ops_per_thread: int
    max_concurrency: int
    max_queue_depth: int
    fault: FaultPlan | None = None
    gapply_memory_budget: int | None = None
    shutdown_after: float | None = None

    def describe(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "scenario": self.scenario,
            "threads": self.threads,
            "ops_per_thread": self.ops_per_thread,
            "max_concurrency": self.max_concurrency,
            "max_queue_depth": self.max_queue_depth,
            "fault": None if self.fault is None else self.fault.to_dict(),
            "gapply_memory_budget": self.gapply_memory_budget,
            "shutdown_after": self.shutdown_after,
        }


def build_concurrent_case(
    seed: int, threads: int = 8, ops_per_thread: int = 4
) -> ConcurrentChaosCase:
    """Deterministically derive one concurrent case from its seed."""
    rng = random.Random(seed ^ 0xC0C0)
    scenario = CONCURRENT_SCENARIOS[seed % len(CONCURRENT_SCENARIOS)]
    case = ConcurrentChaosCase(
        seed=seed,
        scenario=scenario,
        threads=threads,
        ops_per_thread=ops_per_thread,
        max_concurrency=rng.randrange(2, 5),
        max_queue_depth=rng.randrange(8, 17),
    )
    if scenario == "overload":
        case.max_concurrency = 1
        case.max_queue_depth = rng.randrange(0, 3)
    elif scenario == "spill-pressure":
        case.gapply_memory_budget = rng.choice((64, 128))
    elif scenario == "faulted-spill":
        case.gapply_memory_budget = rng.choice((64, 128))
        case.fault = FaultPlan(seed=seed, fail_spill_at=rng.randrange(32))
    elif scenario == "shutdown-mid-run":
        case.shutdown_after = rng.uniform(0.01, 0.1)
    return case


def _ledger_batch(batch_id: int, rng: random.Random) -> list[tuple]:
    a = rng.randrange(1, 1000)
    b = rng.randrange(1, 1000)
    return [
        (batch_id, 0, a),
        (batch_id, 1, -a),
        (batch_id, 2, b),
        (batch_id, 3, -b),
    ]


def _ledger_service(case: ConcurrentChaosCase):
    """A fresh service over a seeded ledger table."""
    from repro.serve import Service, ServiceConfig
    from repro.storage.types import DataType

    rng = random.Random(case.seed ^ 0x1ED6E2)
    rows: list[tuple] = []
    for batch_id in range(6):
        rows.extend(_ledger_batch(batch_id, rng))
    db = Database()
    db.create_table(
        "ledger",
        [
            ("l_batch", DataType.INTEGER),
            ("l_entry", DataType.INTEGER),
            ("l_amount", DataType.INTEGER),
        ],
        rows,
    )
    config = ServiceConfig(
        max_concurrency=case.max_concurrency,
        max_queue_depth=case.max_queue_depth,
    )
    return Service(db, config=config)


def _reader_invariant(op: str, rows: list[tuple]) -> str | None:
    """Check one read result against the zero-sum ledger invariants."""
    if op == "sum":
        total = rows[0][0] or 0
        if total != 0:
            return f"torn read: sum(l_amount) == {total}, expected 0"
    elif op == "count":
        count = rows[0][0]
        if count % LEDGER_BATCH != 0:
            return (
                f"torn read: count(*) == {count}, not a multiple of "
                f"{LEDGER_BATCH}"
            )
    elif op == "gapply":
        bad = [row for row in rows if (row[-1] or 0) != 0]
        if bad:
            return f"torn read: nonzero per-batch sums {bad[:3]}"
    return None


def _run_concurrent_case(case: ConcurrentChaosCase) -> str | None:
    """Run one concurrent case; None when every invariant held."""
    import threading

    from repro.errors import (
        ServiceOverloaded,
        ServiceStopped,
    )
    from repro.storage.spill import live_spill_files
    from repro.storage.types import DataType

    service = _ledger_service(case)
    failures: list[str] = []
    failures_lock = threading.Lock()
    writes_done = [0] * case.threads
    next_batch = [1000]  # client batch ids start above the seeded ones

    def fail(detail: str) -> None:
        with failures_lock:
            failures.append(detail)

    read_allowed: tuple[type, ...] = (
        ServiceOverloaded,
        ServiceStopped,
        TimeoutExceeded,
        QueryCancelled,
    )
    if case.fault is not None:
        read_allowed += (SpillError,)
    if case.gapply_memory_budget is not None:
        read_allowed += (MemoryBudgetExceeded,)
    write_allowed: tuple[type, ...] = (ServiceStopped,)

    def run_read(tid: int, rng: random.Random) -> None:
        op = rng.choice(("sum", "count", "gapply", "gapply"))
        kwargs: dict[str, Any] = {"timeout": 30.0}
        if op == "sum":
            sql = "select sum(l_amount) from ledger"
        elif op == "count":
            sql = "select count(*) from ledger"
        else:
            sql = (
                "select gapply(select sum(l_amount) from g) as (total) "
                "from ledger group by l_batch : g"
            )
            # Exercise the parallel backends and, under spill pressure,
            # the concurrent spill path; keep GApply un-rewritten so the
            # budget actually reaches the partition phase.
            kwargs["optimize"] = False
            if rng.random() < 0.5:
                kwargs["backend"] = THREAD_BACKEND
                kwargs["parallelism"] = 2
            if case.gapply_memory_budget is not None:
                kwargs["memory_budget"] = case.gapply_memory_budget
        if rng.random() < 0.3:
            kwargs["query_class"] = "batch"
        try:
            result = service.sql(sql, **kwargs)
        except read_allowed:
            return
        detail = _reader_invariant(op, list(result.rows))
        if detail is not None:
            fail(f"thread {tid}: {detail}")

    def run_write(tid: int, rng: random.Random) -> None:
        with failures_lock:
            batch_id = next_batch[0]
            next_batch[0] += 1
        try:
            service.insert("ledger", _ledger_batch(batch_id, rng))
        except write_allowed:
            return
        writes_done[tid] += 1

    def run_ddl(tid: int, rng: random.Random) -> None:
        name = f"scratch_{case.seed}_{tid}_{rng.randrange(1 << 30)}"
        try:
            service.create_table(
                name, [("v", DataType.INTEGER)], [(1,), (2,)]
            )
            rows = list(service.sql(f"select count(*) from {name}").rows)
            service.drop_table(name)
        except read_allowed + write_allowed:
            return
        if rows != [(2,)]:
            fail(f"thread {tid}: scratch table read {rows}, expected [(2,)]")

    def client(tid: int) -> None:
        rng = random.Random((case.seed << 8) ^ tid)
        try:
            for _ in range(case.ops_per_thread):
                roll = rng.random()
                if roll < 0.55:
                    run_read(tid, rng)
                elif roll < 0.85:
                    run_write(tid, rng)
                else:
                    run_ddl(tid, rng)
        except ReproError as error:
            fail(
                f"thread {tid}: unexpected typed error "
                f"{type(error).__name__}: {error}"
            )
        except Exception as error:  # noqa: BLE001 - the invariant
            fail(
                f"thread {tid}: untyped error escaped: "
                f"{type(error).__name__}: {error}"
            )

    spill_files_before = live_spill_files()
    workers = [
        threading.Thread(
            target=client, args=(tid,), name=f"chaos-client-{tid}"
        )
        for tid in range(case.threads)
    ]

    def drive() -> None:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            for worker in workers:
                worker.start()
            if case.shutdown_after is not None:
                time.sleep(case.shutdown_after)
                report = service.shutdown(drain_timeout=1.0)
                if not report.clean:
                    fail(f"shutdown leaked {report.leaked} queries")
            for worker in workers:
                worker.join(JOIN_TIMEOUT)
                if worker.is_alive():
                    fail(f"hang: {worker.name} still running")
                    return

    if case.fault is not None:
        with fault_injection(case.fault):
            drive()
    else:
        drive()
    if failures:
        return "; ".join(failures[:3])

    report = service.shutdown(drain_timeout=5.0)
    if not report.clean:
        return f"shutdown leaked {report.leaked} queries"

    # Post-mortem on the raw database: global invariants plus accounting.
    final = list(
        service.database.sql(
            "select count(*), sum(l_amount) from ledger"
        ).rows
    )
    count, total = final[0]
    if (total or 0) != 0:
        return f"final ledger sum {total} != 0"
    expected_rows = LEDGER_BATCH * (6 + sum(writes_done))
    if count != expected_rows:
        return (
            f"lost or duplicated writes: {count} rows, expected "
            f"{expected_rows} (6 seeded + {sum(writes_done)} client batches)"
        )
    leaked_spills = live_spill_files() - spill_files_before
    if leaked_spills:
        return f"leaked spill files: {sorted(leaked_spills)[:3]}"
    stats = service.stats()
    if stats["active"] != 0 or stats["slots_free"] != stats["slots"]:
        return f"admission accounting corrupt after drain: {stats}"
    return None


def run_concurrent_chaos(
    seed: int = 0,
    n: int = 20,
    threads: int = 8,
    ops_per_thread: int = 4,
    stop_after: int = 5,
    progress: Callable[[str], None] | None = None,
) -> ChaosReport:
    """Sweep ``n`` seeded concurrent workloads (module docstring has the
    invariant). Each seed gets a fresh service; failures carry the full
    case shape for replay."""
    report = ChaosReport()
    for case_seed in range(seed, seed + n):
        case = build_concurrent_case(
            case_seed, threads=threads, ops_per_thread=ops_per_thread
        )
        detail = _run_concurrent_case(case)
        report.cases += 1
        report.outcomes[case.scenario] = (
            report.outcomes.get(case.scenario, 0) + 1
        )
        if detail is not None:
            report.failures.append(ChaosFailure(case, detail))
            if progress is not None:
                progress(
                    f"seed {case_seed} [{case.scenario}] FAILED: {detail}"
                )
            if len(report.failures) >= stop_after:
                break
        elif progress is not None and report.cases % 10 == 0:
            progress(f"{report.cases}/{n} concurrent cases ok")
    return report
