"""Planner configurations for plan-space equivalence checking.

The paper's claim is that every rewrite rule is semantics-preserving, so
the strongest executable check is: run the same query under *every*
planner configuration — each optimizer rule individually disabled, all
rules off, no optimizer at all, both GApply partitioning strategies, no
hash joins, no index access paths, and every execution backend — and
demand identical normalized result multisets.

Two profiles: ``FULL_PROFILE`` is the whole cross-product arm of the CLI
fuzzer; ``QUICK_PROFILE`` keeps tier-1 test time bounded while still
covering the rule families with distinct failure modes. Process-backend
configs carry ``sample_every`` because pool spawn cost dwarfs the tiny
fuzz databases — sampling every Nth case still exercises pickling and
cross-process merge on dozens of cases per run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.optimizer.planner import VECTOR_ENGINE, PlannerOptions

# Cap exploration per configuration: fuzz queries are small, and the full
# alternative budget (128) just burns time re-deriving the same plans.
FUZZ_MAX_ALTERNATIVES = 24


def _options(**kwargs) -> PlannerOptions:
    return PlannerOptions(optimizer_max_alternatives=FUZZ_MAX_ALTERNATIVES, **kwargs)


@dataclass(frozen=True)
class PlanConfig:
    """One point in the plan space to execute a query under."""

    name: str
    options: PlannerOptions = field(default_factory=_options)
    optimize: bool = True
    sample_every: int = 1  # run on every Nth case only


def _rule_names() -> list[str]:
    from repro.optimizer.rules import DEFAULT_RULES

    return [rule.name for rule in DEFAULT_RULES]


def plan_configurations(full: bool) -> list[PlanConfig]:
    rules = _rule_names()
    configs = [
        PlanConfig("unoptimized", optimize=False),
        PlanConfig("all-rules-off", _options(disabled_rules=tuple(rules))),
        PlanConfig("sort-partitioning", _options(gapply_partitioning="sort")),
        PlanConfig("nested-loop-joins", _options(prefer_hash_join=False)),
        PlanConfig("no-indexes", _options(use_indexes=False)),
        PlanConfig(
            "thread-backend",
            _options(gapply_backend="thread", gapply_parallelism=2),
        ),
        PlanConfig(
            "process-backend",
            _options(gapply_backend="process", gapply_parallelism=2),
            sample_every=25,
        ),
        PlanConfig("vector-engine", _options(engine=VECTOR_ENGINE)),
    ]
    if full:
        disabled = rules
    else:
        # The rule families with genuinely different rewrite shapes; the
        # rest are covered by all-rules-off and the nightly full profile.
        disabled = [
            "gapply_to_groupby",
            "invariant_grouping",
            "exists_group_selection",
            "aggregate_group_selection",
            "push_select_into_per_group",
        ]
    for name in disabled:
        configs.append(PlanConfig(f"no-{name}", _options(disabled_rules=(name,))))
    return configs


def engine_configurations() -> list[PlanConfig]:
    """The engine-differential profile: every case's Volcano baseline rows
    against the vector engine across the knobs that change which batched
    operators and fast paths a plan exercises. Batch sizes 3 and 1 force
    cross-batch state (limit countdowns, distinct sets, hash-join builds
    spanning batches) that the default 1024 hides on small fuzz data."""
    return [
        PlanConfig("vector", _options(engine=VECTOR_ENGINE)),
        PlanConfig(
            "vector-batch-3",
            _options(engine=VECTOR_ENGINE, vector_batch_size=3),
        ),
        PlanConfig(
            "vector-batch-1",
            _options(engine=VECTOR_ENGINE, vector_batch_size=1),
        ),
        PlanConfig(
            "vector-unoptimized",
            _options(engine=VECTOR_ENGINE),
            optimize=False,
        ),
        PlanConfig(
            "vector-sort-partitioning",
            _options(engine=VECTOR_ENGINE, gapply_partitioning="sort"),
        ),
        PlanConfig(
            "vector-nested-loop-joins",
            _options(engine=VECTOR_ENGINE, prefer_hash_join=False),
        ),
        PlanConfig(
            "vector-no-indexes",
            _options(engine=VECTOR_ENGINE, use_indexes=False),
        ),
    ]


#: Every configuration (the CLI default).
FULL_PROFILE = "full"
#: Bounded subset for tier-1 tests.
QUICK_PROFILE = "quick"
#: Volcano-vs-vector differential across batch sizes and plan shapes.
ENGINE_PROFILE = "engine"
#: Cold/hot/re-parameterized plan-cache differential (dispatched to
#: :func:`repro.fuzz.plancache.run_plancache_fuzz`, not to plan configs).
PLANCACHE_PROFILE = "plancache"
#: Streamed-vs-materialized XML publishing differential (dispatched to
#: :func:`repro.fuzz.xmlpub.run_xmlpub_fuzz`, not to plan configs).
XMLPUB_PROFILE = "xmlpub"


def profile_configurations(profile: str) -> list[PlanConfig]:
    if profile == FULL_PROFILE:
        return plan_configurations(full=True)
    if profile == QUICK_PROFILE:
        return plan_configurations(full=False)
    if profile == ENGINE_PROFILE:
        return engine_configurations()
    raise PlanError(f"unknown fuzz profile {profile!r}")
