"""The differential fuzz loop: generate, execute, compare, shrink.

For each seeded case this runs three checks:

1. **engine sanity** — the query must execute at all (a crash on
   generator-valid input is a bug, not a skip);
2. **oracle agreement** — the engine's rows must equal SQLite's for the
   lowered query, as NULL-aware normalized multisets;
3. **plan-space equivalence** — every planner configuration from the
   profile must reproduce the baseline rows exactly.

Failures are shrunk (:mod:`repro.fuzz.shrink`) against a predicate that
re-runs the whole differential check and demands the *same failure kind*,
then optionally persisted to the corpus.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.fuzz.corpus import save_case
from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.oracle import compare_multisets, run_oracle, sqlite_mirror
from repro.fuzz.planspace import PlanConfig, profile_configurations
from repro.fuzz.shrink import shrink_case
from repro.sql.sqlite import OracleUnsupportedError


@dataclass(frozen=True)
class FuzzFailure:
    """One divergence, with everything needed to reproduce it."""

    kind: str  # "engine-error" | "oracle" | "oracle-error" | "planspace" | ...
    config: str | None
    detail: str
    case: FuzzCase

    def describe(self) -> str:
        where = f" [{self.config}]" if self.config else ""
        return (
            f"{self.kind}{where} (seed {self.case.seed})\n"
            f"  query: {self.case.sql}\n{self.detail}"
        )


@dataclass
class FuzzReport:
    cases: int = 0
    oracle_checked: int = 0
    oracle_skipped: int = 0
    config_runs: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    corpus_paths: list[Path] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"{self.cases} cases, {self.oracle_checked} oracle comparisons "
            f"({self.oracle_skipped} skipped), {self.config_runs} plan-space runs, "
            f"{len(self.failures)} failures"
        ]
        for failure in self.failures:
            lines.append(failure.describe())
        for path in self.corpus_paths:
            lines.append(f"reproducer written: {path}")
        return "\n".join(lines)


def run_case(
    case: FuzzCase,
    configs: list[PlanConfig],
    index: int = 0,
    report: FuzzReport | None = None,
) -> FuzzFailure | None:
    """Run every check on one case; first divergence wins."""
    db = case.db.build()
    sql = case.sql
    try:
        baseline = db.sql(sql).rows
    except ReproError as error:
        return FuzzFailure(
            "engine-error", None, f"  {type(error).__name__}: {error}", case
        )

    connection = sqlite_mirror(db.catalog)
    try:
        oracle_rows = run_oracle(case.query, connection)
    except OracleUnsupportedError:
        oracle_rows = None
        if report is not None:
            report.oracle_skipped += 1
    except sqlite3.Error as error:
        return FuzzFailure(
            "oracle-error", None, f"  sqlite3: {error}", case
        )
    finally:
        connection.close()
    if oracle_rows is not None:
        if report is not None:
            report.oracle_checked += 1
        mismatch = compare_multisets(baseline, oracle_rows)
        if mismatch is not None:
            return FuzzFailure("oracle", None, mismatch.describe(), case)

    for config in configs:
        if config.sample_every > 1 and index % config.sample_every != 0:
            continue
        try:
            rows = db.sql(
                sql, optimize=config.optimize, planner_options=config.options
            ).rows
        except ReproError as error:
            return FuzzFailure(
                "planspace-error",
                config.name,
                f"  {type(error).__name__}: {error}",
                case,
            )
        if report is not None:
            report.config_runs += 1
        mismatch = compare_multisets(baseline, rows)
        if mismatch is not None:
            return FuzzFailure(
                "planspace",
                config.name,
                mismatch.describe("baseline", config.name),
                case,
            )
    return None


def _case_metrics(failure: FuzzFailure) -> dict | None:
    """Per-operator metrics snapshot of the minimized reproducer's default
    execution — diagnostic context attached to the saved corpus case.

    Best-effort: error-kind failures cannot execute at all, and a metrics
    failure must never mask the bug being persisted.
    """
    try:
        result = failure.case.db.build().sql(
            failure.case.sql, collect_metrics=True
        )
        return result.metrics.snapshot()
    except Exception:
        return None


def _signature(failure: FuzzFailure) -> tuple[str, str | None, str]:
    """What shrinking must preserve: kind, config, and — for error kinds —
    the error type, so minimization cannot morph one bug into another."""
    error_type = ""
    if failure.kind.endswith("error"):
        error_type = failure.detail.strip().split(":")[0]
    return (failure.kind, failure.config, error_type)


def run_fuzz(
    seed: int,
    n: int,
    profile: str = "quick",
    shrink: bool = True,
    corpus_dir: Path | str | None = None,
    stop_after: int = 5,
    progress=None,
) -> FuzzReport:
    """Fuzz ``n`` seeded cases starting at ``seed``.

    Divergent cases are shrunk and (when ``corpus_dir`` is set) persisted;
    fuzzing stops early after ``stop_after`` distinct failures.
    """
    configs = profile_configurations(profile)
    report = FuzzReport()
    for index in range(n):
        case = generate_case(seed + index)
        report.cases += 1
        failure = run_case(case, configs, index, report)
        if failure is None:
            if progress is not None and (index + 1) % 50 == 0:
                progress(f"{index + 1}/{n} cases, no divergence")
            continue
        if shrink:
            wanted = _signature(failure)

            def still_fails(candidate: FuzzCase) -> bool:
                result = run_case(candidate, configs, index)
                return result is not None and _signature(result) == wanted

            small = shrink_case(case, still_fails)
            final = run_case(small, configs, index) or failure
        else:
            final = failure
        report.failures.append(final)
        if corpus_dir is not None:
            report.corpus_paths.append(
                save_case(
                    final.case,
                    final.kind,
                    final.detail,
                    corpus_dir,
                    config=final.config,
                    metrics=_case_metrics(final),
                )
            )
        if len(report.failures) >= stop_after:
            break
    return report
