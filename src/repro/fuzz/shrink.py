"""Greedy minimization of failing fuzz cases.

``shrink_case`` repeatedly proposes structurally smaller variants of a
failing (database, query) pair and keeps any variant for which the
caller's ``still_fails`` predicate holds, until a fixpoint or the
evaluation budget runs out. The passes, in rough order of payoff:

* drop whole tables (with their foreign keys);
* delta-debug table rows (halves, then quarters, ... then single rows);
* drop union branches, WHERE/HAVING clauses, DISTINCT;
* drop select-item positions (consistently across union branches and the
  gapply column-name list);
* drop surplus grouping keys.

The result is what lands in ``tests/fuzz_corpus/`` — small enough to
read, and each pass preserves query validity *by construction or by
re-check* (an invalid variant simply fails ``still_fails`` and is
discarded), so the shrinker never needs dialect-specific validation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.fuzz.generator import FuzzCase, FuzzDatabase, FuzzTable
from repro.sql import ast as A


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    budget: int = 400,
) -> FuzzCase:
    """Smallest variant of ``case`` (greedy) that still fails."""
    evaluations = 0
    current = case
    improved = True
    while improved and evaluations < budget:
        improved = False
        for candidate in _candidates(current):
            evaluations += 1
            if evaluations >= budget:
                break
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False
            if failing:
                current = candidate
                improved = True
                break
    return current


def _candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    yield from _drop_tables(case)
    yield from _reduce_rows(case)
    yield from _reduce_query(case)


# ----------------------------------------------------------------------
# Database reductions
# ----------------------------------------------------------------------


def _drop_tables(case: FuzzCase) -> Iterator[FuzzCase]:
    if len(case.db.tables) <= 1:
        return
    for victim in case.db.tables:
        tables = [t for t in case.db.tables if t is not victim]
        fks = [
            fk
            for fk in case.db.foreign_keys
            if victim.name not in (fk[0], fk[2])
        ]
        yield replace(case, db=FuzzDatabase(tables, fks))


def _reduce_rows(case: FuzzCase) -> Iterator[FuzzCase]:
    for index, table in enumerate(case.db.tables):
        n = len(table.rows)
        if n == 0:
            continue
        chunk = max(1, n // 2)
        while chunk >= 1:
            for start in range(0, n, chunk):
                rows = table.rows[:start] + table.rows[start + chunk:]
                if len(rows) == n:
                    continue
                yield _with_table(case, index, replace_rows(table, rows))
            if chunk == 1:
                break
            chunk //= 2


def replace_rows(table: FuzzTable, rows: list[tuple]) -> FuzzTable:
    return FuzzTable(table.name, table.columns, rows, table.primary_key)


def _with_table(case: FuzzCase, index: int, table: FuzzTable) -> FuzzCase:
    tables = list(case.db.tables)
    tables[index] = table
    return replace(case, db=FuzzDatabase(tables, case.db.foreign_keys))


# ----------------------------------------------------------------------
# Query reductions
# ----------------------------------------------------------------------


def _with_query(case: FuzzCase, query: A.AstQuery) -> FuzzCase:
    return replace(case, query=query)


def _reduce_query(case: FuzzCase) -> Iterator[FuzzCase]:
    query = case.query
    # Drop top-level union branches.
    if len(query.selects) > 1:
        for index in range(len(query.selects)):
            selects = query.selects[:index] + query.selects[index + 1:]
            yield _with_query(case, replace(query, selects=selects))
    for s_index, select in enumerate(query.selects):
        for reduced in _reduce_select(select):
            selects = (
                query.selects[:s_index] + (reduced,) + query.selects[s_index + 1:]
            )
            yield _with_query(case, replace(query, selects=selects))


def _reduce_select(
    select: A.AstSelect, drop_items: bool = True
) -> Iterator[A.AstSelect]:
    if select.where is not None:
        yield replace(select, where=None)
    if select.having is not None:
        yield replace(select, having=None)
    if select.distinct:
        yield replace(select, distinct=False)
    if len(select.group_by) > 1:
        for index in range(len(select.group_by)):
            keys = select.group_by[:index] + select.group_by[index + 1:]
            yield replace(select, group_by=keys)
    if select.gapply is not None:
        yield from _reduce_gapply(select)
    elif drop_items and len(select.items) > 1 and not select.group_by:
        for index in range(len(select.items)):
            items = select.items[:index] + select.items[index + 1:]
            yield replace(select, items=items)


def _reduce_gapply(select: A.AstSelect) -> Iterator[A.AstSelect]:
    gapply = select.gapply
    pgq = gapply.query
    # Drop PGQ union branches.
    if len(pgq.selects) > 1:
        for index in range(len(pgq.selects)):
            selects = pgq.selects[:index] + pgq.selects[index + 1:]
            yield replace(
                select, gapply=replace(gapply, query=replace(pgq, selects=selects))
            )
    # Reduce inside each branch (item drops must stay arity-synced across
    # branches, so they happen only in the dedicated pass below).
    for b_index, branch in enumerate(pgq.selects):
        for reduced in _reduce_select(branch, drop_items=False):
            selects = pgq.selects[:b_index] + (reduced,) + pgq.selects[b_index + 1:]
            yield replace(
                select, gapply=replace(gapply, query=replace(pgq, selects=selects))
            )
    # Drop one output position across all branches + the column names.
    arity = min(len(branch.items) for branch in pgq.selects)
    if arity > 1 and all(len(b.items) == arity for b in pgq.selects):
        for position in range(arity):
            if any(b.group_by for b in pgq.selects) and position == 0:
                continue  # position 0 is the inner grouping key
            selects = tuple(
                replace(b, items=b.items[:position] + b.items[position + 1:])
                for b in pgq.selects
            )
            names = gapply.column_names
            if len(names) == arity:
                names = names[:position] + names[position + 1:]
            yield replace(
                select,
                gapply=A.AstGApplyItem(replace(pgq, selects=selects), names),
            )
