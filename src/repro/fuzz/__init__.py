"""Differential testing: random queries, a SQLite oracle, plan-space checks.

The subsystem has four moving parts:

* :mod:`repro.fuzz.generator` — seeded random schemas, data (skewed group
  sizes, NULL-heavy columns, empty groups, FK chains) and random dialect
  queries as ASTs;
* :mod:`repro.fuzz.oracle` — runs the same query on an in-memory SQLite
  mirror via :mod:`repro.sql.sqlite` and compares multisets;
* :mod:`repro.fuzz.planspace` — runs the query under every planner
  configuration (each rule disabled, all rules off, every backend) and
  demands identical results;
* :mod:`repro.fuzz.shrink` / :mod:`repro.fuzz.corpus` — minimize failures
  and persist them as replayable JSON reproducers;
* :mod:`repro.fuzz.chaos` — seeded fault injection (killed workers,
  delayed batches, failing spill writes) plus adversarial budgets,
  asserting correct rows or a typed error, never a wrong answer.

``python -m repro.fuzz --seed 0 --n 500`` drives all of it; see
:mod:`repro.fuzz.runner`.
"""

from repro.fuzz.chaos import (
    ChaosCase,
    ChaosFailure,
    ChaosReport,
    build_case,
    run_chaos,
    run_chaos_case,
)
from repro.fuzz.corpus import CorpusCase, load_corpus, save_case
from repro.fuzz.generator import FuzzCase, FuzzDatabase, generate_case
from repro.fuzz.oracle import (
    Mismatch,
    compare_multisets,
    normalize_row,
    run_oracle,
    sqlite_mirror,
)
from repro.fuzz.planspace import (
    FULL_PROFILE,
    QUICK_PROFILE,
    XMLPUB_PROFILE,
    plan_configurations,
    profile_configurations,
)
from repro.fuzz.runner import FuzzFailure, FuzzReport, run_case, run_fuzz
from repro.fuzz.shrink import shrink_case
from repro.fuzz.xmlpub import (
    XmlPubCase,
    XmlPubFailure,
    XmlPubReport,
    check_view_case,
    check_case as check_xmlpub_case,
    generate_xmlpub_case,
    load_xmlpub_corpus,
    run_xmlpub_fuzz,
    save_xmlpub_case,
    shrink_xmlpub_case,
)

__all__ = [
    "CorpusCase",
    "ChaosCase",
    "ChaosFailure",
    "ChaosReport",
    "FuzzCase",
    "FuzzDatabase",
    "FuzzFailure",
    "FuzzReport",
    "FULL_PROFILE",
    "Mismatch",
    "QUICK_PROFILE",
    "build_case",
    "compare_multisets",
    "generate_case",
    "load_corpus",
    "normalize_row",
    "plan_configurations",
    "profile_configurations",
    "run_case",
    "run_chaos",
    "run_chaos_case",
    "run_fuzz",
    "run_oracle",
    "run_xmlpub_fuzz",
    "save_case",
    "save_xmlpub_case",
    "shrink_case",
    "shrink_xmlpub_case",
    "sqlite_mirror",
    "check_view_case",
    "check_xmlpub_case",
    "generate_xmlpub_case",
    "load_xmlpub_corpus",
    "XMLPUB_PROFILE",
    "XmlPubCase",
    "XmlPubFailure",
    "XmlPubReport",
]
