"""CLI driver: ``python -m repro.fuzz --seed 0 --n 500``.

Exit status 0 means every case agreed with the SQLite oracle and across
the whole plan space; 1 means at least one divergence (minimized
reproducers are written to ``--corpus-dir`` when given, which is how CI
surfaces them as artifacts).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.fuzz.planspace import (
    ENGINE_PROFILE,
    FULL_PROFILE,
    PLANCACHE_PROFILE,
    QUICK_PROFILE,
    XMLPUB_PROFILE,
)
from repro.fuzz.runner import run_fuzz


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Differential fuzzing against SQLite and the plan space.",
    )
    parser.add_argument("--seed", type=int, default=0, help="first seed (default 0)")
    parser.add_argument("--n", type=int, default=500, help="number of cases")
    parser.add_argument(
        "--profile",
        choices=[
            QUICK_PROFILE,
            FULL_PROFILE,
            ENGINE_PROFILE,
            PLANCACHE_PROFILE,
            XMLPUB_PROFILE,
        ],
        default=FULL_PROFILE,
        help="planner-configuration coverage (default full); 'engine' runs "
        "the Volcano-vs-vector differential across batch sizes and plan "
        "shapes; 'plancache' runs every case cold, hot, and "
        "re-parameterized through the plan cache against an uncached twin; "
        "'xmlpub' runs the streamed-vs-materialized XML publishing "
        "differential (random tagger specs plus end-to-end view cases)",
    )
    parser.add_argument(
        "--corpus-dir",
        default=None,
        help="write minimized reproducers (JSON) into this directory",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report raw failing cases without minimizing them",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=5,
        help="stop after this many distinct failures (default 5)",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="run chaos mode instead: seeded fault plans (worker kills, "
        "delays, spill failures) and adversarial budgets, asserting "
        "correct rows or a typed error",
    )
    parser.add_argument(
        "--durability",
        action="store_true",
        help="run durability chaos instead: seeded crash points against "
        "a WAL-backed store (kills, torn writes, fsync failures, "
        "checkpoint crashes), asserting exact prefix recovery",
    )
    args = parser.parse_args(argv)

    if args.durability:
        return _durability_main(args)
    if args.chaos:
        return _chaos_main(args)
    if args.profile == PLANCACHE_PROFILE:
        return _plancache_main(args)
    if args.profile == XMLPUB_PROFILE:
        return _xmlpub_main(args)
    start = time.perf_counter()
    report = run_fuzz(
        seed=args.seed,
        n=args.n,
        profile=args.profile,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        stop_after=args.stop_after,
        progress=lambda message: print(message, flush=True),
    )
    elapsed = time.perf_counter() - start
    print(report.summary())
    print(f"elapsed: {elapsed:.1f}s")
    return 0 if report.ok else 1


def _plancache_main(args) -> int:
    from repro.fuzz.plancache import run_plancache_fuzz

    start = time.perf_counter()
    report = run_plancache_fuzz(
        seed=args.seed,
        n=args.n,
        stop_after=args.stop_after,
        progress=lambda message: print(message, flush=True),
    )
    elapsed = time.perf_counter() - start
    if report.failures and args.corpus_dir:
        import json
        from pathlib import Path

        directory = Path(args.corpus_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "plancache-failures.json"
        path.write_text(
            json.dumps(
                [failure.describe() for failure in report.failures], indent=2
            )
        )
        print(f"failing plan-cache cases written to {path}")
    print(report.summary())
    print(f"elapsed: {elapsed:.1f}s")
    return 0 if report.ok else 1


def _xmlpub_main(args) -> int:
    from repro.fuzz.xmlpub import run_xmlpub_fuzz

    start = time.perf_counter()
    report = run_xmlpub_fuzz(
        seed=args.seed,
        n=args.n,
        stop_after=args.stop_after,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        progress=lambda message: print(message, flush=True),
    )
    elapsed = time.perf_counter() - start
    print(report.summary())
    print(f"elapsed: {elapsed:.1f}s")
    return 0 if report.ok else 1


def _chaos_main(args) -> int:
    from repro.fuzz.chaos import run_chaos

    start = time.perf_counter()
    report = run_chaos(
        seed=args.seed,
        n=args.n,
        stop_after=args.stop_after,
        progress=lambda message: print(message, flush=True),
    )
    elapsed = time.perf_counter() - start
    if report.failures and args.corpus_dir:
        import json
        from pathlib import Path

        directory = Path(args.corpus_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "chaos-failures.json"
        path.write_text(
            json.dumps(
                [failure.describe() for failure in report.failures], indent=2
            )
        )
        print(f"failing fault plans written to {path}")
    print(report.summary())
    print(f"elapsed: {elapsed:.1f}s")
    return 0 if report.ok else 1


def _durability_main(args) -> int:
    from repro.fuzz.durability import run_durability_chaos

    start = time.perf_counter()
    report = run_durability_chaos(
        seed=args.seed,
        n=args.n,
        stop_after=args.stop_after,
        progress=lambda message: print(message, flush=True),
    )
    elapsed = time.perf_counter() - start
    if report.failures and args.corpus_dir:
        import json
        from pathlib import Path

        directory = Path(args.corpus_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "durability-failures.json"
        path.write_text(
            json.dumps(
                [failure.describe() for failure in report.failures], indent=2
            )
        )
        print(f"failing crash plans written to {path}")
    print(report.summary())
    print(f"elapsed: {elapsed:.1f}s")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
