"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` names exactly where one run of the engine should
misbehave, from a fixed menu of injection points:

* ``kill worker`` — a *process*-pool worker calls ``os._exit`` at the
  start of a chosen dispatch batch, simulating a segfaulting/OOM-killed
  child. Only process workers die (a thread cannot be killed); the plan
  ships to workers inside the pickled pool payload. ``kill_attempts``
  bounds how many times the same batch dies, so tests can exercise both
  "retry succeeds" (1) and "retries exhausted, degrade down the ladder"
  (a large value).
* ``delay batch`` — a worker sleeps before evaluating a chosen batch,
  long enough for a wall-clock budget to expire mid-flight.
* ``fail spill write`` — the Nth framed record written by
  :mod:`repro.storage.spill` (process-wide, counted from activation)
  raises :class:`~repro.errors.SpillError`.

Plans activate through the :func:`fault_injection` context manager,
which installs the plan in a module global consulted at each injection
point — zero overhead when no plan is active (one global read on the
spill-write path, nothing anywhere else). The chaos suite and the
fuzzer's ``--chaos`` mode build seeded plans with :meth:`FaultPlan.
from_seed` and assert the engine's core promise under every one of
them: **correct rows or a typed error — never a wrong answer, never a
hang**.
"""

from __future__ import annotations

import contextlib
import random
import time
from dataclasses import asdict, dataclass
from typing import Iterator

from repro.errors import SpillError

#: Injection point names, for documentation and seeded plan choice.
#: ``from_seed`` draws from exactly this tuple — extending it would
#: reshuffle every pinned chaos seed, so the durability crash points
#: below live in their own menu (``DURABILITY_POINTS`` /
#: ``FaultPlan.for_durability``).
INJECTION_POINTS = ("worker-kill", "batch-delay", "spill-write")

#: Crash points for the durability chaos profile. ``none`` is a real
#: member: clean runs keep the sweep honest about recovery from an
#: orderly shutdown, not only from violence.
DURABILITY_POINTS = (
    "none",
    "wal-kill",
    "wal-short-write",
    "wal-fsync-fail",
    "group-fsync-kill",
    "checkpoint-temp",
    "checkpoint-rename",
    "checkpoint-truncate",
)


class SimulatedCrash(BaseException):
    """The process 'died' at an armed crash point.

    Derives from ``BaseException`` so no engine-internal ``except
    Exception``/``except ReproError`` handler can absorb it — exactly
    like a real ``os._exit`` would tear through them. The durability
    chaos harness catches it explicitly, abandons the in-memory store,
    and re-opens from disk."""


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault: at most one injection point armed per plan.

    Frozen and built from plain ints/floats so it pickles into process
    workers and serializes losslessly into chaos-failure artifacts.
    """

    seed: int = 0
    #: Dispatch-batch index whose worker dies (process backend only).
    kill_batch: int | None = None
    #: Die on the first N attempts of that batch; attempt N+1 survives.
    kill_attempts: int = 1
    #: Dispatch-batch index to delay, and for how long.
    delay_batch: int | None = None
    delay_seconds: float = 0.0
    #: Global index (from activation) of the spill record write to fail.
    fail_spill_at: int | None = None
    #: Crash (SimulatedCrash) immediately *before* the Nth WAL append —
    #: nothing of that record reaches disk.
    wal_kill_at: int | None = None
    #: Write only the first ``wal_short_write_keep`` bytes of the Nth WAL
    #: frame, then crash — a torn tail for recovery to truncate.
    wal_short_write_at: int | None = None
    wal_short_write_keep: int = 4
    #: The Nth WAL fsync fails with OSError (the writer rolls the frame
    #: back and raises a typed WalError; the process survives).
    wal_fsync_fail_at: int | None = None
    #: Crash (SimulatedCrash) immediately *after* the Nth successful
    #: group-commit batch fsync — the batch is durable but no waiter was
    #: acknowledged yet, creating durable-but-unacked "in doubt" commits.
    group_fsync_kill_at: int | None = None
    #: Crash during the Nth checkpoint, at one of three phases:
    #: ``temp`` (mid temp-file write — leaves a .tmp orphan), ``rename``
    #: (temp fully written+fsynced, before the atomic rename), or
    #: ``truncate`` (checkpoint renamed into place, before the old
    #: segments are deleted — checkpoint and stale segments coexist).
    checkpoint_crash_at: int | None = None
    checkpoint_crash_phase: str = "temp"

    @classmethod
    def from_seed(
        cls, seed: int, batches: int = 4, max_delay: float = 0.05
    ) -> "FaultPlan":
        """A reproducible plan: the seed picks the injection point and
        its coordinates. ``batches`` bounds the batch index so the fault
        usually lands on real work."""
        rng = random.Random(seed)
        point = rng.choice(INJECTION_POINTS)
        if point == "worker-kill":
            return cls(
                seed=seed,
                kill_batch=rng.randrange(max(1, batches)),
                # Mostly recoverable kills; occasionally exhaust retries
                # so the degradation ladder gets chaos coverage too.
                kill_attempts=1 if rng.random() < 0.8 else 99,
            )
        if point == "batch-delay":
            return cls(
                seed=seed,
                delay_batch=rng.randrange(max(1, batches)),
                delay_seconds=rng.uniform(0.0, max_delay),
            )
        return cls(seed=seed, fail_spill_at=rng.randrange(32))

    @classmethod
    def for_durability(
        cls, seed: int, appends: int = 24, checkpoints: int = 3
    ) -> "FaultPlan":
        """A reproducible durability crash plan: the seed picks one point
        from :data:`DURABILITY_POINTS` and its coordinates. ``appends`` /
        ``checkpoints`` bound the indices so the crash usually lands on
        real work."""
        # Pure-int derivation: string seeds hash differently per process
        # (PYTHONHASHSEED), which would make CI reproducers lie.
        rng = random.Random((seed * 0x9E3779B1 + 0xD0B1) % (1 << 62))
        point = rng.choice(DURABILITY_POINTS)
        if point == "wal-kill":
            return cls(seed=seed, wal_kill_at=rng.randrange(max(1, appends)))
        if point == "wal-short-write":
            return cls(
                seed=seed,
                wal_short_write_at=rng.randrange(max(1, appends)),
                # 1..24 bytes: sometimes inside the 8-byte header,
                # sometimes a partial payload.
                wal_short_write_keep=rng.randrange(1, 25),
            )
        if point == "wal-fsync-fail":
            return cls(
                seed=seed, wal_fsync_fail_at=rng.randrange(max(1, appends))
            )
        if point == "group-fsync-kill":
            # Group batches are far sparser than appends; aim low so the
            # crash usually lands on a batch that actually happens.
            return cls(
                seed=seed,
                group_fsync_kill_at=rng.randrange(max(1, appends // 4)),
            )
        if point.startswith("checkpoint-"):
            return cls(
                seed=seed,
                checkpoint_crash_at=rng.randrange(max(1, checkpoints)),
                checkpoint_crash_phase=point.split("-", 1)[1],
            )
        return cls(seed=seed)

    def to_dict(self) -> dict:
        return asdict(self)


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------

_active: FaultPlan | None = None
_spill_writes = 0
_wal_appends = 0
_wal_fsyncs = 0
_group_fsyncs = 0
_checkpoints = 0


def active_plan() -> FaultPlan | None:
    return _active


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (used directly by process-worker
    initializers, where a context manager has no scope to live in)."""
    global _active, _spill_writes, _wal_appends, _wal_fsyncs
    global _group_fsyncs, _checkpoints
    _active = plan
    _spill_writes = 0
    _wal_appends = 0
    _wal_fsyncs = 0
    _group_fsyncs = 0
    _checkpoints = 0


@contextlib.contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block."""
    previous = _active
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


# ---------------------------------------------------------------------------
# Injection points (called from the engine)
# ---------------------------------------------------------------------------


def check_spill_write() -> None:
    """Called by :mod:`repro.storage.spill` before every record write."""
    global _spill_writes
    if _active is None or _active.fail_spill_at is None:
        return
    index = _spill_writes
    _spill_writes += 1
    if index == _active.fail_spill_at:
        raise SpillError(
            f"injected spill-write failure at record {index} "
            f"(fault seed {_active.seed})"
        )


def check_wal_append() -> int | None:
    """Called by the WAL writer before each framed append.

    Returns ``None`` to proceed normally, or a byte count: write only
    that many bytes of the frame, then raise :class:`SimulatedCrash`
    (the caller performs the partial write so the torn bytes really hit
    the file first). Raises :class:`SimulatedCrash` directly for a
    kill-before-append."""
    global _wal_appends
    plan = _active
    if plan is None or (
        plan.wal_kill_at is None and plan.wal_short_write_at is None
    ):
        return None
    index = _wal_appends
    _wal_appends += 1
    if plan.wal_kill_at == index:
        raise SimulatedCrash(
            f"injected kill before WAL append {index} (fault seed {plan.seed})"
        )
    if plan.wal_short_write_at == index:
        return max(1, plan.wal_short_write_keep)
    return None


def check_wal_fsync() -> None:
    """Called by the WAL writer before each fsync; the Nth one fails.

    Raises ``OSError`` (what a real failed ``fsync(2)`` surfaces as);
    the writer converts it to a typed WalError after rolling back the
    un-synced frame."""
    global _wal_fsyncs
    plan = _active
    if plan is None or plan.wal_fsync_fail_at is None:
        return
    index = _wal_fsyncs
    _wal_fsyncs += 1
    if index == plan.wal_fsync_fail_at:
        raise OSError(
            f"injected fsync failure at WAL sync {index} "
            f"(fault seed {plan.seed})"
        )


def check_group_fsync() -> None:
    """Called by the group-commit leader *after* a successful batch fsync.

    The Nth batch raises :class:`SimulatedCrash` at exactly the moment
    the batch is durable but none of its waiters has been acknowledged —
    the 'in doubt' window group commit introduces: recovery must surface
    those commits (they are durable), while the chaos harness's acked
    ledger does not contain them."""
    global _group_fsyncs
    plan = _active
    if plan is None or plan.group_fsync_kill_at is None:
        return
    index = _group_fsyncs
    _group_fsyncs += 1
    if index == plan.group_fsync_kill_at:
        raise SimulatedCrash(
            f"injected kill after group-commit fsync {index} "
            f"(fault seed {plan.seed})"
        )


def check_checkpoint(phase: str) -> None:
    """Called by the checkpoint writer at its three crash phases.

    ``phase`` is one of ``temp`` / ``rename`` / ``truncate``; the Nth
    checkpoint whose armed phase is reached dies with
    :class:`SimulatedCrash`. The counter advances once per checkpoint
    (on the ``temp`` phase, which every checkpoint passes first)."""
    global _checkpoints
    plan = _active
    if plan is None or plan.checkpoint_crash_at is None:
        return
    if phase == "temp":
        index = _checkpoints
        _checkpoints += 1
    else:
        index = _checkpoints - 1
    if index == plan.checkpoint_crash_at and phase == plan.checkpoint_crash_phase:
        raise SimulatedCrash(
            f"injected crash at checkpoint {index} phase {phase!r} "
            f"(fault seed {plan.seed})"
        )


def on_worker_batch(batch_index: int, attempt: int) -> None:
    """Called by workers at the start of each dispatched batch.

    Ordering matters: the delay fires before the kill check so a plan
    combining both (never produced by ``from_seed``, but legal) still
    dies at a deterministic point.
    """
    plan = _active
    if plan is None:
        return
    if plan.delay_batch == batch_index and plan.delay_seconds > 0:
        time.sleep(plan.delay_seconds)
    if plan.kill_batch == batch_index and attempt < plan.kill_attempts:
        from repro.execution import parallel

        if parallel._in_process_worker:
            import os

            # The whole point: die the way a segfault dies — no cleanup,
            # no exception, the parent just sees a vanished child.
            os._exit(3)
