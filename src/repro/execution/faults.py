"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` names exactly where one run of the engine should
misbehave, from a fixed menu of injection points:

* ``kill worker`` — a *process*-pool worker calls ``os._exit`` at the
  start of a chosen dispatch batch, simulating a segfaulting/OOM-killed
  child. Only process workers die (a thread cannot be killed); the plan
  ships to workers inside the pickled pool payload. ``kill_attempts``
  bounds how many times the same batch dies, so tests can exercise both
  "retry succeeds" (1) and "retries exhausted, degrade down the ladder"
  (a large value).
* ``delay batch`` — a worker sleeps before evaluating a chosen batch,
  long enough for a wall-clock budget to expire mid-flight.
* ``fail spill write`` — the Nth framed record written by
  :mod:`repro.storage.spill` (process-wide, counted from activation)
  raises :class:`~repro.errors.SpillError`.

Plans activate through the :func:`fault_injection` context manager,
which installs the plan in a module global consulted at each injection
point — zero overhead when no plan is active (one global read on the
spill-write path, nothing anywhere else). The chaos suite and the
fuzzer's ``--chaos`` mode build seeded plans with :meth:`FaultPlan.
from_seed` and assert the engine's core promise under every one of
them: **correct rows or a typed error — never a wrong answer, never a
hang**.
"""

from __future__ import annotations

import contextlib
import random
import time
from dataclasses import asdict, dataclass
from typing import Iterator

from repro.errors import SpillError

#: Injection point names, for documentation and seeded plan choice.
INJECTION_POINTS = ("worker-kill", "batch-delay", "spill-write")


@dataclass(frozen=True)
class FaultPlan:
    """One seeded fault: at most one injection point armed per plan.

    Frozen and built from plain ints/floats so it pickles into process
    workers and serializes losslessly into chaos-failure artifacts.
    """

    seed: int = 0
    #: Dispatch-batch index whose worker dies (process backend only).
    kill_batch: int | None = None
    #: Die on the first N attempts of that batch; attempt N+1 survives.
    kill_attempts: int = 1
    #: Dispatch-batch index to delay, and for how long.
    delay_batch: int | None = None
    delay_seconds: float = 0.0
    #: Global index (from activation) of the spill record write to fail.
    fail_spill_at: int | None = None

    @classmethod
    def from_seed(
        cls, seed: int, batches: int = 4, max_delay: float = 0.05
    ) -> "FaultPlan":
        """A reproducible plan: the seed picks the injection point and
        its coordinates. ``batches`` bounds the batch index so the fault
        usually lands on real work."""
        rng = random.Random(seed)
        point = rng.choice(INJECTION_POINTS)
        if point == "worker-kill":
            return cls(
                seed=seed,
                kill_batch=rng.randrange(max(1, batches)),
                # Mostly recoverable kills; occasionally exhaust retries
                # so the degradation ladder gets chaos coverage too.
                kill_attempts=1 if rng.random() < 0.8 else 99,
            )
        if point == "batch-delay":
            return cls(
                seed=seed,
                delay_batch=rng.randrange(max(1, batches)),
                delay_seconds=rng.uniform(0.0, max_delay),
            )
        return cls(seed=seed, fail_spill_at=rng.randrange(32))

    def to_dict(self) -> dict:
        return asdict(self)


# ---------------------------------------------------------------------------
# Activation
# ---------------------------------------------------------------------------

_active: FaultPlan | None = None
_spill_writes = 0


def active_plan() -> FaultPlan | None:
    return _active


def install_plan(plan: FaultPlan | None) -> None:
    """Install ``plan`` process-wide (used directly by process-worker
    initializers, where a context manager has no scope to live in)."""
    global _active, _spill_writes
    _active = plan
    _spill_writes = 0


@contextlib.contextmanager
def fault_injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of the block."""
    previous = _active
    install_plan(plan)
    try:
        yield plan
    finally:
        install_plan(previous)


# ---------------------------------------------------------------------------
# Injection points (called from the engine)
# ---------------------------------------------------------------------------


def check_spill_write() -> None:
    """Called by :mod:`repro.storage.spill` before every record write."""
    global _spill_writes
    if _active is None or _active.fail_spill_at is None:
        return
    index = _spill_writes
    _spill_writes += 1
    if index == _active.fail_spill_at:
        raise SpillError(
            f"injected spill-write failure at record {index} "
            f"(fault seed {_active.seed})"
        )


def on_worker_batch(batch_index: int, attempt: int) -> None:
    """Called by workers at the start of each dispatched batch.

    Ordering matters: the delay fires before the kill check so a plan
    combining both (never produced by ``from_seed``, but legal) still
    dies at a deterministic point.
    """
    plan = _active
    if plan is None:
        return
    if plan.delay_batch == batch_index and plan.delay_seconds > 0:
        time.sleep(plan.delay_seconds)
    if plan.kill_batch == batch_index and attempt < plan.kill_attempts:
        from repro.execution import parallel

        if parallel._in_process_worker:
            import os

            # The whole point: die the way a segfault dies — no cleanup,
            # no exception, the parent just sees a vanished child.
            os._exit(3)
