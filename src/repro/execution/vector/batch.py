"""The columnar batch: the unit of data flow in the vector engine.

A :class:`ColumnBatch` holds up to ``batch_size`` tuples in one of two
physical representations, converting lazily between them:

* **columnar** — one Python list (or tuple) per column, optionally viewed
  through a *selection vector* ``sel`` mapping logical position ``i`` to
  physical position ``sel[i]``. Filters produce selection views instead
  of copying every surviving column; the copy happens at most once, the
  first time a consumer actually asks for a column (:meth:`_compact`).
* **row-major** — a list of row tuples. Operators that naturally produce
  rows (index lookups, hash-join output, Volcano fallbacks) hand the row
  list over as-is; columns are materialized only if an expression needs
  one. The row cache also makes pipelines like scan→sort free of the
  columnar round-trip: the scan keeps the original row slice cached.

NULLs are plain ``None`` values inside columns — the same representation
the row engine uses — and :meth:`null_mask` derives (and caches) a
boolean validity mask per column for kernels that want one. There is no
separate bitmap to keep coherent.

Batches are immutable from the consumer's point of view: every
transforming method returns a new batch, sharing unmodified column
storage with its parent. (Compaction rebinds ``_columns`` to fresh
lists; it never mutates a shared list in place.)
"""

from __future__ import annotations

from typing import Iterable, Sequence

#: Default number of rows per batch. Large enough that per-batch Python
#: overhead (dispatch, counter updates, governor ticks) amortizes to
#: noise; small enough that intermediate columns stay cache-resident.
DEFAULT_BATCH_SIZE = 1024


class ColumnBatch:
    """A batch of rows in columnar and/or row-major form.

    Exactly one of ``columns``/``rows`` may be omitted. ``sel`` (a list of
    physical indices) is only meaningful with ``columns``. Zero-*width*
    batches are represented as ``columns=[]`` with an explicit ``length``;
    zero-*length* batches should not be constructed — pipeline stages
    return ``None`` instead of an empty batch.
    """

    __slots__ = ("_columns", "_rows", "_sel", "_masks", "length")

    def __init__(
        self,
        columns: list[Sequence] | None = None,
        length: int | None = None,
        rows: list[tuple] | None = None,
        sel: list[int] | None = None,
    ):
        if columns is None and rows is None:
            raise ValueError("ColumnBatch needs columns or rows")
        if length is None:
            if rows is not None:
                length = len(rows)
            elif columns:
                length = len(sel) if sel is not None else len(columns[0])
            else:
                raise ValueError("zero-width ColumnBatch needs an explicit length")
        self._columns = columns
        self._rows = rows
        self._sel = sel
        self._masks = None
        self.length = length

    # ------------------------------------------------------------------
    # Representation management
    # ------------------------------------------------------------------

    @property
    def has_rows(self) -> bool:
        """True when a row-major form is already materialized."""
        return self._rows is not None

    def _compact(self) -> None:
        """Apply the pending selection vector to every column at once."""
        sel = self._sel
        if sel is None:
            return
        self._columns = [[col[j] for j in sel] for col in self._columns]
        self._sel = None

    def _materialize_columns(self) -> None:
        rows = self._rows
        if not rows:
            raise ValueError("cannot infer width of an empty row batch")
        self._columns = list(zip(*rows))

    def column(self, position: int) -> Sequence:
        """Column ``position`` as a dense sequence of ``length`` values."""
        if self._columns is None:
            self._materialize_columns()
        elif self._sel is not None:
            self._compact()
        return self._columns[position]

    def rows(self) -> list[tuple]:
        """The batch as a list of row tuples (cached)."""
        if self._rows is None:
            if self._sel is not None:
                self._compact()
            cols = self._columns
            if not cols:
                self._rows = [()] * self.length
            else:
                self._rows = list(zip(*cols))
        return self._rows

    def null_mask(self, position: int) -> list[bool]:
        """Validity mask for one column: ``True`` where the value is NULL.

        Derived from the ``None`` values and cached per column; kernels
        that prefer bitmap-style iteration use this instead of re-testing
        ``is None`` in every expression.
        """
        if self._masks is None:
            self._masks = {}
        mask = self._masks.get(position)
        if mask is None:
            mask = [value is None for value in self.column(position)]
            self._masks[position] = mask
        return mask

    # ------------------------------------------------------------------
    # Transformations (all return new batches)
    # ------------------------------------------------------------------

    def select(self, indices: list[int]) -> "ColumnBatch":
        """Keep the rows at the given logical positions, in order."""
        if self._rows is not None and self._columns is None:
            rows = self._rows
            picked = [rows[i] for i in indices]
            return ColumnBatch(rows=picked, length=len(picked))
        sel = self._sel
        if sel is not None:
            indices = [sel[i] for i in indices]
        return ColumnBatch(columns=self._columns, length=len(indices), sel=indices)

    def head(self, count: int) -> "ColumnBatch":
        """The first ``count`` rows."""
        if self._rows is not None and self._columns is None:
            return ColumnBatch(rows=self._rows[:count], length=count)
        if self._sel is not None:
            return ColumnBatch(
                columns=self._columns, length=count, sel=self._sel[:count]
            )
        return ColumnBatch(
            columns=[col[:count] for col in self._columns], length=count
        )

    def project_columns(self, positions: Sequence[int]) -> "ColumnBatch":
        """A batch with only the given columns, in the given order.

        Requires (and triggers) the columnar form; dropped columns with a
        pending selection vector are never compacted.
        """
        if self._columns is None:
            self._materialize_columns()
        cols = self._columns
        return ColumnBatch(
            columns=[cols[p] for p in positions], length=self.length, sel=self._sel
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def from_rows(rows: list[tuple], width: int) -> "ColumnBatch":
        """Wrap a freshly-built row list (kept as the row-major cache)."""
        if width == 0:
            return ColumnBatch(columns=[], length=len(rows))
        return ColumnBatch(rows=rows, length=len(rows))


def iter_chunks(rows: Sequence, batch_size: int) -> Iterable:
    """Slice an in-memory sequence into ``batch_size`` pieces."""
    for start in range(0, len(rows), batch_size):
        yield rows[start : start + batch_size]
