"""Vector nodes: batch sources and pipeline breakers.

A :class:`VectorNode` is the batch-level analogue of a
:class:`~repro.execution.base.PhysicalOperator`: ``batches(ctx)`` yields
:class:`~repro.execution.vector.batch.ColumnBatch` objects. Every node
is bound to the *original* physical operator it implements (``self.op``)
and counts work into the same :class:`~repro.execution.context.Counters`
fields and :class:`~repro.observe.metrics.MetricsRegistry` records the
Volcano implementation would — at batch granularity, which is where the
speedup comes from (one counter update per batch, not per row).

The base-class ``batches`` wrapper centralizes the per-node
instrumentation protocol, mirroring ``MetricsRegistry.drive``:

* ``executions``/``rows_out``/``elapsed_ns`` on the operator's record
  (records resolved lazily, only when a registry is attached);
* an ``operator`` tracer span per execution when tracing;
* ``governor.check()`` at iterator start and ``tick(n)`` per batch —
  under a governor the wall-clock/cancel state is observed at least once
  per batch at every node, the batch-granularity version of the Volcano
  per-row stride.

Subclasses implement ``_run(ctx)`` and update only the *operator
specific* counters there.
"""

from __future__ import annotations

from itertools import islice
from operator import itemgetter as _itemgetter
from typing import Iterator

from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.execution.gapply import _buffer_row
from repro.storage.types import DataType, grouping_key

from repro.execution.vector.aggregates import make_state
from repro.execution.vector.batch import ColumnBatch
from repro.execution.vector.exprs import compile_batch


#: Below this many rows, a GApply group runs its per-group plan on the
#: Volcano iterators instead of the batch nodes: the engines are
#: counter-identical by construction, and the batch machinery's fixed
#: per-execution cost only pays for itself on groups with real volume.
VECTOR_GROUP_MIN_ROWS = 16

#: Column types whose raw values order exactly like their singleton
#: ``grouping_key`` tuples (no NULL sentinel, no bool tagging needed):
#: eligible for the bare-``itemgetter`` sort fast path when the key
#: column has no NULLs.
_SORT_RAW_TYPES = (
    DataType.INTEGER,
    DataType.FLOAT,
    DataType.STRING,
    DataType.DATE,
)


def rows_batch(rows: list, width: int) -> ColumnBatch:
    """Wrap freshly-built row tuples as a batch (row cache retained)."""
    if width == 0:
        return ColumnBatch(columns=[], length=len(rows))
    return ColumnBatch(rows=rows, length=len(rows))


def raw_group_keys_ok(schema, positions) -> bool:
    """True when raw value tuples can replace ``grouping_key`` as dict
    keys for same-column grouping (GROUP BY / GApply partition / whole-row
    DISTINCT): only ``ANY``-typed columns can mix bools with numbers in
    one position and hit the ``True == 1`` collision the tagged key
    guards against. ``None`` needs no sentinel for hashing — it is equal
    only to itself, exactly the NULLs-group-together behaviour."""
    return all(schema[p].dtype is not DataType.ANY for p in positions)


def volcano_batches(
    op: PhysicalOperator, ctx: ExecutionContext, batch_size: int
) -> Iterator[ColumnBatch]:
    """Drive an operator's Volcano iterator and chunk it into batches.

    All counting/governing flows through the operator's own ``execute``
    path, so a fallback subtree behaves identically to the row engine.
    """
    width = len(op.schema)
    iterator = op.execute(ctx)
    while True:
        chunk = list(islice(iterator, batch_size))
        if not chunk:
            return
        yield rows_batch(chunk, width)


class VectorNode:
    """Base class; subclasses set ``op`` and implement ``_run``."""

    op: PhysicalOperator

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        governor = ctx.governor
        if governor is not None:
            governor.check()
        metrics = ctx.metrics
        if metrics is None:
            if governor is None:
                yield from self._run(ctx)
            else:
                for batch in self._run(ctx):
                    governor.tick(batch.length)
                    yield batch
            return
        record = metrics.record_for(self.op)
        record.executions += 1
        tracer = ctx.tracer
        span = (
            None
            if tracer is None
            else tracer.begin("operator", self.op.label(), path=record.path)
        )
        clock = metrics.clock
        iterator = self._run(ctx)
        rows = 0
        elapsed = 0
        try:
            while True:
                start = clock()
                try:
                    batch = next(iterator)
                except StopIteration:
                    elapsed += clock() - start
                    break
                elapsed += clock() - start
                rows += batch.length
                if governor is not None:
                    governor.tick(batch.length)
                yield batch
        finally:
            record.rows_out += rows
            record.elapsed_ns += elapsed
            if span is not None:
                tracer.end(span, rows_out=rows)

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        raise NotImplementedError


class VolcanoSource(VectorNode):
    """Fallback leaf: an unsupported subtree running under the row engine.

    Overrides ``batches`` entirely — the wrapped operator does all of its
    own counting, metrics, and governing through ``execute``.
    """

    def __init__(self, op: PhysicalOperator, batch_size: int):
        self.op = op
        self.batch_size = batch_size

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        return volcano_batches(self.op, ctx, self.batch_size)


class EmptyNode(VectorNode):
    """``Limit[<=0]``: the operator executes; its subtree never does
    (mirroring the lazy Volcano cascade, where the child iterator is
    never even created)."""

    def __init__(self, op: PhysicalOperator):
        self.op = op

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        return
        yield  # pragma: no cover - generator marker


class TableScanSource(VectorNode):
    def __init__(self, op, batch_size: int):
        self.op = op
        self.batch_size = batch_size

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        counters = ctx.counters
        width = len(self.op.schema)
        rows = self.op.table.rows
        size = self.batch_size
        for start in range(0, len(rows), size):
            chunk = rows[start : start + size]
            n = len(chunk)
            counters.rows += n
            counters.table_scan_rows += n
            yield rows_batch(chunk, width)


class GroupScanSource(VectorNode):
    def __init__(self, op, batch_size: int):
        self.op = op
        self.batch_size = batch_size

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        counters = ctx.counters
        width = len(self.op.schema)
        rows = ctx.relation(self.op.variable)
        size = self.batch_size
        for start in range(0, len(rows), size):
            chunk = list(rows[start : start + size])
            n = len(chunk)
            counters.rows += n
            counters.group_scan_rows += n
            yield rows_batch(chunk, width)


class MaterializedSource(VectorNode):
    def __init__(self, op, batch_size: int):
        self.op = op
        self.batch_size = batch_size

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        counters = ctx.counters
        width = len(self.op.schema)
        rows = self.op._rows
        size = self.batch_size
        for start in range(0, len(rows), size):
            chunk = rows[start : start + size]
            counters.rows += len(chunk)
            yield rows_batch(chunk, width)


class IndexSeekSource(VectorNode):
    """Index probe leaf; the residual runs row-at-a-time exactly like the
    Volcano operator (including its dual counter/record comparison
    accounting)."""

    def __init__(self, op, batch_size: int):
        self.op = op
        self.batch_size = batch_size

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        op = self.op
        counters = ctx.counters
        width = len(op.schema)
        record = None if ctx.metrics is None else ctx.metrics.record_for(op)
        if record is not None:
            record.index_probes += 1
        residual = op._evaluate_residual
        size = self.batch_size
        out: list = []
        for row in op._fetch():
            counters.table_scan_rows += 1
            if residual is not None:
                counters.comparisons += 1
                if record is not None:
                    record.comparisons += 1
                if residual(row, ctx) is not True:
                    continue
            out.append(row)
            if len(out) >= size:
                counters.rows += len(out)
                yield rows_batch(out, width)
                out = []
        if out:
            counters.rows += len(out)
            yield rows_batch(out, width)


class SpillGateNode(VectorNode):
    """Runtime spill gate around a fused stage with a Volcano spill path.

    Whole-row DISTINCT fuses into its input pipeline as a streaming
    stage, which has no way to block and re-emit — so under a governor
    memory budget (known only at runtime) the gate delegates the whole
    subtree to the Volcano operator, whose external two-phase path owns
    the spill bookkeeping. Without a budget the inner pipeline runs
    untouched; ``batches`` is overridden entirely so the gate adds no
    metrics records or tracer spans of its own.
    """

    def __init__(
        self, op: PhysicalOperator, inner: VectorNode, batch_size: int
    ):
        self.op = op
        self.inner = inner
        self.batch_size = batch_size

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        governor = ctx.governor
        if governor is not None and governor.spill_threshold() is not None:
            yield from volcano_batches(self.op, ctx, self.batch_size)
            return
        yield from self.inner.batches(ctx)


class SortNode(VectorNode):
    """Blocking sort breaker mirroring ``PSort``: full materialization,
    up-front cell charge, right-to-left stable per-key sorts. Under a
    governor memory budget the whole subtree delegates to the Volcano
    operator's external merge sort (same pattern as ``GApplyNode``)."""

    def __init__(self, op, child: VectorNode, batch_size: int):
        self.op = op
        self.child = child
        self.batch_size = batch_size

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        governor = ctx.governor
        if governor is not None and governor.spill_threshold() is not None:
            yield from volcano_batches(self.op, ctx, self.batch_size)
            return
        yield from super().batches(ctx)

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        op = self.op
        counters = ctx.counters
        governor = ctx.governor
        width = len(op.schema)
        rows: list = []
        for batch in self.child.batches(ctx):
            rows.extend(batch.rows())
        cells = len(rows) * width
        counters.buffered_cells += cells
        try:
            if governor is not None:
                governor.charge_cells(cells)
            for position, ascending in reversed(op._positions):
                # For raw-orderable columns with no NULLs, the bare value
                # sorts identically to its singleton grouping_key tuple —
                # skip the per-comparison key lambda entirely.
                if op.schema[position].dtype in _SORT_RAW_TYPES and not any(
                    row[position] is None for row in rows
                ):
                    rows.sort(
                        key=_itemgetter(position), reverse=not ascending
                    )
                else:
                    rows.sort(
                        key=lambda row: grouping_key((row[position],)),
                        reverse=not ascending,
                    )
            counters.comparisons += len(rows)
            size = self.batch_size
            for start in range(0, len(rows), size):
                chunk = rows[start : start + size]
                counters.rows += len(chunk)
                yield rows_batch(chunk, width)
        finally:
            if governor is not None:
                governor.release_cells(cells)


class UnionAllNode(VectorNode):
    def __init__(self, op, children: list[VectorNode]):
        self.op = op
        self.child_nodes = children

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        counters = ctx.counters
        for child in self.child_nodes:
            for batch in child.batches(ctx):
                counters.rows += batch.length
                yield batch


class HashAggregateNode(VectorNode):
    """GROUP BY / scalar aggregation breaker mirroring ``PHashAggregate``.

    Each input batch is bucketed by key once, then every group's states
    are fed column *slices* — so the specialized states (sum/min/max over
    typed columns) see C-speed operations while group discovery order and
    per-group feed order stay exactly the row engine's.
    """

    def __init__(self, op, child: VectorNode, batch_size: int):
        self.op = op
        self.child = child
        self.batch_size = batch_size
        child_schema = op.child.schema
        self._arg_evaluators = [
            None
            if call.argument is None
            else compile_batch(call.argument, child_schema)
            for call in op.aggregates
        ]
        self._arg_dtypes = [
            DataType.ANY if call.argument is None else call.argument.infer(child_schema)
            for call in op.aggregates
        ]
        self._raw_keys = raw_group_keys_ok(child_schema, op._key_positions)

    def _new_states(self) -> list:
        return [
            make_state(call, dtype)
            for call, dtype in zip(self.op.aggregates, self._arg_dtypes)
        ]

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        op = self.op
        counters = ctx.counters
        width = len(op.schema)
        evaluators = self._arg_evaluators

        if not op.keys:
            states = self._new_states()
            for batch in self.child.batches(ctx):
                n = batch.length
                for state, evaluate in zip(states, evaluators):
                    if evaluate is None:
                        state.update_n(n)
                    else:
                        state.update(evaluate(batch, ctx))
            counters.rows += 1
            yield rows_batch([tuple(state.result() for state in states)], width)
            return

        key_positions = op._key_positions
        single_key = len(key_positions) == 1
        raw = self._raw_keys
        groups: dict = {}  # key -> (key_values, states)
        for batch in self.child.batches(ctx):
            n = batch.length
            counters.hash_inserts += n
            key_columns = [batch.column(p) for p in key_positions]
            if single_key:
                keys = (
                    key_columns[0]
                    if raw
                    else [grouping_key((v,)) for v in key_columns[0]]
                )
            else:
                zipped = list(zip(*key_columns))
                keys = zipped if raw else [grouping_key(kv) for kv in zipped]
            # Bucket row indices per key (first-appearance order).
            buckets: dict = {}
            for i, key in enumerate(keys):
                found = buckets.get(key)
                if found is None:
                    buckets[key] = [i]
                else:
                    found.append(i)
            arg_columns = [
                None if evaluate is None else evaluate(batch, ctx)
                for evaluate in evaluators
            ]
            for key, indices in buckets.items():
                entry = groups.get(key)
                if entry is None:
                    first = indices[0]
                    entry = (
                        tuple(column[first] for column in key_columns),
                        self._new_states(),
                    )
                    groups[key] = entry
                states = entry[1]
                whole = len(indices) == n
                count = len(indices)
                for state, column in zip(states, arg_columns):
                    if column is None:
                        state.update_n(count)
                    else:
                        state.update(
                            column if whole else [column[i] for i in indices]
                        )

        out: list = []
        size = self.batch_size
        for key_values, states in groups.values():
            counters.rows += 1
            out.append(key_values + tuple(state.result() for state in states))
            if len(out) >= size:
                yield rows_batch(out, width)
                out = []
        if out:
            yield rows_batch(out, width)


class GApplyNode(VectorNode):
    """Serial in-memory GApply breaker: batched partition phase, vector
    per-group plans, counter-for-counter faithful to ``PGApply``.

    Parallel backends and forced spill thresholds are routed to the
    Volcano operator at compile time; a *governor-provided* spill
    threshold is only known at runtime, so that check happens here (the
    whole operator then delegates, keeping the spill bookkeeping in one
    place).
    """

    def __init__(self, op, outer: VectorNode, per_group: VectorNode, batch_size: int):
        self.op = op
        self.outer = outer
        self.per_group = per_group
        self.batch_size = batch_size
        self._raw_keys = raw_group_keys_ok(op.outer.schema, op._key_positions)

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        if self.op._effective_spill_threshold(ctx) is not None:
            yield from volcano_batches(self.op, ctx, self.batch_size)
            return
        yield from super().batches(ctx)

    # -- partition phase -------------------------------------------------

    def _partition_hash(self, ctx: ExecutionContext):
        counters = ctx.counters
        op = self.op
        key_getter = op._key_getter
        raw = self._raw_keys
        buckets: dict = {}
        total = 0
        width = len(op.outer.schema)
        for batch in self.outer.batches(ctx):
            rows = batch.rows()
            n = batch.length
            counters.hash_inserts += n
            counters.buffered_cells += n * width
            total += n
            for row in rows:
                key_values = key_getter(row)
                key = key_values if raw else grouping_key(key_values)
                buffered = _buffer_row(row)
                entry = buckets.get(key)
                if entry is None:
                    buckets[key] = (key_values, [buffered])
                else:
                    entry[1].append(buffered)
        counters.peak_partition_rows = max(counters.peak_partition_rows, total)
        if ctx.metrics is not None:
            ctx.metrics.record_for(op).partition_rows += total
        return buckets.values()

    def _partition_sort(self, ctx: ExecutionContext):
        counters = ctx.counters
        op = self.op
        key_getter = op._key_getter
        width = len(op.outer.schema)
        rows: list = []
        for batch in self.outer.batches(ctx):
            rows.extend(_buffer_row(row) for row in batch.rows())
        counters.buffered_cells += len(rows) * width
        counters.peak_partition_rows = max(counters.peak_partition_rows, len(rows))
        if ctx.metrics is not None:
            ctx.metrics.record_for(op).partition_rows += len(rows)
        rows.sort(key=lambda row: grouping_key(key_getter(row)))
        counters.comparisons += len(rows)
        partitions = []
        current_key = None
        current_values: tuple = ()
        bucket: list = []
        for row in rows:
            key_values = key_getter(row)
            key = grouping_key(key_values)
            if key != current_key:
                if current_key is not None:
                    partitions.append((current_values, bucket))
                current_key = key
                current_values = key_values
                bucket = []
            bucket.append(row)
        if current_key is not None:
            partitions.append((current_values, bucket))
        return partitions

    # -- execution phase -------------------------------------------------

    def _run(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        from repro.execution.gapply import HASH_PARTITION

        op = self.op
        counters = ctx.counters
        if op.partitioning == HASH_PARTITION:
            partitions = self._partition_hash(ctx)
        else:
            partitions = self._partition_sort(ctx)
        variable = op.group_variable
        record = None if ctx.metrics is None else ctx.metrics.record_for(op)
        tracer = ctx.tracer
        width = len(op.schema)
        per_group = self.per_group
        relations = dict(ctx.relations)
        group_ctx = ExecutionContext(
            ctx.counters, ctx.scalars, relations, ctx.metrics, ctx.tracer,
            ctx.governor,
        )
        size = self.batch_size
        volcano_per_group = op.per_group
        pending: list = []
        for key_values, group_rows in partitions:
            counters.groups_partitioned += 1
            counters.group_executions += 1
            relations[variable] = group_rows
            span = (
                None
                if tracer is None
                else tracer.begin(
                    "group", f"${variable}={key_values!r}",
                    group_rows=len(group_rows),
                )
            )
            emitted = 0
            if len(group_rows) < VECTOR_GROUP_MIN_ROWS:
                # Tiny group: the batch machinery's fixed per-execution
                # cost exceeds its savings, and both engines count work
                # identically by construction — run the row iterators.
                for pgq_row in volcano_per_group.execute(group_ctx):
                    emitted += 1
                    counters.rows += 1
                    pending.append(key_values + pgq_row)
            else:
                for batch in per_group.batches(group_ctx):
                    pgq_rows = batch.rows()
                    emitted += len(pgq_rows)
                    counters.rows += len(pgq_rows)
                    pending.extend(key_values + row for row in pgq_rows)
            if record is not None:
                record.groups_formed += 1
                if not emitted:
                    record.empty_groups_skipped += 1
            if span is not None:
                tracer.end(span, rows_out=emitted)
            if len(pending) >= size:
                yield rows_batch(pending, width)
                pending = []
        if pending:
            yield rows_batch(pending, width)
