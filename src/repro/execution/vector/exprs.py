"""Columnwise expression kernels for the vector engine.

:func:`compile_batch` turns a scalar :class:`~repro.algebra.expressions.
Expression` into a function ``(batch, ctx) -> list`` producing one output
value per batch row. The kernels are *semantically identical* to the
row-at-a-time evaluators in :mod:`repro.algebra.expressions` — including
three-valued logic, NULL propagation, error types, and (crucially) which
errors can be raised at all:

* ``And``/``Or`` mirror the scalar short-circuit by evaluating operand
  *k* only on the rows still undecided after operand *k-1*. A predicate
  like ``x <> 0 AND 10 / x > 1`` therefore never divides by zero on the
  vector path either. (When several rows are erroneous, *which* row's
  error surfaces may differ between engines; differential tests treat
  matching error types as agreement.)
* ``CaseWhen`` and any expression type without a kernel fall back to the
  scalar evaluator applied per row — correctness first, speed where it
  matters.

Speed comes from specialization where it is provably safe: comparisons
and ``+``/``-``/``*`` between columns whose static types rule out type
errors run as plain comprehensions over C-level operators, skipping the
per-value ``compare_values``/``isinstance`` ceremony of the generic
path. The static gate uses :meth:`Expression.infer`; ``ANY`` always
takes the generic kernel.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, List

from repro.algebra.expressions import (
    _COMPARISON_TESTS,
    SCALAR_FUNCTIONS,
    And,
    Arithmetic,
    ArithmeticOp,
    ColumnRef,
    Comparison,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    Parameter,
)
from repro.errors import ExecutionError, TypeCheckError
from repro.storage.schema import Schema
from repro.storage.types import DataType, compare_values

from repro.execution.vector.batch import ColumnBatch

#: ``(batch, ctx) -> list`` — one value per logical batch row.
BatchEvaluator = Callable[[ColumnBatch, Any], List[Any]]

_NUMERIC = (DataType.INTEGER, DataType.FLOAT)
#: Same-type comparisons that native ``<``/``==`` decide exactly like
#: ``compare_values`` (no cross-type, no NULL-vs-value subtleties beyond
#: the explicit ``is None`` checks in the kernels).
_ORDERED = (DataType.INTEGER, DataType.FLOAT, DataType.STRING, DataType.DATE)

_CMP_OPERATORS = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compile_batch(expr: Expression, schema: Schema) -> BatchEvaluator:
    """Compile ``expr`` against ``schema`` into a per-batch kernel."""
    kernel = _KERNELS.get(type(expr))
    if kernel is not None:
        return kernel(expr, schema)
    return _scalar_fallback(expr, schema)


def _scalar_fallback(expr: Expression, schema: Schema) -> BatchEvaluator:
    """Row-at-a-time evaluation of one expression over the batch."""
    scalar = expr.compile(schema)
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        return [scalar(row, ctx) for row in batch.rows()]
    return evaluate


# ----------------------------------------------------------------------
# Leaf kernels
# ----------------------------------------------------------------------

def _compile_column(expr: ColumnRef, schema: Schema) -> BatchEvaluator:
    position = schema.index_of(expr.name)
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        return batch.column(position)  # zero-copy
    return evaluate


def _compile_literal(expr: Literal, schema: Schema) -> BatchEvaluator:
    value = expr.value
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        return [value] * batch.length
    return evaluate


def _compile_parameter(expr: Parameter, schema: Schema) -> BatchEvaluator:
    name = expr.name
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        if ctx is None:
            raise ExecutionError(f"parameter {name!r} referenced outside an Apply")
        return [ctx.scalar(name)] * batch.length
    return evaluate


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

def _compile_comparison(expr: Comparison, schema: Schema) -> BatchEvaluator:
    left = compile_batch(expr.left, schema)
    right = compile_batch(expr.right, schema)
    lt = expr.left.infer(schema)
    rt = expr.right.infer(schema)
    fast = (lt in _NUMERIC and rt in _NUMERIC) or (
        lt is rt and lt in (DataType.STRING, DataType.DATE)
    )
    if fast:
        cmp_op = _CMP_OPERATORS[expr.op.value]
        def evaluate(batch: ColumnBatch, ctx: Any) -> list:
            return [
                None if lv is None or rv is None else cmp_op(lv, rv)
                for lv, rv in zip(left(batch, ctx), right(batch, ctx))
            ]
        return evaluate

    test = _COMPARISON_TESTS[expr.op]
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        out = []
        append = out.append
        for lv, rv in zip(left(batch, ctx), right(batch, ctx)):
            cmp = compare_values(lv, rv)
            append(None if cmp is None else test(cmp))
        return out
    return evaluate


# ----------------------------------------------------------------------
# Kleene connectives with short-circuit masking
# ----------------------------------------------------------------------

def _compile_connective(expr: Expression, schema: Schema, is_and: bool) -> BatchEvaluator:
    compiled = [compile_batch(op, schema) for op in expr.operands]
    decided = False if is_and else True  # the absorbing value

    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        result = list(compiled[0](batch, ctx))
        for fn in compiled[1:]:
            alive = [i for i, v in enumerate(result) if v is not decided]
            if not alive:
                break
            if len(alive) == batch.length:
                values = fn(batch, ctx)
                for i, v in enumerate(values):
                    if v is decided:
                        result[i] = decided
                    elif v is None:
                        result[i] = None
            else:
                sub = batch.select(alive)
                values = fn(sub, ctx)
                for i, v in zip(alive, values):
                    if v is decided:
                        result[i] = decided
                    elif v is None:
                        result[i] = None
        return result

    return evaluate


def _compile_and(expr: And, schema: Schema) -> BatchEvaluator:
    return _compile_connective(expr, schema, is_and=True)


def _compile_or(expr: Or, schema: Schema) -> BatchEvaluator:
    return _compile_connective(expr, schema, is_and=False)


def _compile_not(expr: Not, schema: Schema) -> BatchEvaluator:
    inner = compile_batch(expr.operand, schema)
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        return [None if v is None else not v for v in inner(batch, ctx)]
    return evaluate


def _compile_isnull(expr: IsNull, schema: Schema) -> BatchEvaluator:
    inner = compile_batch(expr.operand, schema)
    negated = expr.negated
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        if negated:
            return [v is not None for v in inner(batch, ctx)]
        return [v is None for v in inner(batch, ctx)]
    return evaluate


# ----------------------------------------------------------------------
# Arithmetic
# ----------------------------------------------------------------------

_FAST_ARITH = {
    ArithmeticOp.ADD: operator.add,
    ArithmeticOp.SUB: operator.sub,
    ArithmeticOp.MUL: operator.mul,
}


def _compile_arithmetic(expr: Arithmetic, schema: Schema) -> BatchEvaluator:
    left = compile_batch(expr.left, schema)
    right = compile_batch(expr.right, schema)
    op = expr.op
    lt = expr.left.infer(schema)
    rt = expr.right.infer(schema)
    fast_op = _FAST_ARITH.get(op)
    if fast_op is not None and lt in _NUMERIC and rt in _NUMERIC:
        # Typed numeric columns cannot hold bools or non-numbers, so the
        # per-value TypeCheck of the generic path is statically satisfied.
        def evaluate(batch: ColumnBatch, ctx: Any) -> list:
            return [
                None if lv is None or rv is None else fast_op(lv, rv)
                for lv, rv in zip(left(batch, ctx), right(batch, ctx))
            ]
        return evaluate

    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        out = []
        append = out.append
        for lv, rv in zip(left(batch, ctx), right(batch, ctx)):
            if lv is None or rv is None:
                append(None)
                continue
            if not isinstance(lv, (int, float)) or isinstance(lv, bool):
                raise TypeCheckError(f"non-numeric operand {lv!r} for {op.value}")
            if not isinstance(rv, (int, float)) or isinstance(rv, bool):
                raise TypeCheckError(f"non-numeric operand {rv!r} for {op.value}")
            if op is ArithmeticOp.ADD:
                append(lv + rv)
            elif op is ArithmeticOp.SUB:
                append(lv - rv)
            elif op is ArithmeticOp.MUL:
                append(lv * rv)
            else:
                if rv == 0:
                    raise ExecutionError(f"division by zero: {lv} {op.value} {rv}")
                if op is ArithmeticOp.DIV:
                    if isinstance(lv, int) and isinstance(rv, int):
                        quotient = abs(lv) // abs(rv)
                        append(quotient if (lv >= 0) == (rv >= 0) else -quotient)
                    else:
                        append(lv / rv)
                else:
                    append(lv % rv)
        return out
    return evaluate


def _compile_negate(expr: Negate, schema: Schema) -> BatchEvaluator:
    inner = compile_batch(expr.operand, schema)
    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        return [None if v is None else -v for v in inner(batch, ctx)]
    return evaluate


# ----------------------------------------------------------------------
# IN lists, function calls
# ----------------------------------------------------------------------

def _compile_inlist(expr: InList, schema: Schema) -> BatchEvaluator:
    if not all(isinstance(item, Literal) for item in expr.items):
        # Non-constant IN lists keep the scalar left-to-right evaluation
        # (later items are not evaluated once one matches).
        return _scalar_fallback(expr, schema)
    inner = compile_batch(expr.operand, schema)
    candidates = [item.value for item in expr.items]
    negated = expr.negated

    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        out = []
        append = out.append
        for value in inner(batch, ctx):
            if value is None:
                append(None)
                continue
            saw_null = False
            matched = False
            for candidate in candidates:
                if candidate is None:
                    saw_null = True
                    continue
                if compare_values(value, candidate) == 0:
                    matched = True
                    break
            if matched:
                append(not negated)
            elif saw_null:
                append(None)
            else:
                append(negated)
        return out
    return evaluate


def _compile_function(expr: FunctionCall, schema: Schema) -> BatchEvaluator:
    fn = SCALAR_FUNCTIONS[expr.name.lower()]
    compiled = [compile_batch(arg, schema) for arg in expr.args]
    if not compiled:
        def evaluate(batch: ColumnBatch, ctx: Any) -> list:
            return [fn() for _ in range(batch.length)]
        return evaluate

    def evaluate(batch: ColumnBatch, ctx: Any) -> list:
        columns = [c(batch, ctx) for c in compiled]
        return [fn(*values) for values in zip(*columns)]
    return evaluate


_KERNELS: dict[type, Callable[[Any, Schema], BatchEvaluator]] = {
    ColumnRef: _compile_column,
    Literal: _compile_literal,
    Parameter: _compile_parameter,
    Comparison: _compile_comparison,
    And: _compile_and,
    Or: _compile_or,
    Not: _compile_not,
    IsNull: _compile_isnull,
    Arithmetic: _compile_arithmetic,
    Negate: _compile_negate,
    InList: _compile_inlist,
    FunctionCall: _compile_function,
    # CaseWhen and anything new: scalar fallback via compile_batch's default.
}
