"""Pipeline compiler: physical plan → vector node tree.

:func:`compile_plan` walks a planner-produced physical operator tree
bottom-up. Streaming operators extend the current :class:`Pipeline`;
pipeline breakers (sort, aggregate, GApply, union) become dedicated
:class:`~repro.execution.vector.nodes.VectorNode` breakers whose inputs
are themselves compiled nodes. Joins pipeline their *probe* side and
compile the build side as a separate node drained when the stage binds.

Fallback policy (see DESIGN.md §12): any operator without a batched
implementation roots its whole subtree in a
:class:`~repro.execution.vector.nodes.VolcanoSource`, which runs the
row-at-a-time iterators unchanged and re-batches at the boundary. The
compiler records a :class:`FallbackNote` per fallback so callers (tests,
EXPLAIN consumers, the fuzz driver) can see how much of a plan actually
vectorized. Current fallbacks:

* correlated ``PApply`` (per-row rebinding of scalar parameters) and
  ``PExists`` (early-termination semantics are pull-based);
* ``PNestedLoopJoin`` and ``PStreamAggregate`` (row-ordered operators
  that the planner only picks for small/ordered inputs);
* ``PGApply`` configured for a parallel backend or an explicit spill
  threshold (worker protocol and spill bookkeeping live in the Volcano
  operator; a governor-derived threshold is additionally checked at
  runtime by the GApply breaker itself);
* anything this compiler has never heard of — new operators are
  correct-by-default, fast once someone adds a batched form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.execution.aggregates import PHashAggregate, PStreamAggregate
from repro.execution.apply import PApply, PExists
from repro.execution.base import PhysicalOperator, PMaterialized
from repro.execution.basic import (
    PAlias,
    PDistinct,
    PFilter,
    PLimit,
    PProject,
    PPrune,
    PRemap,
    PSort,
    PUnionAll,
)
from repro.execution.context import ExecutionContext
from repro.execution.gapply import PGApply
from repro.execution.indexscan import PIndexNestedLoopJoin, PIndexSeek
from repro.execution.joins import PHashJoin, PNestedLoopJoin
from repro.execution.parallel import SERIAL_BACKEND
from repro.execution.scans import PGroupScan, PTableScan
from repro.storage.table import Row

from repro.execution.vector.batch import DEFAULT_BATCH_SIZE
from repro.execution.vector.nodes import (
    EmptyNode,
    GApplyNode,
    GroupScanSource,
    HashAggregateNode,
    IndexSeekSource,
    MaterializedSource,
    SortNode,
    SpillGateNode,
    TableScanSource,
    UnionAllNode,
    VectorNode,
    VolcanoSource,
)
from repro.execution.vector.pipeline import (
    AliasStage,
    ApplyStage,
    DistinctStage,
    FilterStage,
    HashJoinStage,
    IndexNLJoinStage,
    LimitStage,
    Pipeline,
    ProjectStage,
    PruneStage,
    Stage,
)


@dataclass(frozen=True)
class FallbackNote:
    """One subtree the compiler routed through the Volcano iterators."""

    label: str
    reason: str


@dataclass
class VectorPlan:
    """A compiled vector plan, ready to run against an ExecutionContext."""

    root: VectorNode
    physical: PhysicalOperator
    fallbacks: tuple[FallbackNote, ...]
    batch_size: int = DEFAULT_BATCH_SIZE

    @property
    def fully_vectorized(self) -> bool:
        return not self.fallbacks

    def rows(self, ctx: ExecutionContext) -> Iterator[Row]:
        for batch in self.root.batches(ctx):
            yield from batch.rows()

    def run(self, ctx: ExecutionContext) -> list[Row]:
        return list(self.rows(ctx))


def compile_plan(
    physical: PhysicalOperator, batch_size: int = DEFAULT_BATCH_SIZE
) -> VectorPlan:
    """Compile a physical plan into a vector node tree (always succeeds;
    unsupported subtrees run under Volcano)."""
    compiler = _Compiler(batch_size)
    root = compiler.compile(physical)
    return VectorPlan(root, physical, tuple(compiler.fallbacks), batch_size)


class _Compiler:
    def __init__(self, batch_size: int):
        self.batch_size = batch_size
        self.fallbacks: list[FallbackNote] = []

    def fallback(self, op: PhysicalOperator, reason: str) -> VolcanoSource:
        self.fallbacks.append(FallbackNote(op.label(), reason))
        return VolcanoSource(op, self.batch_size)

    def extend(self, node: VectorNode, stage: Stage) -> Pipeline:
        if isinstance(node, Pipeline):
            return node.extend(stage)
        return Pipeline(node, [stage])

    def compile(self, op: PhysicalOperator) -> VectorNode:
        size = self.batch_size
        # -- leaves ----------------------------------------------------
        if isinstance(op, PTableScan):
            return TableScanSource(op, size)
        if isinstance(op, PGroupScan):
            return GroupScanSource(op, size)
        if isinstance(op, PMaterialized):
            return MaterializedSource(op, size)
        if isinstance(op, PIndexSeek):
            return IndexSeekSource(op, size)
        # -- fused streaming stages ------------------------------------
        if isinstance(op, PFilter):
            return self.extend(self.compile(op.child), FilterStage(op))
        if isinstance(op, PProject):
            return self.extend(self.compile(op.child), ProjectStage(op))
        if isinstance(op, (PPrune, PRemap)):
            return self.extend(self.compile(op.child), PruneStage(op))
        if isinstance(op, PAlias):
            return self.extend(self.compile(op.child), AliasStage(op))
        if isinstance(op, PLimit):
            if op.limit <= 0:
                # The child subtree is never instantiated, matching the
                # lazy Volcano cascade (child records stay all-zero).
                return EmptyNode(op)
            return self.extend(self.compile(op.child), LimitStage(op))
        if isinstance(op, PDistinct):
            # The fused stage cannot block, so its external spill path
            # lives in the Volcano operator; the gate checks the governor
            # at runtime and delegates the subtree when a budget is set.
            inner = self.extend(self.compile(op.child), DistinctStage(op))
            return SpillGateNode(op, inner, size)
        if isinstance(op, PHashJoin):
            build_child = op.left if op.build_left else op.right
            probe_child = op.right if op.build_left else op.left
            build_node = self.compile(build_child)
            return self.extend(
                self.compile(probe_child), HashJoinStage(op, build_node)
            )
        if isinstance(op, PIndexNestedLoopJoin):
            return self.extend(self.compile(op.outer), IndexNLJoinStage(op))
        if isinstance(op, PApply):
            if op.bindings:
                return self.fallback(op, "correlated apply")
            inner_node = self.compile(op.inner)
            return self.extend(
                self.compile(op.outer), ApplyStage(op, inner_node)
            )
        # -- breakers --------------------------------------------------
        if isinstance(op, PSort):
            return SortNode(op, self.compile(op.child), size)
        if isinstance(op, PUnionAll):
            return UnionAllNode(op, [self.compile(c) for c in op.inputs])
        if isinstance(op, PHashAggregate):
            return HashAggregateNode(op, self.compile(op.child), size)
        if isinstance(op, PGApply):
            if op.backend != SERIAL_BACKEND and op.parallelism > 1:
                return self.fallback(op, f"parallel backend {op.backend!r}")
            if op.spill_threshold is not None:
                return self.fallback(op, "explicit spill threshold")
            return GApplyNode(
                op, self.compile(op.outer), self.compile(op.per_group), size
            )
        # -- Volcano-only operators ------------------------------------
        if isinstance(op, PExists):
            return self.fallback(op, "exists probe")
        if isinstance(op, PNestedLoopJoin):
            return self.fallback(op, "nested-loop join")
        if isinstance(op, PStreamAggregate):
            return self.fallback(op, "stream aggregate")
        return self.fallback(op, f"no batched implementation: {type(op).__name__}")
