"""Column-feed aggregate states for the vector engine.

The row engine's :class:`~repro.algebra.expressions.AggregateAccumulator`
takes one value per ``add`` call. Here each aggregate keeps a *state*
object fed a whole column (or column slice) at a time, with specialized
updates where the argument's static type proves them exact:

* ``COUNT(*)`` / ``COUNT(x)`` — length arithmetic and ``list.count``.
* ``SUM``/``AVG`` over INTEGER — built-in ``sum`` per slice (integer
  addition is associative, so regrouping is exact).
* ``SUM``/``AVG`` over FLOAT — a sequential loop in the row engine's
  exact addition order; IEEE addition is *not* associative, and the
  equivalence contract promises bit-identical results.
* ``MIN``/``MAX`` over any non-ANY type — native ``min``/``max``, which
  agree with ``compare_values`` ordering once cross-type mixes are ruled
  out (values in a typed column are homogeneous by ``check_value``).

``DISTINCT`` aggregates and ``ANY``-typed arguments wrap the row
accumulator unchanged — correctness is never traded for the fast path.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.algebra.expressions import (
    AggregateAccumulator,
    AggregateCall,
    AggregateFunction,
)
from repro.storage.types import DataType


class GenericState:
    """Wrap the row engine's accumulator: exact semantics, no speedup."""

    __slots__ = ("acc",)

    def __init__(self, call: AggregateCall):
        self.acc = AggregateAccumulator(call)

    def update(self, values: Sequence) -> None:
        add = self.acc.add
        for value in values:
            add(value)

    def result(self) -> Any:
        return self.acc.result()


class CountStarState:
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def update_n(self, n: int) -> None:
        self.count += n

    def result(self) -> int:
        return self.count


class CountState:
    __slots__ = ("count",)

    def __init__(self):
        self.count = 0

    def update(self, values: Sequence) -> None:
        self.count += len(values) - values.count(None)

    def result(self) -> int:
        return self.count


class SumState:
    """SUM/AVG; ``exact`` chooses sliced ``sum`` vs the sequential loop."""

    __slots__ = ("_sum", "count", "avg", "exact")

    def __init__(self, avg: bool, exact: bool):
        self._sum: Any = None
        self.count = 0
        self.avg = avg
        self.exact = exact

    def update(self, values: Sequence) -> None:
        if self.exact:
            non_null = [v for v in values if v is not None]
            if non_null:
                self.count += len(non_null)
                part = sum(non_null)
                self._sum = part if self._sum is None else self._sum + part
            return
        # Float addition: keep the row engine's left-to-right order.
        total = self._sum
        count = self.count
        for value in values:
            if value is not None:
                count += 1
                total = value if total is None else total + value
        self._sum = total
        self.count = count

    def result(self) -> Any:
        if self.avg:
            return None if self.count == 0 else self._sum / self.count
        return self._sum


class MinState:
    __slots__ = ("_min",)

    def __init__(self):
        self._min: Any = None

    def update(self, values: Sequence) -> None:
        non_null = [v for v in values if v is not None]
        if non_null:
            candidate = min(non_null)
            if self._min is None or candidate < self._min:
                self._min = candidate

    def result(self) -> Any:
        return self._min


class MaxState:
    __slots__ = ("_max",)

    def __init__(self):
        self._max: Any = None

    def update(self, values: Sequence) -> None:
        non_null = [v for v in values if v is not None]
        if non_null:
            candidate = max(non_null)
            if self._max is None or candidate > self._max:
                self._max = candidate

    def result(self) -> Any:
        return self._max


def make_state(call: AggregateCall, argument_dtype: DataType):
    """Pick the fastest state whose specialization is statically safe."""
    function = call.function
    if function is AggregateFunction.COUNT_STAR:
        return CountStarState()
    if call.distinct:
        return GenericState(call)
    if function is AggregateFunction.COUNT:
        return CountState()
    if argument_dtype is DataType.ANY:
        return GenericState(call)
    if function in (AggregateFunction.SUM, AggregateFunction.AVG):
        if argument_dtype is DataType.INTEGER:
            return SumState(avg=function is AggregateFunction.AVG, exact=True)
        if argument_dtype is DataType.FLOAT:
            return SumState(avg=function is AggregateFunction.AVG, exact=False)
        return GenericState(call)
    if function is AggregateFunction.MIN:
        return MinState()
    if function is AggregateFunction.MAX:
        return MaxState()
    return GenericState(call)
