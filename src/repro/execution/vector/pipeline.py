"""Fused pipelines: straight-line operator chains over one batch loop.

A :class:`Pipeline` couples a source :class:`~repro.execution.vector.
nodes.VectorNode` with a list of *stages* — the batched forms of the
streaming operators (filter, project, prune, remap, alias, limit,
distinct, hash-join probe, index-join probe, uncorrelated apply). Each
input batch flows through every stage in one pass; batches that lose all
their rows drop out early, and an exhausted stage (LIMIT satisfied)
stops the whole pipeline after its final batch is flushed downstream.

Instrumentation mirrors the Volcano chain per operator:

* each stage's operator record gets ``executions += 1`` when the
  pipeline starts (matching the first-pull cascade of nested iterators),
  ``rows_out`` per emitted batch, and ``elapsed_ns`` for its own apply
  time (exclusive, where Volcano's is inclusive — elapsed is excluded
  from snapshot equivalence for exactly this kind of reason);
* deterministic :class:`~repro.execution.context.Counters` fields are
  updated with the same totals as the row loop, one add per batch;
* the governor is checked once at pipeline start and ticked per batch
  per stage, the batched analogue of per-row ticks at every level.

Stage *specs* hold everything derivable from the plan (compiled
predicates, positions, build-side nodes); :meth:`Stage.bind` produces
the per-execution state (seen-sets, hash tables, limit countdowns), so a
pipeline inside a GApply per-group plan re-binds cleanly for every
group, just as Volcano re-instantiates its iterator chain.
"""

from __future__ import annotations

import operator
from typing import Iterator

from repro.execution.context import ExecutionContext
from repro.storage.types import DataType, grouping_key

from repro.execution.vector.batch import ColumnBatch
from repro.execution.vector.exprs import compile_batch
from repro.execution.vector.nodes import (
    VectorNode,
    raw_group_keys_ok,
    rows_batch,
)

#: Join-key types where raw values hash/compare exactly like
#: ``grouping_key`` output *across* columns: BOOLEAN is excluded because
#: ``True == 1`` would cross-match an INTEGER column, ANY because it can
#: hold anything.
_RAW_JOIN_TYPES = (
    DataType.INTEGER,
    DataType.FLOAT,
    DataType.STRING,
    DataType.DATE,
)


def _raw_join_keys_ok(left_schema, left_positions, right_schema, right_positions):
    return all(
        left_schema[p].dtype in _RAW_JOIN_TYPES for p in left_positions
    ) and all(right_schema[p].dtype in _RAW_JOIN_TYPES for p in right_positions)


class Stage:
    """Compile-time spec for one fused operator. Stateless stages bind to
    themselves; stateful ones return a fresh bound object per execution."""

    __slots__ = ("op",)

    exhausted = False

    def bind(self, ctx: ExecutionContext) -> "Stage":
        return self

    def apply(self, batch: ColumnBatch, ctx: ExecutionContext):
        raise NotImplementedError

    def finish(self, ctx: ExecutionContext) -> None:
        return None


class Pipeline(VectorNode):
    """A source plus fused stages; itself a node, so breakers compose."""

    def __init__(self, source: VectorNode, stages: list[Stage]):
        self.source = source
        self.stages = stages
        self.op = stages[-1].op if stages else source.op

    def extend(self, stage: Stage) -> "Pipeline":
        return Pipeline(self.source, self.stages + [stage])

    def batches(self, ctx: ExecutionContext) -> Iterator[ColumnBatch]:
        governor = ctx.governor
        if governor is not None:
            governor.check()
        metrics = ctx.metrics
        records = None
        if metrics is not None:
            records = []
            for spec in self.stages:
                record = metrics.record_for(spec.op)
                record.executions += 1
                records.append(record)
        clock = None if metrics is None else metrics.clock
        bound = [spec.bind(ctx) for spec in self.stages]
        try:
            for batch in self.source.batches(ctx):
                out = batch
                stop = False
                for i, stage in enumerate(bound):
                    if clock is None:
                        out = stage.apply(out, ctx)
                    else:
                        start = clock()
                        out = stage.apply(out, ctx)
                        records[i].elapsed_ns += clock() - start
                    if stage.exhausted:
                        stop = True
                    if out is None:
                        break
                    if records is not None:
                        records[i].rows_out += out.length
                    if governor is not None:
                        governor.tick(out.length)
                if out is not None:
                    yield out
                if stop:
                    return
        finally:
            for stage in bound:
                stage.finish(ctx)


# ----------------------------------------------------------------------
# Stateless streaming stages
# ----------------------------------------------------------------------

class FilterStage(Stage):
    __slots__ = ("_predicate",)

    def __init__(self, op):
        self.op = op
        self._predicate = compile_batch(op.predicate, op.child.schema)

    def apply(self, batch, ctx):
        counters = ctx.counters
        n = batch.length
        counters.comparisons += n
        if ctx.metrics is not None:
            ctx.metrics.record_for(self.op).comparisons += n
        values = self._predicate(batch, ctx)
        keep = [i for i, v in enumerate(values) if v is True]
        kept = len(keep)
        counters.rows += kept
        if kept == 0:
            return None
        if kept == n:
            return batch
        return batch.select(keep)


class ProjectStage(Stage):
    __slots__ = ("_evaluators",)

    def __init__(self, op):
        self.op = op
        child_schema = op.child.schema
        self._evaluators = [
            compile_batch(expr, child_schema) for expr, _ in op.items
        ]

    def apply(self, batch, ctx):
        n = batch.length
        ctx.counters.rows += n
        columns = [evaluate(batch, ctx) for evaluate in self._evaluators]
        return ColumnBatch(columns=columns, length=n)


class PruneStage(Stage):
    """Shared by PPrune and PRemap: positional column selection."""

    __slots__ = ("_positions", "_getter")

    def __init__(self, op):
        self.op = op
        self._positions = op._positions
        self._getter = op._getter

    def apply(self, batch, ctx):
        n = batch.length
        ctx.counters.rows += n
        if not batch.has_rows:
            return batch.project_columns(self._positions)
        rows = batch.rows()
        positions = self._positions
        if len(positions) == 1:
            position = positions[0]
            return ColumnBatch(columns=[[row[position] for row in rows]], length=n)
        getter = self._getter
        return ColumnBatch(rows=[getter(row) for row in rows], length=n)


class AliasStage(Stage):
    """Identity on rows (no ``counters.rows``); exists so the alias
    operator's metrics record sees its executions/rows_out as in Volcano."""

    __slots__ = ()

    def __init__(self, op):
        self.op = op

    def apply(self, batch, ctx):
        return batch


# ----------------------------------------------------------------------
# Stateful streaming stages
# ----------------------------------------------------------------------

class LimitStage(Stage):
    """Spec for ``PLimit`` with a positive limit (``limit <= 0`` plans
    compile to an EmptyNode instead)."""

    __slots__ = ()

    def __init__(self, op):
        self.op = op

    def bind(self, ctx):
        return _BoundLimit(self.op.limit)


class _BoundLimit:
    __slots__ = ("remaining", "exhausted")

    def __init__(self, limit: int):
        self.remaining = limit
        self.exhausted = False

    def apply(self, batch, ctx):
        n = batch.length
        if n < self.remaining:
            self.remaining -= n
            ctx.counters.rows += n
            return batch
        k = self.remaining
        self.remaining = 0
        self.exhausted = True
        ctx.counters.rows += k
        return batch if k == n else batch.head(k)

    def finish(self, ctx):
        return None


class DistinctStage(Stage):
    __slots__ = ("_width", "_raw")

    def __init__(self, op):
        self.op = op
        self._width = len(op.schema)
        self._raw = raw_group_keys_ok(op.schema, range(self._width))

    def bind(self, ctx):
        return _BoundDistinct(self._width, self._raw)


class _BoundDistinct:
    __slots__ = ("seen", "width", "raw")

    exhausted = False

    def __init__(self, width: int, raw: bool):
        self.seen: set = set()
        self.width = width
        self.raw = raw

    def apply(self, batch, ctx):
        counters = ctx.counters
        n = batch.length
        counters.hash_inserts += n
        seen = self.seen
        keep = []
        append = keep.append
        rows = batch.rows()
        if self.raw:
            for i, row in enumerate(rows):
                if row not in seen:
                    seen.add(row)
                    append(i)
        else:
            for i, row in enumerate(rows):
                key = grouping_key(row)
                if key not in seen:
                    seen.add(key)
                    append(i)
        new = len(keep)
        if new == 0:
            return None
        counters.buffered_cells += new * self.width
        if ctx.governor is not None:
            ctx.governor.charge_cells(new * self.width)
        counters.rows += new
        if new == n:
            return batch
        return batch.select(keep)

    def finish(self, ctx):
        if ctx.governor is not None:
            ctx.governor.release_cells(len(self.seen) * self.width)


# ----------------------------------------------------------------------
# Join probe stages
# ----------------------------------------------------------------------

class HashJoinStage(Stage):
    """Hash-join with the build side drained at bind time (matching the
    Volcano operator, which builds on its first pull) and the probe side
    fused into the pipeline."""

    __slots__ = ("build_node", "residual_batch")

    def __init__(self, op, build_node: VectorNode):
        from repro.algebra.operators import JoinKind

        self.op = op
        self.build_node = build_node
        # Inner joins evaluate the residual over the whole candidate batch
        # (same rows kept, no per-candidate counter in the row engine to
        # preserve). Semi/anti keep the scalar evaluator: their first-match
        # break means Volcano may never evaluate later candidates, and a
        # batched evaluation could surface an error Volcano never hits.
        self.residual_batch = (
            None
            if op.residual is None or op.kind != JoinKind.INNER
            else compile_batch(
                op.residual, op.left.schema.concat(op.right.schema)
            )
        )

    def bind(self, ctx):
        return _BoundHashJoin(self.op, self.build_node, self.residual_batch, ctx)


def _key_of(positions: tuple, raw: bool):
    """A per-row key extractor returning None for NULL-containing keys.

    ``raw`` single-key extraction is inlined at the call sites (it is just
    ``row[p]``); this covers the multi-key and tagged cases.
    """
    if raw:
        getter = operator.itemgetter(*positions)

        def key_of(row):
            values = getter(row)
            return None if None in values else values
    else:
        def key_of(row):
            values = tuple(row[i] for i in positions)
            if any(v is None for v in values):
                return None
            return grouping_key(values)
    return key_of


class _BoundHashJoin:
    __slots__ = (
        "op", "buckets", "residual", "residual_batch", "semi", "anti",
        "build_left", "width", "single_position", "probe_key_of",
    )

    exhausted = False

    def __init__(self, op, build_node: VectorNode, residual_batch, ctx):
        from repro.algebra.operators import JoinKind

        self.op = op
        self.semi = op.kind == JoinKind.SEMI
        self.anti = op.kind == JoinKind.ANTI
        self.build_left = op.build_left
        self.residual = op._evaluate_residual
        self.residual_batch = residual_batch
        self.width = len(op.schema)
        if op.build_left:
            build_positions = op._left_positions
            build_width = len(op.left.schema)
            probe_positions = op._right_positions
        else:
            build_positions = op._right_positions
            build_width = len(op.right.schema)
            probe_positions = op._left_positions
        raw = _raw_join_keys_ok(
            op.left.schema, op._left_positions,
            op.right.schema, op._right_positions,
        )
        # The dominant case — one raw-hashable key column — probes with a
        # bare row slot, no tuple building at all.
        single = raw and len(build_positions) == 1
        self.single_position = probe_positions[0] if single else None
        self.probe_key_of = (
            None if single else _key_of(probe_positions, raw)
        )
        counters = ctx.counters
        buckets: dict = {}
        buckets_get = buckets.get
        inserted = 0
        if single:
            position = build_positions[0]
            for batch in build_node.batches(ctx):
                for row in batch.rows():
                    key = row[position]
                    if key is None:
                        continue
                    inserted += 1
                    entry = buckets_get(key)
                    if entry is None:
                        buckets[key] = [row]
                    else:
                        entry.append(row)
        else:
            build_key_of = _key_of(build_positions, raw)
            for batch in build_node.batches(ctx):
                for row in batch.rows():
                    key = build_key_of(row)
                    if key is None:
                        continue
                    inserted += 1
                    entry = buckets_get(key)
                    if entry is None:
                        buckets[key] = [row]
                    else:
                        entry.append(row)
        counters.hash_inserts += inserted
        counters.buffered_cells += inserted * build_width
        self.buckets = buckets

    def apply(self, batch, ctx):
        counters = ctx.counters
        buckets_get = self.buckets.get
        residual = self.residual
        position = self.single_position
        key_of = self.probe_key_of
        out: list = []
        emit = out.append
        probes = 0
        rows = batch.rows()
        if self.build_left:
            # Inner join, probe side is the right child; output order is
            # still left ++ right. NULL probe keys are silently dropped.
            for right_row in rows:
                key = (
                    right_row[position]
                    if position is not None
                    else key_of(right_row)
                )
                if key is None:
                    continue
                probes += 1
                matches = buckets_get(key)
                if matches is not None:
                    for left_row in matches:
                        emit(left_row + right_row)
            if residual is not None and out:
                out = self._filter_residual(out, ctx)
        elif not self.semi and not self.anti:
            # Inner join: emit every key match, then (if present) run the
            # residual over the whole candidate batch at once.
            if position is not None:
                for left_row in rows:
                    key = left_row[position]
                    if key is None:
                        continue
                    probes += 1
                    matches = buckets_get(key)
                    if matches is not None:
                        for right_row in matches:
                            emit(left_row + right_row)
            else:
                for left_row in rows:
                    key = key_of(left_row)
                    if key is None:
                        continue
                    probes += 1
                    matches = buckets_get(key)
                    if matches is not None:
                        for right_row in matches:
                            emit(left_row + right_row)
            if residual is not None and out:
                out = self._filter_residual(out, ctx)
        else:
            semi = self.semi
            anti = self.anti
            for left_row in rows:
                key = (
                    left_row[position]
                    if position is not None
                    else key_of(left_row)
                )
                if key is None:
                    if anti:
                        emit(left_row)
                    continue
                probes += 1
                matches = buckets_get(key, ())
                matched = False
                for right_row in matches:
                    combined = left_row + right_row
                    if residual is None or residual(combined, ctx) is True:
                        matched = True
                        if semi or anti:
                            break
                        emit(combined)
                if semi and matched:
                    emit(left_row)
                elif anti and not matched:
                    emit(left_row)
        counters.join_probes += probes
        if not out:
            return None
        counters.rows += len(out)
        return rows_batch(out, self.width)

    def _filter_residual(self, candidates: list, ctx) -> list:
        evaluate = self.residual_batch
        if evaluate is None:
            residual = self.residual
            return [c for c in candidates if residual(c, ctx) is True]
        flags = evaluate(rows_batch(candidates, self.width), ctx)
        return [c for c, flag in zip(candidates, flags) if flag is True]

    def finish(self, ctx):
        return None


class IndexNLJoinStage(Stage):
    __slots__ = ("_values_of", "_raw_position", "residual_batch")

    def __init__(self, op):
        self.op = op
        positions = op._outer_positions
        if len(positions) == 1:
            position = positions[0]
            self._values_of = lambda row: (row[position],)
        else:
            getter = operator.itemgetter(*positions)
            self._values_of = lambda row: getter(row)
        # Single raw-typed key on both sides: the index buckets are keyed
        # by ``grouping_key`` output, which for such columns is just the
        # bare singleton tuple — probe the bucket dict directly and skip
        # the per-row lookup() machinery. NULL probes find no bucket
        # (NULL keys are never inserted), matching lookup()'s empty list.
        index = op.index
        self._raw_position = (
            positions[0]
            if len(positions) == 1
            and index.is_single_column
            and _raw_join_keys_ok(
                op.outer.schema, positions,
                index.table.schema, index._positions,
            )
            else None
        )
        # The Volcano operator evaluates the residual for every candidate
        # (no first-match break), so batching the evaluation keeps both
        # the kept rows and the comparisons total identical.
        self.residual_batch = (
            None
            if op.residual is None
            else compile_batch(op.residual, op.schema)
        )

    def apply(self, batch, ctx):
        op = self.op
        counters = ctx.counters
        outer_is_left = op.outer_is_left
        out: list = []
        emit = out.append
        rows = batch.rows()
        position = self._raw_position
        if position is not None:
            buckets_get = op.index._ensure_built().buckets.get
            if outer_is_left:
                for outer_row in rows:
                    matches = buckets_get((outer_row[position],))
                    if matches is not None:
                        for inner_row in matches:
                            emit(outer_row + inner_row)
            else:
                for outer_row in rows:
                    matches = buckets_get((outer_row[position],))
                    if matches is not None:
                        for inner_row in matches:
                            emit(inner_row + outer_row)
        else:
            lookup = op.index.lookup
            values_of = self._values_of
            for outer_row in rows:
                values = values_of(outer_row)
                for inner_row in lookup(values):
                    emit(
                        outer_row + inner_row
                        if outer_is_left
                        else inner_row + outer_row
                    )
        n = batch.length
        counters.join_probes += n
        if ctx.metrics is not None:
            ctx.metrics.record_for(op).index_probes += n
        if out and self.residual_batch is not None:
            counters.comparisons += len(out)
            flags = self.residual_batch(rows_batch(out, len(op.schema)), ctx)
            out = [c for c, flag in zip(out, flags) if flag is True]
        if not out:
            return None
        counters.rows += len(out)
        return rows_batch(out, len(op.schema))


class ApplyStage(Stage):
    """Uncorrelated Apply: the inner plan runs once (on the first probe
    batch, mirroring Volcano's first-outer-row execution) and its rows
    are joined to every outer row. Correlated Apply falls back to
    Volcano at compile time."""

    __slots__ = ("inner_node", "zero_width", "outer_width", "width")

    def __init__(self, op, inner_node: VectorNode):
        self.op = op
        self.inner_node = inner_node
        self.zero_width = len(op.inner.schema) == 0
        self.outer_width = len(op.outer.schema)
        self.width = len(op.schema)

    def bind(self, ctx):
        return _BoundApply(self)


class _BoundApply:
    __slots__ = ("spec", "cached")

    exhausted = False

    def __init__(self, spec: ApplyStage):
        self.spec = spec
        self.cached = None

    def apply(self, batch, ctx):
        spec = self.spec
        counters = ctx.counters
        cached = self.cached
        if cached is None:
            counters.inner_executions += 1
            cached = []
            for inner_batch in spec.inner_node.batches(ctx):
                cached.extend(inner_batch.rows())
            self.cached = cached
        k = len(cached)
        if k == 0:
            return None
        n = batch.length
        counters.rows += n * k
        if spec.zero_width:
            if k == 1:
                return batch
            indices = [i for i in range(n) for _ in range(k)]
            return batch.select(indices)
        if k == 1:
            inner_row = cached[0]
            columns = [batch.column(p) for p in range(spec.outer_width)]
            columns.extend([value] * n for value in inner_row)
            return ColumnBatch(columns=columns, length=n)
        rows = batch.rows()
        out = [row + inner_row for row in rows for inner_row in cached]
        return rows_batch(out, spec.width)

    def finish(self, ctx):
        return None
