"""Batch-at-a-time columnar execution (the "vector" engine).

This subpackage is the alternative to the row-at-a-time Volcano
iterators in :mod:`repro.execution`: a plan compiler walks a *physical*
plan produced by the ordinary planner, identifies straight-line operator
chains between pipeline breakers, and fuses each chain into a single
per-:class:`ColumnBatch` loop. Operators with no batched implementation
(correlated Apply, nested-loop join, Exists, parallel/spilling GApply,
stream aggregation) transparently fall back to their Volcano iterators —
chunked into batches at the boundary — so *every* plan runs under either
engine and the Volcano path stays the correctness oracle.

The engine is wired through
:class:`repro.optimizer.planner.PlannerOptions` (``engine="vector"``)
and ``Database.sql(..., engine="vector")``; the fuzz plan-space driver
runs both engines differentially (``--profile engine``).

Design contract (see DESIGN.md §12): for any plan, the vector engine
produces *identical rows in identical order*, *identical deterministic
Counters*, *identical MetricsRegistry snapshots* (time excluded), and
*identical typed budget errors* as the Volcano engine. Batching is an
implementation detail, never a semantic one.
"""

from repro.execution.vector.batch import DEFAULT_BATCH_SIZE, ColumnBatch
from repro.execution.vector.compiler import FallbackNote, VectorPlan, compile_plan
from repro.execution.vector.exprs import compile_batch

__all__ = [
    "ColumnBatch",
    "DEFAULT_BATCH_SIZE",
    "FallbackNote",
    "VectorPlan",
    "compile_plan",
    "compile_batch",
]
