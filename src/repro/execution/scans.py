"""Leaf physical operators: base-table scan and group scan.

``PGroupScan`` is the physical realization of the paper's relation-valued
parameter: "When the leaf scan operator receives the relation-valued
parameter, it understands this to be a temporary relation and reads from it"
(Section 3). The temporary relation is bound into the execution context by
``PGApply`` before it runs the per-group plan.
"""

from __future__ import annotations

from typing import Iterator

from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.storage.schema import Schema
from repro.storage.table import Row, Table


class PTableScan(PhysicalOperator):
    """Full scan of a base table, emitting rows under the qualified schema."""

    def __init__(self, table: Table, alias: str | None = None):
        self.table = table
        self.alias = alias
        self.schema = table.schema.qualify(alias or table.name)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        for row in self.table.rows:
            counters.rows += 1
            counters.table_scan_rows += 1
            yield row

    def label(self) -> str:
        if self.alias and self.alias != self.table.name:
            return f"TableScan({self.table.name} AS {self.alias})"
        return f"TableScan({self.table.name})"


class PGroupScan(PhysicalOperator):
    """Scan of the temporary relation bound to a group variable."""

    def __init__(self, variable: str, schema: Schema):
        self.variable = variable
        self.schema = schema

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        for row in ctx.relation(self.variable):
            counters.rows += 1
            counters.group_scan_rows += 1
            yield row

    def label(self) -> str:
        return f"GroupScan(${self.variable})"
