"""The physical GApply operator.

Section 3 of the paper: "The physical implementation takes place in two
phases. *Partitioning Phase*: the input tuple stream is partitioned based on
the values in the grouping columns GCols. This can be implemented either
through sorting or through hashing. *Execution Phase*: this is performed in
a nested loops fashion — each group of tuples is read and the per-group
query PGQ is evaluated on each group ... by treating each group as a
temporary relation, binding a relation-valued parameter $group to each group
in succession."

Both partitioning strategies are implemented:

* ``hash`` — one pass building ``dict[key] -> rows``; group output order is
  first-appearance order (deterministic for reproducible tests, like a
  hash-partition that preserves bucket discovery order);
* ``sort`` — sort the materialized input on the grouping key and split runs;
  output groups are clustered in key order, which makes the downstream
  clustering the tagger needs free of charge (the Section 3.1 point that an
  explicit partition operator above GApply becomes redundant).

Rows with NULL grouping values form a single NULL group, matching GROUP BY.

Beyond the paper's nested-loops execution phase, the operator can fan the
independent groups out to a worker pool (``parallelism``/``backend`` knobs;
see :mod:`repro.execution.parallel`): groups are batched in partition
order, workers evaluate the per-group plan with local counters, and the
parent merges results in dispatch order — output rows and merged work
counters are identical to the serial run, which remains the guaranteed
fallback (``backend="serial"``, or automatically when a pool cannot be
brought up or we are already inside a worker).

The partition phase **materializes** each buffered row (an O(width) copy)
rather than retaining references into the input stream. A disk-based engine
pays width-proportional I/O to write partitions (the paper's client-side
simulation stored the outer result in a temp table); sharing references
would erase that cost here and hide the benefit of the
projection-before-GApply rule, so the copy keeps the cost model honest.

Under a cell budget the partition phase **spills to disk**
(:mod:`repro.storage.spill`) instead of buffering without bound:

* *hash* partitioning keeps the key directory (first-appearance order and
  per-key record offsets) in memory and flushes buffered row payloads to
  an offset-addressed spill file whenever the resident buffer would cross
  the threshold — the hybrid-hash shape, where the directory is
  O(groups + rows) pointers but the O(rows x width) payload lives on
  disk;
* *sort* partitioning becomes a textbook external merge sort: sorted runs
  of at most the threshold, merged stably on re-read.

Both paths reproduce the in-memory output byte for byte (group order,
within-group order, and values — pickle round-trips exactly), and count
``spill_runs``/``spilled_rows``/``spill_bytes``. The threshold comes from
``PlannerOptions.gapply_spill_threshold`` (forced, for tests and the
spill benchmark) or from the query governor's memory budget; the
execution phase still binds one whole group at a time in memory — the
GApply contract requires it — so the budget governs the *partition
buffer*, exactly the quantity the paper's §4.2 rules compete to shrink.
"""

from __future__ import annotations

import operator
import warnings
from typing import Iterable, Iterator, Sequence

from repro.errors import MemoryBudgetExceeded, PlanError
from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.execution.parallel import (
    BACKENDS,
    SERIAL_BACKEND,
    ParallelUnavailable,
    WorkerPool,
    parallel_worker_active,
    run_groups_parallel,
)
from repro.storage.table import Row
from repro.storage.types import grouping_key

HASH_PARTITION = "hash"
SORT_PARTITION = "sort"


def _buffer_row(row: Row) -> Row:
    """Copy a row into the partition buffer (width-proportional work).

    ``tuple(row)`` would return the same object, so the copy is forced by
    reconstruction; see the module docstring for why this is deliberate.
    """
    if not row:
        return row
    return row[:-1] + (row[-1],)


class PGApply(PhysicalOperator):
    """Partition the outer stream; run the per-group plan per group.

    ``per_group`` is a physical plan whose GroupScan leaf reads the relation
    bound to ``group_variable``. Its output is crossed with the group's key
    values: output rows are ``key_values + pgq_row``.

    ``parallelism``/``backend`` select the execution-phase worker pool
    (serial nested loops by default); ``batch_size`` overrides how many
    groups ride in one dispatch to a worker.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        grouping_columns: Sequence[str],
        per_group: PhysicalOperator,
        group_variable: str = "group",
        partitioning: str = HASH_PARTITION,
        parallelism: int = 1,
        backend: str = SERIAL_BACKEND,
        batch_size: int | None = None,
        spill_threshold: int | None = None,
        spill_dir: str | None = None,
    ):
        if partitioning not in (HASH_PARTITION, SORT_PARTITION):
            raise PlanError(
                f"unknown GApply partitioning {partitioning!r}; "
                f"use {HASH_PARTITION!r} or {SORT_PARTITION!r}"
            )
        if backend not in BACKENDS:
            raise PlanError(
                f"unknown GApply backend {backend!r}; use one of {BACKENDS}"
            )
        if parallelism < 1:
            raise PlanError(
                f"GApply parallelism must be >= 1, got {parallelism}"
            )
        if spill_threshold is not None and spill_threshold < 1:
            raise PlanError(
                f"GApply spill_threshold must be >= 1, got {spill_threshold}"
            )
        self.spill_threshold = spill_threshold
        self.spill_dir = spill_dir
        self.outer = outer
        self.grouping_columns = tuple(grouping_columns)
        self.per_group = per_group
        self.group_variable = group_variable
        self.partitioning = partitioning
        self.parallelism = parallelism
        self.backend = backend
        self.batch_size = batch_size
        self._key_positions = outer.schema.indices_of(grouping_columns)
        if len(self._key_positions) == 1:
            position = self._key_positions[0]
            self._key_getter = lambda row: (row[position],)
        else:
            self._key_getter = operator.itemgetter(*self._key_positions)
        from repro.algebra.operators import gapply_output_schema

        self.schema = gapply_output_schema(
            outer.schema, self.grouping_columns, per_group.schema, group_variable
        )

    # ------------------------------------------------------------------
    # Partitioning phase
    # ------------------------------------------------------------------

    def _effective_spill_threshold(self, ctx: ExecutionContext) -> int | None:
        """Cells the partition buffer may hold resident before spilling:
        an explicit ``spill_threshold`` wins; otherwise the governor's
        memory budget, so a budgeted query spills instead of failing."""
        if self.spill_threshold is not None:
            return self.spill_threshold
        if ctx.governor is not None:
            return ctx.governor.spill_threshold()
        return None

    def _partition_hash(
        self, ctx: ExecutionContext
    ) -> Iterator[tuple[tuple, list[Row]]]:
        counters = ctx.counters
        buckets: dict[tuple, tuple[tuple, list[Row]]] = {}
        total = 0
        key_getter = self._key_getter
        for row in self.outer.execute(ctx):
            key_values = key_getter(row)
            key = grouping_key(key_values)
            counters.hash_inserts += 1
            counters.buffered_cells += len(row)
            total += 1
            buffered = _buffer_row(row)
            entry = buckets.get(key)
            if entry is None:
                buckets[key] = (key_values, [buffered])
            else:
                entry[1].append(buffered)
        counters.peak_partition_rows = max(counters.peak_partition_rows, total)
        if ctx.metrics is not None:
            ctx.metrics.record_for(self).partition_rows += total
        for key_values, rows in buckets.values():
            yield key_values, rows

    def _partition_sort(
        self, ctx: ExecutionContext
    ) -> Iterator[tuple[tuple, list[Row]]]:
        counters = ctx.counters
        key_getter = self._key_getter
        rows = [_buffer_row(row) for row in self.outer.execute(ctx)]
        counters.buffered_cells += sum(len(row) for row in rows)
        counters.peak_partition_rows = max(counters.peak_partition_rows, len(rows))
        if ctx.metrics is not None:
            ctx.metrics.record_for(self).partition_rows += len(rows)
        rows.sort(key=lambda row: grouping_key(key_getter(row)))
        counters.comparisons += len(rows)
        current_key: tuple | None = None
        current_values: tuple = ()
        bucket: list[Row] = []
        for row in rows:
            key_values = key_getter(row)
            key = grouping_key(key_values)
            if key != current_key:
                if current_key is not None:
                    yield current_values, bucket
                current_key = key
                current_values = key_values
                bucket = []
            bucket.append(row)
        if current_key is not None:
            yield current_values, bucket

    # ------------------------------------------------------------------
    # Partitioning phase, spilling variants (cell budget in force)
    # ------------------------------------------------------------------

    def _partition_hash_spill(
        self, ctx: ExecutionContext, threshold: int
    ) -> Iterator[tuple[tuple, list[Row]]]:
        """Hybrid hash partitioning: in-memory directory, on-disk payload.

        The directory maps each key to its first-appearance slot (dict
        insertion order), the offsets of its already-spilled rows, and
        its still-resident rows. Whenever admitting a row would push the
        resident buffer past ``threshold`` cells, one *flush wave*
        appends every resident row to the spill file (arrival order
        within each key) and empties the buffer. Read-back per group is
        spilled offsets first, resident tail last — the exact arrival
        order — so output is byte-identical to the in-memory path.
        """
        from repro.storage.spill import SpillFile

        counters = ctx.counters
        key_getter = self._key_getter
        governor = ctx.governor
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        # key -> [key_values, spilled offsets, resident rows]
        directory: dict[tuple, list] = {}
        resident_cells = 0
        peak_resident_rows = resident_rows = 0
        total = 0
        spill_runs = spilled_rows = 0
        spill = SpillFile(self.spill_dir)

        def flush_wave() -> None:
            nonlocal resident_cells, resident_rows, spill_runs, spilled_rows
            for entry in directory.values():
                offsets, rows = entry[1], entry[2]
                for resident in rows:
                    offsets.append(spill.append(resident))
                spilled_rows += len(rows)
                rows.clear()
            spill_runs += 1
            if governor is not None:
                governor.release_cells(resident_cells)
            resident_cells = resident_rows = 0

        try:
            for row in self.outer.execute(ctx):
                key_values = key_getter(row)
                key = grouping_key(key_values)
                counters.hash_inserts += 1
                counters.buffered_cells += len(row)
                total += 1
                buffered = _buffer_row(row)
                width = len(buffered)
                if resident_cells and resident_cells + width > threshold:
                    flush_wave()
                if governor is not None:
                    try:
                        governor.charge_cells(width)
                    except MemoryBudgetExceeded:
                        # Same shared-budget retry as the sort path: a
                        # concurrent holder ate the headroom; free our
                        # resident rows before declaring the cap too
                        # small.
                        if not resident_cells:
                            raise
                        flush_wave()
                        governor.charge_cells(width)
                entry = directory.get(key)
                if entry is None:
                    entry = [key_values, [], []]
                    directory[key] = entry
                entry[2].append(buffered)
                resident_cells += width
                resident_rows += 1
                if resident_rows > peak_resident_rows:
                    peak_resident_rows = resident_rows
            counters.peak_partition_rows = max(
                counters.peak_partition_rows, peak_resident_rows
            )
            counters.spill_runs += spill_runs
            counters.spilled_rows += spilled_rows
            counters.spill_bytes += spill.bytes_written
            if record is not None:
                record.partition_rows += total
                record.spill_runs += spill_runs
                record.spilled_rows += spilled_rows
                record.spill_bytes += spill.bytes_written
            for key_values, offsets, rows in directory.values():
                if offsets:
                    group = [spill.read_at(offset) for offset in offsets]
                    group.extend(rows)
                else:
                    group = rows
                yield key_values, group
        finally:
            spill.close()
            if governor is not None and resident_cells:
                governor.release_cells(resident_cells)

    def _partition_sort_spill(
        self, ctx: ExecutionContext, threshold: int
    ) -> Iterator[tuple[tuple, list[Row]]]:
        """External merge sort: runs of at most ``threshold`` cells,
        sorted in memory and written out; a stable k-way merge re-reads
        them in key order (run order + resident tail last = arrival
        order on ties, matching the in-memory stable sort exactly)."""
        from repro.storage.spill import SpillRun, merge_runs

        counters = ctx.counters
        key_getter = self._key_getter
        governor = ctx.governor
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        sort_key = lambda row: grouping_key(key_getter(row))  # noqa: E731
        runs: list[SpillRun] = []
        buffer: list[Row] = []
        resident_cells = 0
        peak_resident_rows = 0
        total = 0
        spilled_rows = spill_bytes = 0
        def flush_run() -> None:
            nonlocal buffer, resident_cells, spilled_rows, spill_bytes
            buffer.sort(key=sort_key)
            counters.comparisons += len(buffer)
            run = SpillRun(buffer, self.spill_dir)
            runs.append(run)
            spilled_rows += run.records
            spill_bytes += run.bytes_written
            if governor is not None:
                governor.release_cells(resident_cells)
            buffer = []
            resident_cells = 0

        try:
            for row in self.outer.execute(ctx):
                buffered = _buffer_row(row)
                width = len(buffered)
                counters.buffered_cells += width
                total += 1
                if resident_cells and resident_cells + width > threshold:
                    flush_run()
                if governor is not None:
                    try:
                        governor.charge_cells(width)
                    except MemoryBudgetExceeded:
                        # The budget is shared: concurrent holders (the
                        # publisher's chunk buffer, sibling operators)
                        # can consume the headroom the threshold assumed
                        # was ours. Spill what we hold and retry; only a
                        # retry failure means the cap is genuinely too
                        # small.
                        if not resident_cells:
                            raise
                        flush_run()
                        governor.charge_cells(width)
                buffer.append(buffered)
                resident_cells += width
                if len(buffer) > peak_resident_rows:
                    peak_resident_rows = len(buffer)
            counters.peak_partition_rows = max(
                counters.peak_partition_rows, peak_resident_rows
            )
            counters.spill_runs += len(runs)
            counters.spilled_rows += spilled_rows
            counters.spill_bytes += spill_bytes
            if record is not None:
                record.partition_rows += total
                record.spill_runs += len(runs)
                record.spilled_rows += spilled_rows
                record.spill_bytes += spill_bytes
            buffer.sort(key=sort_key)
            counters.comparisons += len(buffer)
            merged = (
                merge_runs([*runs, buffer], key=sort_key) if runs else buffer
            )
            current_key: tuple | None = None
            current_values: tuple = ()
            bucket: list[Row] = []
            for row in merged:
                key_values = key_getter(row)
                key = grouping_key(key_values)
                if key != current_key:
                    if current_key is not None:
                        yield current_values, bucket
                    current_key = key
                    current_values = key_values
                    bucket = []
                bucket.append(row)
            if current_key is not None:
                yield current_values, bucket
        finally:
            for run in runs:
                run.close()
            if governor is not None and resident_cells:
                governor.release_cells(resident_cells)

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        threshold = self._effective_spill_threshold(ctx)
        if self.partitioning == HASH_PARTITION:
            if threshold is None:
                partitions = self._partition_hash(ctx)
            else:
                partitions = self._partition_hash_spill(ctx, threshold)
        else:
            if threshold is None:
                partitions = self._partition_sort(ctx)
            else:
                partitions = self._partition_sort_spill(ctx, threshold)
        if (
            self.backend == SERIAL_BACKEND
            or self.parallelism <= 1
            or parallel_worker_active()
        ):
            # The reference path: the paper's nested-loops execution phase,
            # streaming group by group. Also taken inside pool workers so a
            # nested parallel GApply never spawns a pool of its own.
            return self._execute_serial(ctx, partitions)
        return self._execute_parallel(ctx, partitions)

    def _execute_serial(
        self,
        ctx: ExecutionContext,
        partitions: Iterable[tuple[tuple, list[Row]]],
        pre_counted: bool = False,
    ) -> Iterator[Row]:
        # One child context, rebound per group: each group's per-group plan
        # is fully drained before the next binding, so mutation is safe and
        # avoids a dict copy per group.
        relations = dict(ctx.relations)
        group_ctx = ExecutionContext(
            ctx.counters, ctx.scalars, relations, ctx.metrics, ctx.tracer,
            ctx.governor,
        )
        try:
            yield from self._run_groups(
                ctx, group_ctx, relations, partitions, pre_counted
            )
        finally:
            # A mid-stream error (cancellation, budget) raised from a
            # per-group plan leaves the suspended partition generator out
            # of the unwinding call chain — pinned alive by the exception
            # traceback, its finally (spill-file close, cell release)
            # would never run. Close it explicitly on every exit path.
            close = getattr(partitions, "close", None)
            if close is not None:
                close()

    def _run_groups(
        self,
        ctx: ExecutionContext,
        group_ctx: ExecutionContext,
        relations: dict,
        partitions: Iterable[tuple[tuple, list[Row]]],
        pre_counted: bool,
    ) -> Iterator[Row]:
        counters = ctx.counters
        per_group = self.per_group
        variable = self.group_variable
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        tracer = ctx.tracer
        for key_values, group_rows in partitions:
            if not pre_counted:
                counters.groups_partitioned += 1
            counters.group_executions += 1
            relations[variable] = group_rows
            span = (
                None
                if tracer is None
                else tracer.begin(
                    "group", f"${variable}={key_values!r}",
                    group_rows=len(group_rows),
                )
            )
            emitted = 0
            for pgq_row in per_group.execute(group_ctx):
                counters.rows += 1
                emitted += 1
                yield key_values + pgq_row
            if record is not None:
                if not pre_counted:
                    record.groups_formed += 1
                if not emitted:
                    record.empty_groups_skipped += 1
            if span is not None:
                tracer.end(span, rows_out=emitted)

    def _execute_parallel(
        self,
        ctx: ExecutionContext,
        partitions: Iterable[tuple[tuple, list[Row]]],
    ) -> Iterator[Row]:
        counters = ctx.counters
        groups = list(partitions)
        counters.groups_partitioned += len(groups)
        metrics = ctx.metrics
        metrics_prefix = ""
        gapply_path = None
        if metrics is not None:
            # Groups are formed parent-side (the partition phase ran here);
            # workers only see their own batches, so count them now. The
            # serial fallback below passes pre_counted=True and skips its
            # own groups_formed tick to avoid double counting.
            record = metrics.record_for(self)
            record.groups_formed += len(groups)
            gapply_path = record.path
            metrics_prefix = metrics.path_of(self.per_group)
        rows = run_groups_parallel(
            WorkerPool.create(self.backend, self.parallelism),
            self.per_group,
            self.group_variable,
            ctx.scalars,
            ctx.relations,
            groups,
            counters,
            self.batch_size,
            metrics,
            metrics_prefix,
            gapply_path,
            governor=ctx.governor,
        )
        # Force pool bring-up now: if the backend cannot start here (plan
        # not picklable, fork refused), fall back to the serial phase over
        # the already-materialized groups — same rows, same counters.
        try:
            head = next(rows)
        except StopIteration:
            return
        except ParallelUnavailable as exc:
            warnings.warn(
                f"GApply {self.backend} backend unavailable, "
                f"falling back to serial execution: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            yield from self._execute_serial(ctx, groups, pre_counted=True)
            return
        yield head
        yield from rows

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.outer, self.per_group)

    def label(self) -> str:
        keys = ", ".join(self.grouping_columns)
        base = f"GApply:{self.partitioning}[{keys}; ${self.group_variable}]"
        if self.backend != SERIAL_BACKEND and self.parallelism > 1:
            return f"{base} ({self.backend} x{self.parallelism})"
        return base
