"""Worker pools for GApply's parallel execution phase.

The paper executes GApply's execution phase "in a nested loops fashion" —
one group at a time. But groups are independent by construction: the
per-group query sees only the rows bound to its ``$group`` relation, so
the partition phase is a natural shard boundary and the execution phase is
embarrassingly parallel (the observation the data-cube literature makes
about all group-wise operators). This module provides the pool abstraction
:class:`~repro.execution.gapply.PGApply` dispatches group batches to.

Three backends, selected by name:

* ``serial`` — run batches inline on the calling thread. The reference
  implementation the other two must match byte for byte.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`. Shares
  the parent's heap, so group rows and the per-group plan are used without
  copying; on CPython the GIL serializes the interpreter, so this buys
  wall-clock only when per-group evaluation releases the GIL (C-level
  sorts/hashes over large groups) — see the README's GIL caveat.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`. Each
  worker process receives the pickled per-group plan (plus the parent's
  parameter bindings) once at pool start-up, then group batches as plain
  picklable rows; it returns result rows plus a :class:`Counters` snapshot
  that the parent merges deterministically. True CPU parallelism, at the
  price of pickling the plan (compiled expression closures need
  ``cloudpickle``; we fall back to stdlib ``pickle`` and report clearly
  when neither can serialize the plan).

Determinism contract (load-bearing for the equivalence tests): batches are
dispatched in partition order and results are consumed in submission
order, so output rows arrive in exactly the serial order; worker counters
start at zero and are merged with :meth:`Counters.merge` (sums, max for
peaks), so the merged ``total_work`` equals the serial run's.

Workers never nest pools: a parallel GApply inside a per-group plan
detects that it is running inside a worker (:func:`parallel_worker_active`)
and falls back to the serial path, preventing fork bombs and thread
oversubscription.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import ExecutionError
from repro.execution.base import PhysicalOperator
from repro.execution.context import Counters, ExecutionContext
from repro.storage.table import Row

SERIAL_BACKEND = "serial"
THREAD_BACKEND = "thread"
PROCESS_BACKEND = "process"
BACKENDS = (SERIAL_BACKEND, THREAD_BACKEND, PROCESS_BACKEND)

#: One partitioned group: (grouping-key values, the group's buffered rows).
Group = tuple[tuple, list]

#: A worker result: (output rows, Counters.snapshot() of the work done,
#: MetricsRegistry.snapshot() of per-operator metrics — None unless the
#: dispatch asked for metrics collection).
BatchResult = tuple[list, dict, dict | None]

#: Target number of batches per worker; >1 so a skewed group distribution
#: still load-balances instead of leaving workers idle behind one big batch.
BATCHES_PER_WORKER = 4


class ParallelUnavailable(ExecutionError):
    """A parallel backend cannot be brought up in this environment.

    Raised at pool bring-up (plan not picklable, fork refused, thread
    limit). PGApply catches exactly this and falls back to the serial
    execution phase, which is guaranteed equivalent.
    """


def default_parallelism() -> int:
    """Worker count to use when the caller says "parallel" without a number:
    the CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# The unit of worker work
# ---------------------------------------------------------------------------


def execute_group_batch(
    plan: PhysicalOperator,
    group_variable: str,
    scalars: Mapping[str, Any],
    relations: Mapping[str, Sequence[Row]],
    batch: Sequence[Group],
    collect_metrics: bool = False,
) -> BatchResult:
    """Run the per-group plan over each group in ``batch``.

    Work is counted into a fresh :class:`Counters` (merged by the parent),
    mirroring the serial execution phase exactly: one ``group_executions``
    tick per group, one ``rows`` tick per emitted row, plus whatever the
    per-group plan's own operators count.

    With ``collect_metrics`` the worker also counts per-operator metrics
    into a fresh registry keyed by the per-group plan's tree paths (the
    unpickled copy has the same shape as the parent's, so the paths line
    up) and ships the snapshot home for the parent to merge under the
    per-group subtree. Empty groups — the ones whose per-group query
    emitted no rows — belong to the *enclosing* GApply, which lives in the
    parent's plan, so they travel under the synthetic
    :data:`~repro.observe.metrics.ENCLOSING_GAPPLY` key. Tracer spans are
    never shipped (worker wall-clocks are not comparable across
    processes).
    """
    counters = Counters()
    bound = dict(relations)
    registry = None
    if collect_metrics:
        from repro.observe.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.register_plan(plan)
    ctx = ExecutionContext(counters, scalars, bound, registry)
    out: list[Row] = []
    append = out.append
    empty_groups = 0
    for key_values, group_rows in batch:
        counters.group_executions += 1
        bound[group_variable] = group_rows
        emitted = 0
        for pgq_row in plan.execute(ctx):
            counters.rows += 1
            emitted += 1
            append(key_values + pgq_row)
        if not emitted:
            empty_groups += 1
    metrics_snapshot = None
    if registry is not None:
        from repro.observe.metrics import ENCLOSING_GAPPLY

        metrics_snapshot = registry.snapshot()
        if empty_groups:
            metrics_snapshot[ENCLOSING_GAPPLY] = {
                "empty_groups_skipped": empty_groups
            }
    return out, counters.snapshot(), metrics_snapshot


def make_batches(
    groups: Sequence[Group], parallelism: int, batch_size: int | None = None
) -> list[list[Group]]:
    """Chunk groups into dispatch batches, preserving partition order."""
    if batch_size is None:
        batch_size = max(
            1, -(-len(groups) // max(1, parallelism * BATCHES_PER_WORKER))
        )
    if batch_size < 1:
        raise ExecutionError(f"batch_size must be >= 1, got {batch_size}")
    return [
        list(groups[start : start + batch_size])
        for start in range(0, len(groups), batch_size)
    ]


# ---------------------------------------------------------------------------
# Worker-side state (nested-pool suppression, process payload)
# ---------------------------------------------------------------------------

_thread_worker = threading.local()
_process_payload: tuple | None = None
_in_process_worker = False


def parallel_worker_active() -> bool:
    """True inside a thread- or process-pool worker of this module."""
    return _in_process_worker or getattr(_thread_worker, "active", False)


def _run_batch_in_thread(
    plan: PhysicalOperator,
    group_variable: str,
    scalars: Mapping[str, Any],
    relations: Mapping[str, Sequence[Row]],
    batch: Sequence[Group],
    collect_metrics: bool = False,
) -> BatchResult:
    _thread_worker.active = True
    try:
        return execute_group_batch(
            plan, group_variable, scalars, relations, batch, collect_metrics
        )
    finally:
        _thread_worker.active = False


def _init_process_worker(payload: bytes) -> None:
    """Process-pool initializer: unpickle the shipped plan exactly once."""
    global _process_payload, _in_process_worker
    _process_payload = _plan_pickler().loads(payload)
    _in_process_worker = True


def _run_batch_in_process(batch: Sequence[Group]) -> BatchResult:
    assert _process_payload is not None, "worker initializer did not run"
    plan, group_variable, scalars, relations, collect_metrics = _process_payload
    return execute_group_batch(
        plan, group_variable, scalars, relations, batch, collect_metrics
    )


def _plan_pickler():
    """cloudpickle if present (handles the compiled expression closures);
    stdlib pickle otherwise — callers get :class:`ParallelUnavailable` with
    a clear message if the plan does not survive it."""
    try:
        import cloudpickle

        return cloudpickle
    except ImportError:  # pragma: no cover - cloudpickle is usually present
        return pickle


# ---------------------------------------------------------------------------
# The pools
# ---------------------------------------------------------------------------


class WorkerPool:
    """Executes group batches; see the module docstring for the contract.

    ``run`` is a generator: results stream back in submission order, and
    abandoning the iterator (e.g. a LIMIT above GApply stops consuming)
    releases the underlying executor via the generator-close protocol.
    """

    backend = SERIAL_BACKEND

    def __init__(self, parallelism: int = 1):
        if parallelism < 1:
            raise ExecutionError(
                f"parallelism must be >= 1, got {parallelism}"
            )
        self.parallelism = parallelism

    def run(
        self,
        plan: PhysicalOperator,
        group_variable: str,
        scalars: Mapping[str, Any],
        relations: Mapping[str, Sequence[Row]],
        batches: Iterable[Sequence[Group]],
        collect_metrics: bool = False,
    ) -> Iterator[BatchResult]:
        for batch in batches:
            yield execute_group_batch(
                plan, group_variable, scalars, relations, batch, collect_metrics
            )

    @staticmethod
    def create(backend: str, parallelism: int | None = None) -> "WorkerPool":
        """Factory keyed by backend name (the PGApply/PlannerOptions knob)."""
        if parallelism is None:
            parallelism = default_parallelism()
        if backend == SERIAL_BACKEND:
            return WorkerPool(parallelism)
        if backend == THREAD_BACKEND:
            return ThreadWorkerPool(parallelism)
        if backend == PROCESS_BACKEND:
            return ProcessWorkerPool(parallelism)
        raise ExecutionError(
            f"unknown GApply backend {backend!r}; use one of {BACKENDS}"
        )


class ThreadWorkerPool(WorkerPool):
    """Thread-pool backend: shared heap, GIL-bound interpretation."""

    backend = THREAD_BACKEND

    def run(self, plan, group_variable, scalars, relations, batches,
            collect_metrics=False):
        from concurrent.futures import ThreadPoolExecutor

        batches = list(batches)
        if not batches:
            return
        try:
            executor = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="gapply-worker",
            )
        except RuntimeError as exc:  # thread limit reached
            raise ParallelUnavailable(
                f"cannot start thread pool: {exc}"
            ) from exc
        try:
            futures = [
                executor.submit(
                    _run_batch_in_thread,
                    plan,
                    group_variable,
                    scalars,
                    relations,
                    batch,
                    collect_metrics,
                )
                for batch in batches
            ]
            for future in futures:
                yield future.result()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


class ProcessWorkerPool(WorkerPool):
    """Process-pool backend: pickled plan shipped once per worker."""

    backend = PROCESS_BACKEND

    def run(self, plan, group_variable, scalars, relations, batches,
            collect_metrics=False):
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        batches = list(batches)
        if not batches:
            return
        try:
            payload = _plan_pickler().dumps(
                (plan, group_variable, dict(scalars), dict(relations),
                 collect_metrics)
            )
        except Exception as exc:
            raise ParallelUnavailable(
                "per-group plan is not picklable for the process backend "
                f"({type(exc).__name__}: {exc}); install cloudpickle or use "
                f"backend={THREAD_BACKEND!r}/{SERIAL_BACKEND!r}"
            ) from exc
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(self.parallelism, len(batches)),
                initializer=_init_process_worker,
                initargs=(payload,),
            )
        except (OSError, PermissionError, ValueError) as exc:
            raise ParallelUnavailable(
                f"cannot start process pool: {exc}"
            ) from exc
        try:
            try:
                futures = [
                    executor.submit(_run_batch_in_process, batch)
                    for batch in batches
                ]
                first = futures[0].result()
            except BrokenExecutor as exc:
                raise ParallelUnavailable(
                    f"process pool died at bring-up: {exc}"
                ) from exc
            yield first
            for future in futures[1:]:
                yield future.result()
        finally:
            executor.shutdown(wait=False, cancel_futures=True)


def run_groups_parallel(
    pool: WorkerPool,
    plan: PhysicalOperator,
    group_variable: str,
    scalars: Mapping[str, Any],
    relations: Mapping[str, Sequence[Row]],
    groups: Sequence[Group],
    counters: Counters,
    batch_size: int | None = None,
    metrics: "Any | None" = None,
    metrics_prefix: str = "",
    gapply_path: str | None = None,
) -> Iterator[Row]:
    """Dispatch groups through ``pool``; merge counters; stream rows.

    Raises :class:`ParallelUnavailable` before yielding anything if the
    backend cannot be brought up, so the caller can still fall back to a
    serial pass over the same ``groups``.

    When ``metrics`` (the parent's :class:`MetricsRegistry`) is given,
    workers collect per-operator metrics and each batch snapshot is merged
    under ``metrics_prefix`` — the parent-side tree path of the per-group
    plan — in dispatch order, making the merged registry identical to a
    serial run's. ``gapply_path`` routes the workers' empty-group counts
    to the enclosing GApply's record.
    """
    batches = make_batches(groups, pool.parallelism, batch_size)
    results = pool.run(
        plan, group_variable, scalars, relations, batches,
        collect_metrics=metrics is not None,
    )
    # Force bring-up (pickling, executor start) before the first yield so
    # ParallelUnavailable escapes while fallback is still possible.
    try:
        head = next(results)
    except StopIteration:
        return
    for rows, snapshot, metrics_snapshot in itertools.chain((head,), results):
        counters.merge(Counters.from_snapshot(snapshot))
        if metrics is not None and metrics_snapshot is not None:
            metrics.merge_snapshot(
                metrics_snapshot, metrics_prefix, gapply_path
            )
        yield from rows
