"""Worker pools for GApply's parallel execution phase.

The paper executes GApply's execution phase "in a nested loops fashion" —
one group at a time. But groups are independent by construction: the
per-group query sees only the rows bound to its ``$group`` relation, so
the partition phase is a natural shard boundary and the execution phase is
embarrassingly parallel (the observation the data-cube literature makes
about all group-wise operators). This module provides the pool abstraction
:class:`~repro.execution.gapply.PGApply` dispatches group batches to.

Three backends, selected by name:

* ``serial`` — run batches inline on the calling thread. The reference
  implementation the other two must match byte for byte.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`. Shares
  the parent's heap, so group rows and the per-group plan are used without
  copying; on CPython the GIL serializes the interpreter, so this buys
  wall-clock only when per-group evaluation releases the GIL (C-level
  sorts/hashes over large groups) — see the README's GIL caveat.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`. Each
  worker process receives the pickled per-group plan (plus the parent's
  parameter bindings) once at pool start-up, then group batches as plain
  picklable rows; it returns result rows plus a :class:`Counters` snapshot
  that the parent merges deterministically. True CPU parallelism, at the
  price of pickling the plan (compiled expression closures need
  ``cloudpickle``; we fall back to stdlib ``pickle`` and report clearly
  when neither can serialize the plan).

Determinism contract (load-bearing for the equivalence tests): batches are
dispatched in partition order and results are consumed in submission
order, so output rows arrive in exactly the serial order; worker counters
start at zero and are merged with :meth:`Counters.merge` (sums, max for
peaks), so the merged ``total_work`` equals the serial run's.

Workers never nest pools: a parallel GApply inside a per-group plan
detects that it is running inside a worker (:func:`parallel_worker_active`)
and falls back to the serial path, preventing fork bombs and thread
oversubscription.

Fault tolerance (the part the paper leaves to the host DBMS):

* Pools are **context managers**. ``close()`` cancels pending work and —
  for the process backend — terminates and reaps child processes, so a
  ``KeyboardInterrupt`` or any exception mid-query never strands orphans.
  :func:`run_groups_parallel` enters the pool around consumption, which
  also covers abandoning the row iterator (generator-close protocol).
* The **process backend survives worker crashes**: a dead child breaks
  the whole ``ProcessPoolExecutor``, so the pool rebuilds the executor
  and resubmits every batch not yet merged, with exponential backoff, up
  to :data:`MAX_CRASH_RETRIES` times. Because results are consumed in
  submission order and counters are merged per consumed batch, the
  completed prefix is never re-run or double-counted.
* When retries are exhausted, :func:`run_groups_parallel` walks the
  **degradation ladder** ``process -> thread -> serial`` over the
  *remaining* batches, with a structured ``RuntimeWarning`` per rung —
  the query still answers correctly, just slower.
* Workers enforce the query's budget: thread workers share the parent's
  :class:`~repro.execution.governor.Governor`; process workers rebuild a
  local replica from the picklable limits shipped in the pool payload,
  so a timeout raises the same typed error on every backend.
* Dispatch carries each batch's index and attempt number, which is what
  lets the fault-injection harness (:mod:`repro.execution.faults`) kill
  or delay a *chosen* batch deterministically.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import warnings
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import ExecutionError, WorkerCrashed
from repro.execution.base import PhysicalOperator
from repro.execution.context import Counters, ExecutionContext
from repro.storage.table import Row

SERIAL_BACKEND = "serial"
THREAD_BACKEND = "thread"
PROCESS_BACKEND = "process"
BACKENDS = (SERIAL_BACKEND, THREAD_BACKEND, PROCESS_BACKEND)

#: One partitioned group: (grouping-key values, the group's buffered rows).
Group = tuple[tuple, list]

#: A worker result: (output rows, Counters.snapshot() of the work done,
#: MetricsRegistry.snapshot() of per-operator metrics — None unless the
#: dispatch asked for metrics collection).
BatchResult = tuple[list, dict, dict | None]

#: Target number of batches per worker; >1 so a skewed group distribution
#: still load-balances instead of leaving workers idle behind one big batch.
BATCHES_PER_WORKER = 4

#: How many times the process backend rebuilds a crashed pool before
#: giving up and letting the degradation ladder take over.
MAX_CRASH_RETRIES = 3

#: First backoff delay after a worker crash; doubles per retry.
CRASH_BACKOFF_SECONDS = 0.05

#: The degradation ladder: where to go when a backend's retries run out.
DEGRADATION_LADDER = {PROCESS_BACKEND: THREAD_BACKEND,
                      THREAD_BACKEND: SERIAL_BACKEND}

#: Injectable for tests (so crash-retry tests don't actually sleep long).
_sleep = time.sleep


class ParallelUnavailable(ExecutionError):
    """A parallel backend cannot be brought up in this environment.

    Raised at pool bring-up (plan not picklable, fork refused, thread
    limit). PGApply catches exactly this and falls back to the serial
    execution phase, which is guaranteed equivalent.
    """


def default_parallelism() -> int:
    """Worker count to use when the caller says "parallel" without a number:
    the CPUs this process may actually run on (cgroup/affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # non-Linux
        return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# The unit of worker work
# ---------------------------------------------------------------------------


def execute_group_batch(
    plan: PhysicalOperator,
    group_variable: str,
    scalars: Mapping[str, Any],
    relations: Mapping[str, Sequence[Row]],
    batch: Sequence[Group],
    collect_metrics: bool = False,
    governor: "Any | None" = None,
    batch_index: int = 0,
    attempt: int = 0,
) -> BatchResult:
    """Run the per-group plan over each group in ``batch``.

    Work is counted into a fresh :class:`Counters` (merged by the parent),
    mirroring the serial execution phase exactly: one ``group_executions``
    tick per group, one ``rows`` tick per emitted row, plus whatever the
    per-group plan's own operators count.

    With ``collect_metrics`` the worker also counts per-operator metrics
    into a fresh registry keyed by the per-group plan's tree paths (the
    unpickled copy has the same shape as the parent's, so the paths line
    up) and ships the snapshot home for the parent to merge under the
    per-group subtree. Empty groups — the ones whose per-group query
    emitted no rows — belong to the *enclosing* GApply, which lives in the
    parent's plan, so they travel under the synthetic
    :data:`~repro.observe.metrics.ENCLOSING_GAPPLY` key. Tracer spans are
    never shipped (worker wall-clocks are not comparable across
    processes).

    ``governor`` (the parent's, for thread workers, or a local replica,
    for process workers) is threaded into the worker's context so the
    per-group plan's own operators stride-check the budget; ``batch_index``
    and ``attempt`` identify this dispatch to the fault-injection
    registry.
    """
    from repro.execution.faults import on_worker_batch

    on_worker_batch(batch_index, attempt)
    counters = Counters()
    bound = dict(relations)
    registry = None
    if collect_metrics:
        from repro.observe.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.register_plan(plan)
    ctx = ExecutionContext(counters, scalars, bound, registry,
                           governor=governor)
    out: list[Row] = []
    append = out.append
    empty_groups = 0
    for key_values, group_rows in batch:
        counters.group_executions += 1
        bound[group_variable] = group_rows
        emitted = 0
        for pgq_row in plan.execute(ctx):
            counters.rows += 1
            emitted += 1
            append(key_values + pgq_row)
        if not emitted:
            empty_groups += 1
    metrics_snapshot = None
    if registry is not None:
        from repro.observe.metrics import ENCLOSING_GAPPLY

        metrics_snapshot = registry.snapshot()
        if empty_groups:
            metrics_snapshot[ENCLOSING_GAPPLY] = {
                "empty_groups_skipped": empty_groups
            }
    return out, counters.snapshot(), metrics_snapshot


def make_batches(
    groups: Sequence[Group], parallelism: int, batch_size: int | None = None
) -> list[list[Group]]:
    """Chunk groups into dispatch batches, preserving partition order."""
    if batch_size is None:
        batch_size = max(
            1, -(-len(groups) // max(1, parallelism * BATCHES_PER_WORKER))
        )
    if batch_size < 1:
        raise ExecutionError(f"batch_size must be >= 1, got {batch_size}")
    return [
        list(groups[start : start + batch_size])
        for start in range(0, len(groups), batch_size)
    ]


# ---------------------------------------------------------------------------
# Worker-side state (nested-pool suppression, process payload)
# ---------------------------------------------------------------------------

_thread_worker = threading.local()
_process_payload: tuple | None = None
_in_process_worker = False


def parallel_worker_active() -> bool:
    """True inside a thread- or process-pool worker of this module."""
    return _in_process_worker or getattr(_thread_worker, "active", False)


def _run_batch_in_thread(
    plan: PhysicalOperator,
    group_variable: str,
    scalars: Mapping[str, Any],
    relations: Mapping[str, Sequence[Row]],
    batch: Sequence[Group],
    collect_metrics: bool = False,
    governor: "Any | None" = None,
    batch_index: int = 0,
) -> BatchResult:
    _thread_worker.active = True
    try:
        return execute_group_batch(
            plan, group_variable, scalars, relations, batch, collect_metrics,
            governor=governor, batch_index=batch_index,
        )
    finally:
        _thread_worker.active = False


def _init_process_worker(payload: bytes) -> None:
    """Process-pool initializer: unpickle the shipped plan exactly once,
    install the shipped fault plan (chaos tests), and build the local
    governor replica from the shipped budget limits."""
    global _process_payload, _in_process_worker
    plan, group_variable, scalars, relations, collect_metrics, limits, \
        fault_plan = _plan_pickler().loads(payload)
    from repro.execution.faults import install_plan
    from repro.execution.governor import Governor

    install_plan(fault_plan)
    governor = Governor.from_worker_limits(limits)
    _process_payload = (
        plan, group_variable, scalars, relations, collect_metrics, governor
    )
    _in_process_worker = True


def _run_batch_in_process(
    batch: Sequence[Group], batch_index: int = 0, attempt: int = 0
) -> BatchResult:
    assert _process_payload is not None, "worker initializer did not run"
    plan, group_variable, scalars, relations, collect_metrics, governor = (
        _process_payload
    )
    return execute_group_batch(
        plan, group_variable, scalars, relations, batch, collect_metrics,
        governor=governor, batch_index=batch_index, attempt=attempt,
    )


def _plan_pickler():
    """cloudpickle if present (handles the compiled expression closures);
    stdlib pickle otherwise — callers get :class:`ParallelUnavailable` with
    a clear message if the plan does not survive it."""
    try:
        import cloudpickle

        return cloudpickle
    except ImportError:  # pragma: no cover - cloudpickle is usually present
        return pickle


# ---------------------------------------------------------------------------
# The pools
# ---------------------------------------------------------------------------


class WorkerPool:
    """Executes group batches; see the module docstring for the contract.

    ``run`` is a generator: results stream back in submission order, and
    abandoning the iterator (e.g. a LIMIT above GApply stops consuming)
    releases the underlying executor via the generator-close protocol.

    Pools are context managers: ``close()`` is idempotent and releases
    whatever executor the backend holds — for the process backend it also
    terminates and reaps child processes, so no exception path (including
    ``KeyboardInterrupt``) strands orphans.
    """

    backend = SERIAL_BACKEND

    def __init__(self, parallelism: int = 1):
        if parallelism < 1:
            raise ExecutionError(
                f"parallelism must be >= 1, got {parallelism}"
            )
        self.parallelism = parallelism

    def close(self) -> None:
        """Release backend resources; idempotent. The serial pool holds
        none."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False

    def run(
        self,
        plan: PhysicalOperator,
        group_variable: str,
        scalars: Mapping[str, Any],
        relations: Mapping[str, Sequence[Row]],
        batches: Iterable[Sequence[Group]],
        collect_metrics: bool = False,
        governor: "Any | None" = None,
        start_index: int = 0,
    ) -> Iterator[BatchResult]:
        for index, batch in enumerate(batches):
            yield execute_group_batch(
                plan, group_variable, scalars, relations, batch,
                collect_metrics, governor=governor,
                batch_index=start_index + index,
            )

    @staticmethod
    def create(backend: str, parallelism: int | None = None) -> "WorkerPool":
        """Factory keyed by backend name (the PGApply/PlannerOptions knob)."""
        if parallelism is None:
            parallelism = default_parallelism()
        if backend == SERIAL_BACKEND:
            return WorkerPool(parallelism)
        if backend == THREAD_BACKEND:
            return ThreadWorkerPool(parallelism)
        if backend == PROCESS_BACKEND:
            return ProcessWorkerPool(parallelism)
        raise ExecutionError(
            f"unknown GApply backend {backend!r}; use one of {BACKENDS}"
        )


class ThreadWorkerPool(WorkerPool):
    """Thread-pool backend: shared heap, GIL-bound interpretation.

    Thread workers share the parent's governor object directly — same
    heap, so the parent's budget accounting covers them with no shipping
    protocol. Threads cannot be killed, so this backend has no crash
    recovery; it sits below ``process`` on the degradation ladder.
    """

    backend = THREAD_BACKEND

    def __init__(self, parallelism: int = 1):
        super().__init__(parallelism)
        self._executor = None

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def run(self, plan, group_variable, scalars, relations, batches,
            collect_metrics=False, governor=None, start_index=0):
        from concurrent.futures import ThreadPoolExecutor

        batches = list(batches)
        if not batches:
            return
        if self._executor is None:
            try:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.parallelism,
                    thread_name_prefix="gapply-worker",
                )
            except RuntimeError as exc:  # thread limit reached
                raise ParallelUnavailable(
                    f"cannot start thread pool: {exc}"
                ) from exc
        try:
            futures = [
                self._executor.submit(
                    _run_batch_in_thread,
                    plan,
                    group_variable,
                    scalars,
                    relations,
                    batch,
                    collect_metrics,
                    governor,
                    start_index + index,
                )
                for index, batch in enumerate(batches)
            ]
            for future in futures:
                yield future.result()
        finally:
            self.close()


class ProcessWorkerPool(WorkerPool):
    """Process-pool backend: pickled plan shipped once per worker.

    This is the only backend whose workers can *die* (OOM kill, segfault,
    injected ``os._exit``). A dead child breaks the whole
    ``ProcessPoolExecutor``, surfacing as ``BrokenExecutor`` on the next
    ``future.result()``; ``run`` then discards the broken executor
    (terminating and reaping its children), backs off exponentially,
    rebuilds, and resubmits every batch not yet consumed — the consumed
    prefix was already yielded and merged, so nothing is re-run or
    double-counted. After :data:`MAX_CRASH_RETRIES` rebuilds the pool
    raises :class:`~repro.errors.WorkerCrashed` carrying how many batches
    made it, and :func:`run_groups_parallel` takes the degradation ladder
    from there.
    """

    backend = PROCESS_BACKEND

    def __init__(self, parallelism: int = 1):
        super().__init__(parallelism)
        self._executor = None

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        executor.shutdown(wait=False, cancel_futures=True)
        # shutdown() alone does not reap a *broken* pool's survivors (and
        # with wait=False may not reap healthy ones before we move on):
        # terminate and join every child so no orphans outlive the query.
        processes = getattr(executor, "_processes", None) or {}
        for proc in list(processes.values()):
            if proc.is_alive():
                proc.terminate()
        for proc in list(processes.values()):
            proc.join(timeout=5)

    def run(self, plan, group_variable, scalars, relations, batches,
            collect_metrics=False, governor=None, start_index=0):
        from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

        from repro.execution import faults

        batches = list(batches)
        if not batches:
            return
        limits = governor.worker_limits() if governor is not None else None
        try:
            payload = _plan_pickler().dumps(
                (plan, group_variable, dict(scalars), dict(relations),
                 collect_metrics, limits, faults.active_plan())
            )
        except Exception as exc:
            raise ParallelUnavailable(
                "per-group plan is not picklable for the process backend "
                f"({type(exc).__name__}: {exc}); install cloudpickle or use "
                f"backend={THREAD_BACKEND!r}/{SERIAL_BACKEND!r}"
            ) from exc
        consumed = 0
        retries = 0
        attempts = [0] * len(batches)
        try:
            while consumed < len(batches):
                if self._executor is None:
                    try:
                        self._executor = ProcessPoolExecutor(
                            max_workers=min(
                                self.parallelism, len(batches) - consumed
                            ),
                            initializer=_init_process_worker,
                            initargs=(payload,),
                        )
                    except (OSError, PermissionError, ValueError) as exc:
                        raise ParallelUnavailable(
                            f"cannot start process pool: {exc}"
                        ) from exc
                try:
                    futures = [
                        self._executor.submit(
                            _run_batch_in_process,
                            batches[index],
                            start_index + index,
                            attempts[index],
                        )
                        for index in range(consumed, len(batches))
                    ]
                    for future in futures:
                        result = future.result()
                        consumed += 1
                        yield result
                except BrokenExecutor as exc:
                    self.close()  # reap the broken pool's children
                    retries += 1
                    if retries > MAX_CRASH_RETRIES:
                        raise WorkerCrashed(
                            "process worker died "
                            f"{retries} times on batch "
                            f"{start_index + consumed}; giving up on the "
                            f"{PROCESS_BACKEND!r} backend with "
                            f"{consumed}/{len(batches)} batches done",
                            consumed_batches=consumed,
                        ) from exc
                    for index in range(consumed, len(batches)):
                        attempts[index] += 1
                    _sleep(CRASH_BACKOFF_SECONDS * (2 ** (retries - 1)))
        finally:
            self.close()


def run_groups_parallel(
    pool: WorkerPool,
    plan: PhysicalOperator,
    group_variable: str,
    scalars: Mapping[str, Any],
    relations: Mapping[str, Sequence[Row]],
    groups: Sequence[Group],
    counters: Counters,
    batch_size: int | None = None,
    metrics: "Any | None" = None,
    metrics_prefix: str = "",
    gapply_path: str | None = None,
    governor: "Any | None" = None,
) -> Iterator[Row]:
    """Dispatch groups through ``pool``; merge counters; stream rows.

    Raises :class:`ParallelUnavailable` before yielding anything if the
    original backend cannot be brought up, so the caller can still fall
    back to a serial pass over the same ``groups``. Once results have
    started flowing that escape hatch is gone (rows were already yielded),
    so mid-stream failures — worker-crash retries exhausted, or a
    replacement backend failing bring-up — instead walk the degradation
    ladder ``process -> thread -> serial`` over the *remaining* batches,
    announcing each rung with a ``RuntimeWarning``. The consumed prefix
    is never re-dispatched, so counters and metrics stay exact.

    When ``metrics`` (the parent's :class:`MetricsRegistry`) is given,
    workers collect per-operator metrics and each batch snapshot is merged
    under ``metrics_prefix`` — the parent-side tree path of the per-group
    plan — in dispatch order, making the merged registry identical to a
    serial run's. ``gapply_path`` routes the workers' empty-group counts
    to the enclosing GApply's record.

    ``governor`` is the query's budget enforcer; it is threaded to every
    worker (shared object for threads, shipped limits for processes) so
    budget violations raise the same typed error on every backend.
    """
    batches = make_batches(groups, pool.parallelism, batch_size)
    if not batches:
        return
    collect = metrics is not None
    consumed = 0
    current = pool
    while True:
        results = current.run(
            plan, group_variable, scalars, relations, batches[consumed:],
            collect_metrics=collect, governor=governor,
            start_index=consumed,
        )
        try:
            with current:
                for rows, snapshot, metrics_snapshot in results:
                    counters.merge(Counters.from_snapshot(snapshot))
                    if metrics is not None and metrics_snapshot is not None:
                        metrics.merge_snapshot(
                            metrics_snapshot, metrics_prefix, gapply_path
                        )
                    consumed += 1
                    yield from rows
            return
        except (WorkerCrashed, ParallelUnavailable) as exc:
            if (
                isinstance(exc, ParallelUnavailable)
                and consumed == 0
                and current is pool
            ):
                # Nothing dispatched yet: re-raise so PGApply's existing
                # whole-query serial fallback handles it.
                raise
            next_backend = DEGRADATION_LADDER.get(current.backend)
            if next_backend is None:
                raise
            warnings.warn(
                f"GApply {current.backend!r} backend failed "
                f"({type(exc).__name__}: {exc}); degrading to "
                f"{next_backend!r} for the remaining "
                f"{len(batches) - consumed} of {len(batches)} batches",
                RuntimeWarning,
                stacklevel=2,
            )
            current = WorkerPool.create(next_backend, current.parallelism)
