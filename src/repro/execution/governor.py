"""Per-query resource governance: budgets and cancellation.

The paper's §4.2 memory argument ranks plans by what they keep out of the
GApply partition buffer; this module is where that argument stops being a
counter and becomes policy. A :class:`Governor` is one query's resource
authority, threaded through :class:`~repro.execution.context.
ExecutionContext` (``ctx.governor``, ``None`` by default — plain execution
pays nothing):

* **wall-clock budget** (``timeout`` seconds) — checked on a stride of
  rows flowing through every operator (``tick``), so even a single
  pathological operator cannot run unbounded between checks;
* **memory budget** (``memory_cells`` — cells, i.e. rows x width, the
  same unit as ``Counters.buffered_cells``) — charged by buffering
  operators (sort, distinct, hash-join build). GApply's partition phase
  *spills to disk* under this budget instead of failing
  (:mod:`repro.storage.spill`); operators with no spill path raise
  :class:`~repro.errors.MemoryBudgetExceeded`;
* **output-row budget** (``max_rows``) — enforced at the plan root by
  :meth:`tick_output`;
* **cancellation** — :meth:`cancel` may be called from any thread; the
  running query observes it at the next stride check and raises
  :class:`~repro.errors.QueryCancelled`.

All violations raise *typed* errors from :mod:`repro.errors`, never bare
``RuntimeError``, and raise them identically on the serial, thread and
process GApply backends: thread workers share the parent's governor
object; process workers rebuild a local replica from the picklable
:meth:`worker_limits` snapshot shipped with each dispatch (the replica's
deadline is the parent's remaining time at dispatch).

The clock is injectable so tests can drive timeouts deterministically.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import (
    MemoryBudgetExceeded,
    PlanError,
    QueryCancelled,
    RowBudgetExceeded,
    TimeoutExceeded,
)

#: Rows between wall-clock/cancellation checks. Small enough that a tight
#: per-row loop notices a timeout within microseconds of work; large
#: enough that the clock read disappears from profiles.
CHECK_STRIDE = 512


@dataclass(frozen=True)
class Budget:
    """Declarative per-query limits; ``None`` disables a dimension."""

    timeout: float | None = None        # wall-clock seconds
    memory_cells: int | None = None     # buffered cells (rows x width)
    max_rows: int | None = None         # output rows at the plan root

    def __post_init__(self) -> None:
        # PlanError to match how the other Database.sql knobs reject bad
        # values (see api._with_parallel_knobs) — and never a bare
        # ValueError, per the package-root-error contract.
        if self.timeout is not None and self.timeout <= 0:
            raise PlanError(f"timeout must be > 0, got {self.timeout}")
        if self.memory_cells is not None and self.memory_cells < 1:
            raise PlanError(
                f"memory_cells must be >= 1, got {self.memory_cells}"
            )
        if self.max_rows is not None and self.max_rows < 0:
            raise PlanError(f"max_rows must be >= 0, got {self.max_rows}")

    @property
    def unlimited(self) -> bool:
        return (
            self.timeout is None
            and self.memory_cells is None
            and self.max_rows is None
        )


class Governor:
    """One query's cancellation token and budget enforcer.

    Thread-safe where it must be: :meth:`cancel` uses an event, and the
    stride counter is per-call-site harmless under races (a lost tick
    delays a check by at most one stride). Cell accounting is guarded by
    a lock because thread-backend workers charge concurrently.
    """

    def __init__(
        self,
        budget: Budget | None = None,
        clock: Callable[[], float] = time.monotonic,
        sql: str | None = None,
    ):
        self.budget = budget or Budget()
        self.clock = clock
        self.sql = sql
        self.started = clock()
        self.deadline = (
            None
            if self.budget.timeout is None
            else self.started + self.budget.timeout
        )
        self._cancelled = threading.Event()
        self._cancel_reason = "query cancelled"
        self._ticks = 0
        self._lock = threading.Lock()
        self.cells_in_use = 0
        self.peak_cells = 0
        self.output_rows = 0
        #: Bytes of published output (XML chunks) emitted under this
        #: governor; charged by the streaming publisher
        #: (:mod:`repro.xmlpub.stream`) per flushed chunk.
        self.emitted_bytes = 0
        #: Set by :meth:`mark_admitted` when a service admission queue sat
        #: between construction and execution; lets timeout errors split
        #: elapsed time into queued vs executing.
        self.admitted_at: float | None = None

    # ------------------------------------------------------------------
    # Cancellation and wall clock
    # ------------------------------------------------------------------

    def cancel(self, reason: str = "query cancelled") -> None:
        """Request cancellation; safe to call from any thread."""
        self._cancel_reason = reason
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def remaining_seconds(self) -> float | None:
        if self.deadline is None:
            return None
        return self.deadline - self.clock()

    def mark_admitted(self) -> None:
        """Record that queueing is over and execution starts now.

        Service queries construct their governor at *submission* so queue
        wait counts against the deadline; this stamps the transition so a
        later :class:`TimeoutExceeded` can report how much of the budget
        each phase consumed.
        """
        self.admitted_at = self.clock()

    def timeout_error(self, while_queued: bool = False) -> TimeoutExceeded:
        """Build the timeout error with the queued/executing breakdown."""
        now = self.clock()
        queued: float | None = None
        executing: float | None = None
        if while_queued:
            queued, executing = now - self.started, 0.0
        elif self.admitted_at is not None:
            queued = self.admitted_at - self.started
            executing = now - self.admitted_at
        message = f"query exceeded its {self.budget.timeout:g}s timeout"
        if while_queued:
            message += (
                f" after {queued:.3f}s in the admission queue, "
                "before executing at all"
            )
        elif queued is not None:
            message += (
                f" (queued {queued:.3f}s, executing {executing:.3f}s)"
            )
        error = TimeoutExceeded(message)
        error.queued_seconds = queued
        error.executing_seconds = executing
        error.add_context(sql=self.sql)
        return error

    def check(self) -> None:
        """Raise the typed error for any tripped wall-clock/cancel state."""
        if self._cancelled.is_set():
            raise QueryCancelled(self._cancel_reason).add_context(sql=self.sql)
        if self.deadline is not None and self.clock() > self.deadline:
            raise self.timeout_error()

    def tick(self, n: int = 1) -> None:
        """Stride-counted :meth:`check`; called per row by every operator."""
        self._ticks += n
        if self._ticks >= CHECK_STRIDE:
            self._ticks = 0
            self.check()

    # ------------------------------------------------------------------
    # Memory (cells) budget
    # ------------------------------------------------------------------

    def charge_cells(self, n: int) -> None:
        """Account ``n`` newly buffered cells; raise if over budget.

        A rejected charge is not recorded: callers with something to
        spill (GApply's partition phase) catch the error, free their
        resident buffer, and retry — the failed attempt must not linger
        in ``cells_in_use`` (the retry would double-charge) or in
        ``peak_cells`` (the peak would report a state that never held
        memory).
        """
        with self._lock:
            total = self.cells_in_use + n
            if (
                self.budget.memory_cells is not None
                and total > self.budget.memory_cells
            ):
                over = total
            else:
                self.cells_in_use = total
                if total > self.peak_cells:
                    self.peak_cells = total
                over = None
        if over is not None:
            raise MemoryBudgetExceeded(
                f"buffered {over} cells, over the "
                f"{self.budget.memory_cells}-cell memory budget"
            ).add_context(sql=self.sql)

    def release_cells(self, n: int) -> None:
        with self._lock:
            self.cells_in_use = max(0, self.cells_in_use - n)

    def spill_threshold(self) -> int | None:
        """The cell count at which spill-capable operators should start
        spilling: the memory budget, if one is set."""
        return self.budget.memory_cells

    def charge_emitted(self, n: int) -> None:
        """Account ``n`` bytes of published output leaving the system.

        Emitted bytes are *gone* — they do not stay buffered, so they are
        not held against the memory budget. Charging still runs a
        wall-clock/cancel check: a cancelled or expired publish stops at
        its next chunk even when the row stride has not tripped yet.
        """
        self.emitted_bytes += n
        self.check()

    # ------------------------------------------------------------------
    # Output-row budget (plan root only)
    # ------------------------------------------------------------------

    def tick_output(self, n: int = 1) -> None:
        self.output_rows += n
        if (
            self.budget.max_rows is not None
            and self.output_rows > self.budget.max_rows
        ):
            raise RowBudgetExceeded(
                f"query produced more than max_rows={self.budget.max_rows} "
                "output rows"
            ).add_context(sql=self.sql)

    # ------------------------------------------------------------------
    # The cross-process protocol
    # ------------------------------------------------------------------

    def worker_limits(self) -> dict[str, Any] | None:
        """Picklable limits for a process worker, or None when nothing
        needs enforcing worker-side. The wall-clock budget is rebased to
        *remaining* seconds so the worker's replica expires in step with
        the parent (modulo dispatch latency, which only ever makes the
        worker stricter later, never laxer)."""
        remaining = self.remaining_seconds()
        if remaining is None and not self._cancelled.is_set():
            return None
        return {
            "timeout": max(1e-9, remaining) if remaining is not None else None,
            "cancelled": self._cancelled.is_set(),
        }

    @classmethod
    def from_worker_limits(
        cls, limits: Mapping[str, Any] | None
    ) -> "Governor | None":
        if limits is None:
            return None
        governor = cls(Budget(timeout=limits.get("timeout")))
        if limits.get("cancelled"):
            governor.cancel()
        return governor
