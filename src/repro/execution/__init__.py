"""Physical execution engine (Volcano iterator model)."""

from repro.execution.aggregates import PHashAggregate, PStreamAggregate
from repro.execution.apply import PApply, PExists
from repro.execution.base import (
    PhysicalOperator,
    PMaterialized,
    run_plan,
    run_plan_to_table,
)
from repro.execution.basic import (
    PAlias,
    PDistinct,
    PFilter,
    PLimit,
    PProject,
    PPrune,
    PRemap,
    PSort,
    PUnionAll,
)
from repro.execution.context import Counters, ExecutionContext
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION, PGApply
from repro.execution.joins import PHashJoin, PNestedLoopJoin
from repro.execution.parallel import (
    BACKENDS,
    PROCESS_BACKEND,
    SERIAL_BACKEND,
    THREAD_BACKEND,
    ParallelUnavailable,
    WorkerPool,
    default_parallelism,
)
from repro.execution.scans import PGroupScan, PTableScan

__all__ = [
    "BACKENDS",
    "Counters",
    "ExecutionContext",
    "HASH_PARTITION",
    "PROCESS_BACKEND",
    "ParallelUnavailable",
    "SERIAL_BACKEND",
    "THREAD_BACKEND",
    "WorkerPool",
    "default_parallelism",
    "PAlias",
    "PApply",
    "PDistinct",
    "PExists",
    "PFilter",
    "PGApply",
    "PGroupScan",
    "PHashAggregate",
    "PHashJoin",
    "PLimit",
    "PMaterialized",
    "PNestedLoopJoin",
    "PProject",
    "PPrune",
    "PRemap",
    "PSort",
    "PStreamAggregate",
    "PTableScan",
    "PUnionAll",
    "PhysicalOperator",
    "SORT_PARTITION",
    "run_plan",
    "run_plan_to_table",
]
