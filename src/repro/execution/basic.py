"""Row-at-a-time physical operators: filter, project, distinct, sort, union.

All expressions are compiled to closures at construction time; ``execute``
only runs the closures.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import operator

from repro.algebra.expressions import Expression
from repro.errors import PlanError
from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.storage.schema import Column, Schema
from repro.storage.table import Row
from repro.storage.types import grouping_key


class PFilter(PhysicalOperator):
    """Keep rows where the predicate evaluates to TRUE (not NULL)."""

    def __init__(self, child: PhysicalOperator, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self._evaluate = predicate.compile(child.schema)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        evaluate = self._evaluate
        counters = ctx.counters
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        for row in self.child.execute(ctx):
            counters.comparisons += 1
            if record is not None:
                record.comparisons += 1
            if evaluate(row, ctx) is True:
                counters.rows += 1
                yield row

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter[{self.predicate}]"


class PProject(PhysicalOperator):
    """Evaluate a list of expressions per row (no duplicate elimination)."""

    def __init__(
        self,
        child: PhysicalOperator,
        items: Sequence[tuple[Expression, str]],
    ):
        self.child = child
        self.items = tuple(items)
        self.schema = Schema(
            Column(name, expr.infer(child.schema)) for expr, name in self.items
        )
        self._evaluators = [expr.compile(child.schema) for expr, _ in self.items]

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        evaluators = self._evaluators
        counters = ctx.counters
        for row in self.child.execute(ctx):
            counters.rows += 1
            yield tuple(evaluate(row, ctx) for evaluate in evaluators)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        inner = ", ".join(name for _, name in self.items)
        return f"Project[{inner}]"


class PPrune(PhysicalOperator):
    """Positional column pruning preserving the original Column metadata."""

    def __init__(self, child: PhysicalOperator, references: Sequence[str]):
        self.child = child
        self.references = tuple(references)
        self._positions = child.schema.indices_of(references)
        self.schema = child.schema.project(references)
        self._getter = self._make_getter(self._positions)

    @staticmethod
    def _make_getter(positions):
        if len(positions) == 1:
            position = positions[0]
            return lambda row: (row[position],)
        return operator.itemgetter(*positions)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        getter = self._getter
        counters = ctx.counters
        for row in self.child.execute(ctx):
            counters.rows += 1
            yield getter(row)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Prune[{', '.join(self.references)}]"


class PDistinct(PhysicalOperator):
    """Hash-based duplicate elimination over whole rows."""

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self.schema = child.schema

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        governor = ctx.governor
        seen: set[tuple] = set()
        width = len(self.schema)
        try:
            for row in self.child.execute(ctx):
                key = grouping_key(row)
                counters.hash_inserts += 1
                if key in seen:
                    continue
                seen.add(key)
                counters.buffered_cells += width
                # No spill path here: over a memory budget this raises
                # MemoryBudgetExceeded rather than degrading.
                if governor is not None:
                    governor.charge_cells(width)
                counters.rows += 1
                yield row
        finally:
            if governor is not None:
                governor.release_cells(len(seen) * width)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)


class PSort(PhysicalOperator):
    """Blocking sort; NULLS FIRST, stable, per-column asc/desc."""

    def __init__(
        self, child: PhysicalOperator, items: Sequence[tuple[str, bool]]
    ):
        self.child = child
        self.items = tuple(items)
        self.schema = child.schema
        self._positions = [
            (child.schema.index_of(reference), ascending)
            for reference, ascending in self.items
        ]

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        governor = ctx.governor
        rows = list(self.child.execute(ctx))
        cells = len(rows) * len(self.schema)
        counters.buffered_cells += cells
        # No spill path here (only GApply's partition phase spills): under
        # a memory budget the whole buffer is charged up front and a
        # too-large input raises MemoryBudgetExceeded.
        try:
            if governor is not None:
                governor.charge_cells(cells)
            # Stable multi-key sort: apply keys right-to-left.
            for position, ascending in reversed(self._positions):
                rows.sort(
                    key=lambda row: grouping_key((row[position],)),
                    reverse=not ascending,
                )
            counters.comparisons += len(rows)
            for row in rows:
                counters.rows += 1
                yield row
        finally:
            if governor is not None:
                governor.release_cells(cells)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        inner = ", ".join(
            f"{ref}{'' if asc else ' DESC'}" for ref, asc in self.items
        )
        return f"Sort[{inner}]"


class PUnionAll(PhysicalOperator):
    """Concatenate children outputs (bag union)."""

    def __init__(self, inputs: Sequence[PhysicalOperator]):
        if not inputs:
            raise PlanError("PUnionAll requires at least one input")
        self.inputs = tuple(inputs)
        self.schema = Schema(
            Column(c.name, c.dtype) for c in self.inputs[0].schema
        )

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        for child in self.inputs:
            for row in child.execute(ctx):
                counters.rows += 1
                yield row

    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.inputs


class PRemap(PhysicalOperator):
    """Positional passthrough with explicit output column identities."""

    def __init__(
        self,
        child: PhysicalOperator,
        items: Sequence[tuple[str, Column]],
    ):
        self.child = child
        self.items = tuple(items)
        self._positions = [child.schema.index_of(ref) for ref, _ in self.items]
        columns = []
        for (reference, column), position in zip(self.items, self._positions):
            source = child.schema[position]
            columns.append(
                Column(
                    column.name,
                    source.dtype,
                    column.qualifier,
                    column.nullable or source.nullable,
                )
            )
        self.schema = Schema(columns)
        self._getter = PPrune._make_getter(self._positions)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        getter = self._getter
        counters = ctx.counters
        for row in self.child.execute(ctx):
            counters.rows += 1
            yield getter(row)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)


class PAlias(PhysicalOperator):
    """Identity on rows; re-qualifies the output schema (derived-table AS)."""

    def __init__(self, child: PhysicalOperator, name: str):
        self.child = child
        self.name = name
        self.schema = child.schema.qualify(name)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        return self.child.execute(ctx)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Alias({self.name})"


class PLimit(PhysicalOperator):
    """Emit at most ``limit`` rows (used by examples and the tagger demos)."""

    def __init__(self, child: PhysicalOperator, limit: int):
        self.child = child
        self.limit = limit
        self.schema = child.schema

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.execute(ctx):
            ctx.counters.rows += 1
            yield row
            emitted += 1
            if emitted >= self.limit:
                return

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit[{self.limit}]"
